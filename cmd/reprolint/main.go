// Command reprolint is the repo's multichecker: it runs the
// internal/analyzers suite, which turns the reproduction's cross-cutting
// contracts (context-first mining APIs, virtual-time-only cluster
// accounting, scratch-only aborted kernels, obsv metric naming,
// errors.Is sentinel comparisons) into mechanical checks.
//
// Standalone:
//
//	go run ./cmd/reprolint ./...            # whole tree
//	go run ./cmd/reprolint -checks senterr ./internal/service/...
//	go run ./cmd/reprolint -list
//
// As a go vet tool (the unit protocol subset the suite needs):
//
//	go build -o /tmp/reprolint ./cmd/reprolint
//	go vet -vettool=/tmp/reprolint ./...
//
// Exit codes: 0 clean, 1 findings, 2 usage or load errors. Findings are
// suppressed per line with `//reprolint:ignore <analyzer> <reason>`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analyzers"
)

const version = "reprolint version v1.0.0"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// go vet probes its -vettool with -V=full (version stamp for the
	// build cache) and -flags (supported analyzer flags) before handing
	// it per-package .cfg files.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Fprintln(stdout, version)
			return 0
		case "-flags", "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analyzers.RunVetCfg(args[0], analyzers.All(), stderr)
	}

	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	checks := fs.String("checks", "", "comma-separated subset of analyzers to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: reprolint [-list] [-checks a,b] [package patterns]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite, unknown, ok := analyzers.ByName(*checks, analyzers.All())
	if !ok {
		fmt.Fprintf(stderr, "reprolint: unknown analyzer %q (try -list)\n", unknown)
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analyzers.RunPatterns(patterns, suite)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
