package repro

import "repro/internal/obsv"

// Seeds metricname: an inline string literal name.
var _ = obsv.Default.Counter("inline_metric_total", "seeded violation")
