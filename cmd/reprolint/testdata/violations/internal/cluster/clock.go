// Package cluster seeds virtualtime: a wall-clock read inside a
// simulated-time package.
package cluster

import "time"

func now() time.Time { return time.Now() }
