// Package service is the seeded-violation copy of the store-backed
// mining path: a dataset view handed to a kernel in scratch position.
package service

import (
	"repro/internal/store"
	"repro/internal/tidlist"
)

// mineStored seeds mmapalias: the first kernel argument is the reusable
// scratch slot the kernel writes through, and sets[0] is a view over
// the shared (possibly read-only) mapping.
func mineStored(dir string, ks *tidlist.KernelStats) error {
	ds, err := store.OpenDataset(dir)
	if err != nil {
		return err
	}
	sets := ds.Sets(nil)
	tidlist.IntersectSets(sets[0], sets[1], sets[2], ks)
	return nil
}
