package eclat

// arena / arenaMark mirror the production scratch arena of
// internal/eclat/arena.go: release truncates back to the mark, and the
// recursion brackets every level with mark/release.
type arenaMark struct {
	chunk, off int
}

type arena struct {
	chunk, off int
}

func (a *arena) mark() arenaMark     { return arenaMark{a.chunk, a.off} }
func (a *arena) release(m arenaMark) { a.chunk, a.off = m.chunk, m.off }

type member struct {
	item int
}

func emitMember(member) {}

// computeFrequent seeds arenadiscipline: the production release at the
// bottom of the loop body is skipped by the empty-class continue, so
// the arena keeps every skipped class's scratch until the run ends.
func computeFrequent(ar *arena, classes [][]member) {
	for _, cls := range classes {
		m := ar.mark()
		if len(cls) == 0 {
			continue
		}
		for _, mem := range cls {
			emitMember(mem)
		}
		ar.release(m)
	}
}
