package eclat

import (
	"sync"
	"sync/atomic"
)

// supportHeap mirrors the production top-k heap of
// internal/eclat/engine.go: eff is the effective threshold, readable
// without the lock on the hot path — which is exactly why every access
// must stay atomic.
type supportHeap struct {
	hmu    sync.Mutex
	k      int
	h      []int
	eff    atomic.Int64
	raises atomic.Int64
}

// offer is the correct production shape: Load on the fast path,
// Store/Add under the mutex.
func (sh *supportHeap) offer(sup int) {
	if eff := sh.eff.Load(); eff > 0 && int64(sup) <= eff {
		return
	}
	sh.hmu.Lock()
	defer sh.hmu.Unlock()
	if len(sh.h) < sh.k {
		sh.h = append(sh.h, sup)
		if len(sh.h) == sh.k {
			sh.eff.Store(int64(sh.h[0]))
			sh.raises.Add(1)
		}
	}
}

// threshold seeds atomiconly: the effective threshold read plainly,
// racing every concurrent Store in offer.
func (sh *supportHeap) threshold() int64 {
	return int64(sh.eff)
}
