// Package eclat is the seeded-violation copy of the work-stealing
// engine: the same wsDeque / runParallel / supportHeap / arena shapes
// as the production package, each with one of the concurrency bugs the
// v2 analyzers exist to catch.
package eclat

import (
	"context"
	"sync"
	"sync/atomic"
)

type classTask struct {
	ci     int
	weight int64
}

// wsDeque mirrors the production deque of internal/eclat/local.go.
type wsDeque struct {
	mu     sync.Mutex
	tasks  []classTask
	weight int64
}

func (q *wsDeque) popFront() (classTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return classTask{}, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	q.weight -= t.weight
	return t, true
}

// stealInto seeds lockorder: the production index comparison that fixes
// the acquisition order is gone, so two symmetric thieves deadlock.
func (q *wsDeque) stealInto(dst *wsDeque) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	dst.mu.Lock()
	defer dst.mu.Unlock()

	n := (len(q.tasks) + 1) / 2
	if n == 0 {
		return 0
	}
	cut := len(q.tasks) - n
	dst.tasks = append(dst.tasks, q.tasks[cut:]...)
	q.tasks = q.tasks[:cut]
	return n
}

// runParallel seeds goroutinejoin (the WaitGroup join was dropped, so
// the workers outlive the return) and atomiconly (the steal counter is
// read plainly while those workers may still be adding to it).
func runParallel(ctx context.Context, deques []*wsDeque) int64 {
	var steals int64
	for w := range deques {
		go func(self int) {
			for ctx.Err() == nil {
				if _, ok := deques[self].popFront(); ok {
					continue
				}
				victim := (self + 1) % len(deques)
				if n := deques[victim].stealInto(deques[self]); n > 0 {
					atomic.AddInt64(&steals, 1)
					continue
				}
				return
			}
		}(w)
	}
	return steals
}
