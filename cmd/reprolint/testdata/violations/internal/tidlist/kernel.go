// Package tidlist seeds scratchonly: the short-circuit flag is
// discarded and the result escapes via return.
package tidlist

type Set interface{}

type KernelStats struct{}

func IntersectSetsSC(dst, a, b Set, minsup int, ks *KernelStats) (Set, int, bool) {
	return dst, 0, false
}

func leak(a, b Set, ks *KernelStats) Set {
	s, _, _ := IntersectSetsSC(nil, a, b, 2, ks)
	return s
}
