// Package repro is the seeded-violation fixture for the multichecker
// exit-code tests: every analyzer must find at least one violation in
// this tree.
package repro

import "context"

// MineBad seeds ctxfirst: an exported mining entry point without a
// leading context.
func MineBad(minsup int) error { return nil }

// helper seeds ctxfirst: context in second position.
func helper(n int, ctx context.Context) error { return ctx.Err() }

// MineClosedContext seeds ctxfirst's declaration ban: reintroducing a
// retired wrapper name is rejected even with a context-first signature.
func MineClosedContext(ctx context.Context, minsup int) error { return ctx.Err() }

// compare seeds senterr: identity comparison of a context sentinel.
func compare(err error) bool { return err == context.Canceled }
