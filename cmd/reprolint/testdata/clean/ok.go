// Package clean is the no-violations fixture: reprolint must exit 0.
package clean

import (
	"context"
	"errors"
)

// MineClean follows every enforced contract.
func MineClean(ctx context.Context, minsup int) error {
	if err := ctx.Err(); errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}
