package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestVersionHandshake(t *testing.T) {
	code, out, _ := runLint(t, "-V=full")
	if code != 0 || !strings.HasPrefix(out, "reprolint version") {
		t.Fatalf("-V=full: code=%d out=%q", code, out)
	}
}

func TestFlagsHandshake(t *testing.T) {
	code, out, _ := runLint(t, "-flags")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("-flags: code=%d out=%q", code, out)
	}
}

func TestListExitsZero(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list: code=%d", code)
	}
	for _, a := range analyzers.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output is missing analyzer %q:\n%s", a.Name, out)
		}
	}
}

func TestCleanFixtureExitsZero(t *testing.T) {
	code, out, errb := runLint(t, "./testdata/clean/...")
	if code != 0 {
		t.Fatalf("clean fixture: code=%d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if out != "" {
		t.Errorf("clean fixture printed diagnostics:\n%s", out)
	}
}

// TestSeededViolationsExitNonzero runs each analyzer alone against the
// seeded-violation fixture module; every one must find its seed and
// drive the exit code to 1.
func TestSeededViolationsExitNonzero(t *testing.T) {
	for _, a := range analyzers.All() {
		t.Run(a.Name, func(t *testing.T) {
			code, out, errb := runLint(t, "-checks", a.Name, "./testdata/violations/...")
			if code != 1 {
				t.Fatalf("seeded %s: code=%d (want 1)\nstdout:\n%s\nstderr:\n%s", a.Name, code, out, errb)
			}
			if !strings.Contains(out, "["+a.Name+"]") {
				t.Errorf("seeded %s: no diagnostic tagged [%s]:\n%s", a.Name, a.Name, out)
			}
			if !strings.Contains(errb, "finding(s)") {
				t.Errorf("seeded %s: stderr summary missing:\n%s", a.Name, errb)
			}
		})
	}
}

// TestFullSuiteOnViolations checks the default (all-analyzer) run also
// fails on the seeded tree.
func TestFullSuiteOnViolations(t *testing.T) {
	code, out, _ := runLint(t, "./testdata/violations/...")
	if code != 1 {
		t.Fatalf("violations fixture: code=%d (want 1)\n%s", code, out)
	}
	for _, a := range analyzers.All() {
		if !strings.Contains(out, "["+a.Name+"]") {
			t.Errorf("full run missed a seed for %s:\n%s", a.Name, out)
		}
	}
}

// TestRepoTreeClean is the acceptance gate: the merged tree itself must
// be reprolint-clean.
func TestRepoTreeClean(t *testing.T) {
	code, out, errb := runLint(t, "../../...")
	if code != 0 {
		t.Fatalf("reprolint on the repo tree: code=%d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
}

func TestUnknownCheckExitsTwo(t *testing.T) {
	code, _, errb := runLint(t, "-checks", "nosuch", "./testdata/clean/...")
	if code != 2 || !strings.Contains(errb, "unknown analyzer") {
		t.Fatalf("unknown check: code=%d stderr=%q", code, errb)
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	code, _, _ := runLint(t, "./testdata/missing/...")
	if code != 2 {
		t.Fatalf("bad pattern: code=%d (want 2)", code)
	}
}

// TestVetCfgUnitClean drives the go vet -vettool protocol path with a
// hand-written package config: exit 0 and a facts file on disk.
func TestVetCfgUnitClean(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	if err := os.WriteFile(src, []byte("package p\n\nfunc add(a, b int) int { return a + b }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "p.vetx")
	cfg := filepath.Join(dir, "p.cfg")
	blob := fmt.Sprintf(`{"ID":"p","Dir":%q,"ImportPath":"example.com/p","GoFiles":[%q],"VetxOnly":false,"VetxOutput":%q}`, dir, src, vetx)
	if err := os.WriteFile(cfg, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runLint(t, cfg)
	if code != 0 {
		t.Fatalf("clean vet unit: code=%d stderr=%s", code, errb)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
}

// TestVetCfgUnitFindings checks the vet path reports findings with exit 1.
func TestVetCfgUnitFindings(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	code := "package p\n\nimport \"context\"\n\nfunc bad(err error) bool { return err == context.Canceled }\n"
	if err := os.WriteFile(src, []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := filepath.Join(dir, "p.cfg")
	blob := fmt.Sprintf(`{"ID":"p","Dir":%q,"ImportPath":"example.com/p","GoFiles":[%q],"VetxOnly":false,"VetxOutput":""}`, dir, src)
	if err := os.WriteFile(cfg, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	rc, _, errb := runLint(t, cfg)
	if rc != 1 || !strings.Contains(errb, "[senterr]") {
		t.Fatalf("vet unit with findings: code=%d stderr=%s", rc, errb)
	}
}

// TestVetCfgAllChecks drives the vet unit protocol over two hand-written
// package units whose seeded violations cover every analyzer of the
// suite — the proof that `go vet -vettool` runs all 10 checks, not just
// the ones that happen to fire on ordinary code.
func TestVetCfgAllChecks(t *testing.T) {
	eclatSrc := `package eclat

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
	"repro/internal/store"
	"repro/internal/tidlist"
)

var _ = obsv.Default.Counter("inline_metric_total", "seeded violation")

type heap struct {
	mu  sync.Mutex
	eff atomic.Int64
}

type arena struct{ pos int }

type arenaMark struct{ pos int }

func (a *arena) mark() arenaMark { return arenaMark{a.pos} }

func (h *heap) seedAll(err error, n int, ctx context.Context, ds *store.Dataset, ar *arena, a, b tidlist.Set, ks *tidlist.KernelStats) bool {
	h.mu.Lock()
	h.mu.Lock()
	_ = int64(h.eff)
	ar.mark()
	go func() { _ = n }()
	sets := ds.Sets(nil)
	tidlist.IntersectSets(sets[0], a, b, ks)
	tidlist.IntersectSetsSC(nil, a, b, 10, ks)
	h.mu.Unlock()
	h.mu.Unlock()
	return err == context.Canceled
}
`
	clusterSrc := `package cluster

import "time"

func now() int64 { return time.Now().UnixNano() }
`
	units := []struct {
		name, importPath, src string
	}{
		{"eclat", "repro/internal/eclat", eclatSrc},
		{"cluster", "repro/internal/cluster", clusterSrc},
	}
	tagged := map[string]bool{}
	for _, u := range units {
		dir := t.TempDir()
		src := filepath.Join(dir, u.name+".go")
		if err := os.WriteFile(src, []byte(u.src), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := filepath.Join(dir, u.name+".cfg")
		blob := fmt.Sprintf(`{"ID":%q,"Dir":%q,"ImportPath":%q,"GoFiles":[%q],"VetxOnly":false,"VetxOutput":""}`,
			u.name, dir, u.importPath, src)
		if err := os.WriteFile(cfg, []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		rc, _, errb := runLint(t, cfg)
		if rc != 1 {
			t.Fatalf("vet unit %s: code=%d (want 1)\nstderr:\n%s", u.name, rc, errb)
		}
		for _, a := range analyzers.All() {
			if strings.Contains(errb, "["+a.Name+"]") {
				tagged[a.Name] = true
			}
		}
	}
	for _, a := range analyzers.All() {
		if !tagged[a.Name] {
			t.Errorf("vet units produced no [%s] diagnostic; the -vettool path does not cover it", a.Name)
		}
	}
}

// TestVetCfgVetxOnly checks the facts-only probe writes facts and exits 0
// without analyzing anything.
func TestVetCfgVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "p.vetx")
	cfg := filepath.Join(dir, "p.cfg")
	blob := fmt.Sprintf(`{"ID":"p","Dir":%q,"ImportPath":"example.com/p","GoFiles":[],"VetxOnly":true,"VetxOutput":%q}`, dir, vetx)
	if err := os.WriteFile(cfg, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	rc, _, errb := runLint(t, cfg)
	if rc != 0 {
		t.Fatalf("vetx-only unit: code=%d stderr=%s", rc, errb)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
}
