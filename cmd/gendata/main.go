// Command gendata generates a synthetic basket database with the IBM
// Quest procedure the paper uses (Agrawal & Srikant), writes it in the
// repository's binary format (or FIMI text), and prints its
// Table-1-style properties.
//
// Usage:
//
//	gendata -d 100000 -t 10 -i 6 -o t10i6d100k.db [-seed 1997] [-items 1000] [-patterns 2000] [-format binary|fimi]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/db"
	"repro/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gendata", flag.ContinueOnError)
	numTx := fs.Int("d", 100_000, "number of transactions |D|")
	avgTx := fs.Float64("t", 10, "average transaction size |T|")
	avgPat := fs.Float64("i", 6, "average maximal potentially frequent itemset size |I|")
	items := fs.Int("items", 1000, "number of items N")
	patterns := fs.Int("patterns", 2000, "number of maximal potentially frequent itemsets |L|")
	seed := fs.Int64("seed", 1997, "generator seed")
	out := fs.String("o", "", "output file; omit to only print properties")
	format := fs.String("format", "binary", "output format: binary or fimi")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := gen.Config{
		NumTransactions: *numTx,
		AvgTxLen:        *avgTx,
		AvgPatternLen:   *avgPat,
		NumItems:        *items,
		NumPatterns:     *patterns,
		Seed:            *seed,
	}
	d, err := gen.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-16s |D|=%d  avg|T|=%.2f  N=%d  |L|=%d  size=%.1fMB\n",
		cfg.Name(), d.Len(), d.AvgLen(), cfg.NumItems, cfg.NumPatterns,
		float64(d.SizeBytes())/1e6)

	if *out == "" {
		return nil
	}
	if *format != "binary" && *format != "fimi" {
		return fmt.Errorf("unknown format %q", *format)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if *format == "binary" {
		err = d.Encode(f)
	} else {
		err = db.EncodeFIMI(f, d)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}
