package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/db"
)

func TestRunPrintsProperties(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-d", "500"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T10.I6.D500") || !strings.Contains(out.String(), "|D|=500") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestRunWritesBinary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.db")
	var out bytes.Buffer
	if err := run([]string{"-d", "200", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := db.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 200 {
		t.Fatalf("wrote %d transactions", d.Len())
	}
}

func TestRunWritesFIMI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.fimi")
	var out bytes.Buffer
	if err := run([]string{"-d", "100", "-o", path, "-format", "fimi"}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := db.DecodeFIMI(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 100 {
		t.Fatalf("wrote %d transactions", d.Len())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-d", "-5"}, &out); err == nil {
		t.Fatal("negative |D| should fail")
	}
	if err := run([]string{"-d", "10", "-o", "x", "-format", "nope"}, &out); err == nil {
		t.Fatal("bad format should fail")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Fatal("unknown flag should fail")
	}
}
