// Command experiments regenerates the paper's tables and figures on the
// simulated cluster. By default it runs the quick suite; -full runs the
// complete Table 2 configuration grid on all three databases.
//
// Usage:
//
//	experiments [-exp all|table1|figure6|table2|figure7|figure6-plot|figure7-plot|phases|inversion|hybrid]
//	            [-full] [-support 0.1] [-csv DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run: all, table1, figure6, table2, figure7, figure6-plot, figure7-plot, phases, inversion, hybrid, density")
	full := fs.Bool("full", false, "run the full paper configuration grid (slower)")
	support := fs.Float64("support", 0.1, "minimum support in percent")
	csvDir := fs.String("csv", "", "also write figure/table data as CSV files into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Default()
	}
	cfg.SupportPct = *support
	s := experiments.New(cfg)

	switch *exp {
	case "all":
		s.All(stdout)
	case "table1":
		s.Table1(stdout)
	case "figure6":
		s.Figure6(stdout)
	case "table2":
		s.Table2(stdout)
	case "figure7":
		s.Figure7(stdout)
	case "figure6-plot":
		s.Figure6Plot(stdout)
	case "figure7-plot":
		s.Figure7Plot(stdout)
	case "phases":
		s.Phases(stdout)
	case "inversion":
		s.Inversion(stdout)
	case "hybrid":
		s.Hybrid(stdout)
	case "density":
		s.Density(stdout, 10_000)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	if *csvDir != "" {
		if err := s.WriteCSV(*csvDir); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote CSV data to %s\n", *csvDir)
	}
	return nil
}
