package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The quick suite is too slow for unit tests, so these exercise argument
// handling and the cheapest experiment (table1, which only generates
// databases).
func TestRunTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the quick-suite databases")
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "bogus"}, &out); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if err := run([]string{"-nosuchflag"}, &out); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestRunCSVExport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite")
	}
	dir := filepath.Join(t.TempDir(), "csv")
	var out bytes.Buffer
	if err := run([]string{"-exp", "figure6", "-csv", dir, "-support", "1.0"}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure6.csv")); err != nil {
		t.Fatal(err)
	}
}
