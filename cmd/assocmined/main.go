// Command assocmined is the mining daemon: it loads datasets once,
// then serves frequent-itemset mining jobs over HTTP through a bounded
// job queue, a worker pool, and an LRU result cache (stdlib net/http
// only; see internal/service).
//
// Usage:
//
//	assocmined -addr :8420 -gen t10=100000
//	assocmined -dataset retail=retail.fimi,fimi -dataset big=big.db -workers 8
//	assocmined -data-dir /var/lib/assocmined -gen t10=100000   # persists; restarts skip the rebuild
//
// API:
//
//	POST   /v1/jobs              {"dataset":"t10","algorithm":"eclat","supportPct":0.25}
//	                             optional: "variant":"all|maximal|closed",
//	                             "representation":"auto|sparse|bitset" (tid-set
//	                             encoding for Eclat-family algorithms; auto
//	                             adapts per equivalence class by density)
//	GET    /v1/jobs/{id}         job status
//	GET    /v1/jobs/{id}/result  result text (support<TAB>items per line)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/datasets          registered datasets
//	POST   /v1/datasets          register a dataset (persists under -data-dir)
//	DELETE /v1/datasets/{name}   remove a dataset (409 while jobs reference it)
//	GET    /healthz, /statsz     liveness and counters
//	GET    /metricsz             metrics registry (expvar JSON; ?format=prometheus for text exposition)
//	GET    /debug/pprof/         runtime profiling (profile, heap, goroutine, trace, ...)
//
// Errors come back as {"error":{"code","message"}} with a stable
// machine-readable code.
//
// SIGINT/SIGTERM drain running jobs before exit (bounded by -drain).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/db"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "assocmined:", err)
		os.Exit(1)
	}
}

// repeatFlag collects a repeatable string flag.
type repeatFlag []string

func (r *repeatFlag) String() string     { return strings.Join(*r, ",") }
func (r *repeatFlag) Set(v string) error { *r = append(*r, v); return nil }

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("assocmined", flag.ContinueOnError)
	fs.SetOutput(stdout)
	addr := fs.String("addr", ":8420", "listen address (host:port; port 0 picks an ephemeral port)")
	workers := fs.Int("workers", runtime.NumCPU(), "mining worker goroutines")
	parallelBudget := fs.Int("parallel-budget", 0, "total intra-job mining goroutines across concurrent jobs; 0 means GOMAXPROCS (each job gets budget/workers, min 1)")
	queue := fs.Int("queue", 64, "bounded job-queue depth (submissions beyond it get 429)")
	cacheMB := fs.Int("cache-mb", 64, "result-cache budget in MiB")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	dataDir := fs.String("data-dir", "", "persistent dataset store directory; datasets registered by flag or HTTP persist there and the daemon restarts without rebuilding")
	memBudget := fs.Int64("memory-budget", 0, "default per-job residency budget in bytes for store-backed mines (jobs may override with memoryBudget); 0 leaves unbudgeted jobs in-core")
	var datasets, gens repeatFlag
	fs.Var(&datasets, "dataset", "register a dataset: name=path[,binary|fimi] (repeatable; format inferred from extension when omitted)")
	fs.Var(&gens, "gen", "register a generated T10.I6 dataset: name=numTransactions (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be positive, got %d", *workers)
	}
	if *queue < 1 {
		return fmt.Errorf("-queue must be positive, got %d", *queue)
	}
	if *cacheMB < 1 {
		return fmt.Errorf("-cache-mb must be positive, got %d", *cacheMB)
	}
	if *parallelBudget < 0 {
		return fmt.Errorf("-parallel-budget must not be negative, got %d", *parallelBudget)
	}
	if *memBudget < 0 {
		return fmt.Errorf("-memory-budget must not be negative, got %d", *memBudget)
	}

	logf := func(format string, args ...any) { fmt.Fprintf(stdout, format+"\n", args...) }
	var st *store.Store
	if *dataDir != "" {
		var err error
		if st, err = store.Open(*dataDir, logf); err != nil {
			return fmt.Errorf("opening data dir %s: %w", *dataDir, err)
		}
		defer st.Close()
	}
	svc, err := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheBytes:      int64(*cacheMB) << 20,
		ParallelBudget:  *parallelBudget,
		ResidencyBudget: *memBudget,
		Store:           st,
		Logf:            logf,
	})
	if err != nil {
		return err
	}
	if err := registerDatasets(svc, datasets, gens); err != nil {
		return err
	}
	for _, info := range svc.Datasets() {
		fmt.Fprintf(stdout, "dataset %s: %d transactions, %d items (%s)\n",
			info.Name, info.Transactions, info.NumItems, info.Source)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}
	fmt.Fprintf(stdout, "assocmined listening on %s (workers=%d queue=%d cache=%dMiB)\n",
		ln.Addr(), *workers, *queue, *cacheMB)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "shutting down: draining jobs (timeout %v)\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := svc.Shutdown(sctx); err != nil {
		return fmt.Errorf("job drain: %w", err)
	}
	fmt.Fprintln(stdout, "drained cleanly")
	return nil
}

// registerDatasets loads every -dataset and -gen spec into the service's
// registry. Specs whose names the persistent store already holds are
// skipped — a restarted daemon keeps its flags without rebuilding the
// data. With no specs and no stored datasets, it registers a small
// generated demo dataset so the daemon is immediately usable.
func registerDatasets(svc *service.Service, datasets, gens []string) error {
	persisted := make(map[string]bool)
	for _, info := range svc.Datasets() {
		persisted[info.Name] = true
	}
	for _, spec := range datasets {
		name, rest, ok := strings.Cut(spec, "=")
		if !ok || name == "" || rest == "" {
			return fmt.Errorf("bad -dataset %q (want name=path[,format])", spec)
		}
		if persisted[name] {
			continue
		}
		path, format, _ := strings.Cut(rest, ",")
		d, err := loadDatabase(path, format)
		if err != nil {
			return fmt.Errorf("dataset %s: %w", name, err)
		}
		if _, err := svc.Registry().Add(name, path, d); err != nil {
			return err
		}
	}
	for _, spec := range gens {
		name, nStr, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			return fmt.Errorf("bad -gen %q (want name=numTransactions)", spec)
		}
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 1 {
			return fmt.Errorf("bad -gen %q: numTransactions must be a positive integer", spec)
		}
		if persisted[name] {
			continue
		}
		d, err := repro.Generate(repro.StandardConfig(n))
		if err != nil {
			return err
		}
		if _, err := svc.Registry().Add(name, fmt.Sprintf("generated T10.I6 n=%d", n), d); err != nil {
			return err
		}
	}
	if len(datasets) == 0 && len(gens) == 0 && len(persisted) == 0 {
		d, err := repro.Generate(repro.StandardConfig(5000))
		if err != nil {
			return err
		}
		if _, err := svc.Registry().Add("demo", "generated T10.I6 n=5000 (default)", d); err != nil {
			return err
		}
	}
	return nil
}

// loadDatabase reads a database file; format "" infers from the
// extension (.fimi/.dat/.txt are FIMI text, everything else binary).
func loadDatabase(path, format string) (*db.Database, error) {
	if format == "" {
		switch strings.ToLower(strings.TrimPrefix(lastExt(path), ".")) {
		case "fimi", "dat", "txt":
			format = "fimi"
		default:
			format = "binary"
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "binary":
		return db.Decode(f)
	case "fimi":
		return db.DecodeFIMI(f, 0)
	default:
		return nil, fmt.Errorf("unknown format %q (want binary or fimi)", format)
	}
}

func lastExt(path string) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i:]
	}
	return ""
}
