package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/service"
)

// newServer starts an httptest server over a fresh service with the
// given pool shape and datasets registered.
func newServer(t *testing.T, cfg service.Config, datasets map[string]int) (*httptest.Server, *service.Service) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, tx := range datasets {
		d, err := repro.Generate(repro.StandardConfig(tx))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Registry().Add(name, "generated", d); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})
	return ts, svc
}

func postJob(t *testing.T, ts *httptest.Server, body string) (service.View, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.View
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return v, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string) service.View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: %d", id, resp.StatusCode)
	}
	var v service.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func pollUntil(t *testing.T, ts *httptest.Server, id string, pred func(service.View) bool) service.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if pred(v) {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the wanted state (last: %+v)", id, getJob(t, ts, id))
	return service.View{}
}

func getStats(t *testing.T, ts *httptest.Server) service.Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEndToEndJobLifecycle is the acceptance flow: submit an Eclat job
// on a generated T10.I6 database, poll to completion, verify the result
// is byte-identical to a direct repro.Mine call, and verify a second
// identical submission is served from the cache.
func TestEndToEndJobLifecycle(t *testing.T) {
	ts, svc := newServer(t, service.Config{Workers: 2, QueueDepth: 8}, map[string]int{"t10": 2000})

	body := `{"dataset":"t10","algorithm":"eclat","supportPct":1.0}`
	v, resp := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d", resp.StatusCode)
	}
	done := pollUntil(t, ts, v.ID, func(v service.View) bool { return v.Status.Terminal() })
	if done.Status != service.StatusDone || done.Cached {
		t.Fatalf("first job finished as %+v, want uncached done", done)
	}

	res, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: %d %v", res.StatusCode, err)
	}

	ds, err := svc.Registry().Get("t10")
	if err != nil {
		t.Fatal(err)
	}
	dsDB, err := ds.Database()
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := repro.Mine(context.Background(), dsDB, repro.MineOptions{SupportPct: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := repro.WriteResult(&want, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("HTTP result (%d bytes) differs from direct repro.Mine result (%d bytes)",
			len(got), want.Len())
	}

	// Second identical submission: served from the cache, no new mine.
	v2, resp2 := postJob(t, ts, body)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST: %d", resp2.StatusCode)
	}
	if v2.Status != service.StatusDone || !v2.Cached {
		t.Fatalf("second submission %+v, want cached done", v2)
	}
	if st := getStats(t, ts); st.Cache.Hits != 1 {
		t.Fatalf("/statsz cache hits = %d, want 1", st.Cache.Hits)
	}

	// The cached job serves the identical bytes too.
	res2, err := http.Get(ts.URL + "/v1/jobs/" + v2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := io.ReadAll(res2.Body)
	res2.Body.Close()
	if !bytes.Equal(got2, want.Bytes()) {
		t.Fatal("cached result differs from the mined result")
	}
}

// TestCancelAndBackpressure drives a single-worker, single-slot queue:
// the running job keeps the worker busy, the queued job is canceled, and
// a third submission overflows with 429.
func TestCancelAndBackpressure(t *testing.T) {
	ts, _ := newServer(t, service.Config{Workers: 1, QueueDepth: 1},
		map[string]int{"t10": 2000, "big": 30000})

	// Low support on the big dataset keeps the worker busy long enough
	// for the rest of the test's requests (each a few microseconds).
	slow := `{"dataset":"big","algorithm":"eclat","supportPct":0.1}`
	v1, resp := postJob(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow job: %d", resp.StatusCode)
	}
	pollUntil(t, ts, v1.ID, func(v service.View) bool { return v.Status == service.StatusRunning })

	v2, resp := postJob(t, ts, slow2(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job: %d", resp.StatusCode)
	}

	_, resp = postJob(t, ts, `{"dataset":"t10","supportPct":1.0}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Cancel the queued job; whether it is still queued or has just
	// started, it must end canceled, not done.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v2.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE job: %d", dresp.StatusCode)
	}
	final := pollUntil(t, ts, v2.ID, func(v service.View) bool { return v.Status.Terminal() })
	if final.Status != service.StatusCanceled {
		t.Fatalf("canceled job ended as %s, want canceled", final.Status)
	}

	// Its result is not servable.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + v2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job: %d, want 409", rresp.StatusCode)
	}

	// The slow job still completes normally.
	if v := pollUntil(t, ts, v1.ID, func(v service.View) bool { return v.Status.Terminal() }); v.Status != service.StatusDone {
		t.Fatalf("slow job ended as %s, want done", v.Status)
	}
	if st := getStats(t, ts); st.Rejected != 1 || st.Canceled != 1 {
		t.Fatalf("stats rejected=%d canceled=%d, want 1/1", st.Rejected, st.Canceled)
	}
}

// slow2 is a second distinct slow request (different minsup so it cannot
// be a cache hit of the first).
func slow2(t *testing.T) string {
	t.Helper()
	return `{"dataset":"big","algorithm":"eclat","supportPct":0.12}`
}

func TestHTTPErrorsAndEndpoints(t *testing.T) {
	ts, _ := newServer(t, service.Config{Workers: 1, QueueDepth: 4}, map[string]int{"t10": 500})

	for _, tc := range []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"dataset":"missing"}`, http.StatusNotFound},
		{`{"dataset":"t10","algorithm":"quantum"}`, http.StatusBadRequest},
		{`{"dataset":"t10","variant":"weird"}`, http.StatusBadRequest},
		{`{"dataset":"t10","supportPct":-2}`, http.StatusBadRequest},
	} {
		_, resp := postJob(t, ts, tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "ok") {
		t.Fatalf("/healthz: %d %q", resp.StatusCode, b)
	}

	resp, err = http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var infos []service.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "t10" || infos[0].Transactions != 500 {
		t.Fatalf("/v1/datasets: %+v", infos)
	}

	resp, err = http.Get(ts.URL + "/v1/datasets/t10?top=3")
	if err != nil {
		t.Fatal(err)
	}
	var detail struct {
		service.DatasetInfo
		TopItems []service.ItemSupport `json:"topItems"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(detail.TopItems) != 3 || detail.TopItems[0].Support < detail.TopItems[2].Support {
		t.Fatalf("dataset detail top items: %+v", detail.TopItems)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing daemon logs.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonRunLifecycle boots the real daemon on an ephemeral port,
// hits it over TCP, then shuts it down via context cancellation (the
// SIGINT/SIGTERM path) and expects a clean drain.
func TestDaemonRunLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-gen", "mini=300", "-workers", "2"}, &out)
	}()

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; output:\n%s", out.String())
		}
		select {
		case err := <-errCh:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}

	base := "http://" + addr
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"dataset":"mini","supportPct":1.0}`))
	if err != nil {
		t.Fatal(err)
	}
	var v service.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}

	cancel() // the SIGINT path: drain and exit
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not shut down; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("expected clean drain; output:\n%s", out.String())
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-queue", "-1"},
		{"-cache-mb", "0"},
		{"-gen", "bad"},
		{"-gen", "x=notanumber"},
		{"-dataset", "nameonly"},
		{"-dataset", "x=/definitely/not/here.db"},
	} {
		var out bytes.Buffer
		ctx, cancel := context.WithCancel(context.Background())
		err := run(ctx, args, &out)
		cancel()
		if err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}

func TestDaemonLoadsFIMIDataset(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/tiny.fimi"
	if err := writeFile(path, "1 2 3\n1 2\n2 3\n"); err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown(context.Background())
	if err := registerDatasets(svc, []string{"tiny=" + path}, nil); err != nil {
		t.Fatal(err)
	}
	infos := svc.Datasets()
	if len(infos) != 1 || infos[0].Transactions != 3 {
		t.Fatalf("datasets = %+v", infos)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// metricsJSON fetches /metricsz in the expvar-compatible JSON format
// from a server base URL. Histograms decode as objects, scalars as
// float64.
func metricsJSON(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz: %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("/metricsz is not valid JSON: %v", err)
	}
	return m
}

func scalar(t *testing.T, m map[string]any, name string) float64 {
	t.Helper()
	v, ok := m[name].(float64)
	if !ok {
		t.Fatalf("metric %q missing or not scalar (got %T)", name, m[name])
	}
	return v
}

// TestMetricszCountersAdvance is the acceptance check for /metricsz:
// both exposition formats parse, and mining one job advances the job
// lifecycle counters, the eclat intersection counters, and the phase
// duration histograms.
func TestMetricszCountersAdvance(t *testing.T) {
	ts, _ := newServer(t, service.Config{Workers: 1, QueueDepth: 4}, map[string]int{"t10": 1000})

	before := metricsJSON(t, ts.URL)

	v, resp := postJob(t, ts, `{"dataset":"t10","algorithm":"eclat","supportPct":0.5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	pollUntil(t, ts, v.ID, func(v service.View) bool { return v.Status.Terminal() })

	after := metricsJSON(t, ts.URL)
	for _, name := range []string{
		"service_jobs_submitted_total",
		"service_jobs_completed_total",
		"eclat_intersections_total",
		"eclat_tidlist_bytes_total",
		"eclat_classes_total",
	} {
		b, _ := before[name].(float64)
		if a := scalar(t, after, name); a <= b {
			t.Fatalf("%s did not advance: before=%v after=%v", name, b, a)
		}
	}
	// Histograms expose {count,sum,buckets}; one job means at least one
	// new observation in queue wait, job duration, and the eclat phases.
	for _, name := range []string{
		"service_queue_wait_ns", "service_job_duration_ns",
		"mine_phase_initialization_ns", "mine_phase_transformation_ns", "mine_phase_asynchronous_ns",
	} {
		h, ok := after[name].(map[string]any)
		if !ok {
			t.Fatalf("histogram %q missing from /metricsz", name)
		}
		if c, _ := h["count"].(float64); c < 1 {
			t.Fatalf("histogram %q count = %v, want >= 1", name, h["count"])
		}
	}

	// Prometheus text exposition: negotiated by query parameter, carries
	// the same counters, and every sample line is well-formed.
	presp, err := http.Get(ts.URL + "/metricsz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz?format=prometheus: %d", presp.StatusCode)
	}
	body := string(text)
	for _, want := range []string{
		"# TYPE eclat_intersections_total counter",
		"# TYPE service_job_duration_ns histogram",
		`service_job_duration_ns_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, body)
		}
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]`)
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// startDaemon boots the real daemon with the given extra args on an
// ephemeral port and returns its base URL plus a shutdown func that
// triggers the SIGINT path and waits for a clean drain.
func startDaemon(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &out)
	}()

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			shutdown := func() {
				cancel()
				select {
				case err := <-errCh:
					if err != nil {
						t.Fatalf("daemon exited with %v\n%s", err, out.String())
					}
				case <-time.After(30 * time.Second):
					t.Fatalf("daemon did not shut down; output:\n%s", out.String())
				}
			}
			return "http://" + m[1], shutdown
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; output:\n%s", out.String())
		}
		select {
		case err := <-errCh:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// histCount extracts a histogram's observation count from /metricsz.
func histCount(t *testing.T, m map[string]any, name string) float64 {
	t.Helper()
	h, ok := m[name].(map[string]any)
	if !ok {
		return 0
	}
	c, _ := h["count"].(float64)
	return c
}

// mineDaemon submits one job over HTTP, polls it to done, and returns
// the result bytes.
func mineDaemon(t *testing.T, base, body string) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v service.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST job %s: %d", body, resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		jresp, err := http.Get(base + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(jresp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		jresp.Body.Close()
		if v.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (last %+v)", v.ID, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if v.Status != service.StatusDone {
		t.Fatalf("job ended %s: %s", v.Status, v.Error)
	}
	rresp, err := http.Get(base + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if err != nil || rresp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: %d %v", rresp.StatusCode, err)
	}
	return got
}

// TestDaemonDataDirRestartWithoutRebuild is the persistence acceptance
// flow: register a dataset with -data-dir, stop the daemon, restart it
// on the same directory with no dataset flags, and mine. The restarted
// daemon must serve the dataset from the mmap store — results
// byte-identical to an in-memory run across representations and worker
// counts, with the horizontal transformation phase never running.
func TestDaemonDataDirRestartWithoutRebuild(t *testing.T) {
	dir := t.TempDir()

	base, shutdown := startDaemon(t, "-data-dir", dir, "-gen", "persist=800")
	resp, err := http.Get(base + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var infos []service.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "persist" || !infos[0].Stored {
		t.Fatalf("first daemon datasets = %+v, want stored persist", infos)
	}
	shutdown()

	// Restart over the same directory: no -gen, no -dataset, yet the
	// dataset is there (and no demo fallback was registered).
	base, shutdown = startDaemon(t, "-data-dir", dir)
	defer shutdown()
	resp, err = http.Get(base + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	infos = nil
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "persist" || !infos[0].Stored || infos[0].Transactions != 800 {
		t.Fatalf("restarted daemon datasets = %+v, want stored persist n=800", infos)
	}

	// The expected results come from a fresh in-memory mine of the same
	// generated data (repro.Generate is deterministic). All direct mines
	// run before the metrics snapshot: the daemon shares this process's
	// metrics registry, so they must not pollute the phase histograms the
	// assertions below read.
	d, err := repro.Generate(repro.StandardConfig(800))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]byte{}
	for _, workers := range []int{1, 2, 4} {
		// Distinct minsup per worker count dodges the result cache (the
		// key omits parallelism), so every combination really mines.
		minsup := 4 + 2*workers
		direct, _, err := repro.Mine(context.Background(), d, repro.MineOptions{SupportCount: minsup})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := repro.WriteResult(&buf, direct); err != nil {
			t.Fatal(err)
		}
		want[minsup] = buf.Bytes()
	}

	before := metricsJSON(t, base)
	if histCount(t, before, "store_open_ns") < 1 {
		t.Fatal("restarted daemon did not open the store")
	}
	for _, repr := range []string{"sparse", "bitset", "auto"} {
		for _, workers := range []int{1, 2, 4} {
			minsup := 4 + 2*workers
			body := fmt.Sprintf(`{"dataset":"persist","algorithm":"eclat","supportCount":%d,"representation":%q,"parallelism":%d}`,
				minsup, repr, workers)
			if got := mineDaemon(t, base, body); !bytes.Equal(got, want[minsup]) {
				t.Fatalf("repr=%s workers=%d: restarted daemon result differs from in-memory mine", repr, workers)
			}
		}
	}
	after := metricsJSON(t, base)

	// No horizontal rescan: the vertical path mined straight from the
	// mapping, so the transformation-phase histogram saw zero new
	// observations while initialization advanced with the jobs.
	if b, a := histCount(t, before, "mine_phase_transformation_ns"), histCount(t, after, "mine_phase_transformation_ns"); a != b {
		t.Fatalf("transformation phase ran on the restarted daemon: count %v -> %v", b, a)
	}
	if b, a := histCount(t, before, "mine_phase_initialization_ns"), histCount(t, after, "mine_phase_initialization_ns"); a <= b {
		t.Fatalf("initialization phase did not advance: count %v -> %v", b, a)
	}
}

// TestHTTPDatasetRegistrationAndRemoval drives the dataset CRUD
// endpoints: POST registers (generated and file-backed), duplicate
// names and bad bodies are structured errors, DELETE evicts.
func TestHTTPDatasetRegistrationAndRemoval(t *testing.T) {
	ts, _ := newServer(t, service.Config{Workers: 1, QueueDepth: 4}, nil)

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	if code, m := post(`{"name":"t10","gen":500}`); code != http.StatusCreated {
		t.Fatalf("POST gen dataset: %d %v", code, m)
	}
	if code, m := post(`{"name":"t10","gen":500}`); code != http.StatusConflict {
		t.Fatalf("duplicate POST: %d %v, want 409", code, m)
	}
	for _, bad := range []string{
		`not json`,
		`{"gen":500}`,                           // missing name
		`{"name":"x"}`,                          // no source
		`{"name":"x","gen":5,"path":"/y"}`,      // ambiguous source
		`{"name":"x","path":"/definitely/not"}`, // unreadable file
	} {
		if code, _ := post(bad); code != http.StatusBadRequest {
			t.Fatalf("POST %q: %d, want 400", bad, code)
		}
	}

	// File-backed registration through the same endpoint.
	path := t.TempDir() + "/tiny.fimi"
	if err := writeFile(path, "1 2 3\n1 2\n2 3\n"); err != nil {
		t.Fatal(err)
	}
	if code, m := post(fmt.Sprintf(`{"name":"tiny","path":%q}`, path)); code != http.StatusCreated {
		t.Fatalf("POST file dataset: %d %v", code, m)
	}

	del := func(name string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+name, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del("nope"); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d, want 404", code)
	}
	if code := del("tiny"); code != http.StatusNoContent {
		t.Fatalf("DELETE tiny: %d, want 204", code)
	}
	resp, err := http.Get(ts.URL + "/v1/datasets/tiny")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET removed dataset: %d, want 404", resp.StatusCode)
	}
}

// TestJobPhaseSpanAccounting checks the span bookkeeping end to end: a
// finished job reports its phase spans, and the wall-clock spans sum to
// the job latency within tolerance (they cannot exceed it, and the
// uninstrumented remainder must be small).
func TestJobPhaseSpanAccounting(t *testing.T) {
	ts, _ := newServer(t, service.Config{Workers: 1, QueueDepth: 4}, map[string]int{"t10": 2000})

	v, resp := postJob(t, ts, `{"dataset":"t10","algorithm":"eclat","supportPct":0.5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	done := pollUntil(t, ts, v.ID, func(v service.View) bool { return v.Status.Terminal() })
	if done.Status != service.StatusDone {
		t.Fatalf("job ended %s", done.Status)
	}
	if done.DurationNS <= 0 {
		t.Fatalf("DurationNS = %d, want > 0", done.DurationNS)
	}
	if done.QueueWaitNS < 0 {
		t.Fatalf("QueueWaitNS = %d, want >= 0", done.QueueWaitNS)
	}
	names := map[string]bool{}
	var sum int64
	for _, sp := range done.Phases {
		if sp.Virtual() {
			continue
		}
		names[sp.Name] = true
		sum += sp.DurationNS
	}
	// Eclat jobs mine from the registry's memoized vertical transform
	// (repro.MineFrom), so the horizontal transformation phase never
	// runs — only initialization and the asynchronous class recursion.
	for _, want := range []string{"initialization", "asynchronous"} {
		if !names[want] {
			t.Fatalf("phase %q missing from job view (got %v)", want, done.Phases)
		}
	}
	if names["transformation"] {
		t.Fatalf("vertical mining path ran the horizontal transformation phase (got %v)", done.Phases)
	}
	if sum <= 0 || sum > done.DurationNS {
		t.Fatalf("phase sum %d outside (0, job duration %d]", sum, done.DurationNS)
	}
	// The job does almost nothing outside the traced phases; allow a
	// generous absolute slack for scheduler noise.
	if slack := done.DurationNS - sum; slack > (50 * time.Millisecond).Nanoseconds() {
		t.Fatalf("untraced remainder %dns too large (duration %d, phases %d)",
			slack, done.DurationNS, sum)
	}
}

// TestStructuredErrorBody pins the {"error":{"code","message"}} shape
// and the stable code slugs.
func TestStructuredErrorBody(t *testing.T) {
	ts, _ := newServer(t, service.Config{Workers: 1, QueueDepth: 4}, map[string]int{"t10": 500})

	for _, tc := range []struct {
		body string
		code string
	}{
		{`{"dataset":"missing","supportPct":1}`, "unknown_dataset"},
		{`{"dataset":"t10","algorithm":"quantum","supportPct":1}`, "unknown_algorithm"},
		{`{"dataset":"t10","supportPct":-2}`, "invalid_support"},
		{`{"dataset":"t10"}`, "invalid_support"}, // zero-value support is an error now
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("body %q: error payload not JSON: %v", tc.body, err)
		}
		resp.Body.Close()
		if e.Error.Code != tc.code || e.Error.Message == "" {
			t.Fatalf("body %q: error = %+v, want code %q with message", tc.body, e.Error, tc.code)
		}
	}
}

// TestPprofEndpoints checks the profiling surface: the index lists the
// profiles and /debug/pprof/profile returns a valid (gzip) CPU profile.
func TestPprofEndpoints(t *testing.T) {
	ts, _ := newServer(t, service.Config{Workers: 1, QueueDepth: 2}, nil)

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(idx), "profile") {
		t.Fatalf("pprof index: %d\n%s", resp.StatusCode, idx)
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("CPU profile: %d %s", resp.StatusCode, prof)
	}
	if len(prof) < 2 || prof[0] != 0x1f || prof[1] != 0x8b {
		t.Fatalf("CPU profile is not gzip-compressed pprof data (%d bytes)", len(prof))
	}
}
