package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mining"
)

func writeFIMI(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.fimi")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMinesFIMI(t *testing.T) {
	path := writeFIMI(t, "1 2 3\n1 2\n1 2 3\n2 3\n")
	var out bytes.Buffer
	if err := run([]string{"-db", path, "-format", "fimi", "-support", "50", "-top", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Eclat mined 7 frequent itemsets") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestRunAlgorithmsAndViews(t *testing.T) {
	path := writeFIMI(t, strings.Repeat("1 2 3\n1 2\n4 5\n", 20))
	for _, extra := range [][]string{
		{"-algo", "apriori"},
		{"-algo", "countdist", "-hosts", "2", "-procs", "2", "-report"},
		{"-algo", "partition"},
		{"-maximal"},
		{"-closed"},
		{"-rules", "0.8"},
	} {
		var out bytes.Buffer
		args := append([]string{"-db", path, "-format", "fimi", "-support", "10"}, extra...)
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", extra, err)
		}
		if !strings.Contains(out.String(), "itemsets") {
			t.Fatalf("%v output:\n%s", extra, out.String())
		}
	}
}

func TestRunWritesResult(t *testing.T) {
	in := writeFIMI(t, "1 2\n1 2\n3\n")
	outPath := filepath.Join(t.TempDir(), "res.txt")
	var out bytes.Buffer
	if err := run([]string{"-db", in, "-format", "fimi", "-support", "50", "-o", outPath}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := mining.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("result file empty")
	}
}

// TestRunSaveAndLoad round-trips a dataset through the persistent
// store: -save writes a dataset directory, -load mines from it with the
// same output as the original run, and the variants fall back to the
// stored horizontal data.
func TestRunSaveAndLoad(t *testing.T) {
	in := writeFIMI(t, strings.Repeat("1 2 3\n1 2\n2 3 4\n", 30))
	dsPath := filepath.Join(t.TempDir(), "tri.ds")
	origOut := filepath.Join(t.TempDir(), "orig.txt")
	var out bytes.Buffer
	if err := run([]string{"-db", in, "-format", "fimi", "-support", "10", "-save", dsPath, "-o", origOut}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved dataset tri") {
		t.Fatalf("save output:\n%s", out.String())
	}

	for _, extra := range [][]string{
		{},
		{"-repr", "sparse"},
		{"-repr", "bitset"},
		{"-parallel", "2"},
		{"-maximal"},
		{"-algo", "apriori"},
	} {
		loadOut := filepath.Join(t.TempDir(), "load.txt")
		out.Reset()
		args := append([]string{"-load", dsPath, "-support", "10", "-o", loadOut}, extra...)
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", extra, err)
		}
		if len(extra) > 0 && (extra[0] == "-maximal" || extra[0] == "-algo") {
			continue // variants don't match the full result byte-for-byte
		}
		got, err := os.ReadFile(loadOut)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(origOut)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: -load result differs from the original mine", extra)
		}
	}

	// -load excludes the other input sources, and -save with -load is
	// rejected.
	if err := run([]string{"-load", dsPath, "-gen", "100"}, &out); err == nil {
		t.Fatal("-load with -gen should fail")
	}
	if err := run([]string{"-load", dsPath, "-save", dsPath + "2"}, &out); err == nil {
		t.Fatal("-load with -save should fail")
	}
	if err := run([]string{"-load", filepath.Join(t.TempDir(), "missing.ds")}, &out); err == nil {
		t.Fatal("loading a missing dataset should fail")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("missing input should fail")
	}
	if err := run([]string{"-gen", "100", "-algo", "nope"}, &out); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if err := run([]string{"-gen", "100", "-maximal", "-closed"}, &out); err == nil {
		t.Fatal("maximal+closed should fail")
	}
	if err := run([]string{"-db", "/does/not/exist"}, &out); err == nil {
		t.Fatal("missing file should fail")
	}
	path := writeFIMI(t, "1\n")
	if err := run([]string{"-db", path, "-format", "weird"}, &out); err == nil {
		t.Fatal("bad format should fail")
	}
}

func TestRunRejectsInvalidFlags(t *testing.T) {
	path := writeFIMI(t, "1 2\n1 2\n")
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-db", path, "-format", "fimi", "-hosts", "0"}, "-hosts"},
		{[]string{"-db", path, "-format", "fimi", "-hosts", "-3"}, "-hosts"},
		{[]string{"-db", path, "-format", "fimi", "-procs", "0"}, "-procs"},
		{[]string{"-db", path, "-format", "fimi", "-top", "0"}, "-top"},
		{[]string{"-db", path, "-format", "fimi", "-support", "-0.5"}, "-support"},
		{[]string{"-db", path, "-format", "csv"}, "format"},
		{[]string{"-gen", "-1"}, "-gen"},
	} {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil {
			t.Fatalf("run(%v) succeeded, want error about %s", tc.args, tc.want)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("run(%v) error %q does not mention %s", tc.args, err, tc.want)
		}
	}
}
