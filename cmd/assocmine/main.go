// Command assocmine mines frequent itemsets and association rules from a
// database file produced by gendata (or generates one on the fly with
// -gen), using any of the repository's algorithms.
//
// Usage:
//
//	assocmine -db t10i6d100k.db -support 0.25 -algo eclat -rules 0.9 -top 20
//	assocmine -db retail.fimi -format fimi -support 0.5 -maximal
//	assocmine -gen 50000 -support 0.1 -algo countdist -hosts 4 -procs 2 -report
//	assocmine -gen 50000 -support 0.25 -stats
//	assocmine -gen 100000 -support 0.25 -save t10.ds     # persist the vertical dataset
//	assocmine -load t10.ds -support 0.1                  # remine from the mmap store
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/db"
	"repro/internal/mining"
	"repro/internal/obsv"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "assocmine:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("assocmine", flag.ContinueOnError)
	dbPath := fs.String("db", "", "database file (from gendata, or FIMI text with -format fimi)")
	format := fs.String("format", "binary", "input format: binary or fimi")
	genTx := fs.Int("gen", 0, "generate a T10.I6 database with this many transactions instead of reading one")
	support := fs.Float64("support", 0.25, "minimum support in percent")
	algoName := fs.String("algo", "eclat", "algorithm: eclat, apriori, countdist, datadist, canddist, hybrid, partition, sampling, dhp")
	reprName := fs.String("repr", "auto", "tid-set representation for Eclat-family algorithms: auto, sparse, bitset, roaring")
	parallel := fs.Int("parallel", 0, "worker goroutines for the real (non-simulated) eclat path; 0 means GOMAXPROCS, 1 forces sequential")
	topk := fs.Int("topk", 0, "mine only the K highest-support itemsets (local eclat path only; the support threshold rises adaptively)")
	contains := fs.String("contains", "", "comma-separated item ids every mined itemset must contain (targeted query, local eclat path only)")
	maximal := fs.Bool("maximal", false, "mine only maximal frequent itemsets (MaxEclat)")
	closed := fs.Bool("closed", false, "mine only closed frequent itemsets")
	hosts := fs.Int("hosts", 1, "simulated hosts H")
	procs := fs.Int("procs", 1, "simulated processors per host P")
	minConf := fs.Float64("rules", 0, "also derive rules at this confidence (0 disables)")
	top := fs.Int("top", 20, "print at most this many itemsets / rules")
	report := fs.Bool("report", false, "print the virtual-time cluster report")
	stats := fs.Bool("stats", false, "print the per-phase time breakdown (paper table 2 style)")
	outPath := fs.String("o", "", "write the full result (support\\titems per line) to this file")
	savePath := fs.String("save", "", "persist the loaded database as a stored vertical dataset directory before mining (crash-safe; reusable with -load or a daemon -data-dir)")
	loadPath := fs.String("load", "", "mine from a stored vertical dataset directory (written by -save); replaces -db/-gen and mines eclat straight from the mmap bundle")
	memBudget := fs.Int64("memory-budget", 0, "cap resident bytes of a stored-dataset mine (with -load): when the mapping exceeds the budget the mine runs out-of-core, class at a time; 0 disables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *hosts < 1 {
		return fmt.Errorf("-hosts must be positive, got %d", *hosts)
	}
	if *procs < 1 {
		return fmt.Errorf("-procs must be positive, got %d", *procs)
	}
	if *top < 1 {
		return fmt.Errorf("-top must be positive, got %d", *top)
	}
	if *support < 0 {
		return fmt.Errorf("-support must not be negative, got %v", *support)
	}
	if *format != "binary" && *format != "fimi" {
		return fmt.Errorf("unknown format %q (want binary or fimi)", *format)
	}
	if *genTx < 0 {
		return fmt.Errorf("-gen must not be negative, got %d", *genTx)
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must not be negative, got %d", *parallel)
	}
	if *topk < 0 {
		return fmt.Errorf("-topk must not be negative, got %d", *topk)
	}
	if *memBudget < 0 {
		return fmt.Errorf("-memory-budget must not be negative, got %d", *memBudget)
	}
	mustContain, err := parseContains(*contains)
	if err != nil {
		return err
	}

	var (
		d      *repro.Database
		stored *store.Dataset
		numTx  int
	)
	if *loadPath != "" {
		if *dbPath != "" || *genTx > 0 {
			return fmt.Errorf("-load replaces -db/-gen")
		}
		if *savePath != "" {
			return fmt.Errorf("-save with -load is redundant: the dataset is already stored")
		}
		if stored, err = store.OpenDataset(*loadPath); err != nil {
			return err
		}
		defer stored.Close()
		numTx = stored.Meta().Transactions
	} else {
		if d, err = loadDatabase(*dbPath, *format, *genTx); err != nil {
			return err
		}
		numTx = d.Len()
	}

	if *savePath != "" {
		source := *dbPath
		if source == "" {
			source = fmt.Sprintf("generated T10.I6 n=%d", *genTx)
		}
		name := strings.TrimSuffix(filepath.Base(*savePath), ".ds")
		meta := store.DatasetMeta(name, source, d)
		if err := store.CreateDataset(*savePath, meta, d, store.VerticalLists(d)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved dataset %s (%d transactions) to %s\n", name, numTx, *savePath)
	}

	algos := map[string]repro.Algorithm{
		"eclat":     repro.AlgoEclat,
		"apriori":   repro.AlgoApriori,
		"countdist": repro.AlgoCountDistribution,
		"datadist":  repro.AlgoDataDistribution,
		"canddist":  repro.AlgoCandidateDistribution,
		"hybrid":    repro.AlgoEclatHybrid,
		"partition": repro.AlgoPartition,
		"sampling":  repro.AlgoSampling,
		"dhp":       repro.AlgoDHP,
	}
	algo, ok := algos[*algoName]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}
	if *maximal && *closed {
		return fmt.Errorf("-maximal and -closed are mutually exclusive")
	}
	repr, err := repro.ParseRepresentation(*reprName)
	if err != nil {
		return err
	}

	start := time.Now()
	opts := repro.MineOptions{
		Algorithm:      algo,
		SupportPct:     *support,
		Hosts:          *hosts,
		ProcsPerHost:   *procs,
		Representation: repr,
		Parallelism:    *parallel,
		TopK:           *topk,
		MustContain:    mustContain,
		MemoryBudget:   *memBudget,
	}
	tr := obsv.NewTrace()
	ctx := obsv.WithTrace(context.Background(), tr)
	// The mining input is a repro.Source either way: -load serves the
	// stored dataset (vertical views over the mapping, horizontal decoded
	// only if an algorithm scans it), everything else wraps the in-memory
	// database. MineFrom picks the path, so no branching on input shape.
	var src repro.Source
	if stored != nil {
		src = stored
	} else {
		src = repro.HorizontalSource(d)
	}
	var res *repro.Result
	var info *repro.RunInfo
	kind := "frequent"
	switch {
	case *maximal:
		kind = "maximal frequent"
		if d, err = src.Horizontal(); err == nil {
			res, info, err = repro.MineMaximal(ctx, d, opts)
		}
	case *closed:
		kind = "closed frequent"
		if d, err = src.Horizontal(); err == nil {
			res, info, err = repro.MineClosed(ctx, d, opts)
		}
	default:
		res, info, err = repro.MineFrom(ctx, src, opts)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%v mined %d %s itemsets (minsup %d of %d transactions, max size %d) in %v\n",
		info.Algorithm, res.Len(), kind, info.MinSup, numTx, res.MaxK(), time.Since(start).Round(time.Millisecond))
	if info.TopK > 0 {
		fmt.Fprintf(stdout, "top-%d query: effective minsup ended at %d\n", info.TopK, info.EffectiveMinSup)
	}
	if len(info.MustContain) > 0 {
		fmt.Fprintf(stdout, "targeted query: every itemset contains %v\n", info.MustContain)
	}

	byK := res.CountsByK()
	ks := make([]int, 0, len(byK))
	for k := range byK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Fprintf(stdout, "  %6d %s %d-itemsets\n", byK[k], kind, k)
	}

	fmt.Fprintf(stdout, "\nTop itemsets by support:\n")
	sorted := append([]repro.FrequentItemset(nil), res.Itemsets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Support > sorted[j].Support })
	for i, f := range sorted {
		if i >= *top {
			break
		}
		fmt.Fprintf(stdout, "  %-24v sup=%d (%.2f%%)\n", f.Set, f.Support,
			100*float64(f.Support)/float64(numTx))
	}

	if *minConf > 0 {
		rs := repro.Rules(res, *minConf)
		fmt.Fprintf(stdout, "\n%d rules at confidence >= %.2f; top %d:\n", len(rs), *minConf, *top)
		for _, r := range repro.TopRules(rs, *top) {
			fmt.Fprintf(stdout, "  %v\n", r)
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := mining.Write(f, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %d itemsets to %s\n", res.Len(), *outPath)
	}

	if *stats {
		printPhaseTable(stdout, tr.Spans(), time.Since(start))
		if info.Parallelism > 0 {
			fmt.Fprintf(stdout, "Local parallelism: %d workers, %d steals\n", info.Parallelism, info.Steals)
		}
	}

	if *report && info.Report != nil {
		rep := info.Report
		fmt.Fprintf(stdout, "\nSimulated cluster: H=%d P=%d  elapsed %v (virtual)\n",
			rep.Config.Hosts, rep.Config.ProcsPerHost, rep.Elapsed())
		for i := range rep.PerProc {
			fmt.Fprintf(stdout, "  proc %2d: %s\n", i, rep.PerProc[i].String())
		}
	}
	return nil
}

// printPhaseTable prints the run's phase spans in the style of the
// paper's per-phase breakdown (table 2). Wall-clock spans and the
// simulated cluster's virtual-time phases are totaled separately —
// summing across the two clocks would be meaningless.
func printPhaseTable(w io.Writer, spans []repro.PhaseSpan, wall time.Duration) {
	var real, virt []repro.PhaseSpan
	for _, sp := range spans {
		if sp.Virtual() {
			virt = append(virt, sp)
		} else {
			real = append(real, sp)
		}
	}
	fmt.Fprintf(w, "\nPhase breakdown (wall %v):\n", wall.Round(time.Microsecond))
	printSpanGroup(w, real, "")
	if len(virt) > 0 {
		fmt.Fprintf(w, "Simulated cluster phases (virtual time, max across processors):\n")
		printSpanGroup(w, virt, " (virtual)")
	}
}

func printSpanGroup(w io.Writer, spans []repro.PhaseSpan, note string) {
	var total int64
	for _, sp := range spans {
		total += sp.DurationNS
	}
	for _, sp := range spans {
		share := 0.0
		if total > 0 {
			share = 100 * float64(sp.DurationNS) / float64(total)
		}
		fmt.Fprintf(w, "  %-18s %14v %6.1f%%%s\n",
			sp.Name, time.Duration(sp.DurationNS).Round(time.Microsecond), share, note)
	}
	fmt.Fprintf(w, "  %-18s %14v %6.1f%%\n", "total",
		time.Duration(total).Round(time.Microsecond), 100.0)
}

// parseContains parses the -contains flag: a comma-separated list of
// non-negative integer item ids ("" means no restriction).
func parseContains(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var items []int
	for _, f := range strings.Split(s, ",") {
		it, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || it < 0 {
			return nil, fmt.Errorf("-contains: bad item %q (want non-negative integers)", f)
		}
		items = append(items, it)
	}
	return items, nil
}

func loadDatabase(path, format string, genTx int) (*repro.Database, error) {
	switch {
	case genTx > 0:
		return repro.Generate(repro.StandardConfig(genTx))
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		switch format {
		case "binary":
			return db.Decode(f)
		case "fimi":
			return db.DecodeFIMI(f, 0)
		default:
			return nil, fmt.Errorf("unknown format %q", format)
		}
	default:
		return nil, fmt.Errorf("provide -db FILE or -gen N")
	}
}
