// Quickstart: generate a synthetic basket database, mine its frequent
// itemsets with Eclat, and print the strongest association rules.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A T10.I6 database (the paper's workload family): 20,000 baskets of
	// ~10 items drawn from 1000 products.
	d, err := repro.Generate(repro.StandardConfig(20_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d transactions, avg size %.1f\n", d.Len(), d.AvgLen())

	// Mine at 0.25% minimum support with sequential Eclat (the default
	// algorithm).
	res, info, err := repro.Mine(context.Background(), d, repro.MineOptions{SupportPct: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v found %d frequent itemsets (largest has %d items) in %d database scans\n",
		info.Algorithm, res.Len(), res.MaxK(), info.Scans)

	// Derive association rules at 90% confidence and show the five
	// strongest.
	rules := repro.Rules(res, 0.9)
	fmt.Printf("%d rules at >= 90%% confidence; top 5:\n", len(rules))
	for _, r := range repro.TopRules(rules, 5) {
		fmt.Printf("  %v\n", r)
	}
}
