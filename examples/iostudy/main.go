// I/O study: the axis on which the paper frames all prior work — how many
// times must each algorithm read the database? Apriori (and its parallel
// descendants) scans once per level; DHP trims candidates but still scans
// per level; Partition needs exactly two scans; Toivonen's sampling
// typically one full scan after mining a sample; Eclat's vertical layout
// needs two horizontal scans (three touches counting the inverted
// read-back on the testbed).
//
// All five produce identical itemsets; the program prints the scan counts
// and wall times side by side.
//
//	go run ./examples/iostudy
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	d, err := repro.Generate(repro.StandardConfig(25_000))
	if err != nil {
		log.Fatal(err)
	}
	support := 0.25
	fmt.Printf("database: %d transactions, support %.2f%%\n\n", d.Len(), support)

	type row struct {
		algo repro.Algorithm
		note string
	}
	rows := []row{
		{repro.AlgoApriori, "one scan per level"},
		{repro.AlgoDHP, "hash filter shrinks C2, still one scan per level"},
		{repro.AlgoPartition, "two scans, chunk-local vertical mining"},
		{repro.AlgoSampling, "mine a sample, verify with the negative border"},
		{repro.AlgoEclat, "vertical tid-lists after two horizontal scans"},
	}

	fmt.Printf("%-12s %7s %10s %10s   %s\n", "algorithm", "scans", "itemsets", "time", "why")
	var reference int
	for _, r := range rows {
		start := time.Now()
		res, info, err := repro.Mine(context.Background(), d, repro.MineOptions{
			Algorithm:       r.algo,
			SupportPct:      support,
			PartitionChunks: 4,
			SampleSize:      8000,
			SampleLowerBy:   0.6,
		})
		if err != nil {
			log.Fatal(err)
		}
		if reference == 0 {
			reference = res.Len()
		} else if res.Len() != reference {
			log.Fatalf("%v found %d itemsets, others found %d — algorithms disagree!",
				info.Algorithm, res.Len(), reference)
		}
		fmt.Printf("%-12v %7d %10d %10v   %s\n",
			info.Algorithm, info.Scans, res.Len(), time.Since(start).Round(time.Millisecond), r.note)
	}
	fmt.Printf("\nall algorithms found the identical %d frequent itemsets\n", reference)

	// The maximal-itemset view compresses the same information.
	maximal, _, err := repro.MineMaximal(context.Background(), d, repro.MineOptions{SupportPct: support})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the %d frequent itemsets condense to %d maximal itemsets (MaxEclat)\n",
		reference, maximal.Len())
}
