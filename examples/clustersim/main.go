// Cluster simulation: run the paper's head-to-head — parallel Eclat
// against Count Distribution — across cluster shapes on the simulated
// DEC Alpha / Memory Channel testbed, and print the execution profile
// that explains the outcome (scans, barriers, communication volume).
//
//	go run ./examples/clustersim
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func run(d *repro.Database, algo repro.Algorithm, hosts, procs int) (*repro.Result, *repro.Report) {
	// Passing an explicit cluster config makes even the H=1,P=1 case run
	// on the simulated testbed, like the paper's uniprocessor rows.
	cfg := repro.DefaultCluster(hosts, procs)
	res, info, err := repro.Mine(context.Background(), d, repro.MineOptions{
		Algorithm:  algo,
		SupportPct: 0.1,
		Cluster:    &cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res, info.Report
}

func main() {
	d, err := repro.Generate(repro.StandardConfig(50_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d transactions (%.1f MB), support 0.1%%\n\n",
		d.Len(), float64(d.SizeBytes())/1e6)

	configs := []struct{ h, p int }{{1, 1}, {2, 1}, {4, 1}, {8, 1}, {2, 4}}
	fmt.Printf("%-12s %12s %12s %8s\n", "cluster", "Eclat", "CountDist", "ratio")
	for _, c := range configs {
		_, repE := run(d, repro.AlgoEclat, c.h, c.p)
		_, repC := run(d, repro.AlgoCountDistribution, c.h, c.p)
		fmt.Printf("H=%d P=%d %4s %11.1fs %11.1fs %7.1fx\n", c.h, c.p, "",
			float64(repE.ElapsedNS)/1e9, float64(repC.ElapsedNS)/1e9,
			float64(repC.ElapsedNS)/float64(repE.ElapsedNS))
	}

	// Why Eclat wins: contrast the execution profiles on one config.
	fmt.Println("\nexecution profile at H=4, P=1 (per-processor maxima):")
	resE, repE := run(d, repro.AlgoEclat, 4, 1)
	resC, repC := run(d, repro.AlgoCountDistribution, 4, 1)
	profile := func(tag string, rep *repro.Report) {
		var scans, barriers int64
		var net int64
		for _, st := range rep.PerProc {
			if st.Scans > scans {
				scans = st.Scans
			}
			if st.Barriers > barriers {
				barriers = st.Barriers
			}
			net += st.NetBytes
		}
		fmt.Printf("  %-10s %2d local scans, %3d barriers, %6.1f MB on the wire\n",
			tag, scans, barriers, float64(net)/1e6)
	}
	profile("Eclat", repE)
	profile("CountDist", repC)

	if resE.Len() != resC.Len() {
		log.Fatalf("algorithms disagree: %d vs %d itemsets", resE.Len(), resC.Len())
	}
	fmt.Printf("\nboth algorithms found the identical %d frequent itemsets\n", resE.Len())

	// The hybrid future-work variant on multi-processor hosts.
	fmt.Println("\nhybrid Eclat (database partitioned per host, classes shared within):")
	for _, c := range []struct{ h, p int }{{2, 4}, {4, 2}} {
		_, repF := run(d, repro.AlgoEclat, c.h, c.p)
		_, repH := run(d, repro.AlgoEclatHybrid, c.h, c.p)
		fmt.Printf("  H=%d P=%d: flat %5.1fs -> hybrid %5.1fs (%.2fx)\n", c.h, c.p,
			float64(repF.ElapsedNS)/1e9, float64(repH.ElapsedNS)/1e9,
			float64(repF.ElapsedNS)/float64(repH.ElapsedNS))
	}
}
