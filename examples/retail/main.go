// Retail basket analysis: the scenario that motivates the paper ("The
// prototypical application is the analysis of sales or basket data").
//
// This example builds a small named product catalog, synthesizes baskets
// with embedded co-purchase patterns on top of the Quest generator's
// output, mines them, and turns the result into the kind of readable
// report a merchandising team would use: top products, top co-purchase
// pairs, and cross-sell rules ranked by lift.
//
//	go run ./examples/retail
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro"
)

// catalog maps the first few item ids to product names so the report
// reads like basket data rather than integers.
var catalog = []string{
	"espresso beans", "oat milk", "butter croissant", "orange juice",
	"sourdough loaf", "salted butter", "strawberry jam", "free-range eggs",
	"cheddar", "crackers", "red wine", "dark chocolate", "pasta",
	"tomato passata", "parmesan", "basil", "olive oil", "garlic",
	"tortilla chips", "salsa",
}

func name(it repro.Item) string {
	if int(it) < len(catalog) {
		return catalog[it]
	}
	return fmt.Sprintf("sku-%d", it)
}

func describe(set repro.Itemset) string {
	s := ""
	for i, it := range set {
		if i > 0 {
			s += " + "
		}
		s += name(it)
	}
	return s
}

func main() {
	// Generate baskets over a 200-product store. A small universe makes
	// co-purchase structure dense, like a curated corner store.
	cfg := repro.StandardConfig(30_000)
	cfg.NumItems = 200
	cfg.NumPatterns = 400
	cfg.Seed = 11
	d, err := repro.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store with %d products, %d baskets, avg basket %.1f items\n\n",
		cfg.NumItems, d.Len(), d.AvgLen())

	res, info, err := repro.Mine(context.Background(), d, repro.MineOptions{SupportPct: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d frequent itemsets at %.1f%% support (minsup %d baskets)\n\n",
		res.Len(), 0.5, info.MinSup)

	// Top products.
	var singles, pairs []repro.FrequentItemset
	for _, f := range res.Itemsets {
		switch f.Set.K() {
		case 1:
			singles = append(singles, f)
		case 2:
			pairs = append(pairs, f)
		}
	}
	bySupport := func(fs []repro.FrequentItemset) {
		sort.Slice(fs, func(i, j int) bool { return fs[i].Support > fs[j].Support })
	}
	bySupport(singles)
	bySupport(pairs)

	fmt.Println("top products:")
	for i, f := range singles {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-28s in %5.1f%% of baskets\n", name(f.Set[0]),
			100*float64(f.Support)/float64(d.Len()))
	}

	fmt.Println("\ntop co-purchase pairs:")
	for i, f := range pairs {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-44s %5.1f%%\n", describe(f.Set),
			100*float64(f.Support)/float64(d.Len()))
	}

	// Cross-sell rules: high-lift rules say "customers who buy X are
	// unusually likely to also buy Y" — the actionable output.
	rules := repro.Rules(res, 0.6)
	sort.Slice(rules, func(i, j int) bool { return rules[i].Lift > rules[j].Lift })
	fmt.Println("\ncross-sell suggestions (by lift):")
	shown := 0
	for _, r := range rules {
		if r.Consequent.K() != 1 || r.Antecedent.K() > 2 {
			continue // single-product suggestions driven by small baskets read best
		}
		fmt.Printf("  buyers of %-40s => suggest %-20s (conf %.0f%%, lift %.1f)\n",
			describe(r.Antecedent), name(r.Consequent[0]), 100*r.Confidence, r.Lift)
		shown++
		if shown >= 8 {
			break
		}
	}
}
