package repro

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func smallDB(t testing.TB) *Database {
	t.Helper()
	d, err := Generate(StandardConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateAndMineDefaults(t *testing.T) {
	d := smallDB(t)
	res, info, err := Mine(context.Background(), d, MineOptions{SupportPct: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("expected frequent itemsets at 1% support")
	}
	if info.Algorithm != AlgoEclat || info.Scans != 2 {
		t.Fatalf("info = %+v", info)
	}
	if info.MinSup != 10 {
		t.Fatalf("1%% of 1000 should be 10, got %d", info.MinSup)
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	d := smallDB(t)
	opts := MineOptions{SupportPct: 2.0}
	want, _, err := Mine(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	algos := []Algorithm{AlgoApriori, AlgoCountDistribution, AlgoDataDistribution,
		AlgoCandidateDistribution, AlgoEclatHybrid}
	for _, a := range algos {
		got, info, err := Mine(context.Background(), d, MineOptions{Algorithm: a, SupportPct: 2.0, Hosts: 2, ProcsPerHost: 2})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("%v disagrees: %d vs %d itemsets", a, got.Len(), want.Len())
		}
		if a != AlgoApriori && info.Report == nil {
			t.Fatalf("%v should produce a cluster report", a)
		}
	}
}

func TestParallelEclatViaOptions(t *testing.T) {
	d := smallDB(t)
	res, info, err := Mine(context.Background(), d, MineOptions{SupportPct: 1.0, Hosts: 4, ProcsPerHost: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Report == nil || info.Report.Config.Hosts != 4 {
		t.Fatalf("expected a 4-host report, got %+v", info.Report)
	}
	if res.Len() == 0 {
		t.Fatal("no itemsets")
	}
}

func TestSupportCountOverridesPct(t *testing.T) {
	d := smallDB(t)
	_, info, err := Mine(context.Background(), d, MineOptions{SupportPct: 1.0, SupportCount: 42})
	if err != nil {
		t.Fatal(err)
	}
	if info.MinSup != 42 {
		t.Fatalf("MinSup = %d, want 42", info.MinSup)
	}
}

func TestZeroValueOptionsRejected(t *testing.T) {
	// A zero-value MineOptions used to silently mine at the paper's 0.1%
	// default; it now fails loudly, pointing the caller at the explicit
	// fields (DefaultSupportPct documents the paper's threshold).
	d := smallDB(t)
	_, info, err := Mine(context.Background(), d, MineOptions{})
	if !errors.Is(err, ErrInvalidSupport) {
		t.Fatalf("err = %v, want ErrInvalidSupport", err)
	}
	if info != nil {
		t.Fatal("expected nil info on invalid options")
	}
	if !strings.Contains(err.Error(), "SupportPct") {
		t.Fatalf("error should name the fields to set, got %q", err)
	}
	if DefaultSupportPct != 0.1 {
		t.Fatalf("DefaultSupportPct = %v, want the paper's 0.1", DefaultSupportPct)
	}
	// 0.1% of 10000 transactions = 10: the documented default still
	// resolves to the paper's threshold when passed explicitly.
	big, err := Generate(StandardConfig(10000))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := (MineOptions{SupportPct: DefaultSupportPct}).MinSup(big); err != nil || got != 10 {
		t.Fatalf("MinSup = %d, %v; want 10, nil", got, err)
	}
}

func TestInvalidSupportRejected(t *testing.T) {
	d := smallDB(t)
	for _, opts := range []MineOptions{
		{SupportPct: -1},
		{SupportCount: -5},
	} {
		if _, _, err := Mine(context.Background(), d, opts); !errors.Is(err, ErrInvalidSupport) {
			t.Fatalf("%+v: err = %v, want ErrInvalidSupport", opts, err)
		}
	}
}

func TestRulesEndToEnd(t *testing.T) {
	d := smallDB(t)
	res, _, err := Mine(context.Background(), d, MineOptions{SupportPct: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rs := Rules(res, 0.8)
	for _, r := range rs {
		if r.Confidence < 0.8 {
			t.Fatalf("rule below threshold: %v", r)
		}
	}
	top := TopRules(rs, 5)
	if len(top) > 5 {
		t.Fatal("TopRules did not truncate")
	}
}

func TestRelatedWorkAlgorithmsAgree(t *testing.T) {
	d := smallDB(t)
	want, _, err := Mine(context.Background(), d, MineOptions{SupportPct: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Algorithm{AlgoPartition, AlgoSampling, AlgoDHP} {
		got, info, err := Mine(context.Background(), d, MineOptions{Algorithm: a, SupportPct: 2.0, PartitionChunks: 4, SampleSize: 300})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("%v disagrees: %d vs %d", a, got.Len(), want.Len())
		}
		if info.Scans < 1 {
			t.Fatalf("%v: scans = %d", a, info.Scans)
		}
	}
	if AlgoPartition.String() != "Partition" || AlgoSampling.String() != "Sampling" || AlgoDHP.String() != "DHP" {
		t.Fatal("algorithm names wrong")
	}
}

func TestMineMaximalFacade(t *testing.T) {
	d := smallDB(t)
	// 0.5% support is deep enough that multi-item sets exist and subsume
	// their subsets.
	full, _, err := Mine(context.Background(), d, MineOptions{SupportPct: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	maximal, _, err := MineMaximal(context.Background(), d, MineOptions{SupportPct: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if maximal.Len() == 0 || maximal.Len() >= full.Len() {
		t.Fatalf("maximal (%d) should be a nonempty strict reduction of full (%d)",
			maximal.Len(), full.Len())
	}
	if _, _, err := MineMaximal(context.Background(), nil, MineOptions{}); err == nil {
		t.Fatal("nil database should error")
	}
	closed, _, err := MineClosed(context.Background(), d, MineOptions{SupportPct: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if closed.Len() < maximal.Len() || closed.Len() > full.Len() {
		t.Fatalf("|closed|=%d must sit between |maximal|=%d and |full|=%d",
			closed.Len(), maximal.Len(), full.Len())
	}
	if _, _, err := MineClosed(context.Background(), nil, MineOptions{}); err == nil {
		t.Fatal("nil database should error")
	}
}

func TestMineNilDatabase(t *testing.T) {
	if _, _, err := Mine(context.Background(), nil, MineOptions{}); err == nil {
		t.Fatal("nil database should error")
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	d := smallDB(t)
	_, _, err := Mine(context.Background(), d, MineOptions{Algorithm: Algorithm(99), SupportPct: 1.0})
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	if Algorithm(99).String() == "" {
		t.Fatal("String should render unknowns")
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := map[Algorithm]string{
		AlgoEclat:                 "Eclat",
		AlgoApriori:               "Apriori",
		AlgoCountDistribution:     "CountDistribution",
		AlgoDataDistribution:      "DataDistribution",
		AlgoCandidateDistribution: "CandidateDistribution",
		AlgoEclatHybrid:           "EclatHybrid",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}
