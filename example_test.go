package repro_test

import (
	"context"
	"fmt"
	"strings"

	"repro"
)

// ExampleMine mines a tiny hand-written basket database.
func ExampleMine() {
	d, _ := repro.ReadFIMI(strings.NewReader(
		"1 2 3\n1 2\n1 2 3\n2 3\n"), 0)
	res, info, _ := repro.Mine(context.Background(), d, repro.MineOptions{SupportCount: 3})
	fmt.Println("algorithm:", info.Algorithm)
	for _, f := range res.Itemsets {
		fmt.Printf("%v sup=%d\n", f.Set, f.Support)
	}
	// Output:
	// algorithm: Eclat
	// {1} sup=3
	// {1 2} sup=3
	// {2} sup=4
	// {2 3} sup=3
	// {3} sup=3
}

// ExampleRules derives association rules from mined itemsets.
func ExampleRules() {
	d, _ := repro.ReadFIMI(strings.NewReader(
		"1 2\n1 2\n1 2\n1\n2 3\n"), 0)
	res, _, _ := repro.Mine(context.Background(), d, repro.MineOptions{SupportCount: 3})
	for _, r := range repro.Rules(res, 0.75) {
		fmt.Println(r)
	}
	// Output:
	// {1} => {2} (sup=3, conf=0.750, lift=0.94)
	// {2} => {1} (sup=3, conf=0.750, lift=0.94)
}

// ExampleMine_parallel runs the paper's parallel Eclat on a simulated
// 2-host cluster and reads the deterministic virtual-time report.
func ExampleMine_parallel() {
	d, _ := repro.Generate(repro.StandardConfig(2000))
	res, info, _ := repro.Mine(context.Background(), d, repro.MineOptions{
		SupportPct:   1.0,
		Hosts:        2,
		ProcsPerHost: 2,
	})
	fmt.Println("itemsets:", res.Len() > 0)
	fmt.Println("hosts:", info.Report.Config.Hosts)
	fmt.Println("three local scans:", info.Report.PerProc[0].Scans)
	// Output:
	// itemsets: true
	// hosts: 2
	// three local scans: 3
}

// ExampleMineMaximal condenses the frequent collection to its maximal
// sets.
func ExampleMineMaximal() {
	d, _ := repro.ReadFIMI(strings.NewReader(
		"1 2 3\n1 2 3\n1 2 3\n"), 0)
	maximal, _, _ := repro.MineMaximal(context.Background(), d, repro.MineOptions{SupportCount: 3})
	for _, f := range maximal.Itemsets {
		fmt.Printf("%v sup=%d\n", f.Set, f.Support)
	}
	// Output:
	// {1 2 3} sup=3
}
