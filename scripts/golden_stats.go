//go:build ignore

// Command golden_stats regenerates internal/eclat/testdata/golden_stats.json,
// the frozen work-counter profile of the class-task engine on the seed
// datasets. The committed file was captured from the pre-engine variants
// (PR 7 tree) and the equivalence suite asserts the engine reproduces it
// exactly at every representation and worker count — regenerate only when
// a counter change is intentional and understood, never to paper over a
// divergence.
//
// Usage (from the repository root):
//
//	go run scripts/golden_stats.go [-o internal/eclat/testdata/golden_stats.json]
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/eclat"
	"repro/internal/gen"
	"repro/internal/mining"
	"repro/internal/tidlist"
)

// KernelGold mirrors the exported accessors of tidlist.KernelStats.
type KernelGold struct {
	SparseOps      int64 `json:"sparseOps"`
	WordsTouched   int64 `json:"wordsTouched"`
	RoaringElemOps int64 `json:"roaringElemOps"`
	RoaringWords   int64 `json:"roaringWords"`
	Conversions    int64 `json:"conversions"`
}

// StatsGold freezes the work counters of one all-frequent run.
type StatsGold struct {
	Scans          int        `json:"scans"`
	Intersections  int64      `json:"intersections"`
	ShortCircuited int64      `json:"shortCircuited"`
	IntersectOps   int64      `json:"intersectOps"`
	Classes        int        `json:"classes"`
	DiffsetClasses int64      `json:"diffsetClasses"`
	Kernel         KernelGold `json:"kernel"`
}

// MaxGold freezes the counters of one maximal (MaxEclat) run.
type MaxGold struct {
	StatsGold
	Lookaheads    int64 `json:"lookaheads"`
	LookaheadHits int64 `json:"lookaheadHits"`
	Candidates    int   `json:"candidates"`
}

// DiffGold freezes the counters of one pure-diffset run.
type DiffGold struct {
	Scans         int        `json:"scans"`
	Intersections int64      `json:"intersections"`
	DiffOps       int64      `json:"diffOps"`
	ListBytes     int64      `json:"listBytes"`
	Kernel        KernelGold `json:"kernel"`
}

// Entry is the golden record of one (dataset, minsup, representation)
// cell across the three stat-bearing variants, plus an output
// fingerprint per mining variant (FNV-64a over the canonical sorted
// itemset/support stream — byte-identity across the refactor is asserted
// against these, not just against a same-binary re-run). Cluster
// fingerprints are taken on a 2×2 simulated cluster.
type Entry struct {
	Dataset      string            `json:"dataset"`
	MinSup       int               `json:"minsup"`
	Repr         string            `json:"repr"`
	Stats        StatsGold         `json:"stats"`
	Max          MaxGold           `json:"max"`
	Diff         DiffGold          `json:"diff"`
	Fingerprints map[string]uint64 `json:"fingerprints"`
}

// fingerprint hashes a canonical (sorted) result stream.
func fingerprint(res *mining.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(res.MinSup))
	put(int64(res.NumTransactions))
	for _, f := range res.Itemsets {
		put(int64(f.Set.K()))
		for _, it := range f.Set {
			put(int64(it))
		}
		put(int64(f.Support))
	}
	return h.Sum64()
}

func kernelGold(k *tidlist.KernelStats) KernelGold {
	return KernelGold{
		SparseOps:      k.SparseOps(),
		WordsTouched:   k.WordsTouched(),
		RoaringElemOps: k.RoaringElemOps(),
		RoaringWords:   k.RoaringWords(),
		Conversions:    k.Conversions(),
	}
}

func main() {
	out := flag.String("o", "internal/eclat/testdata/golden_stats.json", "output path")
	flag.Parse()

	type ds struct {
		name   string
		d      *db.Database
		minsup int
	}
	t10 := gen.MustGenerate(gen.T10I6(2000))
	t5 := gen.MustGenerate(gen.T5I2(800))
	datasets := []ds{
		{"T10I6-2000", t10, t10.MinSupCount(0.6)},
		{"T5I2-800", t5, t5.MinSupCount(1.0)},
	}
	reprs := []tidlist.Repr{tidlist.ReprAuto, tidlist.ReprSparse, tidlist.ReprBitset, tidlist.ReprRoaring}

	var entries []Entry
	for _, d := range datasets {
		for _, repr := range reprs {
			opts := eclat.Options{Representation: repr}
			e := Entry{Dataset: d.name, MinSup: d.minsup, Repr: repr.String(), Fingerprints: map[string]uint64{}}

			seqRes, st, err := eclat.MineSequentialOpts(context.Background(), d.d, d.minsup, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			e.Fingerprints["all"] = fingerprint(seqRes)
			e.Stats = StatsGold{
				Scans:          st.Scans,
				Intersections:  st.Intersections,
				ShortCircuited: st.ShortCircuited,
				IntersectOps:   st.IntersectOps,
				Classes:        st.Classes,
				DiffsetClasses: st.DiffsetClasses,
				Kernel:         kernelGold(&st.Kernel),
			}

			maxRes, mst, err := eclat.MineMaximalOpts(context.Background(), d.d, d.minsup, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			e.Fingerprints["maximal"] = fingerprint(maxRes)
			e.Max = MaxGold{
				StatsGold: StatsGold{
					Scans:          mst.Scans,
					Intersections:  mst.Intersections,
					ShortCircuited: mst.ShortCircuited,
					IntersectOps:   mst.IntersectOps,
					Classes:        mst.Classes,
					DiffsetClasses: mst.DiffsetClasses,
					Kernel:         kernelGold(&mst.Kernel),
				},
				Lookaheads:    mst.Lookaheads,
				LookaheadHits: mst.LookaheadHits,
				Candidates:    mst.Candidates,
			}

			diffRes, dst, err := eclat.MineSequentialDiffsetsOpts(context.Background(), d.d, d.minsup, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			e.Diff = DiffGold{
				Scans:         dst.Scans,
				Intersections: dst.Intersections,
				DiffOps:       dst.DiffOps,
				ListBytes:     dst.ListBytes,
				Kernel:        kernelGold(&dst.Kernel),
			}
			e.Fingerprints["diffsets"] = fingerprint(diffRes)

			closedRes, _, err := eclat.MineClosedOpts(context.Background(), d.d, d.minsup, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			e.Fingerprints["closed"] = fingerprint(closedRes)
			charmRes, _, err := eclat.MineClosedCHARMOpts(context.Background(), d.d, d.minsup, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			e.Fingerprints["charm"] = fingerprint(charmRes)

			clRes, _ := eclat.MineOpts(cluster.New(cluster.Default(2, 2)), d.d, d.minsup, opts)
			e.Fingerprints["cluster"] = fingerprint(clRes)
			hyRes, _ := eclat.MineHybridOpts(cluster.New(cluster.Default(2, 2)), d.d, d.minsup, opts)
			e.Fingerprints["hybrid"] = fingerprint(hyRes)
			mpRes, _ := eclat.MineMaximalParallelOpts(cluster.New(cluster.Default(2, 2)), d.d, d.minsup, opts)
			e.Fingerprints["maximalCluster"] = fingerprint(mpRes)

			entries = append(entries, e)
		}
	}

	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d entries to %s\n", len(entries), *out)
}
