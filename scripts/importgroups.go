//go:build ignore

// Command importgroups enforces the repository's import layout: in every
// import block, the standard-library imports form one contiguous group at
// the top, separated from the repository's own ("repro/...") imports by a
// single blank line, and no group mixes the two kinds. gofmt only sorts
// within existing groups, so an accidental split like
//
//	import (
//		"context"
//
//		"sort"
//	)
//
// survives formatting — this check is what catches it.
//
// Usage (from the repository root):
//
//	go run scripts/importgroups.go [dir ...]
//
// Exit code 0 means clean, 1 means violations (printed as file:line:
// message), 2 means a file failed to parse.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	exit := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				// testdata holds deliberately broken fixture modules; .git
				// and the like are not Go source.
				if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			switch checkFile(path) {
			case 1:
				if exit == 0 {
					exit = 1
				}
			case 2:
				exit = 2
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "importgroups:", err)
			exit = 2
		}
	}
	os.Exit(exit)
}

// checkFile returns 0 (clean), 1 (violations) or 2 (parse failure).
func checkFile(path string) int {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
	if err != nil {
		fmt.Fprintln(os.Stderr, "importgroups:", err)
		return 2
	}
	ret := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || len(gd.Specs) < 2 {
			continue
		}
		// Split the import block into blank-line-separated groups: a gap
		// of more than one line between consecutive specs starts a group.
		type spec struct {
			path string
			line int
		}
		var groups [][]spec
		lastLine := -2
		for _, s := range gd.Specs {
			is := s.(*ast.ImportSpec)
			p, _ := strconv.Unquote(is.Path.Value)
			line := fset.Position(is.Pos()).Line
			if line > lastLine+1 || len(groups) == 0 {
				groups = append(groups, nil)
			}
			groups[len(groups)-1] = append(groups[len(groups)-1], spec{p, line})
			lastLine = line
		}
		for gi, g := range groups {
			std := stdlibPath(g[0].path)
			for _, s := range g[1:] {
				if stdlibPath(s.path) != std {
					fmt.Printf("%s:%d: import group mixes standard-library and repository imports\n", path, s.line)
					ret = 1
				}
			}
			if std && gi > 0 {
				fmt.Printf("%s:%d: standard-library imports must form one contiguous first group (%q starts group %d)\n",
					path, g[0].line, g[0].path, gi+1)
				ret = 1
			}
		}
	}
	return ret
}

// stdlibPath reports whether an import path names a standard-library
// package: no dot in the first path segment and not this module's own
// "repro" tree.
func stdlibPath(p string) bool {
	first, _, _ := strings.Cut(p, "/")
	return !strings.Contains(first, ".") && first != "repro"
}
