//go:build ignore

// Command bench_kernels runs the tid-set intersection kernel benchmarks
// (BenchmarkIntersectKernels and its short-circuit variant in
// internal/tidlist) and writes the results to BENCH_kernels.json at the
// repository root — the committed perf-trajectory baseline for the
// representation layer.
//
// Usage (from the repository root):
//
//	go run scripts/bench_kernels.go [-benchtime 200x] [-count 3] [-o BENCH_kernels.json]
//
// With -count > 1 the fastest run per benchmark is kept, the usual way
// to suppress scheduling noise in committed snapshots.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line of the snapshot.
type Result struct {
	// Benchmark is the top-level benchmark name
	// ("IntersectKernels" or "IntersectKernelsSC").
	Benchmark string `json:"benchmark"`
	// Density is the tid density of the operands (e.g. "5%").
	Density string `json:"density"`
	// Kernel is "sparse", "bitset", "roaring", "adaptive" or
	// "diffset" (the dEclat difference kernel on adaptively encoded
	// operands).
	Kernel string `json:"kernel"`
	// NsPerOp is the fastest observed time per intersection.
	NsPerOp float64 `json:"nsPerOp"`
	// BytesPerOp / AllocsPerOp come from -benchmem style accounting
	// (the benchmarks call ReportAllocs).
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// Snapshot is the BENCH_kernels.json document.
type Snapshot struct {
	GoVersion string   `json:"goVersion"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	ListLen   int      `json:"listLen"` // cardinality of each operand
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

var benchLine = regexp.MustCompile(
	`^Benchmark(IntersectKernels(?:SC)?)/density=([^/]+)/kernel=([a-z]+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

func main() {
	benchtime := flag.String("benchtime", "200x", "go test -benchtime value")
	count := flag.Int("count", 3, "go test -count value; the fastest run per benchmark is kept")
	out := flag.String("o", "BENCH_kernels.json", "output file")
	flag.Parse()

	cmd := exec.Command("go", "test", "./internal/tidlist",
		"-run", "^$", "-bench", "^BenchmarkIntersectKernels",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count))
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_kernels: go test -bench failed:", err)
		os.Exit(1)
	}

	best := map[[3]string]Result{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			continue
		}
		r := Result{Benchmark: m[1], Density: m[2], Kernel: m[3], NsPerOp: ns}
		r.BytesPerOp, r.AllocsPerOp = parseMem(m[5])
		key := [3]string{r.Benchmark, r.Density, r.Kernel}
		if prev, ok := best[key]; !ok || r.NsPerOp < prev.NsPerOp {
			best[key] = r
		}
	}
	if len(best) == 0 {
		fmt.Fprintln(os.Stderr, "bench_kernels: no benchmark lines parsed")
		os.Exit(1)
	}

	snap := Snapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		ListLen:   2048,
		Benchtime: *benchtime,
	}
	for _, r := range best {
		snap.Results = append(snap.Results, r)
	}
	sort.Slice(snap.Results, func(i, j int) bool {
		a, b := snap.Results[i], snap.Results[j]
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		if a.Density != b.Density {
			// Densities sort numerically descending ("50%" before "1%").
			return densityValue(a.Density) > densityValue(b.Density)
		}
		return a.Kernel < b.Kernel
	})

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_kernels:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench_kernels:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", *out, len(snap.Results))
}

// parseMem extracts "N B/op" and "M allocs/op" from the tail of a
// benchmark line (absent when the run did not report allocations).
func parseMem(tail string) (bytesPerOp, allocsPerOp float64) {
	fields := strings.Fields(tail)
	for i := 0; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			bytesPerOp = v
		case "allocs/op":
			allocsPerOp = v
		}
	}
	return bytesPerOp, allocsPerOp
}

// densityValue parses "12.5%" -> 12.5 for sorting.
func densityValue(s string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	return v
}
