//go:build ignore

// Command bench_store runs the persistent-store benchmarks
// (BenchmarkStoreOpen / BenchmarkStoreMine / BenchmarkStoreMineOOC in
// internal/store) and writes the results to BENCH_store.json at the
// repository root — the committed perf-trajectory baseline for the
// dataset store: cold open vs in-memory rebuild vs warm mmap views,
// mine-from-store vs mine-from-heap, and budgeted out-of-core mining at
// 25/50/100% of the mapped bundle.
//
// Usage (from the repository root):
//
//	go run scripts/bench_store.go [-benchtime 20x] [-count 3] [-o BENCH_store.json]
//
// With -count > 1 the fastest run per benchmark is kept, the usual way
// to suppress scheduling noise in committed snapshots.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line of the snapshot.
type Result struct {
	// Benchmark is the top-level benchmark name ("StoreOpen",
	// "StoreMine" or "StoreMineOOC").
	Benchmark string `json:"benchmark"`
	// Transactions is the dataset size (the n= label).
	Transactions int `json:"transactions"`
	// Case is the sub-case: cold/rebuild/warm for StoreOpen, store/heap
	// for StoreMine, and the budget percentage (25/50/100 of the mapped
	// bundle) for StoreMineOOC.
	Case string `json:"case"`
	// NsPerOp is the fastest observed time per operation.
	NsPerOp float64 `json:"nsPerOp"`
	// BytesPerOp / AllocsPerOp come from ReportAllocs accounting.
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// Snapshot is the BENCH_store.json document.
type Snapshot struct {
	GoVersion string   `json:"goVersion"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

var benchLine = regexp.MustCompile(
	`^Benchmark(StoreOpen|StoreMineOOC|StoreMine)/n=(\d+)/(?:mode|source|budget)=([a-z0-9]+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

func main() {
	benchtime := flag.String("benchtime", "20x", "go test -benchtime value")
	count := flag.Int("count", 3, "go test -count value; the fastest run per benchmark is kept")
	out := flag.String("o", "BENCH_store.json", "output file")
	flag.Parse()

	cmd := exec.Command("go", "test", "./internal/store",
		"-run", "^$", "-bench", "^BenchmarkStore",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count))
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_store: go test -bench failed:", err)
		os.Exit(1)
	}

	best := map[[3]string]Result{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			continue
		}
		n, _ := strconv.Atoi(m[2])
		r := Result{Benchmark: m[1], Transactions: n, Case: m[3], NsPerOp: ns}
		r.BytesPerOp, r.AllocsPerOp = parseMem(m[5])
		key := [3]string{r.Benchmark, m[2], r.Case}
		if prev, ok := best[key]; !ok || r.NsPerOp < prev.NsPerOp {
			best[key] = r
		}
	}
	if len(best) == 0 {
		fmt.Fprintln(os.Stderr, "bench_store: no benchmark lines parsed")
		os.Exit(1)
	}

	snap := Snapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: *benchtime,
	}
	for _, r := range best {
		snap.Results = append(snap.Results, r)
	}
	sort.Slice(snap.Results, func(i, j int) bool {
		a, b := snap.Results[i], snap.Results[j]
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		if a.Transactions != b.Transactions {
			return a.Transactions < b.Transactions
		}
		return a.Case < b.Case
	})

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_store:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench_store:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", *out, len(snap.Results))
}

// parseMem extracts "N B/op" and "M allocs/op" from the tail of a
// benchmark line (absent when the run did not report allocations).
func parseMem(tail string) (bytesPerOp, allocsPerOp float64) {
	fields := strings.Fields(tail)
	for i := 0; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			bytesPerOp = v
		case "allocs/op":
			allocsPerOp = v
		}
	}
	return bytesPerOp, allocsPerOp
}
