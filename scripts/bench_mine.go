//go:build ignore

// Command bench_mine runs the end-to-end mining benchmarks
// (BenchmarkMineParallelLocal, BenchmarkMineVariants, and
// BenchmarkMineSequentialAlloc in internal/eclat) and writes the results
// to BENCH_mine.json at the repository root — the committed perf
// trajectory for the real hot path: MineSequential vs MineParallelLocal
// at 1/2/4/8 workers, sparse vs bitset representation, the class-task
// engine's maximal/closed scaling at 1/2/4 workers plus a top-k row, and
// the scratch arena's allocs/op effect on the sequential recursion.
//
// The snapshot records NumCPU and GOMAXPROCS of the machine that
// produced it: speedup columns are only meaningful relative to the
// recorded core count (a single-core host shows a flat curve by
// construction).
//
// Usage (from the repository root):
//
//	go run scripts/bench_mine.go [-benchtime 3x] [-count 3] [-o BENCH_mine.json]
//
// With -count > 1 the fastest run per benchmark is kept, the usual way
// to suppress scheduling noise in committed snapshots.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// MineResult is one MineParallelLocal benchmark line.
type MineResult struct {
	// Repr is the tid-set representation ("sparse" or "bitset").
	Repr string `json:"repr"`
	// Workers is the worker-goroutine count; 0 marks the MineSequential
	// baseline ("workers=seq").
	Workers int `json:"workers"`
	// NsPerOp is the fastest observed time for one full mine.
	NsPerOp float64 `json:"nsPerOp"`
	// Speedup is the sequential baseline's NsPerOp over this one (1.0 for
	// the baseline itself).
	Speedup     float64 `json:"speedup"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// VariantResult is one BenchmarkMineVariants line: a non-all-frequent
// engine policy (maximal, closed, topk100) at a given worker count —
// the multicore the class-task engine opened for the variant miners.
type VariantResult struct {
	Variant string  `json:"variant"`
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"nsPerOp"`
	// Speedup is the same variant's workers=1 NsPerOp over this one.
	Speedup     float64 `json:"speedup"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// AllocResult is one BenchmarkMineSequentialAlloc line: the sequential
// miner with the scratch arena disabled vs enabled.
type AllocResult struct {
	Arena       string  `json:"arena"` // "off" or "on"
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// Snapshot is the BENCH_mine.json document.
type Snapshot struct {
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU / GOMAXPROCS of the producing host: the scaling columns
	// cannot exceed them, whatever the worker count.
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Dataset    string `json:"dataset"`
	SupportPct string `json:"supportPct"`
	Benchtime  string `json:"benchtime"`
	// Mine is the sequential-vs-parallel grid; Variants the engine's
	// maximal/closed/top-k scaling rows; SequentialAlloc the arena
	// ablation on the sequential path.
	Mine            []MineResult    `json:"mine"`
	Variants        []VariantResult `json:"variants"`
	SequentialAlloc []AllocResult   `json:"sequentialAlloc"`
}

var (
	mineLine = regexp.MustCompile(
		`^BenchmarkMineParallelLocal/repr=([a-z]+)/workers=(seq|\d+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	variantLine = regexp.MustCompile(
		`^BenchmarkMineVariants/variant=([a-z0-9]+)/workers=(\d+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	allocLine = regexp.MustCompile(
		`^BenchmarkMineSequentialAlloc/arena=(on|off)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
)

func main() {
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	count := flag.Int("count", 3, "go test -count value; the fastest run per benchmark is kept")
	out := flag.String("o", "BENCH_mine.json", "output file")
	flag.Parse()

	cmd := exec.Command("go", "test", "./internal/eclat",
		"-run", "^$", "-bench", "^BenchmarkMine(ParallelLocal|Variants|SequentialAlloc)$",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count))
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_mine: go test -bench failed:", err)
		os.Exit(1)
	}

	bestMine := map[[2]string]MineResult{}
	bestVariant := map[[2]string]VariantResult{}
	bestAlloc := map[string]AllocResult{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		if m := mineLine.FindStringSubmatch(line); m != nil {
			ns, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				continue
			}
			workers := 0
			if m[2] != "seq" {
				workers, _ = strconv.Atoi(m[2])
			}
			r := MineResult{Repr: m[1], Workers: workers, NsPerOp: ns}
			r.BytesPerOp, r.AllocsPerOp = parseMem(m[4])
			key := [2]string{r.Repr, m[2]}
			if prev, ok := bestMine[key]; !ok || r.NsPerOp < prev.NsPerOp {
				bestMine[key] = r
			}
			continue
		}
		if m := variantLine.FindStringSubmatch(line); m != nil {
			ns, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				continue
			}
			workers, _ := strconv.Atoi(m[2])
			r := VariantResult{Variant: m[1], Workers: workers, NsPerOp: ns}
			r.BytesPerOp, r.AllocsPerOp = parseMem(m[4])
			key := [2]string{r.Variant, m[2]}
			if prev, ok := bestVariant[key]; !ok || r.NsPerOp < prev.NsPerOp {
				bestVariant[key] = r
			}
			continue
		}
		if m := allocLine.FindStringSubmatch(line); m != nil {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			r := AllocResult{Arena: m[1], NsPerOp: ns}
			r.BytesPerOp, r.AllocsPerOp = parseMem(m[3])
			if prev, ok := bestAlloc[r.Arena]; !ok || r.NsPerOp < prev.NsPerOp {
				bestAlloc[r.Arena] = r
			}
		}
	}
	if len(bestMine) == 0 || len(bestVariant) == 0 || len(bestAlloc) == 0 {
		fmt.Fprintln(os.Stderr, "bench_mine: no benchmark lines parsed")
		os.Exit(1)
	}

	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dataset:    "T10.I6 n=20000 (gen seed default)",
		SupportPct: "0.25%",
		Benchtime:  *benchtime,
	}
	// Speedups are relative to the same representation's sequential
	// baseline.
	seqNs := map[string]float64{}
	for key, r := range bestMine {
		if key[1] == "seq" {
			seqNs[key[0]] = r.NsPerOp
		}
	}
	for _, r := range bestMine {
		if base := seqNs[r.Repr]; base > 0 && r.NsPerOp > 0 {
			r.Speedup = base / r.NsPerOp
		}
		snap.Mine = append(snap.Mine, r)
	}
	sort.Slice(snap.Mine, func(i, j int) bool {
		a, b := snap.Mine[i], snap.Mine[j]
		if a.Repr != b.Repr {
			return a.Repr > b.Repr // sparse before bitset
		}
		return a.Workers < b.Workers
	})
	// Variant speedups are relative to the same variant's workers=1 row.
	variantBase := map[string]float64{}
	for key, r := range bestVariant {
		if r.Workers == 1 {
			variantBase[key[0]] = r.NsPerOp
		}
	}
	for _, r := range bestVariant {
		if base := variantBase[r.Variant]; base > 0 && r.NsPerOp > 0 {
			r.Speedup = base / r.NsPerOp
		}
		snap.Variants = append(snap.Variants, r)
	}
	sort.Slice(snap.Variants, func(i, j int) bool {
		a, b := snap.Variants[i], snap.Variants[j]
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return a.Workers < b.Workers
	})
	for _, arena := range []string{"off", "on"} {
		snap.SequentialAlloc = append(snap.SequentialAlloc, bestAlloc[arena])
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_mine:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench_mine:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d mine, %d variant, %d alloc results)\n",
		*out, len(snap.Mine), len(snap.Variants), len(snap.SequentialAlloc))
}

// parseMem extracts "N B/op" and "M allocs/op" from the tail of a
// benchmark line (absent when the run did not report allocations).
func parseMem(tail string) (bytesPerOp, allocsPerOp float64) {
	fields := strings.Fields(tail)
	for i := 0; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			bytesPerOp = v
		case "allocs/op":
			allocsPerOp = v
		}
	}
	return bytesPerOp, allocsPerOp
}
