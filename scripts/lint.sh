#!/usr/bin/env sh
# Run the repo's contract lint suite exactly the way CI does, so a clean
# local run means a clean CI run.
#
#   ./scripts/lint.sh              # whole tree
#   ./scripts/lint.sh ./internal/service/...
#
# Exit codes follow reprolint: 0 clean, 1 findings, 2 usage/load errors.
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
    set -- ./...
fi

exec go run ./cmd/reprolint "$@"
