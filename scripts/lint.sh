#!/usr/bin/env sh
# Run the repo's contract lint suite exactly the way CI does, so a clean
# local run means a clean CI run: gofmt, the import-grouping check, then
# reprolint.
#
#   ./scripts/lint.sh              # whole tree
#   ./scripts/lint.sh ./internal/service/...
#
# Exit codes follow reprolint: 0 clean, 1 findings, 2 usage/load errors.
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
    set -- ./...
fi

# gofmt -l prints unformatted files; fixture modules under testdata are
# deliberately odd and excluded.
unformatted=$(find . -name '*.go' -not -path '*/testdata/*' -not -path './.git/*' -print0 | xargs -0 gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# Import layout: stdlib imports form one contiguous first group (gofmt
# only sorts within groups, so it cannot catch a split group itself).
go run scripts/importgroups.go

# The linter's own tests gate the lint run: a broken analyzer that
# reports nothing would otherwise make the tree look clean.
go test ./internal/analyzers/... ./cmd/reprolint/...

exec go run ./cmd/reprolint "$@"
