// Package repro is a Go reproduction of "A Localized Algorithm for
// Parallel Association Mining" (Zaki, Parthasarathy, Li — SPAA 1997), the
// paper that introduced the Eclat algorithm.
//
// It provides:
//
//   - the IBM Quest synthetic basket-data generator the paper's
//     evaluation uses (Generate, StandardConfig);
//   - sequential miners (Eclat and Apriori) and the paper's four parallel
//     algorithms (Eclat, Count Distribution, Data Distribution, Candidate
//     Distribution) plus the hybrid Eclat from the paper's future work,
//     all returning identical frequent-itemset results (Mine);
//   - association-rule generation from mined itemsets (Rules);
//   - a deterministic simulation of the paper's testbed — an H-host,
//     P-processors-per-host DEC Alpha cluster with per-host disks and a
//     Memory Channel interconnect — whose virtual-time reports regenerate
//     the paper's tables and figures (see cmd/experiments and
//     bench_test.go).
//
// Quick start:
//
//	d, _ := repro.Generate(repro.StandardConfig(10000))
//	res, info, _ := repro.Mine(d, repro.MineOptions{SupportPct: 0.25})
//	rules := repro.Rules(res, 0.9)
package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/apriori"
	"repro/internal/canddist"
	"repro/internal/cluster"
	"repro/internal/countdist"
	"repro/internal/datadist"
	"repro/internal/db"
	"repro/internal/dhp"
	"repro/internal/eclat"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/partition"
	"repro/internal/rules"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// Core value types.
type (
	// Item identifies one attribute of the basket data.
	Item = itemset.Item
	// TID identifies one transaction.
	TID = itemset.TID
	// Itemset is a sorted set of items.
	Itemset = itemset.Itemset
	// Transaction is one database row.
	Transaction = db.Transaction
	// Database is a horizontal transaction database.
	Database = db.Database
	// Result is the outcome of a mining run: frequent itemsets with
	// supports.
	Result = mining.Result
	// FrequentItemset pairs an itemset with its support count.
	FrequentItemset = mining.FrequentItemset
	// Rule is an association rule with confidence and lift.
	Rule = rules.Rule
	// GeneratorConfig parameterizes the synthetic data generator.
	GeneratorConfig = gen.Config
	// ClusterConfig describes the simulated cluster (hosts, processors
	// per host, disk/network/CPU cost models).
	ClusterConfig = cluster.Config
	// Report is the virtual-time accounting of a parallel run.
	Report = cluster.Report
	// Breakdown is one processor's resource accounting.
	Breakdown = stats.Breakdown
)

// NewItemset builds a sorted, deduplicated itemset.
func NewItemset(items ...Item) Itemset { return itemset.New(items...) }

// StandardConfig returns the paper's T10.I6 generator family (|T|=10,
// |I|=6, |L|=2000, N=1000) for the given number of transactions.
func StandardConfig(numTransactions int) GeneratorConfig { return gen.T10I6(numTransactions) }

// Generate produces a synthetic database; it is deterministic in
// cfg.Seed.
func Generate(cfg GeneratorConfig) (*Database, error) { return gen.Generate(cfg) }

// ReadFIMI loads a database in the FIMI text format (one transaction per
// line, space-separated integer items) — the de-facto interchange format
// of public association-mining datasets. numItems 0 infers the universe.
func ReadFIMI(r io.Reader, numItems int) (*Database, error) { return db.DecodeFIMI(r, numItems) }

// WriteResult serializes a mining result as line-oriented text
// ("support<TAB>items"); ReadResult parses it back.
func WriteResult(w io.Writer, res *Result) error { return mining.Write(w, res) }

// ReadResult parses a result previously written with WriteResult.
func ReadResult(r io.Reader) (*Result, error) { return mining.Read(r) }

// DefaultCluster returns the paper-calibrated configuration for an
// H-host, P-processors-per-host cluster.
func DefaultCluster(hosts, procsPerHost int) ClusterConfig {
	return cluster.Default(hosts, procsPerHost)
}

// Algorithm selects a mining algorithm.
type Algorithm int

// The available algorithms. AlgoEclat and AlgoApriori run sequentially
// when no cluster is configured; the rest require one.
const (
	AlgoEclat Algorithm = iota
	AlgoApriori
	AlgoCountDistribution
	AlgoDataDistribution
	AlgoCandidateDistribution
	AlgoEclatHybrid
	// AlgoPartition is the two-scan Partition algorithm (Savasere et
	// al.), a sequential related-work baseline.
	AlgoPartition
	// AlgoSampling is Toivonen's exact sampling algorithm, typically one
	// full scan.
	AlgoSampling
	// AlgoDHP is the hash-filtered Apriori of Park, Chen & Yu (the
	// sequential core of the PDM baseline).
	AlgoDHP
)

// String names the algorithm as the paper does.
func (a Algorithm) String() string {
	switch a {
	case AlgoEclat:
		return "Eclat"
	case AlgoApriori:
		return "Apriori"
	case AlgoCountDistribution:
		return "CountDistribution"
	case AlgoDataDistribution:
		return "DataDistribution"
	case AlgoCandidateDistribution:
		return "CandidateDistribution"
	case AlgoEclatHybrid:
		return "EclatHybrid"
	case AlgoPartition:
		return "Partition"
	case AlgoSampling:
		return "Sampling"
	case AlgoDHP:
		return "DHP"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// MineOptions configures a mining run.
type MineOptions struct {
	// Algorithm defaults to AlgoEclat.
	Algorithm Algorithm
	// SupportPct is the minimum support as a percentage of |D| (the
	// paper's experiments use 0.1). Ignored when SupportCount is set.
	SupportPct float64
	// SupportCount is the absolute minimum support; overrides SupportPct.
	SupportCount int
	// Hosts and ProcsPerHost select a simulated cluster for the parallel
	// algorithms; both default to 1. Sequential algorithms ignore them.
	Hosts        int
	ProcsPerHost int
	// Cluster overrides the whole cluster configuration (cost models,
	// memory). When nil, DefaultCluster(Hosts, ProcsPerHost) is used.
	Cluster *ClusterConfig
	// PartitionChunks is the number of in-memory chunks AlgoPartition
	// divides the database into (default 10).
	PartitionChunks int
	// SampleSize and SampleSeed drive AlgoSampling (defaults: 10% of the
	// database, seed 0); SampleLowerBy is Toivonen's safety margin in
	// (0, 1] (default 0.8 — lower means fewer misses but more candidates).
	SampleSize    int
	SampleSeed    int64
	SampleLowerBy float64
}

// RunInfo reports how a mining run went.
type RunInfo struct {
	// Algorithm that ran.
	Algorithm Algorithm
	// MinSup is the absolute support threshold used.
	MinSup int
	// Report is the cluster accounting for parallel algorithms (nil for
	// sequential runs).
	Report *Report
	// Scans is the number of database passes (sequential runs).
	Scans int
}

// MinSup resolves the absolute minimum support count these options imply
// for d (SupportCount wins over SupportPct; the paper's 0.1% is the
// default). The serving layer uses it to give percentage and absolute
// requests at the same threshold one cache identity.
func (o MineOptions) MinSup(d *Database) int { return o.minsup(d) }

func (o MineOptions) minsup(d *Database) int {
	if o.SupportCount > 0 {
		return o.SupportCount
	}
	if o.SupportPct > 0 {
		return d.MinSupCount(o.SupportPct)
	}
	return d.MinSupCount(0.1) // the paper's default support
}

func (o MineOptions) clusterConfig() ClusterConfig {
	if o.Cluster != nil {
		return *o.Cluster
	}
	h, p := o.Hosts, o.ProcsPerHost
	if h < 1 {
		h = 1
	}
	if p < 1 {
		p = 1
	}
	return cluster.Default(h, p)
}

// Mine discovers all frequent itemsets of d under the given options. All
// algorithms return identical results; they differ in the simulated
// execution profile captured by RunInfo.Report.
func Mine(d *Database, opts MineOptions) (*Result, *RunInfo, error) {
	return MineContext(context.Background(), d, opts)
}

// MineContext is Mine with cooperative cancellation. For the sequential
// Eclat and Apriori paths, ctx is consulted between equivalence classes
// and candidate levels respectively, so a cancel or deadline stops the
// mine promptly without per-intersection overhead. The remaining
// algorithms check ctx before starting and after finishing (a simulated
// cluster run is one indivisible step of virtual time). On cancellation
// it returns (nil, nil, ctx.Err()).
func MineContext(ctx context.Context, d *Database, opts MineOptions) (*Result, *RunInfo, error) {
	if d == nil {
		return nil, nil, fmt.Errorf("repro: nil database")
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	minsup := opts.minsup(d)
	info := &RunInfo{Algorithm: opts.Algorithm, MinSup: minsup}

	switch opts.Algorithm {
	case AlgoEclat:
		if opts.Hosts > 1 || opts.ProcsPerHost > 1 || opts.Cluster != nil {
			cl := cluster.New(opts.clusterConfig())
			res, rep := eclat.Mine(cl, d, minsup)
			info.Report = &rep
			return finishSimulated(ctx, res, info)
		}
		res, st, err := eclat.MineSequentialCtx(ctx, d, minsup, eclat.Options{})
		if err != nil {
			return nil, nil, err
		}
		info.Scans = st.Scans
		return res, info, nil
	case AlgoApriori:
		res, st, err := apriori.MineCtx(ctx, d, minsup)
		if err != nil {
			return nil, nil, err
		}
		info.Scans = st.Scans
		return res, info, nil
	case AlgoCountDistribution:
		cl := cluster.New(opts.clusterConfig())
		res, rep := countdist.Mine(cl, d, minsup)
		info.Report = &rep
		return finishSimulated(ctx, res, info)
	case AlgoDataDistribution:
		cl := cluster.New(opts.clusterConfig())
		res, rep := datadist.Mine(cl, d, minsup)
		info.Report = &rep
		return finishSimulated(ctx, res, info)
	case AlgoCandidateDistribution:
		cl := cluster.New(opts.clusterConfig())
		res, rep := canddist.Mine(cl, d, minsup)
		info.Report = &rep
		return finishSimulated(ctx, res, info)
	case AlgoEclatHybrid:
		cl := cluster.New(opts.clusterConfig())
		res, rep := eclat.MineHybrid(cl, d, minsup)
		info.Report = &rep
		return finishSimulated(ctx, res, info)
	case AlgoPartition:
		chunks := opts.PartitionChunks
		if chunks <= 0 {
			chunks = 10
		}
		res, st := partition.Mine(d, minsup, chunks)
		info.Scans = st.Scans
		return finishSimulated(ctx, res, info)
	case AlgoSampling:
		res, st := sampling.Mine(d, minsup, sampling.Options{
			SampleSize: opts.SampleSize,
			Seed:       opts.SampleSeed,
			LowerBy:    opts.SampleLowerBy,
		})
		info.Scans = st.FullScans
		return finishSimulated(ctx, res, info)
	case AlgoDHP:
		res, st := dhp.Mine(d, minsup, dhp.Options{})
		info.Scans = st.Scans
		return finishSimulated(ctx, res, info)
	default:
		return nil, nil, fmt.Errorf("repro: unknown algorithm %v", opts.Algorithm)
	}
}

// finishSimulated closes out an algorithm path without mid-run ctx
// checks: if ctx expired while the run was in flight, the caller asked
// for cancellation and gets ctx.Err() rather than a result.
func finishSimulated(ctx context.Context, res *Result, info *RunInfo) (*Result, *RunInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return res, info, nil
}

// MineMaximal discovers only the maximal frequent itemsets (those with no
// frequent superset) with the MaxEclat hybrid lookahead search. The
// subsets of the returned sets are exactly the full frequent collection.
func MineMaximal(d *Database, opts MineOptions) (*Result, error) {
	return MineMaximalContext(context.Background(), d, opts)
}

// MineMaximalContext is MineMaximal with cooperative cancellation,
// checked before and after the search.
func MineMaximalContext(ctx context.Context, d *Database, opts MineOptions) (*Result, error) {
	if d == nil {
		return nil, fmt.Errorf("repro: nil database")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, _ := eclat.MineMaximal(d, opts.minsup(d))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// MineClosed discovers the closed frequent itemsets — those with no
// strict superset of equal support, the lossless compressed form of the
// frequent collection.
func MineClosed(d *Database, opts MineOptions) (*Result, error) {
	return MineClosedContext(context.Background(), d, opts)
}

// MineClosedContext is MineClosed with cooperative cancellation, checked
// before and after the search.
func MineClosedContext(ctx context.Context, d *Database, opts MineOptions) (*Result, error) {
	if d == nil {
		return nil, fmt.Errorf("repro: nil database")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, _ := eclat.MineClosed(d, opts.minsup(d))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// Rules derives all association rules with confidence >= minConf from a
// mined result.
func Rules(res *Result, minConf float64) []Rule { return rules.Generate(res, minConf) }

// TopRules returns the n strongest rules (by confidence, then support).
func TopRules(rs []Rule, n int) []Rule { return rules.TopN(rs, n) }
