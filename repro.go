// Package repro is a Go reproduction of "A Localized Algorithm for
// Parallel Association Mining" (Zaki, Parthasarathy, Li — SPAA 1997), the
// paper that introduced the Eclat algorithm.
//
// It provides:
//
//   - the IBM Quest synthetic basket-data generator the paper's
//     evaluation uses (Generate, StandardConfig);
//   - sequential miners (Eclat and Apriori) and the paper's four parallel
//     algorithms (Eclat, Count Distribution, Data Distribution, Candidate
//     Distribution) plus the hybrid Eclat from the paper's future work,
//     all returning identical frequent-itemset results (Mine);
//   - association-rule generation from mined itemsets (Rules);
//   - a deterministic simulation of the paper's testbed — an H-host,
//     P-processors-per-host DEC Alpha cluster with per-host disks and a
//     Memory Channel interconnect — whose virtual-time reports regenerate
//     the paper's tables and figures (see cmd/experiments and
//     bench_test.go).
//
// Quick start:
//
//	d, _ := repro.Generate(repro.StandardConfig(10000))
//	res, info, _ := repro.Mine(context.Background(), d, repro.MineOptions{SupportPct: 0.25})
//	rules := repro.Rules(res, 0.9)
//
// The mining entry points are context-first: cancellation, deadlines and
// the observability trace (see RunInfo.Phases) all ride on the ctx
// argument.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/apriori"
	"repro/internal/canddist"
	"repro/internal/cluster"
	"repro/internal/countdist"
	"repro/internal/datadist"
	"repro/internal/db"
	"repro/internal/dhp"
	"repro/internal/eclat"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obsv"
	"repro/internal/partition"
	"repro/internal/rules"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/tidlist"
)

// Sentinel errors of the mining API. The serving layer maps them to HTTP
// status codes; library callers test with errors.Is.
var (
	// ErrInvalidSupport reports unusable MineOptions support settings: a
	// negative SupportPct/SupportCount, or both left at zero.
	ErrInvalidSupport = errors.New("repro: invalid support")
	// ErrUnknownAlgorithm reports an Algorithm value outside the defined
	// set.
	ErrUnknownAlgorithm = errors.New("repro: unknown algorithm")
	// ErrInvalidParallelism reports a negative MineOptions.Parallelism.
	ErrInvalidParallelism = errors.New("repro: invalid parallelism")
	// ErrCanceled wraps the context error when a mine stops early; the
	// returned error also matches context.Canceled or
	// context.DeadlineExceeded under errors.Is.
	ErrCanceled = errors.New("repro: mining canceled")
	// ErrInvalidRepresentation reports an unknown representation name
	// passed to ParseRepresentation (the -repr flag and the service's
	// "representation" job field map it to HTTP 400).
	ErrInvalidRepresentation = tidlist.ErrInvalidRepresentation
	// ErrInvalidTopK reports an unusable MineOptions.TopK: a negative
	// value, or a top-k request to an algorithm without the adaptive
	// support heap (anything but the local Eclat path).
	ErrInvalidTopK = errors.New("repro: invalid topk")
	// ErrInvalidMustContain reports an unusable MineOptions.MustContain: a
	// negative item id, or a targeted query to an algorithm without
	// class-level targeting (anything but the local Eclat path).
	ErrInvalidMustContain = errors.New("repro: invalid must-contain")
	// ErrInvalidMemoryBudget reports a negative MineOptions.MemoryBudget.
	ErrInvalidMemoryBudget = errors.New("repro: invalid memory budget")
)

// DefaultSupportPct is the paper's experimental support threshold (0.1%
// of |D|). The zero-value MineOptions no longer defaults to it silently:
// pass it explicitly when you want the paper's setting.
const DefaultSupportPct = 0.1

// Core value types.
type (
	// Item identifies one attribute of the basket data.
	Item = itemset.Item
	// TID identifies one transaction.
	TID = itemset.TID
	// Itemset is a sorted set of items.
	Itemset = itemset.Itemset
	// Transaction is one database row.
	Transaction = db.Transaction
	// Database is a horizontal transaction database.
	Database = db.Database
	// Result is the outcome of a mining run: frequent itemsets with
	// supports.
	Result = mining.Result
	// FrequentItemset pairs an itemset with its support count.
	FrequentItemset = mining.FrequentItemset
	// Rule is an association rule with confidence and lift.
	Rule = rules.Rule
	// GeneratorConfig parameterizes the synthetic data generator.
	GeneratorConfig = gen.Config
	// ClusterConfig describes the simulated cluster (hosts, processors
	// per host, disk/network/CPU cost models).
	ClusterConfig = cluster.Config
	// Report is the virtual-time accounting of a parallel run.
	Report = cluster.Report
	// Breakdown is one processor's resource accounting.
	Breakdown = stats.Breakdown
	// PhaseSpan is one named phase of a mining run with its start offset
	// and duration (see RunInfo.Phases). Spans imported from the cluster
	// simulator carry virtual time and report Virtual() == true.
	PhaseSpan = obsv.PhaseSpan
	// Representation selects the tid-set representation Eclat-family
	// algorithms mine through: ReprAuto (the zero value) decides per
	// equivalence class by density and tid span, ReprSparse forces the
	// paper's sorted tid-lists, ReprBitset forces the word-packed dense
	// kernel, ReprRoaring forces the containerized compressed encoding.
	Representation = tidlist.Repr
)

// The tid-set representations (see Representation).
const (
	ReprAuto    = tidlist.ReprAuto
	ReprSparse  = tidlist.ReprSparse
	ReprBitset  = tidlist.ReprBitset
	ReprRoaring = tidlist.ReprRoaring
)

// ParseRepresentation parses a representation name ("auto", "sparse",
// "bitset", "roaring"; "" means auto) — the values the -repr flag and the
// service's representation job field accept. Unknown names fail with an
// error matching ErrInvalidRepresentation.
func ParseRepresentation(s string) (Representation, error) { return tidlist.ParseRepr(s) }

// NewItemset builds a sorted, deduplicated itemset.
func NewItemset(items ...Item) Itemset { return itemset.New(items...) }

// StandardConfig returns the paper's T10.I6 generator family (|T|=10,
// |I|=6, |L|=2000, N=1000) for the given number of transactions.
func StandardConfig(numTransactions int) GeneratorConfig { return gen.T10I6(numTransactions) }

// Generate produces a synthetic database; it is deterministic in
// cfg.Seed.
func Generate(cfg GeneratorConfig) (*Database, error) { return gen.Generate(cfg) }

// ReadFIMI loads a database in the FIMI text format (one transaction per
// line, space-separated integer items) — the de-facto interchange format
// of public association-mining datasets. numItems 0 infers the universe.
func ReadFIMI(r io.Reader, numItems int) (*Database, error) { return db.DecodeFIMI(r, numItems) }

// WriteResult serializes a mining result as line-oriented text
// ("support<TAB>items"); ReadResult parses it back.
func WriteResult(w io.Writer, res *Result) error { return mining.Write(w, res) }

// ReadResult parses a result previously written with WriteResult.
func ReadResult(r io.Reader) (*Result, error) { return mining.Read(r) }

// DefaultCluster returns the paper-calibrated configuration for an
// H-host, P-processors-per-host cluster.
func DefaultCluster(hosts, procsPerHost int) ClusterConfig {
	return cluster.Default(hosts, procsPerHost)
}

// Algorithm selects a mining algorithm.
type Algorithm int

// The available algorithms. AlgoEclat and AlgoApriori run sequentially
// when no cluster is configured; the rest require one.
const (
	AlgoEclat Algorithm = iota
	AlgoApriori
	AlgoCountDistribution
	AlgoDataDistribution
	AlgoCandidateDistribution
	AlgoEclatHybrid
	// AlgoPartition is the two-scan Partition algorithm (Savasere et
	// al.), a sequential related-work baseline.
	AlgoPartition
	// AlgoSampling is Toivonen's exact sampling algorithm, typically one
	// full scan.
	AlgoSampling
	// AlgoDHP is the hash-filtered Apriori of Park, Chen & Yu (the
	// sequential core of the PDM baseline).
	AlgoDHP
)

// String names the algorithm as the paper does.
func (a Algorithm) String() string {
	switch a {
	case AlgoEclat:
		return "Eclat"
	case AlgoApriori:
		return "Apriori"
	case AlgoCountDistribution:
		return "CountDistribution"
	case AlgoDataDistribution:
		return "DataDistribution"
	case AlgoCandidateDistribution:
		return "CandidateDistribution"
	case AlgoEclatHybrid:
		return "EclatHybrid"
	case AlgoPartition:
		return "Partition"
	case AlgoSampling:
		return "Sampling"
	case AlgoDHP:
		return "DHP"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// MineOptions configures a mining run.
type MineOptions struct {
	// Algorithm defaults to AlgoEclat.
	Algorithm Algorithm
	// SupportPct is the minimum support as a percentage of |D| (the
	// paper's experiments use 0.1). Ignored when SupportCount is set.
	SupportPct float64
	// SupportCount is the absolute minimum support; overrides SupportPct.
	SupportCount int
	// Hosts and ProcsPerHost select a simulated cluster for the parallel
	// algorithms; both default to 1. Sequential algorithms ignore them.
	Hosts        int
	ProcsPerHost int
	// Cluster overrides the whole cluster configuration (cost models,
	// memory). When nil, DefaultCluster(Hosts, ProcsPerHost) is used.
	Cluster *ClusterConfig
	// PartitionChunks is the number of in-memory chunks AlgoPartition
	// divides the database into (default 10).
	PartitionChunks int
	// SampleSize and SampleSeed drive AlgoSampling (defaults: 10% of the
	// database, seed 0); SampleLowerBy is Toivonen's safety margin in
	// (0, 1] (default 0.8 — lower means fewer misses but more candidates).
	SampleSize    int
	SampleSeed    int64
	SampleLowerBy float64
	// Representation selects the tid-set representation for the
	// Eclat-family algorithms (AlgoEclat, AlgoEclatHybrid, and the
	// maximal/closed variants); the zero value ReprAuto adapts per
	// equivalence class. Non-Eclat algorithms ignore it.
	Representation Representation
	// Parallelism is the number of OS-level worker goroutines the real
	// (non-simulated) Eclat path mines with: 0 means runtime.GOMAXPROCS(0),
	// 1 forces the sequential miner, N > 1 runs eclat.MineParallelLocal
	// with N workers. Negative values are rejected with
	// ErrInvalidParallelism. Simulated-cluster algorithms and the other
	// sequential algorithms ignore it (their parallelism is the cluster
	// shape). Because MineParallelLocal's output is byte-identical to the
	// sequential miner's, Parallelism never changes the result — only how
	// fast it arrives — and is therefore not part of the serving layer's
	// cache identity.
	Parallelism int
	// TopK, when > 0, mines only the k highest-support itemsets (support
	// ties broken lexicographically): the engine's support heap raises the
	// effective threshold adaptively, and the output is byte-identical to
	// a full mine at the same floor truncated to k. When neither
	// SupportPct nor SupportCount is set, a top-k query defaults the floor
	// to support 1 instead of failing. Supported only on the local
	// (non-simulated) Eclat path; other algorithms and cluster shapes
	// reject it with ErrInvalidTopK. Not honored by MineMaximal/MineClosed
	// (adaptive pruning is unsound against their output contracts).
	TopK int
	// MustContain, when non-empty, restricts the mine to itemsets
	// containing every listed item — a targeted query, equal to
	// post-filtering a full mine but skipping the equivalence classes that
	// cannot produce qualifying sets. Negative items are rejected with
	// ErrInvalidMustContain, as is combining it with anything but the
	// local Eclat path. Composes with TopK (the k best among qualifying
	// sets).
	MustContain []int
	// MemoryBudget, when > 0, caps the bytes of stored bundle data a
	// store-backed vertical mine keeps resident at once: when the
	// source's mapped size exceeds the budget, the run switches to the
	// out-of-core protocol (bundle-locality class order, per-class
	// residency windows, eviction of dead segments). The output is
	// byte-identical to an unbudgeted mine, so — like Parallelism — the
	// budget is not part of the serving layer's cache identity. Sources
	// without a store mapping, and mines that fit the budget, run in-core
	// unchanged; negative budgets are rejected with
	// ErrInvalidMemoryBudget.
	MemoryBudget int64
}

// RunInfo reports how a mining run went.
type RunInfo struct {
	// Algorithm that ran.
	Algorithm Algorithm
	// MinSup is the absolute support threshold used.
	MinSup int
	// Report is the cluster accounting for parallel algorithms (nil for
	// sequential runs).
	Report *Report
	// Scans is the number of database passes (sequential runs).
	Scans int
	// Phases is the structured per-phase span trace of the run: the
	// paper's initialization/transformation/asynchronous break-up for
	// sequential Eclat, per-candidate-level spans for Apriori, and the
	// simulator's per-phase virtual maxima (marked Virtual) for the
	// cluster algorithms. cmd/assocmine renders it with -stats.
	Phases []PhaseSpan
	// WallNS is the real (wall-clock) duration of the run in
	// nanoseconds, phase-accounted by Phases.
	WallNS int64
	// Parallelism is the number of worker goroutines the run mined with
	// (1 for sequential paths, 0 for simulated-cluster runs, whose scale
	// is in Report).
	Parallelism int
	// Steals counts work-stealing transfers between workers (0 unless
	// Parallelism > 1).
	Steals int64
	// TopK echoes the request's TopK (0 for a full mine).
	TopK int
	// MustContain echoes the request's targeted-query items (nil for an
	// unrestricted mine).
	MustContain []int
	// EffectiveMinSup is the support threshold the run ended at: MinSup,
	// raised by the top-k support heap when TopK was set. 0 for
	// algorithms without the adaptive threshold (everything but the local
	// Eclat path).
	EffectiveMinSup int
	// MemoryBudget echoes the request's residency budget (0 when none).
	MemoryBudget int64
	// OutOfCore reports whether the run actually mined under the budget:
	// true only when the source was store-backed and its mapped size
	// exceeded MemoryBudget.
	OutOfCore bool
}

// MinSup resolves and validates the absolute minimum support count these
// options imply for d (SupportCount wins over SupportPct). It is the one
// validated entry point for the threshold: the serving layer uses it to
// give percentage and absolute requests at the same threshold one cache
// identity, and every mining entry point resolves through it. A
// zero-value MineOptions is an error (ErrInvalidSupport) rather than a
// silent mine at an implicit threshold — pass DefaultSupportPct
// explicitly for the paper's setting.
func (o MineOptions) MinSup(d *Database) (int, error) {
	return o.MinSupN(d.Len())
}

// MinSupN is MinSup for callers that know only the transaction count —
// the store-backed serving path, which resolves thresholds from dataset
// metadata without loading the horizontal data. It applies the same
// validation and the same ceil-based percentage conversion, so a
// percentage and its absolute count keep one cache identity regardless
// of which path resolved them.
func (o MineOptions) MinSupN(numTransactions int) (int, error) {
	switch {
	case o.SupportCount < 0:
		return 0, fmt.Errorf("%w: negative SupportCount %d", ErrInvalidSupport, o.SupportCount)
	case o.SupportPct < 0:
		return 0, fmt.Errorf("%w: negative SupportPct %v", ErrInvalidSupport, o.SupportPct)
	case o.SupportCount > 0:
		return o.SupportCount, nil
	case o.SupportPct > 0:
		c := int(math.Ceil(o.SupportPct / 100 * float64(numTransactions)))
		if c < 1 {
			c = 1
		}
		return c, nil
	case o.TopK > 0:
		// A top-k query does not need an explicit floor: the adaptive
		// threshold raises itself as itemsets are found, so default to the
		// weakest floor rather than rejecting the zero-support request.
		return 1, nil
	default:
		return 0, fmt.Errorf("%w: MineOptions must set SupportPct or SupportCount (the paper's experiments use SupportPct = %v)",
			ErrInvalidSupport, DefaultSupportPct)
	}
}

// Workers resolves and validates the worker count these options imply for
// the real Eclat path: Parallelism itself when positive,
// runtime.GOMAXPROCS(0) when zero, ErrInvalidParallelism when negative.
// Like MinSup it is the one validated entry point for the knob; the
// serving layer resolves through it when budgeting per-job workers.
func (o MineOptions) Workers() (int, error) {
	if o.Parallelism < 0 {
		return 0, fmt.Errorf("%w: negative Parallelism %d", ErrInvalidParallelism, o.Parallelism)
	}
	if o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return o.Parallelism, nil
}

// localEclat reports whether these options select the real
// (non-simulated) local Eclat path — the only path with the adaptive
// top-k threshold and class-level targeting.
func (o MineOptions) localEclat() bool {
	return o.Algorithm == AlgoEclat && o.Hosts <= 1 && o.ProcsPerHost <= 1 && o.Cluster == nil
}

// query validates the top-k / targeted-query options and converts
// MustContain to the itemset item type. asLocalEclat reports whether the
// dispatching path supports the query options at all; on any other path
// a non-zero TopK or MustContain is a typed error rather than a silent
// full mine.
func (o MineOptions) query(asLocalEclat bool) ([]itemset.Item, error) {
	if o.TopK < 0 {
		return nil, fmt.Errorf("%w: negative TopK %d", ErrInvalidTopK, o.TopK)
	}
	if o.TopK > 0 && !asLocalEclat {
		return nil, fmt.Errorf("%w: TopK requires the local Eclat path (algorithm %v, cluster shape %dx%d)",
			ErrInvalidTopK, o.Algorithm, o.Hosts, o.ProcsPerHost)
	}
	if len(o.MustContain) > 0 && !asLocalEclat {
		return nil, fmt.Errorf("%w: MustContain requires the local Eclat path (algorithm %v, cluster shape %dx%d)",
			ErrInvalidMustContain, o.Algorithm, o.Hosts, o.ProcsPerHost)
	}
	var must []itemset.Item
	for _, it := range o.MustContain {
		if it < 0 {
			return nil, fmt.Errorf("%w: negative item %d", ErrInvalidMustContain, it)
		}
		must = append(must, itemset.Item(it))
	}
	return must, nil
}

func (o MineOptions) clusterConfig() ClusterConfig {
	if o.Cluster != nil {
		return *o.Cluster
	}
	h, p := o.Hosts, o.ProcsPerHost
	if h < 1 {
		h = 1
	}
	if p < 1 {
		p = 1
	}
	return cluster.Default(h, p)
}

// Metric names of the repro package (reprolint/metricname: obsv metric
// names are package-level constants so the package's whole name set is
// greppable here).
const (
	mnMineRuns        = "mine_runs_total"
	mnMineErrors      = "mine_errors_total"
	mnMineDurationNS  = "mine_duration_ns"
	mnMinePhasePrefix = "mine_phase_"
	mnNSSuffix        = "_ns"
)

// Run-level metrics every mining entry point reports to the default
// observability registry.
var (
	mineRuns     = obsv.Default.Counter(mnMineRuns, "mining runs started through the repro API")
	mineErrors   = obsv.Default.Counter(mnMineErrors, "mining runs that returned an error (including cancellations)")
	mineDuration = obsv.Default.Histogram(mnMineDurationNS, "wall-clock duration of completed mining runs", nil)
)

// Mine discovers all frequent itemsets of d under the given options. All
// algorithms return identical results; they differ in the simulated
// execution profile captured by RunInfo.Report.
//
// ctx provides cooperative cancellation: the sequential Eclat and
// Apriori paths consult it between equivalence classes and candidate
// levels respectively, so a cancel or deadline stops the mine promptly
// without per-intersection overhead. The remaining algorithms check ctx
// before starting and after finishing (a simulated cluster run is one
// indivisible step of virtual time). On cancellation it returns
// (nil, nil, err) with err matching both ErrCanceled and the ctx error.
//
// When ctx carries no observability trace, Mine starts one; either way
// the run's phase spans are returned in RunInfo.Phases and phase
// durations are observed into the process metrics registry.
func Mine(ctx context.Context, d *Database, opts MineOptions) (*Result, *RunInfo, error) {
	if d == nil {
		return nil, nil, fmt.Errorf("repro: nil database")
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, wrapCanceled(err)
	}
	// Query options validate before support resolution: a malformed TopK
	// must surface as ErrInvalidTopK even when no support was given.
	if _, err := opts.query(opts.localEclat()); err != nil {
		return nil, nil, err
	}
	if opts.MemoryBudget < 0 {
		return nil, nil, fmt.Errorf("%w: negative MemoryBudget %d", ErrInvalidMemoryBudget, opts.MemoryBudget)
	}
	minsup, err := opts.MinSup(d)
	if err != nil {
		return nil, nil, err
	}
	if _, err := opts.Workers(); err != nil {
		return nil, nil, err
	}
	tr := obsv.TraceFrom(ctx)
	if tr == nil {
		tr = obsv.NewTrace()
		ctx = obsv.WithTrace(ctx, tr)
	}
	mineRuns.Inc()
	start := time.Now()
	pre := len(tr.Spans())
	info := &RunInfo{Algorithm: opts.Algorithm, MinSup: minsup}
	res, err := mine(ctx, d, opts, minsup, info)
	if err != nil {
		mineErrors.Inc()
		return nil, nil, err
	}
	info.WallNS = time.Since(start).Nanoseconds()
	if spans := tr.Spans(); pre <= len(spans) {
		info.Phases = spans[pre:]
	}
	mineDuration.Observe(info.WallNS)
	observePhases(info.Phases)
	return res, info, nil
}

// Source supplies a dataset to MineFrom in whichever layout it exists:
// horizontal transactions, the paper's vertical tid-set transform, or
// both. The persistent store's Dataset and the service registry's
// Dataset both implement it (serving vertical views zero-copy from the
// mmap bundle), and HorizontalSource/VerticalSource adapt in-memory
// data.
type Source interface {
	// NumTransactions is |D|, needed to resolve percentage supports
	// without materializing either layout.
	NumTransactions() int
	// Horizontal materializes the horizontal transaction database.
	Horizontal() (*Database, error)
	// VerticalSets returns one immutable tid-set per item (index = item
	// id, nil entries are absent items) under the given representation,
	// and ok=true when the source can serve that view without a
	// horizontal scan. ok=false routes MineFrom to the horizontal path.
	VerticalSets(r Representation) ([]tidlist.Set, bool)
}

// horizontalSource adapts an in-memory horizontal database as a Source
// with no vertical view.
type horizontalSource struct{ d *Database }

func (s horizontalSource) NumTransactions() int           { return s.d.Len() }
func (s horizontalSource) Horizontal() (*Database, error) { return s.d, nil }
func (s horizontalSource) VerticalSets(Representation) ([]tidlist.Set, bool) {
	return nil, false
}

// HorizontalSource adapts a horizontal database as a Source. MineFrom on
// it behaves exactly like Mine.
func HorizontalSource(d *Database) Source { return horizontalSource{d: d} }

// verticalSource adapts already-vertical in-memory data as a Source with
// no horizontal form.
type verticalSource struct {
	numTx int
	items []tidlist.Set
}

func (s verticalSource) NumTransactions() int { return s.numTx }
func (s verticalSource) Horizontal() (*Database, error) {
	return nil, fmt.Errorf("repro: vertical source has no horizontal form")
}
func (s verticalSource) VerticalSets(Representation) ([]tidlist.Set, bool) {
	return s.items, true
}

// VerticalSource adapts a dataset already in the paper's vertical layout
// — one immutable tid-set per item (index = item id) plus the
// transaction count — as a Source with no horizontal form. The sets are
// treated as immutable operands throughout: a mapped view is never
// written.
func VerticalSource(numTransactions int, items []tidlist.Set) Source {
	return verticalSource{numTx: numTransactions, items: items}
}

// MineFrom is Mine for any Source: when the options select the real
// (non-simulated) local Eclat path and the source serves a vertical
// view, it mines straight from the per-item tid-sets with zero
// horizontal scans (RunInfo.Scans is 0); otherwise it materializes the
// horizontal database and behaves exactly like Mine. Either way the
// result is byte-identical — callers need not branch on input shape, and
// the serving layer's cache identity is unchanged. Tracing, metrics and
// cancellation behave exactly as in Mine.
func MineFrom(ctx context.Context, src Source, opts MineOptions) (*Result, *RunInfo, error) {
	if src == nil {
		return nil, nil, fmt.Errorf("repro: nil source")
	}
	if opts.localEclat() {
		if items, ok := src.VerticalSets(opts.Representation); ok {
			return mineVerticalSets(ctx, src, items, opts)
		}
	}
	d, err := src.Horizontal()
	if err != nil {
		return nil, nil, err
	}
	return Mine(ctx, d, opts)
}

// residencySource is the optional Source extension the out-of-core path
// keys on: a source whose vertical sets are views over a store mapping
// can report the mapping's size and mint a residency tracker for it. The
// method returns the concrete store type (not an interface) so a nil
// result is an honest "no budgeting possible" signal.
type residencySource interface {
	BytesMapped() int64
	NewResidency(budget int64) *store.Residency
}

// mineVerticalSets runs the scan-free vertical Eclat path of MineFrom
// with Mine's validation, tracing and metrics contract.
func mineVerticalSets(ctx context.Context, src Source, items []tidlist.Set, opts MineOptions) (*Result, *RunInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, wrapCanceled(err)
	}
	must, err := opts.query(true)
	if err != nil {
		return nil, nil, err
	}
	if opts.MemoryBudget < 0 {
		return nil, nil, fmt.Errorf("%w: negative MemoryBudget %d", ErrInvalidMemoryBudget, opts.MemoryBudget)
	}
	numTx := src.NumTransactions()
	minsup, err := opts.MinSupN(numTx)
	if err != nil {
		return nil, nil, err
	}
	workers, err := opts.Workers()
	if err != nil {
		return nil, nil, err
	}
	in := eclat.VerticalInput{NumTransactions: numTx, Items: items}
	if opts.MemoryBudget > 0 {
		if rs, ok := src.(residencySource); ok && rs.BytesMapped() > opts.MemoryBudget {
			if r := rs.NewResidency(opts.MemoryBudget); r != nil {
				in.Residency = r
			}
		}
	}
	tr := obsv.TraceFrom(ctx)
	if tr == nil {
		tr = obsv.NewTrace()
		ctx = obsv.WithTrace(ctx, tr)
	}
	mineRuns.Inc()
	start := time.Now()
	pre := len(tr.Spans())
	info := &RunInfo{Algorithm: AlgoEclat, MinSup: minsup}
	res, st, err := eclat.MineVerticalLocal(ctx, in, minsup,
		eclat.Options{Representation: opts.Representation, Workers: workers,
			TopK: opts.TopK, MustContain: must})
	if err != nil {
		mineErrors.Inc()
		return nil, nil, wrapIfCtxErr(err)
	}
	info.Scans = st.Scans
	info.Parallelism = st.Workers
	info.Steals = st.Steals
	info.TopK = opts.TopK
	info.MustContain = append([]int(nil), opts.MustContain...)
	info.EffectiveMinSup = st.EffectiveMinSup
	info.MemoryBudget = opts.MemoryBudget
	info.OutOfCore = in.Residency != nil
	info.WallNS = time.Since(start).Nanoseconds()
	if spans := tr.Spans(); pre <= len(spans) {
		info.Phases = spans[pre:]
	}
	mineDuration.Observe(info.WallNS)
	observePhases(info.Phases)
	return res, info, nil
}

// observePhases records wall-clock phase durations into per-phase
// histograms (virtual spans are the cluster simulator's and are observed
// there instead).
func observePhases(spans []PhaseSpan) {
	for _, sp := range spans {
		if sp.Virtual() {
			continue
		}
		obsv.Default.Histogram(mnMinePhasePrefix+obsv.SanitizeName(sp.Name)+mnNSSuffix,
			"wall-clock duration of the "+sp.Name+" mining phase", nil).Observe(sp.DurationNS)
	}
}

// wrapCanceled folds a context error into ErrCanceled so callers can
// test either sentinel.
func wrapCanceled(err error) error {
	return fmt.Errorf("%w: %w", ErrCanceled, err)
}

// wrapIfCtxErr wraps errors that came from context cancellation and
// leaves everything else alone.
func wrapIfCtxErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return wrapCanceled(err)
	}
	return err
}

// mine dispatches to the selected algorithm.
func mine(ctx context.Context, d *Database, opts MineOptions, minsup int, info *RunInfo) (*Result, error) {
	switch opts.Algorithm {
	case AlgoEclat:
		if opts.Hosts > 1 || opts.ProcsPerHost > 1 || opts.Cluster != nil {
			return simulated(ctx, info, func(cl *cluster.Cluster) (*Result, cluster.Report) {
				return eclat.MineOpts(cl, d, minsup, eclat.Options{Representation: opts.Representation})
			}, opts)
		}
		workers, err := opts.Workers()
		if err != nil {
			return nil, err
		}
		must, err := opts.query(true)
		if err != nil {
			return nil, err
		}
		eopts := eclat.Options{
			Representation: opts.Representation,
			TopK:           opts.TopK,
			MustContain:    must,
		}
		var res *Result
		var st eclat.Stats
		if workers > 1 {
			eopts.Workers = workers
			res, st, err = eclat.MineParallelLocal(ctx, d, minsup, eopts)
		} else {
			res, st, err = eclat.MineSequentialOpts(ctx, d, minsup, eopts)
		}
		if err != nil {
			return nil, wrapIfCtxErr(err)
		}
		info.Scans = st.Scans
		info.Parallelism = st.Workers
		info.Steals = st.Steals
		info.TopK = opts.TopK
		info.MustContain = append([]int(nil), opts.MustContain...)
		info.EffectiveMinSup = st.EffectiveMinSup
		return res, nil
	case AlgoApriori:
		res, st, err := apriori.Mine(ctx, d, minsup)
		if err != nil {
			return nil, wrapIfCtxErr(err)
		}
		info.Scans = st.Scans
		return res, nil
	case AlgoCountDistribution:
		return simulated(ctx, info, func(cl *cluster.Cluster) (*Result, cluster.Report) {
			return countdist.Mine(cl, d, minsup)
		}, opts)
	case AlgoDataDistribution:
		return simulated(ctx, info, func(cl *cluster.Cluster) (*Result, cluster.Report) {
			return datadist.Mine(cl, d, minsup)
		}, opts)
	case AlgoCandidateDistribution:
		return simulated(ctx, info, func(cl *cluster.Cluster) (*Result, cluster.Report) {
			return canddist.Mine(cl, d, minsup)
		}, opts)
	case AlgoEclatHybrid:
		return simulated(ctx, info, func(cl *cluster.Cluster) (*Result, cluster.Report) {
			return eclat.MineHybridOpts(cl, d, minsup, eclat.Options{Representation: opts.Representation})
		}, opts)
	case AlgoPartition:
		chunks := opts.PartitionChunks
		if chunks <= 0 {
			chunks = 10
		}
		res, st := partition.Mine(d, minsup, chunks)
		info.Scans = st.Scans
		return finishIndivisible(ctx, res)
	case AlgoSampling:
		res, st := sampling.Mine(d, minsup, sampling.Options{
			SampleSize: opts.SampleSize,
			Seed:       opts.SampleSeed,
			LowerBy:    opts.SampleLowerBy,
		})
		info.Scans = st.FullScans
		return finishIndivisible(ctx, res)
	case AlgoDHP:
		res, st := dhp.Mine(d, minsup, dhp.Options{})
		info.Scans = st.Scans
		return finishIndivisible(ctx, res)
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownAlgorithm, opts.Algorithm)
	}
}

// simulated runs one cluster-backed algorithm: the whole simulation is a
// single "simulate" wall-clock span, and the report's per-phase virtual
// maxima (the paper's Table 2 rows) are imported into the trace as
// virtual spans.
func simulated(ctx context.Context, info *RunInfo, run func(*cluster.Cluster) (*Result, cluster.Report), opts MineOptions) (*Result, error) {
	tr := obsv.TraceFrom(ctx)
	sp := tr.Start("simulate")
	res, rep := run(cluster.New(opts.clusterConfig()))
	sp.End()
	info.Report = &rep
	for _, pm := range rep.PhaseMaxima() {
		tr.AddVirtual(pm.Name, pm.NS)
	}
	res2, err := finishIndivisible(ctx, res)
	return res2, err
}

// finishIndivisible closes out an algorithm path without mid-run ctx
// checks: if ctx expired while the run was in flight, the caller asked
// for cancellation and gets the cancellation error rather than a result.
func finishIndivisible(ctx context.Context, res *Result) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(err)
	}
	return res, nil
}

// MineMaximal discovers only the maximal frequent itemsets (those with no
// frequent superset) with the MaxEclat hybrid lookahead search. The
// subsets of the returned sets are exactly the full frequent collection.
// ctx provides cooperative cancellation, checked between sub-classes as
// in Mine. Parallelism selects the worker count exactly as on the Eclat
// path (the result is byte-identical at any count); TopK and MustContain
// are rejected (adaptive pruning is unsound against the maximal output
// contract).
func MineMaximal(ctx context.Context, d *Database, opts MineOptions) (*Result, *RunInfo, error) {
	return mineVariant(ctx, d, opts, "maximal",
		func(ctx context.Context, d *db.Database, minsup, workers int) (*Result, eclat.Stats, error) {
			res, st, err := eclat.MineMaximalOpts(ctx, d, minsup,
				eclat.Options{Representation: opts.Representation, Workers: workers})
			return res, st.Stats, err
		})
}

// MineClosed discovers the closed frequent itemsets — those with no
// strict superset of equal support, the lossless compressed form of the
// frequent collection. ctx provides cooperative cancellation, checked
// between sub-classes as in Mine. Parallelism and the query options
// behave as in MineMaximal.
func MineClosed(ctx context.Context, d *Database, opts MineOptions) (*Result, *RunInfo, error) {
	return mineVariant(ctx, d, opts, "closed",
		func(ctx context.Context, d *db.Database, minsup, workers int) (*Result, eclat.Stats, error) {
			return eclat.MineClosedOpts(ctx, d, minsup,
				eclat.Options{Representation: opts.Representation, Workers: workers})
		})
}

// mineVariant shares the validation, tracing and metrics of the
// maximal/closed searches.
func mineVariant(ctx context.Context, d *Database, opts MineOptions, name string, run func(context.Context, *db.Database, int, int) (*Result, eclat.Stats, error)) (*Result, *RunInfo, error) {
	if d == nil {
		return nil, nil, fmt.Errorf("repro: nil database")
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, wrapCanceled(err)
	}
	if _, err := opts.query(false); err != nil {
		return nil, nil, err
	}
	minsup, err := opts.MinSup(d)
	if err != nil {
		return nil, nil, err
	}
	workers, err := opts.Workers()
	if err != nil {
		return nil, nil, err
	}
	tr := obsv.TraceFrom(ctx)
	if tr == nil {
		tr = obsv.NewTrace()
		ctx = obsv.WithTrace(ctx, tr)
	}
	mineRuns.Inc()
	start := time.Now()
	pre := len(tr.Spans())
	info := &RunInfo{Algorithm: AlgoEclat, MinSup: minsup}
	sp := tr.Start(name)
	res, st, err := run(ctx, d, minsup, workers)
	sp.End()
	if err != nil {
		mineErrors.Inc()
		return nil, nil, wrapIfCtxErr(err)
	}
	if err := ctx.Err(); err != nil {
		mineErrors.Inc()
		return nil, nil, wrapCanceled(err)
	}
	info.Scans = st.Scans
	info.Parallelism = st.Workers
	info.Steals = st.Steals
	info.WallNS = time.Since(start).Nanoseconds()
	if spans := tr.Spans(); pre <= len(spans) {
		info.Phases = spans[pre:]
	}
	mineDuration.Observe(info.WallNS)
	observePhases(info.Phases)
	return res, info, nil
}

// Rules derives all association rules with confidence >= minConf from a
// mined result.
func Rules(res *Result, minConf float64) []Rule { return rules.Generate(res, minConf) }

// TopRules returns the n strongest rules (by confidence, then support).
func TopRules(rs []Rule, n int) []Rule { return rules.TopN(rs, n) }
