package repro

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// storeSource opens a persisted copy of d as a store-backed Source (the
// shape the service registry serves), with a tiny segment size so the
// bundle partitions across many segments.
func storeSource(t *testing.T, d *Database, segBytes int64) *store.Dataset {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ooc.ds")
	if err := store.CreateDatasetSeg(path, store.DatasetMeta("ooc", "test", d), d, store.VerticalLists(d), segBytes); err != nil {
		t.Fatal(err)
	}
	ds, err := store.OpenDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

// TestMineFromMemoryBudgetByteIdentical is the library-level acceptance
// check: mining a store-backed source under a budget smaller than its
// mapping is byte-identical to the plain in-memory mine, and the run
// reports itself out-of-core.
func TestMineFromMemoryBudgetByteIdentical(t *testing.T) {
	d, err := Generate(StandardConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	opts := MineOptions{SupportCount: 4}
	want, _, err := Mine(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if err := WriteResult(&wantBuf, want); err != nil {
		t.Fatal(err)
	}

	ds := storeSource(t, d, 256)
	for _, budget := range []int64{256, 1024, ds.BytesMapped() + 1} {
		bopts := opts
		bopts.MemoryBudget = budget
		got, info, err := MineFrom(context.Background(), ds, bopts)
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		var gotBuf bytes.Buffer
		if err := WriteResult(&gotBuf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
			t.Fatalf("budget=%d: budgeted mine differs from in-memory", budget)
		}
		if info.MemoryBudget != budget {
			t.Fatalf("budget=%d: info echoes %d", budget, info.MemoryBudget)
		}
		wantOOC := budget < ds.BytesMapped()
		if info.OutOfCore != wantOOC {
			t.Fatalf("budget=%d (mapped %d): OutOfCore=%v, want %v",
				budget, ds.BytesMapped(), info.OutOfCore, wantOOC)
		}
	}
}

// TestMineNegativeMemoryBudgetRejected covers both entry points.
func TestMineNegativeMemoryBudgetRejected(t *testing.T) {
	d := smallDB(t)
	if _, _, err := Mine(context.Background(), d, MineOptions{SupportCount: 2, MemoryBudget: -5}); !errors.Is(err, ErrInvalidMemoryBudget) {
		t.Fatalf("Mine: %v, want ErrInvalidMemoryBudget", err)
	}
	ds := storeSource(t, d, 0)
	if _, _, err := MineFrom(context.Background(), ds, MineOptions{SupportCount: 2, MemoryBudget: -5}); !errors.Is(err, ErrInvalidMemoryBudget) {
		t.Fatalf("MineFrom: %v, want ErrInvalidMemoryBudget", err)
	}
}

// TestMineMemoryBudgetIgnoredForMemorySources pins the graceful
// degradation: a budget on a source with no store mapping mines in-core.
func TestMineMemoryBudgetIgnoredForMemorySources(t *testing.T) {
	d := smallDB(t)
	_, info, err := Mine(context.Background(), d, MineOptions{SupportCount: 4, MemoryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info.OutOfCore {
		t.Fatal("in-memory mine claims to be out-of-core")
	}
}
