package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (section 8), plus ablation benches for the design choices
// the paper calls out (short-circuited intersections, greedy class
// scheduling, the pass-2 counting structure, and the
// horizontal-vs-vertical L2 analysis of section 4.2), and
// micro-benchmarks of the core primitives.
//
// The table/figure benches run the simulated cluster; the interesting
// output is the deterministic *virtual* time, reported through
// b.ReportMetric as vsec (virtual seconds) alongside the usual real
// ns/op. Benchmark databases are scaled down further than
// cmd/experiments' suite so that `go test -bench=.` completes quickly;
// cmd/experiments regenerates the full-scale tables.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/countdist"
	"repro/internal/eclat"
	"repro/internal/itemset"
	"repro/internal/paircount"
	"repro/internal/tidlist"
)

// benchDB caches the benchmark databases across benchmarks.
var benchDB = struct {
	sync.Mutex
	m map[string]*Database
}{m: map[string]*Database{}}

func getDB(b *testing.B, numTx int, seed int64) *Database {
	b.Helper()
	key := fmt.Sprintf("%d/%d", numTx, seed)
	benchDB.Lock()
	defer benchDB.Unlock()
	if d, ok := benchDB.m[key]; ok {
		return d
	}
	cfg := StandardConfig(numTx)
	cfg.Seed = seed
	d, err := Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchDB.m[key] = d
	return d
}

func benchCluster(h, p int) *cluster.Cluster {
	cfg := cluster.Default(h, p)
	cfg.HostMemBytes = 8 << 20 // memory scaled with the benchmark databases
	return cluster.New(cfg)
}

// ---------------------------------------------------------------------
// Table 1: database properties (generation throughput and the reported
// |D| / |T| / size columns).

func BenchmarkTable1DatabaseProperties(b *testing.B) {
	for _, numTx := range []int{10_000, 25_000} {
		b.Run(StandardConfig(numTx).Name(), func(b *testing.B) {
			var sizeMB float64
			for i := 0; i < b.N; i++ {
				cfg := StandardConfig(numTx)
				cfg.Seed = int64(i) + 1
				d, err := Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sizeMB = float64(d.SizeBytes()) / 1e6
			}
			b.ReportMetric(sizeMB, "MB")
		})
	}
}

// ---------------------------------------------------------------------
// Figure 6: number of frequent k-itemsets by size.

func BenchmarkFigure6FrequentItemsetsBySize(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	var total, maxK int
	for i := 0; i < b.N; i++ {
		res, _, err := Mine(context.Background(), d, MineOptions{SupportCount: minsup})
		if err != nil {
			b.Fatal(err)
		}
		total, maxK = res.Len(), res.MaxK()
	}
	b.ReportMetric(float64(total), "itemsets")
	b.ReportMetric(float64(maxK), "maxK")
}

// ---------------------------------------------------------------------
// Table 2: Eclat vs Count Distribution across cluster configurations.
// Virtual elapsed seconds are the table's cells.

func BenchmarkTable2EclatVsCountDistribution(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	configs := []struct{ p, h int }{{1, 1}, {1, 2}, {2, 2}, {1, 4}, {2, 4}}
	for _, hp := range configs {
		b.Run(fmt.Sprintf("Eclat/P=%d,H=%d", hp.p, hp.h), func(b *testing.B) {
			var vsec, setup float64
			for i := 0; i < b.N; i++ {
				cl := benchCluster(hp.h, hp.p)
				_, rep := eclat.MineOpts(cl, d, minsup, eclat.Options{})
				vsec = float64(rep.ElapsedNS) / 1e9
				setup = float64(rep.PhaseMaxNS(eclat.PhaseInit)+rep.PhaseMaxNS(eclat.PhaseTransform)) / 1e9
			}
			b.ReportMetric(vsec, "vsec")
			b.ReportMetric(setup, "vsec-setup")
		})
		b.Run(fmt.Sprintf("CountDist/P=%d,H=%d", hp.p, hp.h), func(b *testing.B) {
			var vsec float64
			for i := 0; i < b.N; i++ {
				cl := benchCluster(hp.h, hp.p)
				_, rep := countdist.Mine(cl, d, minsup)
				vsec = float64(rep.ElapsedNS) / 1e9
			}
			b.ReportMetric(vsec, "vsec")
		})
	}
}

// ---------------------------------------------------------------------
// Figure 7: Eclat speedup over its own uniprocessor run.

func BenchmarkFigure7EclatSpeedup(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	base := func() float64 {
		cl := benchCluster(1, 1)
		_, rep := eclat.MineOpts(cl, d, minsup, eclat.Options{})
		return float64(rep.ElapsedNS)
	}()
	for _, hp := range []struct{ p, h int }{{1, 2}, {2, 2}, {1, 4}, {1, 8}, {2, 4}} {
		b.Run(fmt.Sprintf("P=%d,H=%d,T=%d", hp.p, hp.h, hp.p*hp.h), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cl := benchCluster(hp.h, hp.p)
				_, rep := eclat.MineOpts(cl, d, minsup, eclat.Options{})
				speedup = base / float64(rep.ElapsedNS)
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// ---------------------------------------------------------------------
// Ablations.

// The short-circuit mechanism of section 5.3: same results, fewer
// element comparisons.
func BenchmarkAblationShortCircuit(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				_, st, _ := eclat.MineSequentialOpts(context.Background(), d, minsup, eclat.Options{NoShortCircuit: off})
				ops = float64(st.IntersectOps)
			}
			b.ReportMetric(ops/1e6, "Mops")
		})
	}
}

// Greedy weighted scheduling (section 5.2.1) vs naive round-robin:
// the metric is the virtual elapsed time, which grows with the
// asynchronous-phase imbalance.
func BenchmarkAblationScheduling(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	variants := []struct {
		name string
		opts eclat.Options
	}{
		{"greedy", eclat.Options{}},
		{"roundrobin", eclat.Options{RoundRobinSchedule: true}},
		{"support-weighted", eclat.Options{SupportWeightedSchedule: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var vsec, async float64
			for i := 0; i < b.N; i++ {
				cl := benchCluster(4, 1)
				_, rep := eclat.MineOpts(cl, d, minsup, v.opts)
				vsec = float64(rep.ElapsedNS) / 1e9
				async = float64(rep.PhaseMaxNS(eclat.PhaseAsync)) / 1e9
			}
			b.ReportMetric(vsec, "vsec")
			b.ReportMetric(async, "vsec-async")
		})
	}
}

// Count Distribution's pass 2: the faithful hash-tree count vs the
// CCPD-style triangular array (the structure Eclat's own initialization
// uses).
func BenchmarkAblationPass2Structure(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	for _, tri := range []bool{false, true} {
		name := "hashtree"
		if tri {
			name = "triangular"
		}
		b.Run(name, func(b *testing.B) {
			var vsec float64
			for i := 0; i < b.N; i++ {
				cl := benchCluster(2, 1)
				_, rep := countdist.MineOpts(cl, d, minsup, countdist.Options{TriangularPass2: tri})
				vsec = float64(rep.ElapsedNS) / 1e9
			}
			b.ReportMetric(vsec, "vsec")
		})
	}
}

// Section 4.2's operation-count analysis: computing L2 from 1-item
// tid-list intersections versus horizontal pair counting. The paper
// estimates ~10^9 vs ~4.5x10^7 operations for its workload and concludes
// Eclat should use the horizontal layout for L2; this bench measures the
// same two quantities on the benchmark database.
func BenchmarkAblationVerticalL2VsHorizontal(b *testing.B) {
	d := getDB(b, 10_000, 999)
	b.Run("horizontal-paircount", func(b *testing.B) {
		var ops float64
		for i := 0; i < b.N; i++ {
			pc := paircount.New(d.NumItems)
			ops = float64(pc.AddPartition(d))
		}
		b.ReportMetric(ops/1e6, "Mops")
	})
	b.Run("vertical-1item-intersect", func(b *testing.B) {
		// Build per-item tid-lists once.
		lists := make([]tidlist.List, d.NumItems)
		for _, tx := range d.Transactions {
			for _, it := range tx.Items {
				lists[it] = append(lists[it], tx.TID)
			}
		}
		b.ResetTimer()
		var ops float64
		for i := 0; i < b.N; i++ {
			var total int64
			// Intersect every pair of non-empty item lists, as a vertical
			// L2 computation would.
			for a := 0; a < d.NumItems; a++ {
				if len(lists[a]) == 0 {
					continue
				}
				for bb := a + 1; bb < d.NumItems; bb++ {
					if len(lists[bb]) == 0 {
						continue
					}
					total += int64(len(lists[a]) + len(lists[bb]))
				}
			}
			ops = float64(total)
		}
		b.ReportMetric(ops/1e6, "Mops")
	})
}

// The external-memory transformation (the paper's in-progress
// improvement) vs the memory-mapped transformation, in the regime where
// the mapped regions overflow host memory and page.
func BenchmarkAblationTransformStrategy(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	mk := func(mem int64) *cluster.Cluster {
		cfg := cluster.Default(1, 1)
		cfg.HostMemBytes = mem
		return cluster.New(cfg)
	}
	for _, tc := range []struct {
		name string
		mem  int64
		ext  bool
	}{
		{"mmap/ample-memory", 256 << 20, false},
		{"external/ample-memory", 256 << 20, true},
		{"mmap/tight-memory", 512 << 10, false},
		{"external/tight-memory", 512 << 10, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var vsec float64
			for i := 0; i < b.N; i++ {
				_, rep := eclat.MineOpts(mk(tc.mem), d, minsup, eclat.Options{ExternalTransform: tc.ext})
				vsec = float64(rep.ElapsedNS) / 1e9
			}
			b.ReportMetric(vsec, "vsec")
		})
	}
}

// CCPD's shared candidate tree within a host vs Count Distribution's
// per-processor replicas, on a memory-tight 1x4 host.
func BenchmarkAblationSharedTreeCCPD(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	for _, shared := range []bool{false, true} {
		name := "replicated"
		if shared {
			name = "shared-ccpd"
		}
		b.Run(name, func(b *testing.B) {
			var vsec float64
			for i := 0; i < b.N; i++ {
				cfg := cluster.Default(1, 4)
				cfg.HostMemBytes = 8 << 20
				_, rep := countdist.MineOpts(cluster.New(cfg), d, minsup,
					countdist.Options{SharedTree: shared})
				vsec = float64(rep.ElapsedNS) / 1e9
			}
			b.ReportMetric(vsec, "vsec")
		})
	}
}

// Scan counts of the related-work sequential algorithms (the I/O
// comparison framing the paper's introduction: Apriori scans per level,
// Partition twice, Sampling typically once plus the sample, Eclat's
// vertical layout twice in-memory / three times on the testbed).
func BenchmarkRelatedWorkScans(b *testing.B) {
	// The regular-seed database (not the itemset-rich instance): the
	// sampling algorithm's one-scan property is a statistical claim about
	// typical data.
	d := getDB(b, 25_000, 1997)
	minsup := d.MinSupCount(0.25)
	for _, algo := range []Algorithm{AlgoApriori, AlgoPartition, AlgoSampling, AlgoDHP, AlgoEclat} {
		b.Run(algo.String(), func(b *testing.B) {
			var scans int
			for i := 0; i < b.N; i++ {
				_, info, err := Mine(context.Background(), d, MineOptions{
					Algorithm:       algo,
					SupportCount:    minsup,
					PartitionChunks: 4,
					SampleSize:      8000,
					SampleLowerBy:   0.6,
				})
				if err != nil {
					b.Fatal(err)
				}
				scans = info.Scans
			}
			b.ReportMetric(float64(scans), "scans")
		})
	}
}

// MaxEclat's lookahead: maximal mining vs enumerating the full lattice.
func BenchmarkMaximalVsFull(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	b.Run("full", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			res, _ := eclat.MineSequential(d, minsup)
			n = res.Len()
		}
		b.ReportMetric(float64(n), "itemsets")
	})
	b.Run("maximal", func(b *testing.B) {
		var n int
		var hits int64
		for i := 0; i < b.N; i++ {
			res, st, _ := eclat.MineMaximalOpts(context.Background(), d, minsup, eclat.Options{})
			n = res.Len()
			hits = st.LookaheadHits
		}
		b.ReportMetric(float64(n), "itemsets")
		b.ReportMetric(float64(hits), "lookahead-hits")
	})
}

// Diffsets (the dEclat refinement) vs tid-lists: identical results;
// compare real time and the set-operation element counts.
func BenchmarkDiffsetsVsTidlists(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	b.Run("tidlists", func(b *testing.B) {
		var ops float64
		for i := 0; i < b.N; i++ {
			_, st := eclat.MineSequential(d, minsup)
			ops = float64(st.IntersectOps)
		}
		b.ReportMetric(ops/1e6, "Mops")
	})
	b.Run("diffsets", func(b *testing.B) {
		var ops float64
		for i := 0; i < b.N; i++ {
			_, st, _ := eclat.MineSequentialDiffsetsOpts(context.Background(), d, minsup, eclat.Options{})
			ops = float64(st.DiffOps)
		}
		b.ReportMetric(ops/1e6, "Mops")
	})
}

// Closed-itemset mining: the post-filter over full enumeration vs the
// CHARM search that prunes the lattice itself.
func BenchmarkClosedMining(b *testing.B) {
	d := getDB(b, 25_000, 999)
	minsup := d.MinSupCount(0.25)
	b.Run("filter", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			res, _, _ := eclat.MineClosedOpts(context.Background(), d, minsup, eclat.Options{})
			n = res.Len()
		}
		b.ReportMetric(float64(n), "closed")
	})
	b.Run("charm", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			res, _, _ := eclat.MineClosedCHARMOpts(context.Background(), d, minsup, eclat.Options{})
			n = res.Len()
		}
		b.ReportMetric(float64(n), "closed")
	})
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the core primitives.

func randomTidList(rng *rand.Rand, n, universe int) tidlist.List {
	seen := map[itemset.TID]bool{}
	for len(seen) < n {
		seen[itemset.TID(rng.Intn(universe))] = true
	}
	out := make(tidlist.List, 0, n)
	for t := range seen {
		out = append(out, t)
	}
	// Sort via insertion into a fresh slice (small n); keep it simple.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func BenchmarkIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomTidList(rng, 2000, 100_000)
	y := randomTidList(rng, 2000, 100_000)
	buf := make(tidlist.List, 0, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = tidlist.IntersectInto(buf, x, y)
	}
}

func BenchmarkIntersectShortCircuit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomTidList(rng, 2000, 100_000)
	y := randomTidList(rng, 2000, 100_000)
	buf := make(tidlist.List, 0, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _, _ = tidlist.IntersectShortCircuit(buf, x, y, 500)
	}
}

func BenchmarkPairCounting(b *testing.B) {
	d := getDB(b, 10_000, 1997)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pc := paircount.New(d.NumItems)
		pc.AddPartition(d)
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := StandardConfig(5000)
		cfg.Seed = int64(i + 1)
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialEclat(b *testing.B) {
	d := getDB(b, 10_000, 1997)
	minsup := d.MinSupCount(0.5)
	for i := 0; i < b.N; i++ {
		eclat.MineSequential(d, minsup)
	}
}

func BenchmarkSequentialApriori(b *testing.B) {
	d := getDB(b, 10_000, 1997)
	minsup := d.MinSupCount(0.5)
	for i := 0; i < b.N; i++ {
		if _, _, err := Mine(context.Background(), d, MineOptions{Algorithm: AlgoApriori, SupportCount: minsup}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleGeneration(b *testing.B) {
	d := getDB(b, 10_000, 1997)
	res, _, err := Mine(context.Background(), d, MineOptions{SupportPct: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(Rules(res, 0.9))
	}
	b.ReportMetric(float64(n), "rules")
}
