package repro_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro"
)

// TestMineTopKFacade: the public TopK option returns exactly the K
// highest-support itemsets of the equivalent full mine, and RunInfo
// reports the query and the effective threshold the heap ended at.
func TestMineTopKFacade(t *testing.T) {
	d, err := repro.Generate(repro.StandardConfig(800))
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := repro.Mine(context.Background(), d, repro.MineOptions{SupportPct: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	want := &repro.Result{MinSup: full.MinSup, NumTransactions: full.NumTransactions}
	want.Itemsets = append(want.Itemsets, full.Itemsets...)
	want.TruncateTopK(10)

	got, info, err := repro.Mine(context.Background(), d, repro.MineOptions{SupportPct: 1.0, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Itemsets, want.Itemsets) {
		t.Fatalf("TopK=10 mine returned %d itemsets differing from truncated full mine (%d)", got.Len(), want.Len())
	}
	if info.TopK != 10 {
		t.Fatalf("info.TopK = %d, want 10", info.TopK)
	}
	if info.EffectiveMinSup < full.MinSup {
		t.Fatalf("info.EffectiveMinSup = %d, below the floor %d", info.EffectiveMinSup, full.MinSup)
	}

	// With no support threshold at all, TopK alone is a valid query: the
	// floor defaults to support 1 and the heap does all the pruning.
	floorless, info1, err := repro.Mine(context.Background(), d, repro.MineOptions{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if floorless.Len() != 3 {
		t.Fatalf("floorless TopK=3 returned %d itemsets", floorless.Len())
	}
	if floorless.MinSup != 1 {
		t.Fatalf("floorless TopK mine used MinSup = %d, want 1", floorless.MinSup)
	}
	if info1.EffectiveMinSup < 1 {
		t.Fatalf("info.EffectiveMinSup = %d", info1.EffectiveMinSup)
	}
}

// TestMineTargetedFacade: MustContain returns the full mine post-filtered
// to supersets of the queried items, with the query echoed in RunInfo.
func TestMineTargetedFacade(t *testing.T) {
	d, err := repro.Generate(repro.StandardConfig(800))
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := repro.Mine(context.Background(), d, repro.MineOptions{SupportPct: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Anchor on an item that actually appears in the output.
	anchor := int(full.Itemsets[0].Set[0])
	got, info, err := repro.Mine(context.Background(), d, repro.MineOptions{SupportPct: 1.0, MustContain: []int{anchor}})
	if err != nil {
		t.Fatal(err)
	}
	want := &repro.Result{MinSup: full.MinSup, NumTransactions: full.NumTransactions}
	for _, f := range full.Itemsets {
		for _, it := range f.Set {
			if int(it) == anchor {
				want.Itemsets = append(want.Itemsets, f)
				break
			}
		}
	}
	if !reflect.DeepEqual(got.Itemsets, want.Itemsets) {
		t.Fatalf("targeted mine returned %d itemsets, post-filter oracle has %d", got.Len(), want.Len())
	}
	if len(info.MustContain) != 1 || info.MustContain[0] != anchor {
		t.Fatalf("info.MustContain = %v, want [%d]", info.MustContain, anchor)
	}
	if got.Len() == 0 {
		t.Fatal("anchored targeted query returned nothing — anchor selection broken")
	}
}

// TestMineQueryOptionValidation: the typed sentinels gate every
// mis-routed or malformed query at the facade.
func TestMineQueryOptionValidation(t *testing.T) {
	d, err := repro.Generate(repro.StandardConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts repro.MineOptions
		want error
	}{
		{"negative topk", repro.MineOptions{SupportPct: 2.0, TopK: -1}, repro.ErrInvalidTopK},
		{"negative topk no support", repro.MineOptions{TopK: -1}, repro.ErrInvalidTopK},
		{"topk on apriori", repro.MineOptions{Algorithm: repro.AlgoApriori, SupportPct: 2.0, TopK: 5}, repro.ErrInvalidTopK},
		{"topk on cluster eclat", repro.MineOptions{SupportPct: 2.0, Hosts: 2, ProcsPerHost: 2, TopK: 5}, repro.ErrInvalidTopK},
		{"negative contains item", repro.MineOptions{SupportPct: 2.0, MustContain: []int{1, -2}}, repro.ErrInvalidMustContain},
		{"contains on partition", repro.MineOptions{Algorithm: repro.AlgoPartition, SupportPct: 2.0, MustContain: []int{1}}, repro.ErrInvalidMustContain},
	} {
		if _, _, err := repro.Mine(context.Background(), d, tc.opts); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// The maximal/closed variants reject the query options too: a
	// truncated or filtered result would break their subsumption filters.
	if _, _, err := repro.MineMaximal(context.Background(), d, repro.MineOptions{SupportPct: 2.0, TopK: 5}); !errors.Is(err, repro.ErrInvalidTopK) {
		t.Fatalf("MineMaximal TopK: err = %v, want ErrInvalidTopK", err)
	}
	if _, _, err := repro.MineClosed(context.Background(), d, repro.MineOptions{SupportPct: 2.0, MustContain: []int{1}}); !errors.Is(err, repro.ErrInvalidMustContain) {
		t.Fatalf("MineClosed MustContain: err = %v, want ErrInvalidMustContain", err)
	}
}
