package repro

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestMineCanceledBeforeStart(t *testing.T) {
	d := smallDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{
		AlgoEclat, AlgoApriori, AlgoCountDistribution, AlgoDataDistribution,
		AlgoCandidateDistribution, AlgoEclatHybrid, AlgoPartition, AlgoSampling, AlgoDHP,
	} {
		res, info, err := Mine(ctx, d, MineOptions{Algorithm: algo, SupportPct: 1.0})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", algo, err)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled sentinel", algo, err)
		}
		if res != nil || info != nil {
			t.Fatalf("%v: expected nil result and info on cancellation", algo)
		}
	}
	if _, _, err := MineMaximal(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MineMaximal: %v", err)
	}
	if _, _, err := MineClosed(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MineClosed: %v", err)
	}
	// The scan-free vertical path forwards cancellation identically.
	if _, _, err := MineFrom(ctx, VerticalSource(0, nil), MineOptions{Algorithm: AlgoEclat, SupportPct: 1.0}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MineFrom (vertical): %v", err)
	}
}

// TestMineCancelMidRun cancels an in-flight sequential Eclat run from
// another goroutine and expects it to stop promptly (the ctx is
// consulted between equivalence classes) rather than mine to completion.
func TestMineCancelMidRun(t *testing.T) {
	d, err := Generate(StandardConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		close(started)
		time.Sleep(5 * time.Millisecond) // let the mine get under way
		cancel()
	}()
	<-started
	res, _, err := Mine(ctx, d, MineOptions{Algorithm: AlgoEclat, SupportPct: 0.1})
	if err == nil {
		// The mine legitimately finished before the cancel landed; that
		// is not a failure of cancellation, just a fast machine.
		t.Skip("mine completed before cancellation landed")
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want context.Canceled and ErrCanceled", err)
	}
	if res != nil {
		t.Fatal("canceled mine returned a result")
	}
}

func TestMineDeadline(t *testing.T) {
	d := smallDB(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := Mine(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
