package repro

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func TestMineContextMatchesMine(t *testing.T) {
	d := smallDB(t)
	for _, algo := range []Algorithm{AlgoEclat, AlgoApriori, AlgoPartition} {
		// PartitionChunks 2 keeps the per-chunk local minsup well above 1
		// on a 1000-transaction database.
		opts := MineOptions{Algorithm: algo, SupportPct: 1.0, PartitionChunks: 2}
		want, _, err := Mine(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, info, err := MineContext(context.Background(), d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if info.Algorithm != algo {
			t.Fatalf("%v: info reports %v", algo, info.Algorithm)
		}
		var wb, gb bytes.Buffer
		if err := WriteResult(&wb, want); err != nil {
			t.Fatal(err)
		}
		if err := WriteResult(&gb, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
			t.Fatalf("%v: MineContext result differs from Mine", algo)
		}
	}
}

func TestMineContextCanceledBeforeStart(t *testing.T) {
	d := smallDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{
		AlgoEclat, AlgoApriori, AlgoCountDistribution, AlgoDataDistribution,
		AlgoCandidateDistribution, AlgoEclatHybrid, AlgoPartition, AlgoSampling, AlgoDHP,
	} {
		res, info, err := MineContext(ctx, d, MineOptions{Algorithm: algo, SupportPct: 1.0})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", algo, err)
		}
		if res != nil || info != nil {
			t.Fatalf("%v: expected nil result and info on cancellation", algo)
		}
	}
	if _, err := MineMaximalContext(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineMaximalContext: %v", err)
	}
	if _, err := MineClosedContext(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineClosedContext: %v", err)
	}
}

// TestMineContextCancelMidRun cancels an in-flight sequential Eclat run
// from another goroutine and expects it to stop promptly (the ctx is
// consulted between equivalence classes) rather than mine to completion.
func TestMineContextCancelMidRun(t *testing.T) {
	d, err := Generate(StandardConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		close(started)
		time.Sleep(5 * time.Millisecond) // let the mine get under way
		cancel()
	}()
	<-started
	res, _, err := MineContext(ctx, d, MineOptions{Algorithm: AlgoEclat, SupportPct: 0.1})
	if err == nil {
		// The mine legitimately finished before the cancel landed; that
		// is not a failure of cancellation, just a fast machine.
		t.Skip("mine completed before cancellation landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled mine returned a result")
	}
}

func TestMineContextDeadline(t *testing.T) {
	d := smallDB(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := MineContext(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
