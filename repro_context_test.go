package repro

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// TestDeprecatedWrappersMatchMine pins the compatibility contract of the
// old *Context names: they are thin wrappers over the context-first
// Mine/MineMaximal/MineClosed and must return identical results.
func TestDeprecatedWrappersMatchMine(t *testing.T) {
	d := smallDB(t)
	for _, algo := range []Algorithm{AlgoEclat, AlgoApriori, AlgoPartition} {
		// PartitionChunks 2 keeps the per-chunk local minsup well above 1
		// on a 1000-transaction database.
		opts := MineOptions{Algorithm: algo, SupportPct: 1.0, PartitionChunks: 2}
		want, _, err := Mine(context.Background(), d, opts)
		if err != nil {
			t.Fatal(err)
		}
		//lint:ignore SA1019 the deprecated wrapper is the thing under test
		//reprolint:ignore ctxfirst the deprecated wrapper is the thing under test
		got, info, err := MineContext(context.Background(), d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if info.Algorithm != algo {
			t.Fatalf("%v: info reports %v", algo, info.Algorithm)
		}
		var wb, gb bytes.Buffer
		if err := WriteResult(&wb, want); err != nil {
			t.Fatal(err)
		}
		if err := WriteResult(&gb, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
			t.Fatalf("%v: MineContext result differs from Mine", algo)
		}
	}
}

func TestMineCanceledBeforeStart(t *testing.T) {
	d := smallDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{
		AlgoEclat, AlgoApriori, AlgoCountDistribution, AlgoDataDistribution,
		AlgoCandidateDistribution, AlgoEclatHybrid, AlgoPartition, AlgoSampling, AlgoDHP,
	} {
		res, info, err := Mine(ctx, d, MineOptions{Algorithm: algo, SupportPct: 1.0})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", algo, err)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled sentinel", algo, err)
		}
		if res != nil || info != nil {
			t.Fatalf("%v: expected nil result and info on cancellation", algo)
		}
	}
	if _, err := MineMaximal(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MineMaximal: %v", err)
	}
	if _, err := MineClosed(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MineClosed: %v", err)
	}
	//lint:ignore SA1019 wrapper must forward cancellation like the new name
	//reprolint:ignore ctxfirst the deprecated wrapper is the thing under test
	if _, err := MineMaximalContext(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineMaximalContext: %v", err)
	}
	//lint:ignore SA1019 wrapper must forward cancellation like the new name
	//reprolint:ignore ctxfirst the deprecated wrapper is the thing under test
	if _, err := MineClosedContext(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineClosedContext: %v", err)
	}
}

// TestMineCancelMidRun cancels an in-flight sequential Eclat run from
// another goroutine and expects it to stop promptly (the ctx is
// consulted between equivalence classes) rather than mine to completion.
func TestMineCancelMidRun(t *testing.T) {
	d, err := Generate(StandardConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		close(started)
		time.Sleep(5 * time.Millisecond) // let the mine get under way
		cancel()
	}()
	<-started
	res, _, err := Mine(ctx, d, MineOptions{Algorithm: AlgoEclat, SupportPct: 0.1})
	if err == nil {
		// The mine legitimately finished before the cancel landed; that
		// is not a failure of cancellation, just a fast machine.
		t.Skip("mine completed before cancellation landed")
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want context.Canceled and ErrCanceled", err)
	}
	if res != nil {
		t.Fatal("canceled mine returned a result")
	}
}

func TestMineDeadline(t *testing.T) {
	d := smallDB(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := Mine(ctx, d, MineOptions{SupportPct: 1.0}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
