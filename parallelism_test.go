package repro

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
)

func TestMineParallelismMatchesSequential(t *testing.T) {
	d := smallDB(t)
	seq, seqInfo, err := Mine(context.Background(), d, MineOptions{SupportPct: 1.0, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seqInfo.Parallelism != 1 || seqInfo.Steals != 0 {
		t.Fatalf("sequential info = %+v", seqInfo)
	}
	for _, par := range []int{2, 4, 8} {
		res, info, err := Mine(context.Background(), d, MineOptions{SupportPct: 1.0, Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(res.Itemsets, seq.Itemsets) {
			t.Fatalf("parallelism %d: result differs from sequential", par)
		}
		if info.Parallelism != par {
			t.Fatalf("parallelism %d: info.Parallelism = %d", par, info.Parallelism)
		}
		if info.Scans != 2 {
			t.Fatalf("parallelism %d: scans = %d, want 2", par, info.Scans)
		}
	}
}

func TestMineParallelismDefaultsToGOMAXPROCS(t *testing.T) {
	d := smallDB(t)
	_, info, err := Mine(context.Background(), d, MineOptions{SupportPct: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); info.Parallelism != want {
		t.Fatalf("info.Parallelism = %d, want GOMAXPROCS = %d", info.Parallelism, want)
	}
}

func TestMineNegativeParallelismRejected(t *testing.T) {
	d := smallDB(t)
	_, _, err := Mine(context.Background(), d, MineOptions{SupportPct: 1.0, Parallelism: -1})
	if !errors.Is(err, ErrInvalidParallelism) {
		t.Fatalf("err = %v, want ErrInvalidParallelism", err)
	}
	if _, _, err := MineMaximal(context.Background(), d, MineOptions{SupportPct: 1.0, Parallelism: -2}); !errors.Is(err, ErrInvalidParallelism) {
		t.Fatalf("MineMaximal err = %v, want ErrInvalidParallelism", err)
	}
	if _, _, err := MineClosed(context.Background(), d, MineOptions{SupportPct: 1.0, Parallelism: -3}); !errors.Is(err, ErrInvalidParallelism) {
		t.Fatalf("MineClosed err = %v, want ErrInvalidParallelism", err)
	}
}

func TestMineParallelCancellation(t *testing.T) {
	d := smallDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Mine(ctx, d, MineOptions{SupportPct: 1.0, Parallelism: 4})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if _, err := (MineOptions{Parallelism: -5}).Workers(); !errors.Is(err, ErrInvalidParallelism) {
		t.Fatalf("negative Parallelism: err = %v", err)
	}
	if n, err := (MineOptions{}).Workers(); err != nil || n != runtime.GOMAXPROCS(0) {
		t.Fatalf("zero Parallelism resolved to (%d, %v)", n, err)
	}
	if n, err := (MineOptions{Parallelism: 3}).Workers(); err != nil || n != 3 {
		t.Fatalf("Parallelism 3 resolved to (%d, %v)", n, err)
	}
}
