package hashtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
)

func TestInsertSearch(t *testing.T) {
	tr := New(2)
	a := tr.Insert(itemset.New(1, 2))
	tr.Insert(itemset.New(1, 3))
	tr.Insert(itemset.New(2, 3))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Search(itemset.New(1, 2)); got != a {
		t.Fatal("Search did not find inserted candidate")
	}
	if tr.Search(itemset.New(1, 4)) != nil {
		t.Fatal("Search found ghost candidate")
	}
	if tr.Search(itemset.New(1, 2, 3)) != nil {
		t.Fatal("Search with wrong k should be nil")
	}
}

func TestInsertWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).Insert(itemset.New(1, 2))
}

func TestNewInvalidK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestCountTransactionBasic(t *testing.T) {
	tr := New(2)
	ab := tr.Insert(itemset.New(1, 2))
	ac := tr.Insert(itemset.New(1, 3))
	bc := tr.Insert(itemset.New(2, 3))
	xy := tr.Insert(itemset.New(8, 9))

	tr.CountTransaction(0, itemset.New(1, 2, 3))
	tr.CountTransaction(1, itemset.New(1, 2))
	tr.CountTransaction(2, itemset.New(3))
	tr.CountTransaction(3, itemset.New(1, 2, 3, 8, 9))

	if ab.Count != 3 || ac.Count != 2 || bc.Count != 2 || xy.Count != 1 {
		t.Fatalf("counts ab=%d ac=%d bc=%d xy=%d", ab.Count, ac.Count, bc.Count, xy.Count)
	}
}

func TestNoDoubleCountUnderCollisions(t *testing.T) {
	// fanout 1 forces every item into the same bucket; every descent path
	// reaches the same leaves, stressing the lastTID guard.
	tr := New(2, WithFanout(1), WithLeafCap(1))
	c := tr.Insert(itemset.New(1, 2))
	tr.Insert(itemset.New(3, 4))
	tr.CountTransaction(7, itemset.New(1, 2, 3, 4, 5))
	if c.Count != 1 {
		t.Fatalf("candidate counted %d times in one transaction", c.Count)
	}
}

func TestFrequent(t *testing.T) {
	tr := New(1)
	a := tr.Insert(itemset.New(1))
	b := tr.Insert(itemset.New(2))
	a.Count = 5
	b.Count = 2
	freq := tr.Frequent(3)
	if len(freq) != 1 || !freq[0].Set.Equal(itemset.New(1)) {
		t.Fatalf("Frequent = %v", freq)
	}
	if len(tr.Frequent(100)) != 0 {
		t.Fatal("nothing should be frequent at minsup 100")
	}
}

func TestShortTransactionIsFree(t *testing.T) {
	tr := New(3)
	tr.Insert(itemset.New(1, 2, 3))
	if ops := tr.CountTransaction(0, itemset.New(1, 2)); ops != 0 {
		t.Fatalf("transaction shorter than k should cost 0 ops, got %d", ops)
	}
}

func TestSplitPreservesSearch(t *testing.T) {
	tr := New(3, WithLeafCap(2), WithFanout(4))
	var sets []itemset.Itemset
	for a := itemset.Item(0); a < 6; a++ {
		for b := a + 1; b < 7; b++ {
			for c := b + 1; c < 8; c++ {
				s := itemset.New(a, b, c)
				sets = append(sets, s)
				tr.Insert(s)
			}
		}
	}
	for _, s := range sets {
		if tr.Search(s) == nil {
			t.Fatalf("lost candidate %v after splits", s)
		}
	}
}

// Oracle-based property: counting via the tree equals brute-force subset
// counting for random candidate sets and transactions, across geometries.
func TestCountMatchesOracleQuick(t *testing.T) {
	type geometry struct{ fanout, leafCap int }
	geoms := []geometry{{64, 8}, {1, 1}, {2, 3}, {7, 2}}
	f := func(seed int64, kk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kk%3)
		for _, g := range geoms {
			tr := New(k, WithFanout(g.fanout), WithLeafCap(g.leafCap))
			seen := map[string]*Candidate{}
			for i := 0; i < 30; i++ {
				items := make([]itemset.Item, k)
				for j := range items {
					items[j] = itemset.Item(rng.Intn(15))
				}
				s := itemset.New(items...)
				if len(s) != k || seen[s.Key()] != nil {
					continue
				}
				seen[s.Key()] = tr.Insert(s)
			}
			oracle := map[string]int{}
			for tid := 0; tid < 40; tid++ {
				n := rng.Intn(10)
				items := make([]itemset.Item, n)
				for j := range items {
					items[j] = itemset.Item(rng.Intn(15))
				}
				tx := itemset.New(items...)
				tr.CountTransaction(itemset.TID(tid), tx)
				for key, c := range seen {
					if c.Set.SubsetOf(tx) {
						oracle[key]++
					}
				}
			}
			for key, c := range seen {
				if c.Count != oracle[key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	tr := New(2)
	c := tr.Insert(itemset.New(1, 2))
	tr.Insert(itemset.New(3, 4))
	if tr.K() != 2 {
		t.Fatalf("K = %d", tr.K())
	}
	if c.Index() != 0 || tr.Candidates()[1].Index() != 1 {
		t.Fatal("insertion indices wrong")
	}
	if len(tr.Candidates()) != 2 {
		t.Fatal("Candidates wrong")
	}
	if tr.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
	// A split tree is strictly larger than a leaf-only tree with the same
	// candidates.
	small := New(2, WithLeafCap(100))
	big := New(2, WithLeafCap(1), WithFanout(8))
	for a := itemset.Item(0); a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			small.Insert(itemset.New(a, b))
			big.Insert(itemset.New(a, b))
		}
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("split tree (%d) should be larger than flat tree (%d)",
			big.SizeBytes(), small.SizeBytes())
	}
}

func TestCountStateSharedTree(t *testing.T) {
	// Two counters over one read-only tree must not interfere, and each
	// must match the tree's own counting.
	tr := New(2)
	tr.Insert(itemset.New(1, 2))
	tr.Insert(itemset.New(2, 3))
	own := New(2)
	own.Insert(itemset.New(1, 2))
	own.Insert(itemset.New(2, 3))

	sA := tr.NewCountState()
	sB := tr.NewCountState()
	txsA := []itemset.Itemset{itemset.New(1, 2, 3), itemset.New(1, 2)}
	txsB := []itemset.Itemset{itemset.New(2, 3)}
	for i, tx := range txsA {
		tr.CountTransactionInto(sA, itemset.TID(i), tx)
		own.CountTransaction(itemset.TID(i), tx)
	}
	for i, tx := range txsB {
		tr.CountTransactionInto(sB, itemset.TID(i), tx)
	}
	for _, c := range own.Candidates() {
		if sA.Counts[c.Index()] != int32(c.Count) {
			t.Fatalf("state A count for %v = %d, want %d", c.Set, sA.Counts[c.Index()], c.Count)
		}
	}
	if sB.Counts[0] != 0 || sB.Counts[1] != 1 {
		t.Fatalf("state B counts = %v", sB.Counts)
	}
	// The shared tree's own counters must be untouched by Into-counting.
	for _, c := range tr.Candidates() {
		if c.Count != 0 {
			t.Fatal("CountTransactionInto wrote to the tree")
		}
	}
	// Short transactions cost nothing.
	if ops := tr.CountTransactionInto(sA, 99, itemset.New(5)); ops != 0 {
		t.Fatalf("short transaction ops = %d", ops)
	}
}

func TestCountStateCollisionGuard(t *testing.T) {
	tr := New(2, WithFanout(1), WithLeafCap(1))
	tr.Insert(itemset.New(1, 2))
	tr.Insert(itemset.New(3, 4))
	st := tr.NewCountState()
	tr.CountTransactionInto(st, 7, itemset.New(1, 2, 3, 4, 5))
	if st.Counts[0] != 1 || st.Counts[1] != 1 {
		t.Fatalf("collision double count: %v", st.Counts)
	}
}

func TestOpsAccounting(t *testing.T) {
	tr := New(2)
	tr.Insert(itemset.New(1, 2))
	if ops := tr.CountTransaction(0, itemset.New(1, 2, 3)); ops <= 0 {
		t.Fatalf("ops should be positive, got %d", ops)
	}
}
