// Package hashtree implements the candidate hash tree of Apriori (paper
// section 2): an internal node at depth d holds a hash table over the
// d-th item of a candidate; all candidates live in leaves. Support
// counting enumerates, for each transaction, the descent paths induced by
// the transaction's items and checks candidates in reached leaves.
//
// Two details follow the CCPD implementation the paper benchmarks against:
//
//   - a per-candidate last-counted-TID marker prevents double counting when
//     hash collisions make several descent paths reach the same leaf for
//     one transaction;
//   - the descent is short-circuited when too few transaction items remain
//     to complete a k-subset ("short-circuited subset counting", [16]).
//
// Counting returns the number of node visits and subset checks performed,
// which feeds the virtual-time cost model in internal/cluster.
package hashtree

import (
	"fmt"

	"repro/internal/itemset"
)

// Candidate is a k-itemset stored in the tree with its running support
// count.
type Candidate struct {
	Set   itemset.Itemset
	Count int

	index   int         // insertion position; indexes CountState vectors
	lastTID itemset.TID // last transaction that incremented Count
}

// Index returns the candidate's insertion position, the index of its
// counter in a CountState.
func (c *Candidate) Index() int { return c.index }

type node struct {
	// Exactly one of children/leaf is non-nil. children is indexed by
	// hash(item); leaf holds candidates directly.
	children []*node
	leaf     []*Candidate
}

// Tree is a candidate hash tree for k-itemsets.
type Tree struct {
	k       int
	fanout  int
	leafCap int
	root    *node
	cands   []*Candidate
}

// Option configures tree geometry.
type Option func(*Tree)

// WithFanout sets the hash-table width of interior nodes (default 64).
func WithFanout(f int) Option {
	return func(t *Tree) {
		if f > 0 {
			t.fanout = f
		}
	}
}

// WithLeafCap sets the number of candidates a leaf holds before it is
// split (default 8); leaves at maximum depth never split.
func WithLeafCap(c int) Option {
	return func(t *Tree) {
		if c > 0 {
			t.leafCap = c
		}
	}
}

// New returns an empty hash tree for k-itemsets.
func New(k int, opts ...Option) *Tree {
	if k < 1 {
		panic(fmt.Sprintf("hashtree: invalid k %d", k))
	}
	t := &Tree{k: k, fanout: 64, leafCap: 8, root: &node{}}
	for _, o := range opts {
		o(t)
	}
	return t
}

// K returns the candidate size the tree stores.
func (t *Tree) K() int { return t.k }

// Len returns the number of candidates inserted.
func (t *Tree) Len() int { return len(t.cands) }

// Candidates returns all stored candidates (shared, not copied).
func (t *Tree) Candidates() []*Candidate { return t.cands }

func (t *Tree) hash(it itemset.Item) int { return int(it) % t.fanout }

// Insert adds a candidate k-itemset with count 0. It panics if the itemset
// has the wrong size, which would corrupt the descent logic.
func (t *Tree) Insert(set itemset.Itemset) *Candidate {
	if len(set) != t.k {
		panic(fmt.Sprintf("hashtree: inserting %d-itemset into tree of k=%d", len(set), t.k))
	}
	c := &Candidate{Set: set, index: len(t.cands), lastTID: -1}
	t.cands = append(t.cands, c)
	t.insert(t.root, c, 0)
	return c
}

func (t *Tree) insert(n *node, c *Candidate, depth int) {
	for n.children != nil {
		h := t.hash(c.Set[depth])
		if n.children[h] == nil {
			n.children[h] = &node{}
		}
		n = n.children[h]
		depth++
	}
	n.leaf = append(n.leaf, c)
	if len(n.leaf) > t.leafCap && depth < t.k {
		t.split(n, depth)
	}
}

func (t *Tree) split(n *node, depth int) {
	cands := n.leaf
	n.leaf = nil
	n.children = make([]*node, t.fanout)
	for _, c := range cands {
		h := t.hash(c.Set[depth])
		if n.children[h] == nil {
			n.children[h] = &node{}
		}
		child := n.children[h]
		child.leaf = append(child.leaf, c)
		// Recursive split if everything hashed into one bucket.
		if len(child.leaf) > t.leafCap && depth+1 < t.k {
			t.split(child, depth+1)
		}
	}
}

// Search returns the candidate equal to set, or nil.
func (t *Tree) Search(set itemset.Itemset) *Candidate {
	if len(set) != t.k {
		return nil
	}
	n, depth := t.root, 0
	for n.children != nil {
		n = n.children[t.hash(set[depth])]
		if n == nil {
			return nil
		}
		depth++
	}
	for _, c := range n.leaf {
		if c.Set.Equal(set) {
			return c
		}
	}
	return nil
}

// CountTransaction increments the count of every candidate contained in
// the transaction's itemset. tid must be unique per transaction (it guards
// against double counting along colliding descent paths). It returns the
// number of tree-node visits plus candidate subset checks, the
// compute-intensive step the paper's cost discussion centres on.
func (t *Tree) CountTransaction(tid itemset.TID, tx itemset.Itemset) (ops int) {
	if len(tx) < t.k {
		return 0
	}
	return t.count(t.root, tid, tx, 0, 0)
}

func (t *Tree) count(n *node, tid itemset.TID, tx itemset.Itemset, start, depth int) (ops int) {
	ops = 1
	if n.children == nil { // leaf (possibly empty, e.g. a tree with no candidates)
		for _, c := range n.leaf {
			ops++
			if c.lastTID == tid {
				continue
			}
			// The first `depth` items of c were matched by the descent
			// path in some order; the candidate may still differ from the
			// path, so check full containment.
			if c.Set.SubsetOf(tx) {
				c.Count++
				c.lastTID = tid
			}
		}
		return ops
	}
	// Short-circuit: item at position i can extend to a full k-subset only
	// if at least k-depth-1 items follow it.
	limit := len(tx) - (t.k - depth) + 1
	for i := start; i < limit; i++ {
		child := n.children[t.hash(tx[i])]
		if child != nil {
			ops += t.count(child, tid, tx, i+1, depth+1)
		}
	}
	return ops
}

// SizeBytes estimates the resident memory of the tree: interior hash
// tables, leaf vectors and candidate itemsets. Count Distribution
// replicates this structure on every processor ("since the entire hash
// tree is replicated on each processor, it doesn't utilize the aggregate
// memory efficiently"), so this figure drives the paging model.
func (t *Tree) SizeBytes() int64 {
	var walk func(n *node) int64
	walk = func(n *node) int64 {
		if n == nil {
			return 0
		}
		if n.leaf != nil {
			return 48 + 8*int64(len(n.leaf))
		}
		total := int64(48 + 8*len(n.children))
		for _, ch := range n.children {
			total += walk(ch)
		}
		return total
	}
	size := walk(t.root)
	for _, c := range t.cands {
		size += 32 + 4*int64(len(c.Set))
	}
	return size
}

// CountState holds support counters outside the tree, so that many
// concurrent counters (the simulated processors) can share one read-only
// tree structure. On the real machine each processor holds a private
// replica — the cost model charges that replication through the paging
// model; sharing the structure here only conserves the simulator's own
// memory.
type CountState struct {
	Counts  []int32
	lastTID []itemset.TID
}

// NewCountState returns zeroed counters for the tree's candidates.
func (t *Tree) NewCountState() *CountState {
	st := &CountState{
		Counts:  make([]int32, len(t.cands)),
		lastTID: make([]itemset.TID, len(t.cands)),
	}
	for i := range st.lastTID {
		st.lastTID[i] = -1
	}
	return st
}

// CountTransactionInto is CountTransaction recording into an external
// CountState instead of the tree's own counters. The tree itself is not
// written, so concurrent calls with distinct states are safe.
func (t *Tree) CountTransactionInto(st *CountState, tid itemset.TID, tx itemset.Itemset) (ops int) {
	if len(tx) < t.k {
		return 0
	}
	return t.countInto(st, t.root, tid, tx, 0, 0)
}

func (t *Tree) countInto(st *CountState, n *node, tid itemset.TID, tx itemset.Itemset, start, depth int) (ops int) {
	ops = 1
	if n.children == nil {
		for _, c := range n.leaf {
			ops++
			if st.lastTID[c.index] == tid {
				continue
			}
			if c.Set.SubsetOf(tx) {
				st.Counts[c.index]++
				st.lastTID[c.index] = tid
			}
		}
		return ops
	}
	limit := len(tx) - (t.k - depth) + 1
	for i := start; i < limit; i++ {
		child := n.children[t.hash(tx[i])]
		if child != nil {
			ops += t.countInto(st, child, tid, tx, i+1, depth+1)
		}
	}
	return ops
}

// Frequent returns the candidates whose count meets minsup, in input
// (insertion) order.
func (t *Tree) Frequent(minsup int) []*Candidate {
	var out []*Candidate
	for _, c := range t.cands {
		if c.Count >= minsup {
			out = append(out, c)
		}
	}
	return out
}
