// Package dhp implements the DHP algorithm of Park, Chen & Yu (SIGMOD
// 1995) — "an effective hash based algorithm for mining association
// rules" — whose parallelization PDM [12] the paper discusses among the
// parallel baselines ("both PDM and DHP perform worse than Count
// Distribution and Apriori" on their workloads, a claim the benchmark
// suite lets you check).
//
// DHP's idea: while counting 1-itemsets in pass 1, also hash every item
// pair of every transaction into a small table of counting buckets. A
// pair can only be frequent if its bucket total reaches the threshold, so
// pass 2's candidate set shrinks from all pairs of frequent items to the
// pairs that survive the bucket filter — typically a large reduction,
// bought with one extra array in memory.
package dhp

import (
	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// Options tunes the hash filter.
type Options struct {
	// Buckets is the size of the pair-hash table (default 1 << 16).
	Buckets int
}

// Stats reports the filter's effectiveness.
type Stats struct {
	Scans         int
	Buckets       int
	C2Unfiltered  int // candidate pairs Apriori would count: C(|L1|, 2)
	C2AfterFilter int // pairs surviving the bucket filter
	SurvivorRatio float64
}

// Mine runs DHP. The result equals Apriori's.
func Mine(d *db.Database, minsup int, opts Options) (*mining.Result, Stats) {
	if minsup < 1 {
		minsup = 1
	}
	buckets := opts.Buckets
	if buckets <= 0 {
		buckets = 1 << 16
	}
	st := Stats{Buckets: buckets}
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}

	hash := func(a, b itemset.Item) int {
		return (int(a)*2654435761 + int(b)) % buckets
	}

	// Pass 1: item counts + pair-bucket counts.
	st.Scans++
	itemCounts := make([]int, d.NumItems)
	bucketCounts := make([]int32, buckets)
	for _, tx := range d.Transactions {
		items := tx.Items
		for _, it := range items {
			itemCounts[it]++
		}
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				bucketCounts[hash(items[i], items[j])]++
			}
		}
	}
	var l1 []itemset.Item
	for it, c := range itemCounts {
		if c >= minsup {
			res.Add(itemset.Itemset{itemset.Item(it)}, c)
			l1 = append(l1, itemset.Item(it))
		}
	}

	// Pass 2: candidates are frequent-item pairs whose bucket count could
	// reach the threshold.
	fanout := d.NumItems
	if fanout < 64 {
		fanout = 64
	}
	tree := hashtree.New(2, hashtree.WithFanout(fanout))
	for i := 0; i < len(l1); i++ {
		for j := i + 1; j < len(l1); j++ {
			st.C2Unfiltered++
			if int(bucketCounts[hash(l1[i], l1[j])]) >= minsup {
				tree.Insert(itemset.Itemset{l1[i], l1[j]})
			}
		}
	}
	st.C2AfterFilter = tree.Len()
	if st.C2Unfiltered > 0 {
		st.SurvivorRatio = float64(st.C2AfterFilter) / float64(st.C2Unfiltered)
	}

	var prev []itemset.Itemset
	if tree.Len() > 0 {
		st.Scans++
		apriori.CountPartition(tree, d)
		for _, c := range tree.Frequent(minsup) {
			res.Add(c.Set, c.Count)
			prev = append(prev, c.Set)
		}
	}

	// Passes k >= 3: standard Apriori level-wise counting.
	for k := 3; len(prev) > 1; k++ {
		tk := apriori.GenerateCandidates(prev, hashtree.WithFanout(fanout))
		if tk.Len() == 0 {
			break
		}
		st.Scans++
		apriori.CountPartition(tk, d)
		prev = prev[:0]
		for _, c := range tk.Frequent(minsup) {
			res.Add(c.Set, c.Count)
			prev = append(prev, c.Set)
		}
	}

	res.Sort()
	return res, st
}
