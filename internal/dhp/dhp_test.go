package dhp

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/mining"
	"repro/internal/testutil"
)

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 12; trial++ {
		d := testutil.RandomDB(rng, 100+20*trial, 12, 6)
		for _, minsup := range []int{2, 4, 8} {
			got, st := Mine(d, minsup, Options{})
			want := testutil.BruteForce(d, minsup)
			if !mining.Equal(got, want) {
				t.Fatalf("trial %d minsup %d:\n%s", trial, minsup, mining.Diff(got, want))
			}
			if st.C2AfterFilter > st.C2Unfiltered {
				t.Fatal("filter cannot add candidates")
			}
		}
	}
}

func TestFilterActuallyPrunes(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(4000))
	minsup := d.MinSupCount(1.0)
	_, st := Mine(d, minsup, Options{})
	if st.SurvivorRatio >= 0.5 {
		t.Fatalf("expected a large C2 reduction, survivor ratio %.2f (%d of %d)",
			st.SurvivorRatio, st.C2AfterFilter, st.C2Unfiltered)
	}
	want, _, _ := apriori.Mine(context.Background(), d, minsup)
	got, _ := Mine(d, minsup, Options{})
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
}

func TestTinyBucketTableStillExact(t *testing.T) {
	// With absurdly few buckets almost nothing is filtered (collisions
	// keep counts high), but the result must stay exact.
	rng := rand.New(rand.NewSource(113))
	d := testutil.RandomDB(rng, 150, 10, 6)
	got, st := Mine(d, 4, Options{Buckets: 2})
	want := testutil.BruteForce(d, 4)
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
	if st.Buckets != 2 {
		t.Fatalf("buckets = %d", st.Buckets)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	res, st := Mine(&db.Database{NumItems: 3}, 1, Options{})
	if res.Len() != 0 || st.Scans != 1 {
		t.Fatalf("empty database: %d itemsets, %d scans", res.Len(), st.Scans)
	}
	// minsup clamping.
	rng := rand.New(rand.NewSource(5))
	d := testutil.RandomDB(rng, 20, 6, 4)
	got, _ := Mine(d, 0, Options{})
	want := testutil.BruteForce(d, 1)
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
}
