// Package gen implements the IBM Quest synthetic basket-data generator of
// Agrawal & Srikant (VLDB'94, section 2.4.3), the procedure the paper uses
// for all its databases ("We used different synthetic databases ... which
// were generated using the procedure described in [4]").
//
// The generator first draws |L| "maximal potentially large itemsets"
// (patterns): pattern sizes are Poisson with mean |I|, successive patterns
// share an exponentially-sized fraction of items with their predecessor to
// model correlated purchases, each pattern carries an exponential weight
// (normalized to sum 1) and a corruption level drawn from N(0.5, 0.1^2).
// Transactions then have Poisson(|T|) sizes and are filled by repeatedly
// picking a pattern with probability proportional to its weight, dropping
// items from it while a uniform draw stays below its corruption level, and
// assigning itemsets that no longer fit to the next transaction half of
// the time.
//
// Everything is driven by a single seeded PRNG, so a Config generates the
// identical database on every run and platform.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/db"
	"repro/internal/itemset"
)

// Config holds the generator parameters in the paper's notation.
type Config struct {
	NumTransactions int     // |D|
	AvgTxLen        float64 // |T|: average transaction size
	AvgPatternLen   float64 // |I|: average size of maximal potentially frequent itemsets
	NumPatterns     int     // |L|: number of maximal potentially frequent itemsets (paper: 2000)
	NumItems        int     // N: number of items (paper: 1000)

	// CorruptionMean/Dev parameterize the per-pattern corruption level;
	// Correlation is the mean fraction of items a pattern inherits from its
	// predecessor. Zero values select the published defaults (0.5, 0.1, 0.5).
	CorruptionMean float64
	CorruptionDev  float64
	Correlation    float64

	Seed int64
}

// T10I6 returns the configuration family used throughout the paper's
// evaluation: |T|=10, |I|=6, |L|=2000, N=1000, varying only |D|.
func T10I6(numTransactions int) Config {
	return family(numTransactions, 10, 6)
}

// T5I2 returns the sparsest workload of the Agrawal-Srikant benchmark
// family (|T|=5, |I|=2): short baskets, short patterns.
func T5I2(numTransactions int) Config {
	return family(numTransactions, 5, 2)
}

// T20I6 returns the densest standard workload (|T|=20, |I|=6): long
// baskets with the paper's pattern length — the regime where vertical
// representations and diffsets pay off most.
func T20I6(numTransactions int) Config {
	return family(numTransactions, 20, 6)
}

func family(numTransactions int, t, i float64) Config {
	return Config{
		NumTransactions: numTransactions,
		AvgTxLen:        t,
		AvgPatternLen:   i,
		NumPatterns:     2000,
		NumItems:        1000,
		Seed:            1997, // SPAA'97
	}
}

// Name renders the configuration in the paper's naming scheme,
// e.g. "T10.I6.D800K".
func (c Config) Name() string {
	d := c.NumTransactions
	switch {
	case d >= 1_000_000 && d%1_000_000 == 0:
		return fmt.Sprintf("T%d.I%d.D%dM", int(c.AvgTxLen), int(c.AvgPatternLen), d/1_000_000)
	case d >= 1000 && d%1000 == 0:
		return fmt.Sprintf("T%d.I%d.D%dK", int(c.AvgTxLen), int(c.AvgPatternLen), d/1000)
	default:
		return fmt.Sprintf("T%d.I%d.D%d", int(c.AvgTxLen), int(c.AvgPatternLen), d)
	}
}

func (c Config) withDefaults() Config {
	if c.CorruptionMean == 0 {
		c.CorruptionMean = 0.5
	}
	if c.CorruptionDev == 0 {
		c.CorruptionDev = 0.1
	}
	if c.Correlation == 0 {
		c.Correlation = 0.5
	}
	if c.NumPatterns == 0 {
		c.NumPatterns = 2000
	}
	if c.NumItems == 0 {
		c.NumItems = 1000
	}
	return c
}

// Validate reports configuration errors before generation.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.NumTransactions < 0:
		return fmt.Errorf("gen: negative NumTransactions %d", c.NumTransactions)
	case c.NumItems < 1:
		return fmt.Errorf("gen: NumItems %d < 1", c.NumItems)
	case c.AvgTxLen <= 0:
		return fmt.Errorf("gen: AvgTxLen %v <= 0", c.AvgTxLen)
	case c.AvgPatternLen <= 0:
		return fmt.Errorf("gen: AvgPatternLen %v <= 0", c.AvgPatternLen)
	case c.NumPatterns < 1:
		return fmt.Errorf("gen: NumPatterns %d < 1", c.NumPatterns)
	}
	return nil
}

// pattern is one maximal potentially large itemset.
type pattern struct {
	items      itemset.Itemset
	cumWeight  float64 // cumulative normalized weight, for coin tossing
	corruption float64
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's product method (means here are ~10, so this is fine).
func poisson(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Generate produces the synthetic database described by c.
func Generate(c Config) (*db.Database, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))

	patterns := makePatterns(c, rng)

	d := &db.Database{NumItems: c.NumItems}
	d.Transactions = make([]db.Transaction, 0, c.NumTransactions)

	// Itemsets that did not fit in the previous transaction and were
	// deferred to the next one (the "assigned to the next transaction"
	// overflow rule).
	var carry []itemset.Itemset

	for tid := 0; tid < c.NumTransactions; tid++ {
		size := poisson(rng, c.AvgTxLen)
		if size < 1 {
			size = 1
		}
		if size > c.NumItems {
			size = c.NumItems
		}
		tx := make(map[itemset.Item]bool, size)

		add := func(set itemset.Itemset) bool {
			// If the itemset overflows the transaction, keep it anyway half
			// the time; otherwise defer it.
			if len(tx)+len(set) > size && len(tx) > 0 {
				if rng.Float64() < 0.5 {
					carry = append(carry, set)
					return false
				}
			}
			for _, it := range set {
				tx[it] = true
			}
			return true
		}

		// Drain deferred itemsets first.
		pending := carry
		carry = nil
		for _, set := range pending {
			add(set)
		}

		for len(tx) < size {
			p := pickPattern(patterns, rng)
			set := corrupt(p, rng)
			if len(set) == 0 {
				continue
			}
			add(set)
		}

		items := make([]itemset.Item, 0, len(tx))
		for it := range tx {
			items = append(items, it)
		}
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		d.Transactions = append(d.Transactions, db.Transaction{
			TID:   itemset.TID(tid),
			Items: itemset.Itemset(items),
		})
	}
	return d, nil
}

// MustGenerate is Generate for known-good configs (panics on error); used
// by tests and benchmarks.
func MustGenerate(c Config) *db.Database {
	d, err := Generate(c)
	if err != nil {
		panic(err)
	}
	return d
}

func makePatterns(c Config, rng *rand.Rand) []pattern {
	patterns := make([]pattern, c.NumPatterns)
	weights := make([]float64, c.NumPatterns)
	var totalWeight float64
	var prev itemset.Itemset

	for i := range patterns {
		size := poisson(rng, c.AvgPatternLen)
		if size < 1 {
			size = 1
		}
		if size > c.NumItems {
			size = c.NumItems
		}
		picked := make(map[itemset.Item]bool, size)

		// Fraction of items inherited from the previous pattern, drawn from
		// an exponential with mean Correlation and clamped to [0,1].
		if prev != nil {
			frac := rng.ExpFloat64() * c.Correlation
			if frac > 1 {
				frac = 1
			}
			inherit := int(frac * float64(size))
			for j := 0; j < inherit && j < len(prev); j++ {
				picked[prev[rng.Intn(len(prev))]] = true
			}
		}
		for len(picked) < size {
			picked[itemset.Item(rng.Intn(c.NumItems))] = true
		}

		items := make([]itemset.Item, 0, len(picked))
		for it := range picked {
			items = append(items, it)
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		patterns[i].items = itemset.Itemset(items)
		prev = patterns[i].items

		weights[i] = rng.ExpFloat64()
		totalWeight += weights[i]

		corr := c.CorruptionMean + rng.NormFloat64()*c.CorruptionDev
		if corr < 0 {
			corr = 0
		}
		if corr > 0.95 {
			corr = 0.95
		}
		patterns[i].corruption = corr
	}

	// Normalize weights into a cumulative distribution.
	var cum float64
	for i := range patterns {
		cum += weights[i] / totalWeight
		patterns[i].cumWeight = cum
	}
	patterns[len(patterns)-1].cumWeight = 1 // guard against float drift
	return patterns
}

// pickPattern tosses the |L|-sided weighted coin.
func pickPattern(patterns []pattern, rng *rand.Rand) *pattern {
	x := rng.Float64()
	lo, hi := 0, len(patterns)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if patterns[mid].cumWeight < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &patterns[lo]
}

// corrupt drops items from p while successive uniform draws stay below the
// pattern's corruption level, modelling customers who buy only part of a
// frequent pattern.
func corrupt(p *pattern, rng *rand.Rand) itemset.Itemset {
	set := p.items.Clone()
	for len(set) > 0 && rng.Float64() < p.corruption {
		i := rng.Intn(len(set))
		set = append(set[:i], set[i+1:]...)
	}
	return set
}
