package gen

import (
	"strings"
	"testing"
)

func TestName(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{800_000, "T10.I6.D800K"},
		{6_400_000, "T10.I6.D6400K"},
		{2_000_000, "T10.I6.D2M"},
		{25_000, "T10.I6.D25K"},
		{1234, "T10.I6.D1234"},
	}
	for _, c := range cases {
		if got := T10I6(c.n).Name(); got != c.want {
			t.Errorf("Name(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := T10I6(100).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{NumTransactions: -1, AvgTxLen: 10, AvgPatternLen: 6},
		{NumTransactions: 10, AvgTxLen: -1, AvgPatternLen: 6},
		{NumTransactions: 10, AvgTxLen: 10, AvgPatternLen: -2},
		{NumTransactions: 10, AvgTxLen: 10, AvgPatternLen: 6, NumItems: -5},
		{NumTransactions: 10, AvgTxLen: 10, AvgPatternLen: 6, NumPatterns: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := Generate(c); err == nil {
			t.Errorf("Generate accepted bad config %d", i)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := T10I6(2000)
	d := MustGenerate(cfg)
	if d.Len() != 2000 {
		t.Fatalf("generated %d transactions, want 2000", d.Len())
	}
	if d.NumItems != 1000 {
		t.Fatalf("NumItems = %d", d.NumItems)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("generated database invalid: %v", err)
	}
}

func TestGenerateAvgTxLenNearTarget(t *testing.T) {
	d := MustGenerate(T10I6(5000))
	avg := d.AvgLen()
	// Poisson(10) sizes with dedup and overflow handling: allow a generous
	// band but require the mean to be in the right regime.
	if avg < 7 || avg > 13 {
		t.Fatalf("average transaction length %.2f far from |T|=10", avg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(T10I6(500))
	b := MustGenerate(T10I6(500))
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Transactions {
		if !a.Transactions[i].Items.Equal(b.Transactions[i].Items) {
			t.Fatalf("transaction %d differs between identical-seed runs", i)
		}
	}
	c := T10I6(500)
	c.Seed = 12345
	other := MustGenerate(c)
	same := true
	for i := range a.Transactions {
		if !a.Transactions[i].Items.Equal(other.Transactions[i].Items) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical databases")
	}
}

func TestGenerateUsesWholeItemUniverse(t *testing.T) {
	d := MustGenerate(T10I6(5000))
	seen := map[int]bool{}
	for _, tx := range d.Transactions {
		for _, it := range tx.Items {
			seen[int(it)] = true
		}
	}
	// With 5000 transactions of ~10 items drawn from 2000 patterns over
	// 1000 items, a large majority of the universe should appear.
	if len(seen) < 700 {
		t.Fatalf("only %d of 1000 items ever appear; generator too narrow", len(seen))
	}
}

func TestGenerateZeroTransactions(t *testing.T) {
	cfg := T10I6(0)
	d := MustGenerate(cfg)
	if d.Len() != 0 {
		t.Fatalf("want empty database, got %d", d.Len())
	}
}

func TestGenerateSkewedSupport(t *testing.T) {
	// The pattern weights are exponential, so item frequencies should be
	// visibly skewed: the most frequent item should occur much more often
	// than the median item.
	d := MustGenerate(T10I6(5000))
	counts := make([]int, d.NumItems)
	for _, tx := range d.Transactions {
		for _, it := range tx.Items {
			counts[it]++
		}
	}
	max, total, nonzero := 0, 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		total += c
		if c > 0 {
			nonzero++
		}
	}
	mean := float64(total) / float64(nonzero)
	if float64(max) < 3*mean {
		t.Fatalf("support not skewed: max=%d mean=%.1f", max, mean)
	}
}

func TestSmallUniverseClamps(t *testing.T) {
	// Degenerate config: universe smaller than |T| must still terminate and
	// produce valid transactions.
	c := Config{
		NumTransactions: 50,
		AvgTxLen:        10,
		AvgPatternLen:   6,
		NumPatterns:     10,
		NumItems:        5,
		Seed:            3,
	}
	d := MustGenerate(c)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tx := range d.Transactions {
		if len(tx.Items) > 5 {
			t.Fatalf("transaction larger than item universe: %v", tx.Items)
		}
		if len(tx.Items) == 0 {
			t.Fatal("empty transaction generated")
		}
	}
}

func TestWorkloadFamilies(t *testing.T) {
	cases := []struct {
		cfg  Config
		name string
		loT  float64
		hiT  float64
	}{
		{T5I2(3000), "T5.I2.D3K", 3, 7.5},
		{T10I6(3000), "T10.I6.D3K", 7, 14},
		{T20I6(3000), "T20.I6.D3K", 14, 27},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.name {
			t.Errorf("Name = %q, want %q", got, c.name)
		}
		d := MustGenerate(c.cfg)
		if avg := d.AvgLen(); avg < c.loT || avg > c.hiT {
			t.Errorf("%s: avg |T| = %.2f outside [%v, %v]", c.name, avg, c.loT, c.hiT)
		}
	}
}

func TestNameMentionsTAndI(t *testing.T) {
	c := Config{NumTransactions: 100, AvgTxLen: 20, AvgPatternLen: 4}
	if got := c.Name(); !strings.HasPrefix(got, "T20.I4.") {
		t.Fatalf("Name = %q", got)
	}
}
