package cluster

// Collective operations. All processors of the cluster must call the same
// collective in the same order (SPMD); a mismatched sequence deadlocks,
// exactly as on the real machine.
//
// Data moves through Go memory (the simulated Memory Channel regions);
// the virtual clock is charged according to the memchannel cost model.

// Gather makes every processor's contribution visible to all processors:
// it returns a slice indexed by processor id. It charges one region write
// of `bytes` per processor plus two barriers (publish, then consume —
// the second prevents a subsequent collective from overwriting slots
// before slow readers finish, mirroring the paper's "waits at a barrier
// for the last processor to update the shared array").
func Gather[T any](p *Proc, v T, bytes int64) []T {
	p.c.slots[p.id] = v
	p.ChargeNet(1, bytes)
	p.Barrier()
	out := make([]T, len(p.c.slots))
	for i, s := range p.c.slots {
		out[i] = s.(T)
	}
	p.Barrier()
	return out
}

// SumReduceInt32 performs the paper's section 6.2 reduction: every
// processor adds its partial count vector into a shared region in mutual
// exclusion, then waits at a barrier; afterwards everyone holds the global
// sums. Each processor is charged the serialized O(P) exclusive-update
// cost. The input vector is not modified; the returned vector is private
// to the caller.
func SumReduceInt32(p *Proc, vec []int32) []int32 {
	bytes := 4 * int64(len(vec))
	all := Gather(p, vec, 0) // staging only; cost charged below
	cost := p.c.net.ExclusiveReduceNS(bytes, p.c.NumProcs())
	p.clock += cost
	p.Stats.NetNS += cost
	p.Stats.NetBytes += bytes
	out := make([]int32, len(vec))
	for _, part := range all {
		if len(part) != len(vec) {
			panic("cluster: SumReduceInt32 vector length mismatch across processors")
		}
		for i, v := range part {
			out[i] += v
		}
	}
	// Summing locally stands in for reading the shared region after the
	// reduction barrier; every processor derives identical global counts.
	p.Barrier()
	return out
}

// SumReduceInt is SumReduceInt32 for int vectors (1-itemset counts).
func SumReduceInt(p *Proc, vec []int) []int {
	v32 := make([]int32, len(vec))
	for i, v := range vec {
		v32[i] = int32(v)
	}
	r := SumReduceInt32(p, v32)
	out := make([]int, len(r))
	for i, v := range r {
		out[i] = int(v)
	}
	return out
}

// Exchange performs the lock-step all-to-all of the transformation phase:
// out[dst] is this processor's payload for processor dst (out must have
// length T), sentBytes is the total byte volume this processor sends. It
// returns in[src] = payload sent by processor src to this processor, and
// charges the buffered-exchange cost from the memchannel model.
func Exchange[T any](p *Proc, out []T, sentBytes int64) []T {
	if len(out) != p.c.NumProcs() {
		panic("cluster: Exchange payload must have one entry per processor")
	}
	matrix := Gather(p, out, 0)
	allSent := Gather(p, sentBytes, 0)
	cost := p.c.net.ExchangeNS(allSent)[p.id]
	p.clock += cost
	p.Stats.NetNS += cost
	p.Stats.NetBytes += sentBytes
	rounds := (sentBytes + p.c.net.Model().BufferBytes - 1) / p.c.net.Model().BufferBytes
	if rounds < 1 {
		rounds = 1
	}
	p.Stats.NetMsgs += 2 * rounds
	in := make([]T, len(matrix))
	for src, row := range matrix {
		in[src] = row[p.id]
	}
	p.Barrier()
	return in
}

// Broadcast sends v (of the given byte size) from root to every
// processor; all return v.
func Broadcast[T any](p *Proc, root int, v T, bytes int64) T {
	if p.id == root {
		p.c.slots[root] = v
		p.ChargeNet(1, bytes)
	} else {
		p.ChargeNet(1, 0)
	}
	p.Barrier()
	out := p.c.slots[root].(T)
	p.Barrier()
	return out
}
