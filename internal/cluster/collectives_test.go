package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// Property test: random SPMD programs mixing every collective must
// deliver correct data to every processor and leave all clocks
// synchronized after a final barrier, for arbitrary cluster shapes.
func TestCollectiveSequencesQuick(t *testing.T) {
	f := func(seed int64, hh, pp uint8) bool {
		h := 1 + int(hh%3)
		p := 1 + int(pp%3)
		prog := rand.New(rand.NewSource(seed))
		const steps = 12
		// Pre-draw the program so every proc executes the same sequence.
		ops := make([]int, steps)
		for i := range ops {
			ops[i] = prog.Intn(4)
		}
		c := New(Default(h, p))
		tt := c.NumProcs()
		var mu sync.Mutex
		good := true
		fail := func() {
			mu.Lock()
			good = false
			mu.Unlock()
		}
		c.Run(func(pr *Proc) {
			rng := rand.New(rand.NewSource(seed ^ int64(pr.ID())))
			for step, op := range ops {
				switch op {
				case 0: // Gather
					v := pr.ID()*1000 + step
					got := Gather(pr, v, 8)
					for i, g := range got {
						if g != i*1000+step {
							fail()
						}
					}
				case 1: // SumReduce
					vec := []int32{int32(pr.ID()), 1}
					got := SumReduceInt32(pr, vec)
					wantSum := int32(tt * (tt - 1) / 2)
					if got[0] != wantSum || got[1] != int32(tt) {
						fail()
					}
				case 2: // Exchange
					out := make([]int, tt)
					for dst := range out {
						out[dst] = pr.ID()*100 + dst
					}
					in := Exchange(pr, out, int64(rng.Intn(4096)))
					for src, v := range in {
						if v != src*100+pr.ID() {
							fail()
						}
					}
				case 3: // Broadcast from a step-dependent root
					root := step % tt
					v := -1
					if pr.ID() == root {
						v = step * 7
					}
					if got := Broadcast(pr, root, v, 16); got != step*7 {
						fail()
					}
				}
				// Unequal local work between collectives.
				pr.ChargeCPU(int64(rng.Intn(1000)))
			}
			pr.Barrier()
		})
		if !good {
			return false
		}
		// All clocks equal after the final barrier.
		want := c.Proc(0).ClockNS()
		for i := 1; i < tt; i++ {
			if c.Proc(i).ClockNS() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
