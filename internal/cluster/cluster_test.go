package cluster

import (
	"sync/atomic"
	"testing"
)

func TestRunExecutesAllProcs(t *testing.T) {
	c := New(Default(2, 3))
	if c.NumProcs() != 6 {
		t.Fatalf("NumProcs = %d", c.NumProcs())
	}
	var ran atomic.Int64
	c.Run(func(p *Proc) {
		ran.Add(1)
		if p.Host() != p.ID()/3 {
			t.Errorf("proc %d on host %d, want %d", p.ID(), p.Host(), p.ID()/3)
		}
	})
	if ran.Load() != 6 {
		t.Fatalf("ran %d procs", ran.Load())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Hosts: 0, ProcsPerHost: 1})
}

func TestChargeCPUAdvancesClock(t *testing.T) {
	c := New(Default(1, 1))
	c.Run(func(p *Proc) {
		p.ChargeCPU(1000)
		if p.ClockNS() != 1000*c.Config().CPUOpNS {
			t.Errorf("clock = %d", p.ClockNS())
		}
		p.ChargeCPU(0)
		p.ChargeCPU(-5)
		if p.Stats.Ops != 1000 {
			t.Errorf("non-positive charges should be ignored; ops=%d", p.Stats.Ops)
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	c := New(Default(1, 4))
	c.Run(func(p *Proc) {
		// Each proc does a different amount of work, then hits a barrier:
		// all clocks must equal max + sync cost.
		p.ChargeCPU(int64(1000 * (p.ID() + 1)))
		p.Barrier()
	})
	want := c.Proc(3).ClockNS()
	for i := 0; i < 4; i++ {
		if c.Proc(i).ClockNS() != want {
			t.Fatalf("proc %d clock %d, want %d", i, c.Proc(i).ClockNS(), want)
		}
	}
	// Proc 0 waited for proc 3's extra 3000 ops.
	wait := c.Proc(0).Stats.WaitNS
	if wait != 3000*c.Config().CPUOpNS {
		t.Fatalf("proc 0 wait = %d", wait)
	}
	if c.Proc(3).Stats.WaitNS != 0 {
		t.Fatal("slowest proc should not wait")
	}
}

func TestBarrierReusable(t *testing.T) {
	c := New(Default(2, 2))
	c.Run(func(p *Proc) {
		for round := 0; round < 50; round++ {
			p.ChargeCPU(int64((p.ID()*7+round)%13 + 1))
			p.Barrier()
		}
	})
	want := c.Proc(0).ClockNS()
	for i := 1; i < 4; i++ {
		if c.Proc(i).ClockNS() != want {
			t.Fatalf("clocks diverged after repeated barriers")
		}
	}
	if c.Proc(0).Stats.Barriers != 50 {
		t.Fatalf("barrier count = %d", c.Proc(0).Stats.Barriers)
	}
}

func TestDiskContentionModel(t *testing.T) {
	// Scanning the same bytes with more concurrent scanners must cost
	// proportionally more (the paper's disk-contention effect).
	c := New(Default(1, 4))
	var solo, crowd int64
	c.Run(func(p *Proc) {
		if p.ID() == 0 {
			before := p.ClockNS()
			p.ChargeScan(1<<20, 1)
			solo = p.ClockNS() - before
			before = p.ClockNS()
			p.ChargeScan(1<<20, 4)
			crowd = p.ClockNS() - before
		}
	})
	if crowd <= solo {
		t.Fatalf("contended scan (%d) should cost more than solo (%d)", crowd, solo)
	}
	if c.Proc(0).Stats.Scans != 2 {
		t.Fatalf("scan count = %d", c.Proc(0).Stats.Scans)
	}
}

func TestGather(t *testing.T) {
	c := New(Default(2, 2))
	c.Run(func(p *Proc) {
		got := Gather(p, p.ID()*10, 8)
		for i, v := range got {
			if v != i*10 {
				t.Errorf("proc %d: gather[%d] = %d", p.ID(), i, v)
			}
		}
	})
}

func TestGatherRepeatedNoCrossTalk(t *testing.T) {
	c := New(Default(1, 3))
	c.Run(func(p *Proc) {
		for round := 0; round < 20; round++ {
			got := Gather(p, p.ID()+round*100, 4)
			for i, v := range got {
				if v != i+round*100 {
					t.Errorf("round %d proc %d: gather[%d] = %d", round, p.ID(), i, v)
				}
			}
		}
	})
}

func TestSumReduce(t *testing.T) {
	c := New(Default(2, 2))
	c.Run(func(p *Proc) {
		vec := []int32{int32(p.ID()), 1, 0}
		got := SumReduceInt32(p, vec)
		if got[0] != 0+1+2+3 || got[1] != 4 || got[2] != 0 {
			t.Errorf("proc %d: reduce = %v", p.ID(), got)
		}
		// Input must be untouched.
		if vec[0] != int32(p.ID()) {
			t.Error("SumReduce modified its input")
		}
	})
	if c.Proc(0).Stats.NetBytes == 0 {
		t.Fatal("reduction should charge network bytes")
	}
}

func TestSumReduceInt(t *testing.T) {
	c := New(Default(1, 2))
	c.Run(func(p *Proc) {
		got := SumReduceInt(p, []int{5, p.ID()})
		if got[0] != 10 || got[1] != 1 {
			t.Errorf("reduce = %v", got)
		}
	})
}

func TestExchange(t *testing.T) {
	c := New(Default(2, 2))
	c.Run(func(p *Proc) {
		out := make([]string, c.NumProcs())
		for dst := range out {
			out[dst] = string(rune('A'+p.ID())) + string(rune('a'+dst))
		}
		in := Exchange(p, out, 128)
		for src, v := range in {
			want := string(rune('A'+src)) + string(rune('a'+p.ID()))
			if v != want {
				t.Errorf("proc %d: in[%d] = %q, want %q", p.ID(), src, v, want)
			}
		}
	})
}

func TestExchangeWrongLenPanics(t *testing.T) {
	c := New(Default(1, 2))
	var panicked atomic.Bool
	c.Run(func(p *Proc) {
		if p.ID() == 1 {
			// Other proc must still reach the collective or we deadlock, so
			// only proc 1 misbehaves after recovering.
			defer func() {
				if recover() != nil {
					panicked.Store(true)
				}
				// Re-join with the correct shape so proc 0 can finish.
				Exchange(p, make([]int, 2), 0)
			}()
			Exchange(p, make([]int, 5), 0)
			return
		}
		Exchange(p, make([]int, 2), 0)
	})
	if !panicked.Load() {
		t.Fatal("expected panic for wrong payload length")
	}
}

func TestBroadcast(t *testing.T) {
	c := New(Default(2, 2))
	c.Run(func(p *Proc) {
		v := -1
		if p.ID() == 2 {
			v = 777
		}
		got := Broadcast(p, 2, v, 8)
		if got != 777 {
			t.Errorf("proc %d: broadcast = %d", p.ID(), got)
		}
	})
}

func TestPhaseAccounting(t *testing.T) {
	c := New(Default(1, 1))
	c.Run(func(p *Proc) {
		p.SetPhase("init")
		p.ChargeCPU(100)
		p.SetPhase("transform")
		p.ChargeCPU(300)
	})
	ph := c.Proc(0).Stats.Phases
	op := c.Config().CPUOpNS
	if ph["init"] != 100*op || ph["transform"] != 300*op {
		t.Fatalf("phases = %v", ph)
	}
}

func TestVirtualTimeDeterministic(t *testing.T) {
	run := func() int64 {
		c := New(Default(2, 2))
		c.Run(func(p *Proc) {
			p.ChargeScan(int64(1000*(p.ID()+1)), p.HostProcs())
			p.ChargeCPU(int64(5000 * (4 - p.ID())))
			SumReduceInt32(p, []int32{1, 2, 3})
			p.ChargeNet(2, 4096)
			p.Barrier()
		})
		return c.MaxClockNS()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual time nondeterministic: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("virtual time should be positive")
	}
}

func TestOpClassCosts(t *testing.T) {
	cfg := Default(1, 1)
	c := New(cfg)
	c.Run(func(p *Proc) {
		var marks []int64
		for _, class := range []OpClass{OpGeneric, OpHashTree, OpIntersect, OpPairCount} {
			before := p.ClockNS()
			p.ChargeOps(class, 1000)
			marks = append(marks, p.ClockNS()-before)
		}
		want := []int64{1000 * cfg.CPUOpNS, 1000 * cfg.HashTreeOpNS,
			1000 * cfg.IntersectOpNS, 1000 * cfg.PairCountOpNS}
		for i := range want {
			if marks[i] != want[i] {
				t.Errorf("class %d cost %d, want %d", i, marks[i], want[i])
			}
		}
	})
	// Zero per-class costs fall back to the generic cost.
	cfg2 := Default(1, 1)
	cfg2.HashTreeOpNS = 0
	c2 := New(cfg2)
	c2.Run(func(p *Proc) {
		p.ChargeOps(OpHashTree, 10)
		if p.ClockNS() != 10*cfg2.CPUOpNS {
			t.Errorf("fallback cost wrong: %d", p.ClockNS())
		}
	})
}

func TestPageFactor(t *testing.T) {
	cfg := Default(1, 1)
	cfg.HostMemBytes = 100
	c := New(cfg)
	p := c.Proc(0)
	cases := []struct {
		resident int64
		want     int64
	}{
		{0, 1}, {100, 1}, {101, 2}, {250, 3}, {1e9, 16},
	}
	for _, tc := range cases {
		if got := p.PageFactor(tc.resident); got != tc.want {
			t.Errorf("PageFactor(%d) = %d, want %d", tc.resident, got, tc.want)
		}
	}
	// Disabled paging.
	cfg.HostMemBytes = 0
	c2 := New(cfg)
	if c2.Proc(0).PageFactor(1<<40) != 1 {
		t.Error("zero HostMemBytes should disable paging")
	}
}

func TestDiskWriteAndReportAccessors(t *testing.T) {
	c := New(Default(2, 1))
	c.Run(func(p *Proc) {
		p.SetPhase("work")
		p.ChargeDiskWrite(1<<20, 1)
		p.ChargeCPU(int64(p.ID()) * 100)
		p.Barrier()
	})
	rep := c.Report()
	if rep.Elapsed() <= 0 {
		t.Fatal("Elapsed should be positive")
	}
	if rep.PhaseMaxNS("work") <= 0 {
		t.Fatal("phase max missing")
	}
	if rep.PhaseMaxNS("nonexistent") != 0 {
		t.Fatal("unknown phase should be 0")
	}
	if rep.Merged.DiskBytesWritten != 2<<20 {
		t.Fatalf("written = %d", rep.Merged.DiskBytesWritten)
	}
	if c.Net() == nil {
		t.Fatal("Net accessor nil")
	}
}

func TestMergedStats(t *testing.T) {
	c := New(Default(1, 2))
	c.Run(func(p *Proc) {
		p.ChargeCPU(10)
		p.ChargeScan(100, 1)
	})
	m := c.MergedStats()
	if m.Ops != 20 || m.DiskBytesRead != 200 || m.Scans != 2 {
		t.Fatalf("merged = %+v", m)
	}
}
