// Package cluster simulates the paper's experimental testbed: a cluster of
// H hosts with P processors each (the paper's 8x4 DEC Alpha system),
// where each processor runs one SPMD process, hosts have local disks
// shared by their processors, and all communication goes over a simulated
// Memory Channel.
//
// Each simulated processor is a goroutine doing the *real* computation
// (the mining results are genuine), while a deterministic virtual clock
// accumulates modeled CPU, disk, network and synchronization time. A
// barrier advances every participant's clock to the maximum, charging the
// difference as wait time; the elapsed time of a run is the maximum final
// clock. Because every charge is a deterministic function of the work
// performed, virtual timings are bit-reproducible across runs and
// machines — which is how the paper's Table 2 and Figure 7 can be
// regenerated on a single-core CI box.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/memchannel"
	"repro/internal/obsv"
	"repro/internal/stats"
)

// Config describes a cluster.
type Config struct {
	Hosts        int // H
	ProcsPerHost int // P; total processors T = H*P
	Disk         disk.Model
	Net          memchannel.Model
	// CPUOpNS is the virtual cost of one generic abstract compute
	// operation. The default models the 233 MHz Alpha of the testbed.
	CPUOpNS int64
	// Per-class op costs; zero values fall back to CPUOpNS. The class
	// split encodes the memory-hierarchy behaviour the paper leans on:
	// hash-tree traversal is dependent pointer chasing with poor cache
	// locality ("complicated hash structures ... typically also have poor
	// cache locality [13]"), while sorted tid-list intersection is a
	// streaming merge ("all the available memory in Eclat is utilized to
	// keep tid-lists in memory which results in good locality").
	HashTreeOpNS  int64 // per hash-tree node visit / candidate subset check
	IntersectOpNS int64 // per tid-list element comparison
	PairCountOpNS int64 // per triangular-array increment
	// BitsetWordOpNS is the cost of one 64-bit word in the dense bitset
	// kernel (load two words, AND, popcount — a handful of streaming
	// instructions covering up to 64 tids, vs one IntersectOpNS per tid
	// for the sparse merge).
	BitsetWordOpNS int64

	// HostMemBytes is the physical memory of one host (the testbed had
	// 256 MB shared by the 4 processors of a host). When an algorithm's
	// per-host resident set exceeds it, memory-bound work is charged a
	// paging multiplier (see Proc.PageFactor). Zero disables paging.
	HostMemBytes int64
}

// OpClass selects the cost class of a CPU charge.
type OpClass int

// Operation classes (see Config field docs).
const (
	OpGeneric OpClass = iota
	OpHashTree
	OpIntersect
	OpPairCount
	OpBitsetWord
)

// Default returns the paper-calibrated configuration for an HxP cluster.
func Default(hosts, procsPerHost int) Config {
	return Config{
		Hosts:          hosts,
		ProcsPerHost:   procsPerHost,
		Disk:           disk.Default1997(),
		Net:            memchannel.DefaultDEC(),
		CPUOpNS:        40,  // ~10 instructions per abstract op at 233 MHz
		HashTreeOpNS:   400, // two dependent cache-missing loads per visit (node, then hash slot)
		IntersectOpNS:  9,   // streaming compare-and-advance over sorted arrays
		PairCountOpNS:  60,  // random increment into a multi-MB array
		BitsetWordOpNS: 12,  // two word loads + AND + popcount, streaming
		HostMemBytes:   256 << 20,
	}
}

// Cluster is a simulated machine. Create with New, run SPMD programs with
// Run.
type Cluster struct {
	cfg   Config
	net   *memchannel.Network
	disks []*disk.Disk
	procs []*Proc

	bar *barrier

	// Collective staging: slots[i] is written by processor i between the
	// two barriers of a collective.
	slots []any
}

// New builds the cluster and its processors.
func New(cfg Config) *Cluster {
	if cfg.Hosts < 1 || cfg.ProcsPerHost < 1 {
		panic(fmt.Sprintf("cluster: invalid config H=%d P=%d", cfg.Hosts, cfg.ProcsPerHost))
	}
	if cfg.CPUOpNS <= 0 {
		cfg.CPUOpNS = 40
	}
	t := cfg.Hosts * cfg.ProcsPerHost
	c := &Cluster{
		cfg:   cfg,
		net:   memchannel.New(cfg.Net),
		slots: make([]any, t),
		bar:   newBarrier(t),
	}
	for h := 0; h < cfg.Hosts; h++ {
		c.disks = append(c.disks, disk.New(cfg.Disk))
	}
	for i := 0; i < t; i++ {
		c.procs = append(c.procs, &Proc{id: i, host: i / cfg.ProcsPerHost, c: c})
	}
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NumProcs returns T = H*P.
func (c *Cluster) NumProcs() int { return len(c.procs) }

// Net exposes the interconnect cost model.
func (c *Cluster) Net() *memchannel.Network { return c.net }

// Proc returns processor i.
func (c *Cluster) Proc(i int) *Proc { return c.procs[i] }

// Run executes fn concurrently on every processor (SPMD) and returns the
// elapsed virtual time: the maximum processor clock on completion. Run may
// be called repeatedly; clocks continue from where they stopped, so use a
// fresh cluster per measured experiment.
func (c *Cluster) Run(fn func(p *Proc)) time.Duration {
	var wg sync.WaitGroup
	for _, p := range c.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			fn(p)
			p.closePhase()
		}(p)
	}
	wg.Wait()
	return time.Duration(c.MaxClockNS())
}

// MaxClockNS returns the largest processor clock, the elapsed virtual time.
func (c *Cluster) MaxClockNS() int64 {
	var max int64
	for _, p := range c.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// Report summarizes a finished run: elapsed virtual time, per-processor
// breakdowns, and merged volume totals. The parallel algorithm packages
// return one per mining run.
type Report struct {
	Config    Config
	ElapsedNS int64
	PerProc   []stats.Breakdown
	Merged    stats.Breakdown
	// Representation names the tid-set representation the run mined
	// through ("auto", "sparse", "bitset"); set by the mining packages so
	// reports from different encodings can be told apart when comparing
	// per-representation phase maxima.
	Representation string
}

// Elapsed returns the run's virtual wall time.
func (r *Report) Elapsed() time.Duration { return time.Duration(r.ElapsedNS) }

// PhaseMaxNS returns the maximum time any processor spent in the named
// phase — the figure reported in the paper's Table 2 break-up.
func (r *Report) PhaseMaxNS(name string) int64 {
	var max int64
	for i := range r.PerProc {
		if ns := r.PerProc[i].Phases[name]; ns > max {
			max = ns
		}
	}
	return max
}

// PhaseMax pairs a phase name with its maximum per-processor virtual
// time.
type PhaseMax struct {
	Name string
	NS   int64
}

// PhaseMaxima returns every phase's PhaseMaxNS, sorted by name for
// deterministic output — the whole Table 2 break-up in one call. The
// observability layer imports these as virtual spans.
func (r *Report) PhaseMaxima() []PhaseMax {
	maxes := map[string]int64{}
	for i := range r.PerProc {
		for name, ns := range r.PerProc[i].Phases {
			if ns > maxes[name] {
				maxes[name] = ns
			}
		}
	}
	out := make([]PhaseMax, 0, len(maxes))
	for name, ns := range maxes {
		out = append(out, PhaseMax{Name: name, NS: ns})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Simulator-level metrics: runs, elapsed virtual time, and per-phase
// virtual maxima land in the default registry every time a run's report
// is taken.
const (
	mnClusterRuns        = "cluster_runs_total"
	mnClusterElapsed     = "cluster_elapsed_virtual_ns"
	mnClusterPhasePrefix = "cluster_phase_"
	mnVirtualNSSuffix    = "_virtual_ns"
)

var (
	clusterRuns    = obsv.Default.Counter(mnClusterRuns, "simulated cluster runs reported")
	clusterElapsed = obsv.Default.Histogram(mnClusterElapsed, "elapsed virtual time of simulated cluster runs", nil)
)

// Report snapshots the cluster's accounting after a Run and publishes
// the run's virtual-time figures to the metrics registry.
func (c *Cluster) Report() Report {
	r := Report{Config: c.cfg, ElapsedNS: c.MaxClockNS(), Merged: c.MergedStats()}
	for _, p := range c.procs {
		r.PerProc = append(r.PerProc, p.Stats)
	}
	clusterRuns.Inc()
	clusterElapsed.Observe(r.ElapsedNS)
	for _, pm := range r.PhaseMaxima() {
		obsv.Default.Histogram(mnClusterPhasePrefix+obsv.SanitizeName(pm.Name)+mnVirtualNSSuffix,
			"maximum per-processor virtual time of the "+pm.Name+" phase", nil).Observe(pm.NS)
	}
	return r
}

// MergedStats returns cluster-wide volume totals.
func (c *Cluster) MergedStats() stats.Breakdown {
	var out stats.Breakdown
	for _, p := range c.procs {
		out.Merge(&p.Stats)
	}
	return out
}

// Proc is one simulated processor: a goroutine identity plus a virtual
// clock and its accounting.
type Proc struct {
	id   int
	host int
	c    *Cluster

	clock int64
	Stats stats.Breakdown

	phase      string
	phaseStart int64
}

// ID returns the processor id in [0, T).
func (p *Proc) ID() int { return p.id }

// Host returns the host index in [0, H).
func (p *Proc) Host() int { return p.host }

// HostProcs returns P, the number of processors sharing this host's disk.
func (p *Proc) HostProcs() int { return p.c.cfg.ProcsPerHost }

// ClockNS returns the current virtual time of this processor.
func (p *Proc) ClockNS() int64 { return p.clock }

// SetPhase attributes subsequent virtual time to the named phase until the
// next SetPhase (Table 2's init/transform break-up is produced this way).
func (p *Proc) SetPhase(name string) {
	p.closePhase()
	p.phase = name
	p.phaseStart = p.clock
}

func (p *Proc) closePhase() {
	if p.phase != "" {
		p.Stats.AddPhase(p.phase, p.clock-p.phaseStart)
	}
	p.phase = ""
}

// ChargeCPU advances the clock by ops generic compute operations.
func (p *Proc) ChargeCPU(ops int64) { p.ChargeOps(OpGeneric, ops) }

// ChargeOps advances the clock by ops operations of the given class.
func (p *Proc) ChargeOps(class OpClass, ops int64) {
	if ops <= 0 {
		return
	}
	cost := p.c.cfg.CPUOpNS
	switch class {
	case OpHashTree:
		if p.c.cfg.HashTreeOpNS > 0 {
			cost = p.c.cfg.HashTreeOpNS
		}
	case OpIntersect:
		if p.c.cfg.IntersectOpNS > 0 {
			cost = p.c.cfg.IntersectOpNS
		}
	case OpPairCount:
		if p.c.cfg.PairCountOpNS > 0 {
			cost = p.c.cfg.PairCountOpNS
		}
	case OpBitsetWord:
		if p.c.cfg.BitsetWordOpNS > 0 {
			cost = p.c.cfg.BitsetWordOpNS
		}
	}
	ns := ops * cost
	p.clock += ns
	p.Stats.CPUNS += ns
	p.Stats.Ops += ops
}

// PageFactor returns the paging multiplier for memory-bound work given a
// per-host resident-set size: 1 while the host's processes fit in
// physical memory, then the over-commit ratio (resident/memory, rounded
// up) once they do not, capped at 16. The cap models the point where the
// working set cycles entirely through swap.
func (p *Proc) PageFactor(residentBytes int64) int64 {
	mem := p.c.cfg.HostMemBytes
	if mem <= 0 || residentBytes <= mem {
		return 1
	}
	f := (residentBytes + mem - 1) / mem
	if f > 16 {
		f = 16
	}
	return f
}

// ChargeScan charges a sequential read of `bytes` from the host disk with
// `concurrent` processors of this host scanning simultaneously (pass
// p.HostProcs() for the usual SPMD phase). It counts one local-partition
// scan.
func (p *Proc) ChargeScan(bytes int64, concurrent int) {
	ns := p.c.disks[p.host].ScanNS(bytes, concurrent)
	p.clock += ns
	p.Stats.DiskNS += ns
	p.Stats.DiskBytesRead += bytes
	p.Stats.Scans++
}

// ChargeDiskWrite charges a sequential write to the host disk.
func (p *Proc) ChargeDiskWrite(bytes int64, concurrent int) {
	ns := p.c.disks[p.host].WriteNS(bytes, concurrent)
	p.clock += ns
	p.Stats.DiskNS += ns
	p.Stats.DiskBytesWritten += bytes
}

// AddNetPayload records the per-encoding split of tid-set payload bytes
// this processor shipped (the time itself is charged by the collective
// that moves the bytes; this only attributes the volume to an encoding).
func (p *Proc) AddNetPayload(sparseBytes, denseBytes int64) {
	p.Stats.NetBytesSparse += sparseBytes
	p.Stats.NetBytesDense += denseBytes
}

// ChargeNet charges raw network time for msgs messages totalling bytes.
func (p *Proc) ChargeNet(msgs int, bytes int64) {
	ns := int64(msgs) * p.c.net.Model().LatencyNS
	if bytes > 0 {
		ns += p.c.net.SendNS(bytes) - p.c.net.Model().LatencyNS
	}
	p.clock += ns
	p.Stats.NetNS += ns
	p.Stats.NetBytes += bytes
	p.Stats.NetMsgs += int64(msgs)
}

// Barrier synchronizes all processors: every clock advances to the
// maximum arrival clock plus the combining-tree cost; the idle gap is
// recorded as wait time.
func (p *Proc) Barrier() {
	released := p.c.bar.await(p.clock)
	wait := released - p.clock
	if wait > 0 {
		p.Stats.WaitNS += wait
	}
	sync := p.c.net.BarrierNS(p.c.NumProcs())
	p.clock = released + sync
	p.Stats.NetNS += sync
	p.Stats.NetMsgs++
	p.Stats.Barriers++
}

// barrier is a reusable counting barrier that also computes the maximum
// arrival clock of each generation.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	arrived  int
	gen      uint64
	maxClock int64
	release  int64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await(clock int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if clock > b.maxClock {
		b.maxClock = clock
	}
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.release = b.maxClock
		b.maxClock = 0
		b.gen++
		b.cond.Broadcast()
		return b.release
	}
	gen := b.gen
	for gen == b.gen {
		b.cond.Wait()
	}
	return b.release
}
