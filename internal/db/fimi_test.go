package db

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/itemset"
)

func TestDecodeFIMIBasic(t *testing.T) {
	in := "1 4 7\n# comment\n\n2 3\n7 7 1\n"
	d, err := DecodeFIMI(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.NumItems != 8 {
		t.Fatalf("NumItems inferred as %d, want 8", d.NumItems)
	}
	if !d.Transactions[2].Items.Equal(itemset.New(1, 7)) {
		t.Fatalf("dedup/sort failed: %v", d.Transactions[2].Items)
	}
	if d.Transactions[1].TID != 1 {
		t.Fatal("TIDs should be consecutive over non-skipped lines")
	}
}

func TestDecodeFIMIExplicitUniverse(t *testing.T) {
	d, err := DecodeFIMI(strings.NewReader("1 2\n"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumItems != 100 {
		t.Fatalf("NumItems = %d, want 100", d.NumItems)
	}
	// Universe smaller than data grows to fit.
	d, err = DecodeFIMI(strings.NewReader("5\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumItems != 6 {
		t.Fatalf("NumItems = %d, want 6", d.NumItems)
	}
}

func TestDecodeFIMIRejectsBadItems(t *testing.T) {
	for _, in := range []string{"1 x\n", "-3\n", "1 999999999999999\n"} {
		if _, err := DecodeFIMI(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q should be rejected", in)
		}
	}
}

func TestDecodeFIMIEmpty(t *testing.T) {
	d, err := DecodeFIMI(strings.NewReader(""), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 || d.NumItems != 1 {
		t.Fatalf("empty: %d transactions, %d items", d.Len(), d.NumItems)
	}
}

func TestFIMIRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := EncodeFIMI(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFIMI(&buf, d.NumItems)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip lost transactions: %d vs %d", back.Len(), d.Len())
	}
	for i := range d.Transactions {
		if !back.Transactions[i].Items.Equal(d.Transactions[i].Items) {
			t.Fatalf("transaction %d items changed", i)
		}
	}
}
