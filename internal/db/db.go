// Package db implements the horizontal transaction database of the paper:
// each transaction is a unique TID followed by the sorted set of items it
// contains. It also provides the equal-sized block partitioning that all
// the parallel algorithms assume ("the database is partitioned among all
// the processors in equal-sized blocks, which reside on the local disk of
// each processor") and a compact binary encoding used both by the cmd/
// tools and by the simulated-disk cost model to size I/O transfers.
package db

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/itemset"
)

// Transaction is one row of basket data: a transaction identifier and the
// sorted itemset bought in it.
type Transaction struct {
	TID   itemset.TID
	Items itemset.Itemset
}

// Database is an in-memory horizontal database. Transactions are stored in
// increasing TID order; block partitioning therefore yields disjoint,
// monotonically increasing TID ranges per partition, the property Eclat's
// transformation phase exploits to keep global tid-lists sorted without a
// sort step (paper section 6.3).
type Database struct {
	// NumItems is the size of the item universe; items are in [0, NumItems).
	NumItems int
	// Transactions in increasing TID order.
	Transactions []Transaction
}

// Len returns the number of transactions |D|.
func (d *Database) Len() int { return len(d.Transactions) }

// AvgLen returns the average transaction size |T|.
func (d *Database) AvgLen() float64 {
	if len(d.Transactions) == 0 {
		return 0
	}
	var total int
	for _, t := range d.Transactions {
		total += len(t.Items)
	}
	return float64(total) / float64(len(d.Transactions))
}

// SizeBytes returns the size of the binary encoding of d, the figure the
// disk model charges for a full scan (Table 1 reports these in MB).
func (d *Database) SizeBytes() int64 {
	var n int64 = 12 // header
	for _, t := range d.Transactions {
		n += 4 + 4 + 4*int64(len(t.Items)) // tid + count + items
	}
	return n
}

// MinSupCount converts a percentage support threshold (e.g. 0.1 for the
// paper's 0.1%) into an absolute transaction count, rounding up so that an
// itemset with exactly the threshold share qualifies.
func (d *Database) MinSupCount(pct float64) int {
	c := int(math.Ceil(pct / 100 * float64(len(d.Transactions))))
	if c < 1 {
		c = 1
	}
	return c
}

// Partition splits d into n block partitions of near-equal transaction
// count, preserving TID order. Partition i receives transactions
// [i*ceil(len/n) ...), so TID ranges are disjoint and increasing across
// partitions. Partitions share the underlying transaction storage.
func (d *Database) Partition(n int) []*Database {
	if n <= 0 {
		panic(fmt.Sprintf("db: invalid partition count %d", n))
	}
	parts := make([]*Database, n)
	total := len(d.Transactions)
	for i := 0; i < n; i++ {
		lo := i * total / n
		hi := (i + 1) * total / n
		parts[i] = &Database{NumItems: d.NumItems, Transactions: d.Transactions[lo:hi]}
	}
	return parts
}

// Validate checks the structural invariants: increasing TIDs, sorted
// in-range items. Algorithms rely on these; the generator and decoder
// guarantee them, and tests call Validate to prove it.
func (d *Database) Validate() error {
	var prev itemset.TID = -1
	for _, t := range d.Transactions {
		if t.TID <= prev {
			return fmt.Errorf("db: TIDs not strictly increasing at %d", t.TID)
		}
		prev = t.TID
		for i, it := range t.Items {
			if it < 0 || int(it) >= d.NumItems {
				return fmt.Errorf("db: item %d out of range [0,%d) in tid %d", it, d.NumItems, t.TID)
			}
			if i > 0 && t.Items[i-1] >= it {
				return fmt.Errorf("db: items not strictly increasing in tid %d", t.TID)
			}
		}
	}
	return nil
}

const magic = uint32(0xEC1A7DB1)

// Encode writes the binary representation of d to w:
//
//	magic uint32 | numItems uint32 | numTx uint32
//	then per transaction: tid uint32 | count uint32 | items []uint32
//
// All values little-endian.
func (d *Database) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(d.NumItems))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(d.Transactions)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, t := range d.Transactions {
		binary.LittleEndian.PutUint32(buf[0:], uint32(t.TID))
		binary.LittleEndian.PutUint32(buf[4:], uint32(len(t.Items)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		for _, it := range t.Items {
			binary.LittleEndian.PutUint32(buf[:4], uint32(it))
			if _, err := bw.Write(buf[:4]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode reads a database previously written by Encode.
func Decode(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("db: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, errors.New("db: bad magic; not an encoded database")
	}
	d := &Database{NumItems: int(binary.LittleEndian.Uint32(hdr[4:]))}
	numTx := binary.LittleEndian.Uint32(hdr[8:])
	d.Transactions = make([]Transaction, 0, numTx)
	var buf [8]byte
	for i := uint32(0); i < numTx; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("db: reading transaction %d: %w", i, err)
		}
		t := Transaction{TID: itemset.TID(binary.LittleEndian.Uint32(buf[0:]))}
		count := binary.LittleEndian.Uint32(buf[4:])
		if count > 1<<20 {
			return nil, fmt.Errorf("db: implausible transaction size %d", count)
		}
		t.Items = make(itemset.Itemset, count)
		for j := uint32(0); j < count; j++ {
			if _, err := io.ReadFull(br, buf[:4]); err != nil {
				return nil, fmt.Errorf("db: reading items of transaction %d: %w", i, err)
			}
			t.Items[j] = itemset.Item(binary.LittleEndian.Uint32(buf[:4]))
		}
		d.Transactions = append(d.Transactions, t)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
