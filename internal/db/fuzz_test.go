package db

import (
	"bytes"
	"testing"

	"repro/internal/itemset"
)

// FuzzDecode throws arbitrary bytes at the decoder: it must never panic,
// and anything it accepts must re-encode to a stream that decodes to the
// same database (canonicalization round-trip).
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	sample := &Database{
		NumItems: 8,
		Transactions: []Transaction{
			{TID: 0, Items: itemset.New(1, 3)},
			{TID: 4, Items: itemset.New(0, 2, 7)},
		},
	}
	if err := sample.Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a database"))
	f.Add(seed.Bytes()[:7])

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid database: %v", err)
		}
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Len() != d.Len() || back.NumItems != d.NumItems {
			t.Fatal("round trip changed the database")
		}
		for i := range d.Transactions {
			if back.Transactions[i].TID != d.Transactions[i].TID ||
				!back.Transactions[i].Items.Equal(d.Transactions[i].Items) {
				t.Fatalf("round trip changed transaction %d", i)
			}
		}
	})
}
