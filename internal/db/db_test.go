package db

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
)

func sample() *Database {
	return &Database{
		NumItems: 10,
		Transactions: []Transaction{
			{TID: 0, Items: itemset.New(1, 3, 5)},
			{TID: 1, Items: itemset.New(2)},
			{TID: 2, Items: itemset.New(0, 9)},
			{TID: 5, Items: itemset.New(4, 5, 6, 7)},
		},
	}
}

func randomDB(rng *rand.Rand, numTx, numItems int) *Database {
	d := &Database{NumItems: numItems}
	for i := 0; i < numTx; i++ {
		n := 1 + rng.Intn(8)
		items := make([]itemset.Item, n)
		for j := range items {
			items[j] = itemset.Item(rng.Intn(numItems))
		}
		d.Transactions = append(d.Transactions, Transaction{
			TID:   itemset.TID(i),
			Items: itemset.New(items...),
		})
	}
	return d
}

func TestBasicStats(t *testing.T) {
	d := sample()
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got := d.AvgLen(); got != 2.5 {
		t.Fatalf("AvgLen = %v, want 2.5", got)
	}
	empty := &Database{NumItems: 3}
	if empty.AvgLen() != 0 {
		t.Fatal("empty AvgLen should be 0")
	}
}

func TestMinSupCount(t *testing.T) {
	d := &Database{Transactions: make([]Transaction, 1000)}
	cases := []struct {
		pct  float64
		want int
	}{
		{0.1, 1}, {1, 10}, {0.25, 3}, {100, 1000}, {0.0001, 1}, {0, 1},
	}
	for _, c := range cases {
		if got := d.MinSupCount(c.pct); got != c.want {
			t.Errorf("MinSupCount(%v) = %d, want %d", c.pct, got, c.want)
		}
	}
}

func TestPartitionCoversAndOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomDB(rng, 103, 20)
	for _, n := range []int{1, 2, 3, 4, 7, 16, 103, 200} {
		parts := d.Partition(n)
		if len(parts) != n {
			t.Fatalf("Partition(%d) returned %d parts", n, len(parts))
		}
		total := 0
		var prevTID itemset.TID = -1
		for _, p := range parts {
			total += p.Len()
			for _, tx := range p.Transactions {
				if tx.TID <= prevTID {
					t.Fatalf("Partition(%d): TID order broken across partitions", n)
				}
				prevTID = tx.TID
			}
		}
		if total != d.Len() {
			t.Fatalf("Partition(%d) covers %d of %d transactions", n, total, d.Len())
		}
		// Near-equal block sizes: max-min <= 1.
		min, max := parts[0].Len(), parts[0].Len()
		for _, p := range parts {
			if p.Len() < min {
				min = p.Len()
			}
			if p.Len() > max {
				max = p.Len()
			}
		}
		if max-min > 1 {
			t.Fatalf("Partition(%d): unbalanced blocks min=%d max=%d", n, min, max)
		}
	}
}

func TestPartitionPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partition(0) should panic")
		}
	}()
	sample().Partition(0)
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("sample should validate: %v", err)
	}
	bad := sample()
	bad.Transactions[1].TID = 0
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "TID") {
		t.Fatalf("duplicate TID should fail: %v", err)
	}
	bad = sample()
	bad.Transactions[0].Items = itemset.Itemset{3, 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("unsorted items should fail")
	}
	bad = sample()
	bad.Transactions[0].Items = itemset.Itemset{1, 99}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range item should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != d.SizeBytes() {
		t.Fatalf("SizeBytes = %d, encoded = %d", d.SizeBytes(), buf.Len())
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumItems != d.NumItems || back.Len() != d.Len() {
		t.Fatalf("round trip header mismatch")
	}
	for i := range d.Transactions {
		if back.Transactions[i].TID != d.Transactions[i].TID ||
			!back.Transactions[i].Items.Equal(d.Transactions[i].Items) {
			t.Fatalf("transaction %d mismatch: %v vs %v", i, back.Transactions[i], d.Transactions[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a database file"))); err == nil {
		t.Fatal("Decode should reject bad magic")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("Decode should reject empty input")
	}
	// Truncated stream: encode then cut.
	var buf bytes.Buffer
	if err := sample().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := Decode(bytes.NewReader(cut)); err == nil {
		t.Fatal("Decode should reject truncated input")
	}
}

// failWriter errors once its byte budget is exhausted, to exercise the
// encoders' error paths.
type failWriter struct{ budget int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errShort
	}
	w.budget -= len(p)
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }

func TestEncodeWriteErrors(t *testing.T) {
	d := sample()
	for _, budget := range []int{0, 5, 13, 20} {
		if err := d.Encode(&failWriter{budget: budget}); err == nil {
			t.Errorf("Encode with budget %d should fail", budget)
		}
	}
	for _, budget := range []int{0, 3} {
		if err := EncodeFIMI(&failWriter{budget: budget}, d); err == nil {
			t.Errorf("EncodeFIMI with budget %d should fail", budget)
		}
	}
}

// Property: encode/decode round-trips arbitrary valid databases.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDB(rng, int(n%60), 30)
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			return false
		}
		back, err := Decode(&buf)
		if err != nil || back.Len() != d.Len() {
			return false
		}
		for i := range d.Transactions {
			if !back.Transactions[i].Items.Equal(d.Transactions[i].Items) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
