package db

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/itemset"
)

// DecodeFIMI reads the plain-text transaction format used by the FIMI
// repository datasets and most published association-mining tools: one
// transaction per line, items as space-separated non-negative integers.
// Lines are assigned consecutive TIDs; duplicate items within a line are
// deduplicated; blank lines and lines starting with '#' are skipped. The
// item universe is inferred as maxItem+1 unless numItems > 0 is given.
func DecodeFIMI(r io.Reader, numItems int) (*Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	d := &Database{NumItems: numItems}
	maxItem := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		items := make([]itemset.Item, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("db: line %d: bad item %q", lineNo, f)
			}
			if int(v) > maxItem {
				maxItem = int(v)
			}
			items = append(items, itemset.Item(v))
		}
		d.Transactions = append(d.Transactions, Transaction{
			TID:   itemset.TID(len(d.Transactions)),
			Items: itemset.New(items...),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("db: reading FIMI input: %w", err)
	}
	if d.NumItems <= maxItem {
		d.NumItems = maxItem + 1
	}
	if d.NumItems == 0 {
		d.NumItems = 1
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// EncodeFIMI writes the database in the FIMI text format.
func EncodeFIMI(w io.Writer, d *Database) error {
	bw := bufio.NewWriter(w)
	for _, tx := range d.Transactions {
		for i, it := range tx.Items {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(it))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
