package obsv

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestMetricsCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	c.Add(-5) // dropped: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("c_total", "ignored"); again != c {
		t.Fatal("re-registration should return the same counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	r.GaugeFunc("gf", "a func gauge", func() int64 { return 5 })
	r.GaugeFunc("gf", "replaced", func() int64 { return 6 }) // last wins

	h := r.Histogram("h_ns", "a histogram", []int64{10, 100})
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 555 {
		t.Fatalf("hist count=%d sum=%d, want 3/555", h.Count(), h.Sum())
	}
}

func TestMetricsKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestMetricsConcurrentUpdatesAreRaceFree(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("shared_ns", "", nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared_ns", "", nil).Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests_total", "requests served").Add(3)
	r.Gauge("queue_len", "jobs waiting").Set(2)
	r.GaugeFunc("datasets", "registered datasets", func() int64 { return 4 })
	h := r.Histogram("latency_ns", "job latency", []int64{1000, 1_000_000})
	h.Observe(500)
	h.Observe(2_000_000)
	return r
}

func TestMetricsJSONIsExpvarCompatible(t *testing.T) {
	var sb strings.Builder
	if err := testRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("JSON exposition does not parse: %v\n%s", err, sb.String())
	}
	if m["requests_total"].(float64) != 3 {
		t.Fatalf("requests_total = %v, want 3", m["requests_total"])
	}
	if m["queue_len"].(float64) != 2 || m["datasets"].(float64) != 4 {
		t.Fatalf("gauges wrong: %v", m)
	}
	hist, ok := m["latency_ns"].(map[string]any)
	if !ok {
		t.Fatalf("latency_ns is %T, want object", m["latency_ns"])
	}
	if hist["count"].(float64) != 2 || hist["sum"].(float64) != 2_000_500 {
		t.Fatalf("histogram fields wrong: %v", hist)
	}
	buckets := hist["buckets"].([]any)
	last := buckets[len(buckets)-1].(map[string]any)
	if last["le"].(float64) != -1 || last["count"].(float64) != 2 {
		t.Fatalf("+Inf bucket wrong: %v", last)
	}
}

func TestMetricsPrometheusExposition(t *testing.T) {
	var sb strings.Builder
	if err := testRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 3",
		"# TYPE queue_len gauge",
		"queue_len 2",
		"datasets 4",
		"# TYPE latency_ns histogram",
		`latency_ns_bucket{le="1000"} 1`,
		`latency_ns_bucket{le="+Inf"} 2`,
		"latency_ns_sum 2000500",
		"latency_ns_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
	// Every non-comment line must be "name[{labels}] value" — the
	// format's minimal well-formedness check.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestMetricsHandlerNegotiatesFormat(t *testing.T) {
	r := testRegistry()
	h := r.Handler()

	// Default: expvar JSON.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default Content-Type = %q", ct)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}

	// ?format=prometheus and a Prometheus Accept header: text exposition.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz?format=prometheus", nil))
	if !strings.Contains(rec.Body.String(), "# TYPE requests_total counter") {
		t.Fatalf("format=prometheus did not return text exposition:\n%s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metricsz", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5")
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "requests_total 3") {
		t.Fatalf("Accept: text/plain did not return text exposition:\n%s", rec.Body.String())
	}
}
