// Package obsv is the repository's observability substrate: a
// lock-cheap metrics registry (counters, gauges, histograms whose hot
// paths are single atomic operations) and a span-style phase tracer
// threaded through the miners via context.
//
// The paper's entire evaluation rests on per-phase timing break-ups
// (initialization / transformation / asynchronous / reduction — Table 2),
// so the tracer speaks the same vocabulary: a mining run records named
// phase spans, and the registry aggregates phase durations, intersection
// work, candidate counts, and serving-layer queue/cache behaviour across
// runs. cmd/assocmined exposes the default registry at GET /metricsz in
// both expvar-compatible JSON and Prometheus text exposition formats;
// cmd/assocmine prints a single run's spans with -stats.
//
// Registration is get-or-create by name and safe for concurrent use;
// the returned metric handles are meant to be captured once in package
// vars so the hot path pays only the atomic update:
//
//	var intersections = obsv.Default.Counter("eclat_intersections_total",
//		"tid-list intersections attempted")
//	...
//	intersections.Add(n)
package obsv

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use, but counters are normally obtained from a Registry.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta (negative deltas are dropped:
// counters are monotonic by contract).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of int64 observations (the
// repository observes durations as nanoseconds). Observe is wait-free:
// one binary search over the static bounds plus three atomic adds.
type Histogram struct {
	bounds  []int64 // ascending upper bucket bounds; implicit +Inf last
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// DurationBounds is the default bucket layout for nanosecond duration
// histograms: powers of four from 1µs to ~4.6 minutes, a dynamic range
// wide enough for both a single tid-list class and a full mining job.
var DurationBounds = expBounds(1_000, 4, 14)

func expBounds(start, factor int64, n int) []int64 {
	bounds := make([]int64, n)
	v := start
	for i := range bounds {
		bounds[i] = v
		v *= factor
	}
	return bounds
}

// SanitizeName rewrites s so it is usable inside a Prometheus metric
// name: every byte outside [a-zA-Z0-9_] becomes '_' (phase names like
// "level-3" become "level_3").
func SanitizeName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c >= '0' && c <= '9':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type entry struct {
	name string
	help string
	kind metricKind

	counter   *Counter
	gauge     *Gauge
	gaugeFunc func() int64
	hist      *Histogram
}

// Registry is a named collection of metrics. Lookup/registration takes a
// mutex; the returned handles never do. The zero value is not usable —
// construct with NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	order   []string // registration order; exposition sorts by name anyway
}

// Default is the process-wide registry all built-in instrumentation
// reports to; cmd/assocmined serves it at /metricsz.
var Default = NewRegistry()

// NewRegistry builds an empty registry (tests use isolated instances).
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) get(name string, kind metricKind) (*entry, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obsv: metric %q re-registered with a different kind", name))
		}
		return e, true
	}
	return nil, false
}

func (r *Registry) add(e *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[e.name]; ok {
		if prev.kind != e.kind {
			panic(fmt.Sprintf("obsv: metric %q re-registered with a different kind", e.name))
		}
		return prev
	}
	r.entries[e.name] = e
	r.order = append(r.order, e.name)
	return e
}

// Counter returns the counter registered under name, creating it when
// absent. The first registration's help string wins.
func (r *Registry) Counter(name, help string) *Counter {
	if e, ok := r.get(name, kindCounter); ok {
		return e.counter
	}
	return r.add(&entry{name: name, help: help, kind: kindCounter, counter: &Counter{}}).counter
}

// Gauge returns the gauge registered under name, creating it when absent.
func (r *Registry) Gauge(name, help string) *Gauge {
	if e, ok := r.get(name, kindGauge); ok {
		return e.gauge
	}
	return r.add(&entry{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (queue lengths, cache sizes). Re-registering the same name
// replaces fn, so a restarted subsystem (or a later Service instance)
// takes over the name.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindGaugeFunc {
			panic(fmt.Sprintf("obsv: metric %q re-registered with a different kind", name))
		}
		e.gaugeFunc = fn
		return
	}
	r.entries[name] = &entry{name: name, help: help, kind: kindGaugeFunc, gaugeFunc: fn}
	r.order = append(r.order, name)
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds when absent (nil bounds use DurationBounds).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if e, ok := r.get(name, kindHistogram); ok {
		return e.hist
	}
	if bounds == nil {
		bounds = DurationBounds
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	return r.add(&entry{name: name, help: help, kind: kindHistogram, hist: h}).hist
}

// snapshot returns the entries sorted by name, for deterministic
// exposition.
func (r *Registry) snapshot() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.entries))
	for _, name := range r.order {
		out = append(out, r.entries[name])
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
