package obsv

import (
	"context"
	"sync"
	"time"
)

// PhaseSpan is one completed span of a trace: a named phase with its
// start offset from the trace origin and its duration. StartNS == -1
// marks a span imported from the cluster simulator's virtual clock,
// which has durations but no wall-clock position.
type PhaseSpan struct {
	Name       string `json:"name"`
	StartNS    int64  `json:"startNs"`
	DurationNS int64  `json:"durationNs"`
}

// Duration returns the span length as a time.Duration.
func (s PhaseSpan) Duration() time.Duration { return time.Duration(s.DurationNS) }

// Virtual reports whether the span carries simulated (virtual-clock)
// time rather than wall-clock time.
func (s PhaseSpan) Virtual() bool { return s.StartNS < 0 }

// Trace collects the phase spans of one mining run (or one service
// job). It is safe for concurrent use; a nil *Trace is a valid no-op
// receiver, so instrumented code can call TraceFrom(ctx).Start(...)
// unconditionally.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	spans []PhaseSpan
}

// NewTrace starts an empty trace whose origin is now.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// Start opens a span; close it with End. Nil-safe.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// record appends a finished span.
func (t *Trace) record(name string, start time.Time, d time.Duration) {
	t.mu.Lock()
	t.spans = append(t.spans, PhaseSpan{
		Name:       name,
		StartNS:    start.Sub(t.start).Nanoseconds(),
		DurationNS: d.Nanoseconds(),
	})
	t.mu.Unlock()
}

// AddVirtual appends a span measured on the simulator's virtual clock
// (StartNS = -1). The cluster-backed algorithms import their
// per-phase virtual maxima this way. Nil-safe.
func (t *Trace) AddVirtual(name string, durationNS int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, PhaseSpan{Name: name, StartNS: -1, DurationNS: durationNS})
	t.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far, in completion
// order. Nil-safe (returns nil).
func (t *Trace) Spans() []PhaseSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]PhaseSpan(nil), t.spans...)
}

// ElapsedNS returns the wall-clock nanoseconds since the trace origin.
func (t *Trace) ElapsedNS() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Nanoseconds()
}

// Span is one open phase. End closes it; a nil span (from a nil trace)
// ends as a no-op, and ending twice records once.
type Span struct {
	t     *Trace
	name  string
	start time.Time
	done  bool
}

// End closes the span, records it on its trace, and returns the span
// duration.
func (s *Span) End() time.Duration {
	if s == nil || s.done {
		return 0
	}
	s.done = true
	d := time.Since(s.start)
	s.t.record(s.name, s.start, d)
	return d
}

type traceKey struct{}

// WithTrace returns a context carrying t; the miners record their phase
// spans into it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil (a valid no-op
// receiver) when there is none.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
