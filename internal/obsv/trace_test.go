package obsv

import (
	"context"
	"testing"
	"time"
)

func TestMetricsTraceSpans(t *testing.T) {
	tr := NewTrace()
	s1 := tr.Start("initialization")
	time.Sleep(2 * time.Millisecond)
	s1.End()
	s1.End() // double End records once
	s2 := tr.Start("asynchronous")
	time.Sleep(time.Millisecond)
	s2.End()
	tr.AddVirtual("reduce", 12345)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "initialization" || spans[0].DurationNS <= 0 || spans[0].Virtual() {
		t.Fatalf("bad first span: %+v", spans[0])
	}
	if spans[1].StartNS < spans[0].StartNS+spans[0].DurationNS {
		t.Fatalf("second span should start after the first ends: %+v then %+v", spans[0], spans[1])
	}
	if !spans[2].Virtual() || spans[2].DurationNS != 12345 {
		t.Fatalf("bad virtual span: %+v", spans[2])
	}
}

// TestMetricsPhaseSpansSumToTotal is the accounting invariant the -stats
// table and the job views rely on: back-to-back phase spans must cover
// the trace's elapsed time within tolerance (nothing double-counted,
// nothing large unaccounted).
func TestMetricsPhaseSpansSumToTotal(t *testing.T) {
	tr := NewTrace()
	for _, phase := range []string{"initialization", "transformation", "asynchronous"} {
		s := tr.Start(phase)
		time.Sleep(5 * time.Millisecond)
		s.End()
	}
	total := tr.ElapsedNS()
	var sum int64
	for _, sp := range tr.Spans() {
		sum += sp.DurationNS
	}
	if sum > total {
		t.Fatalf("phase sum %d exceeds elapsed %d", sum, total)
	}
	// The only gaps are the instants between End and the next Start, so
	// the spans must cover the bulk of the elapsed time.
	if sum < total/2 {
		t.Fatalf("phase sum %d covers less than half of elapsed %d", sum, total)
	}
}

func TestMetricsTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("anything") // must not panic
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
	tr.AddVirtual("x", 1)
	if tr.Spans() != nil || tr.ElapsedNS() != 0 {
		t.Fatal("nil trace should report nothing")
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(empty ctx) = %v, want nil", got)
	}
	real := NewTrace()
	if got := TraceFrom(WithTrace(context.Background(), real)); got != real {
		t.Fatal("WithTrace/TraceFrom round trip failed")
	}
}
