package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// jsonHistogram is the JSON shape of a histogram in the expvar-style
// exposition.
type jsonHistogram struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []jsonBucket `json:"buckets"`
}

// jsonBucket is one cumulative histogram bucket; Le == -1 encodes +Inf.
type jsonBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

func (e *entry) jsonValue() any {
	switch e.kind {
	case kindCounter:
		return e.counter.Value()
	case kindGauge:
		return e.gauge.Value()
	case kindGaugeFunc:
		return e.gaugeFunc()
	case kindHistogram:
		h := e.hist
		out := jsonHistogram{Count: h.Count(), Sum: h.Sum()}
		var cum int64
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := int64(-1) // +Inf
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			out.Buckets = append(out.Buckets, jsonBucket{Le: le, Count: cum})
		}
		return out
	}
	return nil
}

// WriteJSON writes the registry as one flat JSON object mapping metric
// name to value — the same shape expvar serves at /debug/vars, so any
// expvar consumer can scrape it. Histograms appear as
// {"count","sum","buckets":[{"le","count"}...]} with cumulative bucket
// counts and le == -1 standing in for +Inf. Keys are emitted sorted.
func (r *Registry) WriteJSON(w io.Writer) error {
	entries := r.snapshot()
	if _, err := fmt.Fprint(w, "{"); err != nil {
		return err
	}
	for i, e := range entries {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		val, err := json.Marshal(e.jsonValue())
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%q: %s", sep, e.name, val); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "\n}\n")
	return err
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, counter/gauge samples, and
// full histogram series (name_bucket{le="..."}, name_sum, name_count).
// Duration histograms carry their nanosecond unit in the metric name, so
// no scaling happens here.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, e := range r.snapshot() {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, escapeHelp(e.help)); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.gauge.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.gaugeFunc())
		case kindHistogram:
			err = writePromHistogram(w, e.name, e.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprintf("%d", h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count())
	return err
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry over HTTP. The format is negotiated:
// ?format=prometheus (or "prom"/"text") and Prometheus-style Accept
// headers (text/plain, openmetrics) select the text exposition;
// everything else gets the expvar-compatible JSON.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantsPrometheus(req) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

func wantsPrometheus(req *http.Request) bool {
	switch strings.ToLower(req.URL.Query().Get("format")) {
	case "prometheus", "prom", "text":
		return true
	case "json", "expvar":
		return false
	}
	accept := req.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}
