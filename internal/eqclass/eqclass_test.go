package eqclass

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
)

// The paper's running example: L2 = {AB, AC, AD, AE, BC, BD, BE, DE}
// partitions into S_A = {AB,AC,AD,AE}, S_B = {BC,BD,BE}, S_D = {DE}.
func TestPartitionPaperExample(t *testing.T) {
	const A, B, C, D, E = 0, 1, 2, 3, 4
	l2 := []itemset.Itemset{
		itemset.New(A, B), itemset.New(A, C), itemset.New(A, D), itemset.New(A, E),
		itemset.New(B, C), itemset.New(B, D), itemset.New(B, E), itemset.New(D, E),
	}
	classes := Partition(l2)
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(classes))
	}
	if !classes[0].Prefix.Equal(itemset.New(A)) || len(classes[0].Members) != 4 {
		t.Fatalf("S_A wrong: %+v", classes[0])
	}
	if !classes[1].Prefix.Equal(itemset.New(B)) || len(classes[1].Members) != 3 {
		t.Fatalf("S_B wrong: %+v", classes[1])
	}
	if !classes[2].Prefix.Equal(itemset.New(D)) || len(classes[2].Members) != 1 {
		t.Fatalf("S_D wrong: %+v", classes[2])
	}
	// Weights: C(4,2)=6, C(3,2)=3, C(1,2)=0.
	if classes[0].Weight() != 6 || classes[1].Weight() != 3 || classes[2].Weight() != 0 {
		t.Fatalf("weights wrong: %d %d %d", classes[0].Weight(), classes[1].Weight(), classes[2].Weight())
	}
	pruned := PruneSingletons(classes)
	if len(pruned) != 2 {
		t.Fatalf("PruneSingletons: %d classes left, want 2 (S_D eliminated)", len(pruned))
	}
}

func TestPartitionDeeperPrefix(t *testing.T) {
	sets := []itemset.Itemset{
		itemset.New(1, 2, 3), itemset.New(1, 2, 5), itemset.New(1, 3, 5), itemset.New(2, 3, 4),
	}
	classes := Partition(sets)
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(classes))
	}
	if !classes[0].Prefix.Equal(itemset.New(1, 2)) {
		t.Fatalf("first class prefix %v", classes[0].Prefix)
	}
}

func TestPartitionEmptyAndPanics(t *testing.T) {
	if Partition(nil) != nil {
		t.Fatal("empty input should give no classes")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("1-itemsets should panic")
		}
	}()
	Partition([]itemset.Itemset{itemset.New(1)})
}

func TestScheduleGreedy(t *testing.T) {
	// Weights 6, 3, 1, 1 onto 2 procs: 6 -> p0; 3 -> p1; 1 -> p1 (load 4);
	// 1 -> p1 (load 5).
	classes := []Class{
		mkClass(t, 0, 4),  // weight 6
		mkClass(t, 10, 3), // weight 3
		mkClass(t, 20, 2), // weight 1
		mkClass(t, 30, 2), // weight 1
	}
	a := Schedule(classes, 2)
	if a.Owner[0] != 0 || a.Owner[1] != 1 || a.Owner[2] != 1 || a.Owner[3] != 1 {
		t.Fatalf("owners = %v", a.Owner)
	}
	if a.Load[0] != 6 || a.Load[1] != 5 {
		t.Fatalf("loads = %v", a.Load)
	}
	if got := a.ClassesOf(1); len(got) != 3 {
		t.Fatalf("ClassesOf(1) = %v", got)
	}
}

func TestScheduleTieBreaksSmallerProc(t *testing.T) {
	classes := []Class{mkClass(t, 0, 3), mkClass(t, 10, 3)}
	a := Schedule(classes, 4)
	// Equal weights: first (lexicographically smaller prefix) goes to proc
	// 0, second to proc 1 (both empty; smaller id wins).
	if a.Owner[0] != 0 || a.Owner[1] != 1 {
		t.Fatalf("owners = %v", a.Owner)
	}
}

func TestScheduleSingleProc(t *testing.T) {
	classes := []Class{mkClass(t, 0, 5), mkClass(t, 10, 2)}
	a := Schedule(classes, 1)
	for _, o := range a.Owner {
		if o != 0 {
			t.Fatal("everything should go to proc 0")
		}
	}
	if a.Imbalance() != 1 {
		t.Fatalf("single proc imbalance = %v", a.Imbalance())
	}
}

func TestScheduleInvalidProcsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Schedule(nil, 0)
}

func TestImbalanceNoLoad(t *testing.T) {
	a := Schedule([]Class{mkClass(t, 0, 1)}, 3)
	if a.Imbalance() != 1 {
		t.Fatalf("no-load imbalance = %v", a.Imbalance())
	}
}

func TestScheduleDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var classes []Class
	for i := 0; i < 40; i++ {
		classes = append(classes, mkClass(t, itemset.Item(i*10), 1+rng.Intn(6)))
	}
	a1 := Schedule(classes, 8)
	a2 := Schedule(classes, 8)
	for i := range a1.Owner {
		if a1.Owner[i] != a2.Owner[i] {
			t.Fatal("schedule nondeterministic")
		}
	}
}

// Property: partition covers every input exactly once, members share the
// class prefix, and class prefixes are distinct.
func TestPartitionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seen := map[string]bool{}
		var sets []itemset.Itemset
		for i := 0; i < 60; i++ {
			a := itemset.Item(rng.Intn(10))
			b := a + 1 + itemset.Item(rng.Intn(10))
			s := itemset.New(a, b)
			if seen[s.Key()] {
				continue
			}
			seen[s.Key()] = true
			sets = append(sets, s)
		}
		itemset.Sort(sets)
		classes := Partition(sets)
		total := 0
		prefixes := map[string]bool{}
		for _, c := range classes {
			if prefixes[c.Prefix.Key()] {
				return false // duplicate class
			}
			prefixes[c.Prefix.Key()] = true
			for _, m := range c.Members {
				if !m.HasPrefix(c.Prefix) {
					return false
				}
				total++
			}
		}
		return total == len(sets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy schedule load accounting is exact and near-balanced
// (max load <= min load + max single weight).
func TestScheduleQuick(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numProcs := 1 + int(np%8)
		var classes []Class
		var maxW int64
		for i := 0; i < 30; i++ {
			c := mkClassSafe(itemset.Item(i*20), 1+rng.Intn(7))
			if c.Weight() > maxW {
				maxW = c.Weight()
			}
			classes = append(classes, c)
		}
		a := Schedule(classes, numProcs)
		want := make([]int64, numProcs)
		for i, o := range a.Owner {
			if o < 0 || o >= numProcs {
				return false
			}
			want[o] += classes[i].Weight()
		}
		var min, max int64 = 1 << 62, 0
		for p := range want {
			if want[p] != a.Load[p] {
				return false
			}
			if want[p] < min {
				min = want[p]
			}
			if want[p] > max {
				max = want[p]
			}
		}
		return max <= min+maxW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleByWeight(t *testing.T) {
	// Weights 10, 9, 1, 1 on 2 procs: 10 -> p0; 9 -> p1; 1 -> p1 (10); 1 -> p0 (11).
	a := ScheduleByWeight([]int64{10, 9, 1, 1}, 2)
	if a.Owner[0] != 0 || a.Owner[1] != 1 || a.Owner[2] != 1 || a.Owner[3] != 0 {
		t.Fatalf("owners = %v", a.Owner)
	}
	if a.Load[0] != 11 || a.Load[1] != 10 {
		t.Fatalf("loads = %v", a.Load)
	}
	// Equal weights break ties by input index.
	b := ScheduleByWeight([]int64{5, 5, 5}, 3)
	if b.Owner[0] != 0 || b.Owner[1] != 1 || b.Owner[2] != 2 {
		t.Fatalf("tie-break owners = %v", b.Owner)
	}
}

func TestScheduleByWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScheduleByWeight(nil, 0)
}

func TestScheduleRoundRobin(t *testing.T) {
	classes := []Class{mkClassSafe(0, 3), mkClassSafe(10, 2), mkClassSafe(20, 4)}
	a := ScheduleRoundRobin(classes, 2)
	if a.Owner[0] != 0 || a.Owner[1] != 1 || a.Owner[2] != 0 {
		t.Fatalf("owners = %v", a.Owner)
	}
	if a.Load[0] != classes[0].Weight()+classes[2].Weight() || a.Load[1] != classes[1].Weight() {
		t.Fatalf("loads = %v", a.Load)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 procs")
		}
	}()
	ScheduleRoundRobin(classes, 0)
}

func mkClass(t *testing.T, first itemset.Item, members int) Class {
	t.Helper()
	return mkClassSafe(first, members)
}

func mkClassSafe(first itemset.Item, members int) Class {
	c := Class{Prefix: itemset.New(first)}
	for i := 0; i < members; i++ {
		c.Members = append(c.Members, itemset.New(first, first+1+itemset.Item(i)))
	}
	return c
}
