// Package eqclass implements the itemset clustering of paper section 4.1:
// partitioning a lexicographically sorted L(k) into equivalence classes by
// common (k-1)-length prefix, and the greedy scheduling of section 5.2.1
// that assigns classes to processors by descending weight C(s,2), each to
// the least-loaded processor, ties broken by the smaller processor id.
package eqclass

import (
	"fmt"
	"sort"

	"repro/internal/itemset"
)

// Class is one equivalence class [a]: all members share the prefix a of
// length k-1 (for k-itemset members).
type Class struct {
	// Prefix is the shared (k-1)-prefix that names the class.
	Prefix itemset.Itemset
	// Members are the class's k-itemsets in lexicographic order.
	Members []itemset.Itemset
}

// Weight returns the scheduling weight C(s,2) with s members — the number
// of candidate joins the class will produce in the next iteration
// ("Since we have to consider all pairs for the next iteration, we assign
// the weight (s choose 2) to a class").
func (c *Class) Weight() int64 {
	return itemset.Binomial(len(c.Members), 2)
}

// Partition splits the sorted itemsets (all of equal size k >= 2) into
// equivalence classes by their (k-1)-prefix. Input order is preserved
// inside classes, and classes come out in lexicographic prefix order.
func Partition(sets []itemset.Itemset) []Class {
	if len(sets) == 0 {
		return nil
	}
	k := sets[0].K()
	if k < 2 {
		panic(fmt.Sprintf("eqclass: cannot partition %d-itemsets", k))
	}
	var out []Class
	for lo := 0; lo < len(sets); {
		if sets[lo].K() != k {
			panic("eqclass: mixed itemset sizes")
		}
		hi := lo + 1
		for hi < len(sets) && sets[hi].K() == k && sets[hi].SharesPrefix(sets[lo]) {
			hi++
		}
		out = append(out, Class{
			Prefix:  sets[lo].Prefix(k - 1).Clone(),
			Members: sets[lo:hi],
		})
		lo = hi
	}
	return out
}

// PruneSingletons removes classes with a single member: they generate no
// candidates ("Any class with only 1 member can be eliminated").
func PruneSingletons(classes []Class) []Class {
	out := classes[:0]
	for _, c := range classes {
		if len(c.Members) > 1 {
			out = append(out, c)
		}
	}
	return out
}

// Assignment is the result of scheduling classes onto processors.
type Assignment struct {
	// Owner[i] is the processor assigned class i (indices into the input
	// slice of Schedule).
	Owner []int
	// Load[p] is the total weight assigned to processor p.
	Load []int64
}

// ClassesOf returns the indices of the classes owned by processor p, in
// input order.
func (a *Assignment) ClassesOf(p int) []int {
	var out []int
	for i, o := range a.Owner {
		if o == p {
			out = append(out, i)
		}
	}
	return out
}

// Imbalance returns maxLoad/avgLoad (1.0 is perfect); it returns 1 when
// there is no load.
func (a *Assignment) Imbalance() float64 {
	var total, max int64
	for _, l := range a.Load {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	avg := float64(total) / float64(len(a.Load))
	return float64(max) / avg
}

// Schedule performs the paper's greedy heuristic: sort classes on weight
// (descending), assign each in turn to the least-loaded processor,
// breaking ties by the smaller processor identifier. Classes of equal
// weight are considered in lexicographic prefix order so the schedule is
// deterministic. Weightless classes (singletons) are assigned too — they
// cost nothing but keep ownership total.
func Schedule(classes []Class, numProcs int) Assignment {
	if numProcs < 1 {
		panic(fmt.Sprintf("eqclass: invalid processor count %d", numProcs))
	}
	order := make([]int, len(classes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		wx, wy := classes[order[x]].Weight(), classes[order[y]].Weight()
		if wx != wy {
			return wx > wy
		}
		return classes[order[x]].Prefix.Less(classes[order[y]].Prefix)
	})

	a := Assignment{Owner: make([]int, len(classes)), Load: make([]int64, numProcs)}
	for _, ci := range order {
		best := 0
		for p := 1; p < numProcs; p++ {
			if a.Load[p] < a.Load[best] {
				best = p
			}
		}
		a.Owner[ci] = best
		a.Load[best] += classes[ci].Weight()
	}
	return a
}

// ScheduleByWeight runs the greedy least-loaded assignment with
// caller-supplied weights (one per class) instead of the default C(s,2).
// The paper suggests this refinement: "if we could better estimate the
// number of frequent itemsets that could be derived from an equivalence
// class we could use this estimation as our weight. We could also make
// use of the average support of the itemsets within a class". Ties break
// deterministically by input index.
func ScheduleByWeight(weights []int64, numProcs int) Assignment {
	if numProcs < 1 {
		panic(fmt.Sprintf("eqclass: invalid processor count %d", numProcs))
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		if weights[order[x]] != weights[order[y]] {
			return weights[order[x]] > weights[order[y]]
		}
		return order[x] < order[y]
	})
	a := Assignment{Owner: make([]int, len(weights)), Load: make([]int64, numProcs)}
	for _, ci := range order {
		best := 0
		for p := 1; p < numProcs; p++ {
			if a.Load[p] < a.Load[best] {
				best = p
			}
		}
		a.Owner[ci] = best
		a.Load[best] += weights[ci]
	}
	return a
}

// ScheduleRoundRobin deals classes to processors in input order with no
// regard for weight — the naive baseline the ablation benchmarks compare
// the paper's greedy heuristic against.
func ScheduleRoundRobin(classes []Class, numProcs int) Assignment {
	if numProcs < 1 {
		panic(fmt.Sprintf("eqclass: invalid processor count %d", numProcs))
	}
	a := Assignment{Owner: make([]int, len(classes)), Load: make([]int64, numProcs)}
	for i := range classes {
		p := i % numProcs
		a.Owner[i] = p
		a.Load[p] += classes[i].Weight()
	}
	return a
}
