package mining

import (
	"strings"
	"testing"

	"repro/internal/itemset"
)

func sample() *Result {
	r := &Result{MinSup: 2, NumTransactions: 10}
	r.Add(itemset.New(1), 5)
	r.Add(itemset.New(2), 4)
	r.Add(itemset.New(1, 2), 3)
	return r
}

func TestSortAndLen(t *testing.T) {
	r := &Result{}
	r.Add(itemset.New(2, 3), 1)
	r.Add(itemset.New(1), 2)
	r.Add(itemset.New(1, 2), 1)
	r.Sort()
	if !r.Itemsets[0].Set.Equal(itemset.New(1)) ||
		!r.Itemsets[1].Set.Equal(itemset.New(1, 2)) ||
		!r.Itemsets[2].Set.Equal(itemset.New(2, 3)) {
		t.Fatalf("sort order wrong: %v", r.Itemsets)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestMaxKAndCountsByK(t *testing.T) {
	r := sample()
	if r.MaxK() != 2 {
		t.Fatalf("MaxK = %d", r.MaxK())
	}
	byK := r.CountsByK()
	if byK[1] != 2 || byK[2] != 1 {
		t.Fatalf("CountsByK = %v", byK)
	}
	if (&Result{}).MaxK() != 0 {
		t.Fatal("empty MaxK should be 0")
	}
}

func TestSupportMapAndOf(t *testing.T) {
	r := sample()
	m := r.SupportMap()
	if m[itemset.New(1, 2).Key()] != 3 {
		t.Fatalf("SupportMap = %v", m)
	}
	if r.SupportOf(itemset.New(2)) != 4 || r.SupportOf(itemset.New(9)) != 0 {
		t.Fatal("SupportOf wrong")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := sample(), sample()
	if !Equal(a, b) {
		t.Fatal("identical results should be equal")
	}
	b.Itemsets[0].Support = 99
	if Equal(a, b) {
		t.Fatal("different supports should not be equal")
	}
	if d := Diff(a, b); !strings.Contains(d, "a=5") {
		t.Fatalf("Diff should describe the discrepancy: %q", d)
	}
	if Diff(a, a) != "results identical" {
		t.Fatal("Diff of equal results")
	}
	c := sample()
	c.Add(itemset.New(7), 3)
	if Equal(a, c) {
		t.Fatal("extra itemset should not be equal")
	}
	if d := Diff(a, c); !strings.Contains(d, "{7}") {
		t.Fatalf("Diff should mention the extra itemset: %q", d)
	}
}

func TestVerifyAcceptsConsistent(t *testing.T) {
	if err := sample().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejections(t *testing.T) {
	// Support below minsup.
	r := &Result{MinSup: 5}
	r.Add(itemset.New(1), 3)
	if err := r.Verify(); err == nil {
		t.Fatal("support below minsup should fail")
	}
	// Missing subset.
	r = &Result{MinSup: 1}
	r.Add(itemset.New(1, 2), 3)
	if err := r.Verify(); err == nil || !strings.Contains(err.Error(), "closure") {
		t.Fatalf("closure violation should fail: %v", err)
	}
	// Anti-monotonicity violation.
	r = &Result{MinSup: 1}
	r.Add(itemset.New(1), 2)
	r.Add(itemset.New(2), 5)
	r.Add(itemset.New(1, 2), 4)
	if err := r.Verify(); err == nil || !strings.Contains(err.Error(), "anti-monotonicity") {
		t.Fatalf("anti-monotonicity should fail: %v", err)
	}
	// Duplicates.
	r = &Result{MinSup: 1}
	r.Add(itemset.New(1), 2)
	r.Add(itemset.New(1), 2)
	if err := r.Verify(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicates should fail: %v", err)
	}
	// Empty itemset.
	r = &Result{MinSup: 1}
	r.Add(itemset.Itemset{}, 2)
	if err := r.Verify(); err == nil {
		t.Fatal("empty itemset should fail")
	}
}
