// Package mining defines the common output representation shared by every
// mining algorithm in this repository (Apriori, sequential/parallel Eclat,
// Count/Data/Candidate Distribution): the set of frequent itemsets with
// their absolute support counts. Having one canonical, sorted
// representation is what lets the integration tests assert that all
// algorithms produce byte-identical answers.
package mining

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/itemset"
)

// FrequentItemset pairs an itemset with its absolute support count.
type FrequentItemset struct {
	Set     itemset.Itemset
	Support int
}

// Result is the outcome of a frequent-itemset mining run.
type Result struct {
	// MinSup is the absolute minimum support count used.
	MinSup int
	// NumTransactions is |D|, needed to express supports as percentages.
	NumTransactions int
	// Itemsets, sorted lexicographically after Sort.
	Itemsets []FrequentItemset
}

// Add appends a frequent itemset.
func (r *Result) Add(set itemset.Itemset, support int) {
	r.Itemsets = append(r.Itemsets, FrequentItemset{Set: set, Support: support})
}

// Sort orders the itemsets lexicographically (shorter prefixes first),
// the canonical presentation order.
func (r *Result) Sort() {
	sort.Slice(r.Itemsets, func(i, j int) bool {
		return r.Itemsets[i].Set.Less(r.Itemsets[j].Set)
	})
}

// TruncateTopK keeps only the k highest-support itemsets, breaking
// support ties lexicographically (smaller itemsets win), then restores
// the canonical sort order. It is both the top-k miner's final
// truncation and the oracle the equivalence tests compare against: a
// full mine followed by TruncateTopK is byte-identical to the adaptive
// top-k mine. k ≤ 0 or k ≥ Len leaves the result unchanged — callers
// must not rely on it re-sorting an unsorted result in that case.
//
// A truncated result generally violates downward closure (a subset of a
// kept itemset may rank below the cut), so Verify must not be called on
// it.
func (r *Result) TruncateTopK(k int) {
	if k <= 0 || len(r.Itemsets) <= k {
		return
	}
	sort.Slice(r.Itemsets, func(i, j int) bool {
		if r.Itemsets[i].Support != r.Itemsets[j].Support {
			return r.Itemsets[i].Support > r.Itemsets[j].Support
		}
		return r.Itemsets[i].Set.Less(r.Itemsets[j].Set)
	})
	r.Itemsets = r.Itemsets[:k:k]
	r.Sort()
}

// Len returns the number of frequent itemsets.
func (r *Result) Len() int { return len(r.Itemsets) }

// MaxK returns the size of the largest frequent itemset (0 if none).
func (r *Result) MaxK() int {
	max := 0
	for _, f := range r.Itemsets {
		if f.Set.K() > max {
			max = f.Set.K()
		}
	}
	return max
}

// CountsByK returns, for each k, the number of frequent k-itemsets — the
// series plotted in the paper's figure 6.
func (r *Result) CountsByK() map[int]int {
	out := map[int]int{}
	for _, f := range r.Itemsets {
		out[f.Set.K()]++
	}
	return out
}

// SupportMap returns itemset-key -> support, the form used for equality
// checks and by rule generation.
func (r *Result) SupportMap() map[string]int {
	out := make(map[string]int, len(r.Itemsets))
	for _, f := range r.Itemsets {
		out[f.Set.Key()] = f.Support
	}
	return out
}

// SupportOf returns the support of set, or 0 if it is not frequent.
func (r *Result) SupportOf(set itemset.Itemset) int {
	// Results are modest in size; build-on-demand would complicate the
	// API, so do a linear probe via the map only when called repeatedly.
	for _, f := range r.Itemsets {
		if f.Set.Equal(set) {
			return f.Support
		}
	}
	return 0
}

// Equal reports whether two results contain exactly the same itemsets with
// the same supports (order-insensitive).
func Equal(a, b *Result) bool {
	if a.Len() != b.Len() {
		return false
	}
	am := a.SupportMap()
	for _, f := range b.Itemsets {
		if am[f.Set.Key()] != f.Support {
			return false
		}
	}
	return true
}

// Diff describes the first few discrepancies between two results, for test
// failure messages.
func Diff(a, b *Result) string {
	am, bm := a.SupportMap(), b.SupportMap()
	var sb strings.Builder
	n := 0
	report := func(key string, supA, supB int) {
		if n >= 10 {
			return
		}
		set, _ := itemset.ParseKey(key)
		fmt.Fprintf(&sb, "%v: a=%d b=%d\n", set, supA, supB)
		n++
	}
	for k, v := range am {
		if bm[k] != v {
			report(k, v, bm[k])
		}
	}
	for k, v := range bm {
		if _, ok := am[k]; !ok {
			report(k, 0, v)
		}
	}
	if sb.Len() == 0 {
		return "results identical"
	}
	return sb.String()
}

// Verify checks internal consistency: all supports >= MinSup, itemsets
// sorted and distinct, and downward closure (every sub-itemset of a
// frequent itemset is frequent with at least the superset's support).
func (r *Result) Verify() error {
	m := r.SupportMap()
	if len(m) != len(r.Itemsets) {
		return fmt.Errorf("mining: duplicate itemsets in result")
	}
	for _, f := range r.Itemsets {
		if f.Support < r.MinSup {
			return fmt.Errorf("mining: %v has support %d < minsup %d", f.Set, f.Support, r.MinSup)
		}
		if f.Set.K() == 0 {
			return fmt.Errorf("mining: empty itemset in result")
		}
		for i := range f.Set {
			sub := f.Set.Without(i)
			if sub.K() == 0 {
				continue
			}
			subSup, ok := m[sub.Key()]
			if !ok {
				return fmt.Errorf("mining: closure violated: %v frequent but subset %v missing", f.Set, sub)
			}
			if subSup < f.Support {
				return fmt.Errorf("mining: anti-monotonicity violated: sup(%v)=%d < sup(%v)=%d",
					sub, subSup, f.Set, f.Support)
			}
		}
	}
	return nil
}
