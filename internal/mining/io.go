package mining

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/itemset"
)

// Write serializes a result as a line-oriented text format that external
// tools (and the cmd pipelines) can consume:
//
//	# eclat-result minsup=<K> transactions=<N>
//	<support>\t<item> <item> ...
//
// Itemsets appear in the result's current order.
func Write(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# eclat-result minsup=%d transactions=%d\n",
		res.MinSup, res.NumTransactions); err != nil {
		return err
	}
	for _, f := range res.Itemsets {
		if _, err := fmt.Fprintf(bw, "%d\t", f.Support); err != nil {
			return err
		}
		for i, it := range f.Set {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(it))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format written by Write.
func Read(r io.Reader) (*Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("mining: empty result stream")
	}
	header := sc.Text()
	res := &Result{}
	if _, err := fmt.Sscanf(header, "# eclat-result minsup=%d transactions=%d",
		&res.MinSup, &res.NumTransactions); err != nil {
		return nil, fmt.Errorf("mining: bad header %q: %w", header, err)
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		supStr, itemsStr, ok := strings.Cut(text, "\t")
		if !ok {
			return nil, fmt.Errorf("mining: line %d: missing tab separator", line)
		}
		sup, err := strconv.Atoi(supStr)
		if err != nil {
			return nil, fmt.Errorf("mining: line %d: bad support: %w", line, err)
		}
		fields := strings.Fields(itemsStr)
		set := make(itemset.Itemset, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("mining: line %d: bad item %q: %w", line, f, err)
			}
			set = append(set, itemset.Item(v))
		}
		if len(set) == 0 {
			return nil, fmt.Errorf("mining: line %d: empty itemset", line)
		}
		for i := 1; i < len(set); i++ {
			if set[i-1] >= set[i] {
				return nil, fmt.Errorf("mining: line %d: items not strictly increasing", line)
			}
		}
		res.Add(set, sup)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mining: %w", err)
	}
	return res, nil
}
