package mining

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/itemset"
)

func TestWriteReadRoundTrip(t *testing.T) {
	res := sample()
	res.Sort()
	var buf bytes.Buffer
	if err := Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MinSup != res.MinSup || back.NumTransactions != res.NumTransactions {
		t.Fatalf("header lost: %+v", back)
	}
	if !Equal(back, res) {
		t.Fatal(Diff(back, res))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"# eclat-result minsup=2 transactions=5\nnot-a-support\t1 2\n",
		"# eclat-result minsup=2 transactions=5\n3 1 2\n",    // missing tab
		"# eclat-result minsup=2 transactions=5\n3\t2 1\n",   // unsorted
		"# eclat-result minsup=2 transactions=5\n3\t1 one\n", // bad item
		"# eclat-result minsup=2 transactions=5\n3\t\n",      // empty itemset
		"# eclat-result minsup=2 transactions=5\n3\t1 1\n",   // duplicate
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should be rejected: %q", i, c)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# eclat-result minsup=1 transactions=9\n\n# comment\n4\t1 2\n"
	res, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Itemsets[0].Set.Equal(itemset.New(1, 2)) {
		t.Fatalf("parsed %v", res.Itemsets)
	}
}

func TestWriteEmptyResult(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Result{MinSup: 3, NumTransactions: 7}); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil || back.Len() != 0 || back.MinSup != 3 {
		t.Fatalf("empty round trip: %v %v", back, err)
	}
}
