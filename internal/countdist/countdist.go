// Package countdist implements the Count Distribution algorithm (Agrawal
// & Shafer) with the CCPD optimizations — the "well known parallel
// algorithm" the paper compares Eclat against, and the strongest of the
// Apriori-family baselines (the paper: "Count Distribution [was] shown to
// be superior to both Data and Candidate Distribution").
//
// Every processor holds the entire candidate hash tree, counts partial
// supports against its local database partition, and at the end of each
// iteration exchanges partial counts in a sum-reduction followed by a
// barrier — so the local partition is re-scanned once per iteration and
// synchronization grows with the number of levels, the two costs Eclat
// eliminates. Because the full tree is replicated on every processor
// ("it doesn't utilize the aggregate memory efficiently"), hosts running
// P processors hold P copies; when those exceed host memory the counting
// pass pays the paging multiplier.
//
// Pass 2 counts C2 = L1 x L1 through the hash tree, as in the original
// algorithm; Options.TriangularPass2 enables the upper-triangular-array
// optimization instead (the one Eclat's own initialization uses), which
// the ablation benchmarks exercise.
package countdist

import (
	"repro/internal/apriori"
	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paircount"
)

// Phase names for the per-processor time break-up.
const (
	PhaseInit       = "init"       // passes 1 and 2
	PhaseIterations = "iterations" // all k >= 3 passes
)

// Options selects algorithm variants.
type Options struct {
	// TriangularPass2 replaces the hash-tree C2 count with the
	// upper-triangular array (CCPD-style optimization).
	TriangularPass2 bool
	// SharedTree models the CCPD shared-memory variant [16] within each
	// host: the host's processors share one candidate hash tree instead
	// of holding private replicas ("the candidate itemsets are ... stored
	// in a hash structure which is shared among all the processors"), so
	// the per-host resident set shrinks P-fold while every count update
	// pays an atomic-increment overhead.
	SharedTree bool
}

// Mine runs Count Distribution with default options.
func Mine(cl *cluster.Cluster, d *db.Database, minsup int) (*mining.Result, cluster.Report) {
	return MineOpts(cl, d, minsup, Options{})
}

// MineOpts runs Count Distribution on the simulated cluster over the
// block-partitioned database. The result is identical to sequential
// Apriori's.
func MineOpts(cl *cluster.Cluster, d *db.Database, minsup int, opts Options) (*mining.Result, cluster.Report) {
	if minsup < 1 {
		minsup = 1
	}
	t := cl.NumProcs()
	parts := d.Partition(t)
	fanout := d.NumItems
	if fanout < 64 {
		fanout = 64
	}

	var final *mining.Result

	cl.Run(func(p *cluster.Proc) {
		part := parts[p.ID()]
		res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}

		// ---- Pass 1: global L1 ------------------------------------------
		p.SetPhase(PhaseInit)
		p.ChargeScan(part.SizeBytes(), p.HostProcs())
		itemCounts := apriori.CountItems(part)
		var itemOps int64
		for _, tx := range part.Transactions {
			itemOps += int64(len(tx.Items))
		}
		p.ChargeCPU(itemOps)
		gItems := cluster.SumReduceInt(p, itemCounts)
		var l1 []itemset.Item
		for it, c := range gItems {
			if c >= minsup {
				res.Add(itemset.Itemset{itemset.Item(it)}, c)
				l1 = append(l1, itemset.Item(it))
			}
		}

		// ---- Pass 2: global L2 ------------------------------------------
		var prev []itemset.Itemset
		if opts.TriangularPass2 {
			p.ChargeScan(part.SizeBytes(), p.HostProcs())
			pc := paircount.New(d.NumItems)
			p.ChargeOps(cluster.OpPairCount, pc.AddPartition(part))
			gPairs := paircount.FromCounts(d.NumItems, cluster.SumReduceInt32(p, pc.Counts()))
			p.ChargeCPU(int64(gPairs.NumCells()))
			for _, fp := range gPairs.Frequent(minsup) {
				set := fp.Pair.Itemset()
				res.Add(set, fp.Count)
				prev = append(prev, set)
			}
		} else {
			// C2 = all pairs of frequent items, held in the replicated
			// hash tree like every other pass. Each processor generates an
			// identical tree; the simulator materializes one shared
			// structure (counts stay per-processor) and charges every
			// processor for its own copy.
			var tree *hashtree.Tree
			if p.ID() == 0 {
				tree = hashtree.New(2, hashtree.WithFanout(fanout))
				for i := 0; i < len(l1); i++ {
					for j := i + 1; j < len(l1); j++ {
						tree.Insert(itemset.Itemset{l1[i], l1[j]})
					}
				}
			}
			tree = cluster.Broadcast(p, 0, tree, 0)
			p.ChargeOps(cluster.OpHashTree, 2*int64(tree.Len()))
			prev = countPass(p, tree, part, minsup, opts, res)
		}

		// ---- Passes k >= 3: identical candidate trees, local counting,
		// sum-reduction of partial counts every iteration ------------------
		p.SetPhase(PhaseIterations)
		for k := 3; len(prev) > 1; k++ {
			var tree *hashtree.Tree
			if p.ID() == 0 {
				tree = apriori.GenerateCandidates(prev, hashtree.WithFanout(fanout))
			}
			tree = cluster.Broadcast(p, 0, tree, 0)
			// Every processor builds the whole tree from L(k-1): charge the
			// join/prune sweep.
			p.ChargeOps(cluster.OpHashTree, int64(tree.Len())*int64(k))
			if tree.Len() == 0 {
				break
			}
			prev = countPass(p, tree, part, minsup, opts, res)
		}

		res.Sort()
		if p.ID() == 0 {
			final = res
		}
	})

	return final, cl.Report()
}

// countPass performs one counting pass: local scan and hash-tree count
// (with the paging multiplier when the per-host replicated trees exceed
// memory), then a sum-reduction of the partial counts and extraction of
// the global L(k).
func countPass(p *cluster.Proc, tree *hashtree.Tree, part *db.Database, minsup int, opts Options, res *mining.Result) []itemset.Itemset {
	p.ChargeScan(part.SizeBytes(), p.HostProcs())
	state := tree.NewCountState()
	ops := apriori.CountPartitionInto(tree, state, part)
	if opts.SharedTree {
		// CCPD: one tree per host; counting pays atomic increments when
		// several processors share it.
		factor := p.PageFactor(tree.SizeBytes())
		if p.HostProcs() > 1 {
			ops += ops / 4
		}
		p.ChargeOps(cluster.OpHashTree, ops*factor)
	} else {
		// Count Distribution: the tree is replicated once per processor
		// on this host.
		factor := p.PageFactor(int64(p.HostProcs()) * tree.SizeBytes())
		p.ChargeOps(cluster.OpHashTree, ops*factor)
	}

	global := cluster.SumReduceInt32(p, state.Counts)

	var next []itemset.Itemset
	for i, c := range tree.Candidates() {
		if int(global[i]) >= minsup {
			res.Add(c.Set, int(global[i]))
			next = append(next, c.Set)
		}
	}
	return next
}
