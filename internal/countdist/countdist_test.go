package countdist

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/mining"
	"repro/internal/testutil"
)

func TestMatchesSequentialApriori(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := testutil.RandomDB(rng, 300, 14, 7)
	minsup := 6
	want, _, _ := apriori.Mine(context.Background(), d, minsup)
	for _, hp := range [][2]int{{1, 1}, {2, 2}, {4, 1}, {1, 8}} {
		cl := cluster.New(cluster.Default(hp[0], hp[1]))
		got, rep := Mine(cl, d, minsup)
		if !mining.Equal(got, want) {
			t.Fatalf("H=%d P=%d: %s", hp[0], hp[1], mining.Diff(got, want))
		}
		if rep.ElapsedNS <= 0 {
			t.Fatal("elapsed should be positive")
		}
	}
}

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	d := testutil.RandomDB(rng, 80, 10, 6)
	want := testutil.BruteForce(d, 4)
	cl := cluster.New(cluster.Default(2, 2))
	got, _ := Mine(cl, d, 4)
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
}

func TestScansGrowWithIterations(t *testing.T) {
	// Count Distribution scans the local partition once per pass: with
	// deep mining (low support) the scan count must exceed Eclat's 3.
	d := gen.MustGenerate(gen.T10I6(800))
	cl := cluster.New(cluster.Default(2, 2))
	_, rep := Mine(cl, d, d.MinSupCount(0.5))
	if rep.PerProc[0].Scans <= 3 {
		t.Fatalf("CD should scan more than 3 times on deep mining, got %d", rep.PerProc[0].Scans)
	}
}

func TestBarriersGrowWithIterations(t *testing.T) {
	// Per-iteration sum-reductions mean synchronization scales with the
	// number of levels, unlike Eclat.
	d := gen.MustGenerate(gen.T10I6(800))
	clShallow := cluster.New(cluster.Default(2, 2))
	Mine(clShallow, d, d.MinSupCount(2.0))
	clDeep := cluster.New(cluster.Default(2, 2))
	Mine(clDeep, d, d.MinSupCount(0.5))
	if clDeep.Report().PerProc[0].Barriers <= clShallow.Report().PerProc[0].Barriers {
		t.Fatal("deeper mining should require more barriers in Count Distribution")
	}
}

func TestSharedTreeCCPDCorrectAndCheaperUnderPressure(t *testing.T) {
	// CCPD's shared hash tree must produce identical results and, on a
	// memory-tight multiprocessor host, cost less virtual time than
	// P-fold replication.
	d := gen.MustGenerate(gen.T10I6(2000))
	minsup := d.MinSupCount(0.5)
	// Memory sized so one tree fits but four replicas do not (the paging
	// cap would otherwise flatten both configurations equally).
	mk := func() cluster.Config {
		cfg := cluster.Default(1, 4)
		cfg.HostMemBytes = 32 << 20
		return cfg
	}
	clRep := cluster.New(mk())
	resRep, repRep := MineOpts(clRep, d, minsup, Options{})
	clShared := cluster.New(mk())
	resShared, repShared := MineOpts(clShared, d, minsup, Options{SharedTree: true})
	if !mining.Equal(resRep, resShared) {
		t.Fatal(mining.Diff(resRep, resShared))
	}
	if repShared.ElapsedNS >= repRep.ElapsedNS {
		t.Fatalf("shared tree (%v) should beat replication (%v) under memory pressure",
			repShared.Elapsed(), repRep.Elapsed())
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(600))
	run := func() int64 {
		cl := cluster.New(cluster.Default(2, 2))
		_, rep := Mine(cl, d, d.MinSupCount(1.0))
		return rep.ElapsedNS
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(600))
	cl := cluster.New(cluster.Default(2, 2))
	_, rep := Mine(cl, d, d.MinSupCount(1.0))
	if rep.PhaseMaxNS(PhaseInit) <= 0 || rep.PhaseMaxNS(PhaseIterations) <= 0 {
		t.Fatalf("phase breakdown missing: init=%d iters=%d",
			rep.PhaseMaxNS(PhaseInit), rep.PhaseMaxNS(PhaseIterations))
	}
}
