// Package core marks the paper's primary contribution within this
// repository's layout. The implementation lives in the sibling packages:
//
//   - internal/eclat — the Eclat algorithm itself (sequential, the
//     four-phase parallel form of section 5, the hybrid host-level
//     variant, the external-memory transformation, and the MaxEclat /
//     closed / diffset extensions);
//   - internal/eqclass — the equivalence-class itemset clustering and
//     greedy scheduling of sections 4.1 and 5.2.1;
//   - internal/tidlist — the vertical tid-list layout and
//     (short-circuited) intersections of sections 4.2 and 5.3.
//
// Everything else under internal/ is substrate (database, generator,
// simulated cluster) or baseline (Apriori, Count/Data/Candidate
// Distribution, Partition, Sampling, DHP). The public API is the
// repository root package.
package core
