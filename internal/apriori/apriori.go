// Package apriori implements the sequential Apriori algorithm (paper
// figure 1, after Agrawal & Srikant), which "forms the core of almost all
// of the current [1997] parallel algorithms" and of the Count/Data/
// Candidate Distribution baselines in this repository.
//
// Pass 1 counts single items; pass 2 counts all item pairs through the
// upper-triangular array (the same structure Eclat's initialization phase
// uses, so the horizontal baselines are not handicapped on the pass where
// the paper itself recommends the array over tid-lists); passes k >= 3
// generate candidates by the prefix join with subset pruning and count
// them against each transaction through the candidate hash tree.
package apriori

import (
	"context"
	"fmt"

	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obsv"
	"repro/internal/paircount"
)

// Global candidate-level counters (see /metricsz); flushed once per
// candidate level, never inside the counting loop.
const (
	mnLevels     = "apriori_levels_total"
	mnCandidates = "apriori_candidates_total"
	mnCountOps   = "apriori_count_ops_total"
	mnScans      = "apriori_scans_total"
)

var (
	mLevels     = obsv.Default.Counter(mnLevels, "candidate-generation levels (k >= 3) run")
	mCandidates = obsv.Default.Counter(mnCandidates, "candidates generated for k >= 3")
	mCountOps   = obsv.Default.Counter(mnCountOps, "hash-tree node visits and subset checks")
	mScans      = obsv.Default.Counter(mnScans, "full database passes")
)

// Stats reports the work a mining run performed; the parallel baselines
// aggregate the same counters per processor.
type Stats struct {
	Scans      int   // full passes over the database
	Iterations int   // number of candidate-generation iterations (k levels)
	Candidates int   // total candidates generated for k >= 3
	CountOps   int64 // hash-tree node visits + subset checks
}

// GenerateCandidates builds the candidate hash tree C(k) from the sorted
// frequent (k-1)-itemsets, joining itemsets that share a (k-2)-prefix and
// pruning any candidate with an infrequent (k-1)-subset (figure 1's join
// and prune steps). prev must be lexicographically sorted and all of one
// size >= 2.
func GenerateCandidates(prev []itemset.Itemset, opts ...hashtree.Option) *hashtree.Tree {
	inPrev := make(map[string]bool, len(prev))
	for _, s := range prev {
		inPrev[s.Key()] = true
	}
	return generate(prev, inPrev, opts)
}

// GenerateCandidatesNoPrune is GenerateCandidates without the
// subset-pruning step. Candidate Distribution's asynchronous passes use
// it: a candidate's (k-1)-subsets may belong to equivalence classes owned
// by other processors, whose frequent sets arrive asynchronously — when
// that information has not arrived, pruning must be skipped ("This
// pruning information is used if it arrives in time, otherwise it is
// used in the next iteration"). Unpruned candidates are merely counted
// and discarded, so correctness is unaffected.
func GenerateCandidatesNoPrune(prev []itemset.Itemset, opts ...hashtree.Option) *hashtree.Tree {
	return generate(prev, nil, opts)
}

func generate(prev []itemset.Itemset, inPrev map[string]bool, opts []hashtree.Option) *hashtree.Tree {
	if len(prev) == 0 {
		return hashtree.New(1, opts...) // empty tree; Len()==0
	}
	k := prev[0].K() + 1
	tree := hashtree.New(k, opts...)

	// prev is sorted, so itemsets sharing a (k-2)-prefix are contiguous:
	// walk the runs (these runs are exactly the equivalence classes of
	// section 4.1).
	for lo := 0; lo < len(prev); {
		hi := lo + 1
		for hi < len(prev) && prev[hi].SharesPrefix(prev[lo]) {
			hi++
		}
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				cand := prev[i].Join(prev[j])
				if inPrev != nil && prunable(cand, inPrev) {
					continue
				}
				tree.Insert(cand)
			}
		}
		lo = hi
	}
	return tree
}

// prunable reports whether any (k-1)-subset of cand is missing from the
// previous frequent level. The two subsets formed by dropping one of the
// joined items are frequent by construction; only the others need checks.
func prunable(cand itemset.Itemset, inPrev map[string]bool) bool {
	for i := 0; i < cand.K()-2; i++ {
		if !inPrev[cand.Without(i).Key()] {
			return true
		}
	}
	return false
}

// CountPartition runs one counting pass of tree over a database partition
// and returns the operation count.
func CountPartition(tree *hashtree.Tree, part *db.Database) (ops int64) {
	for _, tx := range part.Transactions {
		ops += int64(tree.CountTransaction(tx.TID, tx.Items))
	}
	return ops
}

// CountPartitionInto is CountPartition recording into an external count
// state, so concurrent simulated processors can share one read-only tree.
func CountPartitionInto(tree *hashtree.Tree, st *hashtree.CountState, part *db.Database) (ops int64) {
	for _, tx := range part.Transactions {
		ops += int64(tree.CountTransactionInto(st, tx.TID, tx.Items))
	}
	return ops
}

// CountItems counts 1-itemset supports in one pass (pass 1 of Apriori).
func CountItems(part *db.Database) []int {
	counts := make([]int, part.NumItems)
	for _, tx := range part.Transactions {
		for _, it := range tx.Items {
			counts[it]++
		}
	}
	return counts
}

// Mine runs sequential Apriori at the given absolute minimum support and
// returns all frequent itemsets (including 1-itemsets) with exact
// supports. It is context-first: ctx is consulted between candidate
// levels (once per database pass), so a cancel or deadline stops the
// mine at the next level boundary without per-transaction overhead. On
// cancellation it returns (nil, partial stats, ctx.Err()).
func Mine(ctx context.Context, d *db.Database, minsup int) (*mining.Result, Stats, error) {
	if minsup < 1 {
		minsup = 1
	}
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	var st Stats
	tr := obsv.TraceFrom(ctx)

	// Passes 1 and 2 are Apriori's analogue of Eclat's initialization:
	// item counts, then the triangular pair array.
	sp := tr.Start("initialization")
	st.Scans++
	itemCounts := CountItems(d)
	for it, c := range itemCounts {
		if c >= minsup {
			res.Add(itemset.Itemset{itemset.Item(it)}, c)
		}
	}

	st.Scans++
	pc := paircount.New(d.NumItems)
	st.CountOps += pc.AddPartition(d)
	var prev []itemset.Itemset
	for _, fp := range pc.Frequent(minsup) {
		set := fp.Pair.Itemset()
		res.Add(set, fp.Count)
		prev = append(prev, set)
	}
	sp.End()
	mScans.Add(2)

	// Passes k >= 3: one span and one counter flush per candidate level.
	for k := 3; len(prev) > 1; k++ {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		sp = tr.Start(fmt.Sprintf("level_%d", k))
		tree := GenerateCandidates(prev)
		st.Iterations++
		st.Candidates += tree.Len()
		mLevels.Inc()
		mCandidates.Add(int64(tree.Len()))
		if tree.Len() == 0 {
			sp.End()
			break
		}
		st.Scans++
		mScans.Inc()
		ops := CountPartition(tree, d)
		st.CountOps += ops
		mCountOps.Add(ops)
		prev = prev[:0]
		for _, c := range tree.Frequent(minsup) {
			res.Add(c.Set, c.Count)
			prev = append(prev, c.Set)
		}
		sp.End()
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}

	res.Sort()
	return res, st, nil
}
