package apriori

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/testutil"
)

// The worked example from the paper, section 2: L2 = {AB, AC, AD, AE, BC,
// BD, BE, DE} yields C3 = {ABC, ABD, ABE, ACD, ACE, ADE, BCD, BCE, BDE}
// before pruning (the paper quotes the join output).
func TestGenerateCandidatesPaperExample(t *testing.T) {
	const A, B, C, D, E = 0, 1, 2, 3, 4
	l2 := []itemset.Itemset{
		itemset.New(A, B), itemset.New(A, C), itemset.New(A, D), itemset.New(A, E),
		itemset.New(B, C), itemset.New(B, D), itemset.New(B, E), itemset.New(D, E),
	}
	itemset.Sort(l2)
	tree := GenerateCandidates(l2)
	// The join produces 9 itemsets; pruning removes those with an
	// infrequent 2-subset: ACD (CD not in L2), ACE (CE), ADE (ok: AD, AE,
	// DE all present), BCD (CD), BCE (CE). Remaining: ABC? AB,AC,BC ok.
	// ABD: AB,AD,BD ok. ABE ok. ADE ok. BDE: BD,BE,DE ok.
	want := []itemset.Itemset{
		itemset.New(A, B, C), itemset.New(A, B, D), itemset.New(A, B, E),
		itemset.New(A, D, E), itemset.New(B, D, E),
	}
	if tree.Len() != len(want) {
		var got []string
		for _, c := range tree.Candidates() {
			got = append(got, c.Set.String())
		}
		t.Fatalf("generated %d candidates %v, want %d", tree.Len(), got, len(want))
	}
	for _, w := range want {
		if tree.Search(w) == nil {
			t.Fatalf("candidate %v missing", w)
		}
	}
}

func TestGenerateCandidatesEmpty(t *testing.T) {
	if tree := GenerateCandidates(nil); tree.Len() != 0 {
		t.Fatal("empty prev should generate nothing")
	}
	// A single itemset cannot join with anything.
	if tree := GenerateCandidates([]itemset.Itemset{itemset.New(1, 2)}); tree.Len() != 0 {
		t.Fatal("singleton prev should generate nothing")
	}
}

func TestMineTinyKnownAnswer(t *testing.T) {
	// Transactions over {0,1,2}: {0,1,2} x3, {0,1} x1, {2} x1.
	d := &db.Database{NumItems: 3, Transactions: []db.Transaction{
		{TID: 0, Items: itemset.New(0, 1, 2)},
		{TID: 1, Items: itemset.New(0, 1, 2)},
		{TID: 2, Items: itemset.New(0, 1, 2)},
		{TID: 3, Items: itemset.New(0, 1)},
		{TID: 4, Items: itemset.New(2)},
	}}
	res, st, _ := Mine(context.Background(), d, 3)
	m := res.SupportMap()
	wants := map[string]int{
		itemset.New(0).Key():       4,
		itemset.New(1).Key():       4,
		itemset.New(2).Key():       4,
		itemset.New(0, 1).Key():    4,
		itemset.New(0, 2).Key():    3,
		itemset.New(1, 2).Key():    3,
		itemset.New(0, 1, 2).Key(): 3,
	}
	if len(m) != len(wants) {
		t.Fatalf("got %d itemsets %v, want %d", len(m), m, len(wants))
	}
	for k, v := range wants {
		if m[k] != v {
			set, _ := itemset.ParseKey(k)
			t.Errorf("support of %v = %d, want %d", set, m[k], v)
		}
	}
	if st.Scans < 3 {
		t.Errorf("expected at least 3 scans (passes 1,2,3), got %d", st.Scans)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		d := testutil.RandomDB(rng, 60, 12, 6)
		for _, minsup := range []int{1, 2, 3, 5, 10} {
			got, _, _ := Mine(context.Background(), d, minsup)
			want := testutil.BruteForce(d, minsup)
			if !mining.Equal(got, want) {
				t.Fatalf("trial %d minsup %d: mismatch\n%s", trial, minsup, mining.Diff(got, want))
			}
			if err := got.Verify(); err != nil {
				t.Fatalf("trial %d minsup %d: %v", trial, minsup, err)
			}
		}
	}
}

func TestMineEmptyDatabase(t *testing.T) {
	d := &db.Database{NumItems: 5}
	res, _, _ := Mine(context.Background(), d, 1)
	if res.Len() != 0 {
		t.Fatalf("empty database should yield nothing, got %d", res.Len())
	}
}

func TestMineMinsupClamped(t *testing.T) {
	d := &db.Database{NumItems: 2, Transactions: []db.Transaction{
		{TID: 0, Items: itemset.New(0)},
	}}
	res, _, _ := Mine(context.Background(), d, 0)
	if res.MinSup != 1 || res.Len() != 1 {
		t.Fatalf("minsup 0 should clamp to 1: %+v", res)
	}
}

func TestMineHighMinsupStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := testutil.RandomDB(rng, 50, 10, 5)
	res, st, _ := Mine(context.Background(), d, 51)
	if res.Len() != 0 {
		t.Fatal("nothing can be frequent above |D|")
	}
	if st.Scans > 2 {
		t.Fatalf("with empty L1/L2 no k>=3 scans should happen, got %d", st.Scans)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := testutil.RandomDB(rng, 80, 10, 7)
	_, st, _ := Mine(context.Background(), d, 2)
	if st.CountOps <= 0 {
		t.Fatal("CountOps should be positive")
	}
	if st.Scans != 2+st.Iterations && st.Scans != 2+st.Iterations-1 {
		// Scans = 2 (passes 1-2) + one per k>=3 iteration that had candidates.
		t.Fatalf("scan accounting inconsistent: scans=%d iterations=%d", st.Scans, st.Iterations)
	}
}

func TestCountItems(t *testing.T) {
	d := &db.Database{NumItems: 4, Transactions: []db.Transaction{
		{TID: 0, Items: itemset.New(0, 2)},
		{TID: 1, Items: itemset.New(2, 3)},
	}}
	got := CountItems(d)
	want := []int{1, 0, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CountItems = %v, want %v", got, want)
		}
	}
}
