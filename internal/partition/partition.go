// Package partition implements the Partition algorithm of Savasere,
// Omiecinski & Navathe (VLDB 1995), the related-work baseline the paper
// credits with minimizing I/O: "The Partition algorithm minimizes I/O by
// scanning the database only twice. It partitions the database into small
// chunks which can be handled in memory. In the first pass it generates
// the set of all potentially frequent itemsets (any itemset locally
// frequent in a partition), and in the second pass their global support
// is obtained."
//
// Local mining inside each chunk uses vertical tid-list intersection —
// Partition is itself an ancestor of the vertical representation Eclat
// builds on. An itemset that is globally frequent must be locally
// frequent in at least one chunk (pigeonhole on rates), so the union of
// local results is a superset of the answer; the second pass counts that
// union exactly.
package partition

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/eclat"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// Stats reports the work of a Partition run.
type Stats struct {
	Scans           int // always 2: local mining pass + global counting pass
	Chunks          int
	Candidates      int // |union of locally frequent itemsets|
	FalseCandidates int // candidates that failed the global threshold
}

// Mine runs Partition with numChunks in-memory chunks. minsup is the
// absolute global support count. The result equals Apriori's and Eclat's.
func Mine(d *db.Database, minsup, numChunks int) (*mining.Result, Stats) {
	if minsup < 1 {
		minsup = 1
	}
	if numChunks < 1 {
		numChunks = 1
	}
	if numChunks > d.Len() && d.Len() > 0 {
		numChunks = d.Len()
	}
	st := Stats{Scans: 2, Chunks: numChunks}
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	if d.Len() == 0 {
		return res, st
	}

	// Pass 1: mine each chunk at the equivalent local rate. Local
	// frequency uses exact rational arithmetic: an itemset is locally
	// frequent in a chunk of p transactions iff count * |D| >= minsup * p,
	// which guarantees the superset property without float rounding.
	chunks := d.Partition(numChunks)
	candidates := map[string]bool{}
	for _, chunk := range chunks {
		if chunk.Len() == 0 {
			continue
		}
		localMin := localThreshold(minsup, chunk.Len(), d.Len())
		local, _ := eclat.MineSequential(chunk, localMin)
		for _, f := range local.Itemsets {
			// MineSequential thresholds at ceil; re-check the exact
			// rational condition (they coincide, but keep the invariant
			// explicit and safe against future threshold changes).
			if int64(f.Support)*int64(d.Len()) >= int64(minsup)*int64(chunk.Len()) {
				candidates[f.Set.Key()] = true
			}
		}
	}
	st.Candidates = len(candidates)

	// Pass 2: count every candidate exactly in one global pass. Group by
	// size into hash trees and count them all against each transaction.
	byK := map[int]*hashtree.Tree{}
	for key := range candidates {
		set, err := itemset.ParseKey(key)
		if err != nil {
			panic(fmt.Sprintf("partition: corrupt candidate key %q", key))
		}
		k := set.K()
		if byK[k] == nil {
			byK[k] = hashtree.New(k, hashtree.WithFanout(max(64, d.NumItems)))
		}
		byK[k].Insert(set)
	}
	for _, tx := range d.Transactions {
		for _, tree := range byK {
			tree.CountTransaction(tx.TID, tx.Items)
		}
	}
	for _, tree := range byK {
		for _, c := range tree.Candidates() {
			if c.Count >= minsup {
				res.Add(c.Set, c.Count)
			} else {
				st.FalseCandidates++
			}
		}
	}
	res.Sort()
	return res, st
}

// localThreshold converts the global absolute threshold into a chunk's
// absolute threshold: the smallest integer c with c*total >= minsup*part.
func localThreshold(minsup, part, total int) int {
	c := (int64(minsup)*int64(part) + int64(total) - 1) / int64(total)
	if c < 1 {
		c = 1
	}
	return int(c)
}
