package partition

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/mining"
	"repro/internal/testutil"
)

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		d := testutil.RandomDB(rng, 100+trial*30, 12, 6)
		for _, chunks := range []int{1, 2, 3, 7} {
			for _, minsup := range []int{2, 4, 8} {
				got, st := Mine(d, minsup, chunks)
				want := testutil.BruteForce(d, minsup)
				if !mining.Equal(got, want) {
					t.Fatalf("trial %d chunks %d minsup %d:\n%s", trial, chunks, minsup, mining.Diff(got, want))
				}
				if st.Scans != 2 {
					t.Fatalf("Partition must scan exactly twice, got %d", st.Scans)
				}
			}
		}
	}
}

func TestMatchesAprioriOnGeneratedData(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(2000))
	minsup := d.MinSupCount(1.0)
	want, _, _ := apriori.Mine(context.Background(), d, minsup)
	got, st := Mine(d, minsup, 5)
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
	if st.Candidates < want.Len() {
		t.Fatalf("candidate union (%d) must be a superset of the answer (%d)", st.Candidates, want.Len())
	}
	if st.Candidates != want.Len()+st.FalseCandidates {
		t.Fatalf("accounting: %d candidates != %d frequent + %d false",
			st.Candidates, want.Len(), st.FalseCandidates)
	}
}

func TestLocalThreshold(t *testing.T) {
	cases := []struct {
		minsup, part, total, want int
	}{
		{10, 100, 1000, 1}, // 1% of 100
		{10, 105, 1000, 2}, // ceil(1.05)
		{10, 1000, 1000, 10},
		{1, 1, 1000, 1},
		{3, 10, 100, 1}, // ceil(0.3) = 1
	}
	for _, c := range cases {
		if got := localThreshold(c.minsup, c.part, c.total); got != c.want {
			t.Errorf("localThreshold(%d,%d,%d) = %d, want %d", c.minsup, c.part, c.total, got, c.want)
		}
	}
}

// Property: the superset guarantee — every globally frequent itemset is
// locally frequent in at least one chunk (via the final equality with the
// oracle, exercised over random chunkings).
func TestSupersetPropertyQuick(t *testing.T) {
	f := func(seed int64, nc uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDB(rng, 80, 10, 5)
		chunks := 1 + int(nc%9)
		got, _ := Mine(d, 4, chunks)
		want := testutil.BruteForce(d, 4)
		return mining.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCases(t *testing.T) {
	empty := &db.Database{NumItems: 5}
	res, _ := Mine(empty, 1, 4)
	if res.Len() != 0 {
		t.Fatal("empty database should mine nothing")
	}
	// More chunks than transactions.
	rng := rand.New(rand.NewSource(3))
	d := testutil.RandomDB(rng, 5, 8, 4)
	got, st := Mine(d, 2, 100)
	want := testutil.BruteForce(d, 2)
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
	if st.Chunks > 5 {
		t.Fatalf("chunks should clamp to |D|, got %d", st.Chunks)
	}
	// Degenerate thresholds.
	if res, _ := Mine(d, 0, 0); res.MinSup != 1 {
		t.Fatal("minsup and chunks should clamp to 1")
	}
}
