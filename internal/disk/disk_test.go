package disk

import "testing"

func TestScanCostMonotonic(t *testing.T) {
	d := New(Default1997())
	small := d.ScanNS(1<<20, 1)
	big := d.ScanNS(8<<20, 1)
	if big <= small {
		t.Fatalf("more bytes should cost more: %d vs %d", big, small)
	}
}

func TestSeekDominatesTinyScans(t *testing.T) {
	m := Default1997()
	d := New(m)
	if got := d.ScanNS(0, 1); got != m.SeekNS {
		t.Fatalf("zero-byte scan should cost exactly one seek, got %d", got)
	}
}

func TestContentionScalesLinearly(t *testing.T) {
	m := Default1997()
	d := New(m)
	base := d.ScanNS(16<<20, 1) - m.SeekNS
	four := d.ScanNS(16<<20, 4) - m.SeekNS
	// With ContentionFactor 1.0, four concurrent scanners see 1/4 the
	// bandwidth: transfer time x4.
	if four != 4*base {
		t.Fatalf("contention: solo=%d x4=%d, want exactly 4x", base, four)
	}
	if d.ScanNS(1<<20, 0) != d.ScanNS(1<<20, 1) {
		t.Fatal("concurrent < 1 should clamp to 1")
	}
}

func TestPartialContentionFactor(t *testing.T) {
	m := Default1997()
	m.ContentionFactor = 0.5
	d := New(m)
	base := d.ScanNS(16<<20, 1) - m.SeekNS
	two := d.ScanNS(16<<20, 2) - m.SeekNS
	if two != base+base/2 {
		t.Fatalf("factor 0.5 with 2 scanners should be 1.5x: %d vs %d", two, base)
	}
}

func TestWriteMatchesScanModel(t *testing.T) {
	d := New(Default1997())
	if d.WriteNS(1<<20, 2) != d.ScanNS(1<<20, 2) {
		t.Fatal("writes use the same cost model")
	}
}

func TestInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Model{SeekNS: 1, BytesPerSecond: 0})
}
