// Package disk models the per-host local disks of the paper's testbed
// ("Each host also has a 2GB local disk attached to it ... All the
// partitioned databases reside on the local disks of each processor").
//
// The model is deterministic virtual time: a scan of B bytes costs one
// seek plus B / bandwidth, multiplied by the number of processors on the
// host scanning concurrently — the contention effect the paper measures
// ("Since all the processors will be accessing the local disk
// simultaneously, we will suffer from a lot of disk contention ... the
// disk contention causes performance degradation with increasing number
// of processors on each host").
package disk

import "fmt"

// Model holds the disk cost parameters.
type Model struct {
	// SeekNS is charged once per scan or write burst.
	SeekNS int64
	// BytesPerSecond is the sequential bandwidth of one disk with a single
	// reader.
	BytesPerSecond int64
	// ContentionFactor scales the slowdown per additional concurrent
	// scanner; 1.0 means N concurrent scanners each see bandwidth/N.
	ContentionFactor float64
}

// Default1997 approximates a mid-90s SCSI disk: 10 ms seek, 8 MB/s
// sequential bandwidth, full contention.
func Default1997() Model {
	return Model{SeekNS: 10_000_000, BytesPerSecond: 8 << 20, ContentionFactor: 1.0}
}

// Disk is one host's disk. It is stateless except for the model; the
// concurrency level is passed per operation because the algorithms know
// statically how many of the host's processors scan together (SPMD
// phases).
type Disk struct {
	model Model
}

// New returns a disk with the given model.
func New(m Model) *Disk {
	if m.BytesPerSecond <= 0 {
		panic(fmt.Sprintf("disk: invalid bandwidth %d", m.BytesPerSecond))
	}
	return &Disk{model: m}
}

// ScanNS returns the virtual time to sequentially read `bytes` while
// `concurrent` processors of the same host are scanning (>= 1).
func (d *Disk) ScanNS(bytes int64, concurrent int) int64 {
	if concurrent < 1 {
		concurrent = 1
	}
	slowdown := 1 + d.model.ContentionFactor*float64(concurrent-1)
	transfer := float64(bytes) / float64(d.model.BytesPerSecond) * 1e9 * slowdown
	return d.model.SeekNS + int64(transfer)
}

// WriteNS returns the virtual time to write `bytes` (same model as reads;
// Eclat's transformation phase writes the inverted partition back to
// disk).
func (d *Disk) WriteNS(bytes int64, concurrent int) int64 {
	return d.ScanNS(bytes, concurrent)
}
