// Package testutil provides the brute-force mining oracle and random
// database builders shared by the test suites of every algorithm package.
// The oracle enumerates every subset of every transaction, so it is
// exponential in transaction length and only suitable for the small random
// databases the tests construct — which is exactly what makes it a
// trustworthy independent check.
package testutil

import (
	"math/rand"

	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// BruteForce mines d exhaustively: the support of every itemset that
// appears as a subset of some transaction is counted via full subset
// enumeration, then thresholded at minsup.
func BruteForce(d *db.Database, minsup int) *mining.Result {
	if minsup < 1 {
		minsup = 1
	}
	counts := map[string]int{}
	for _, tx := range d.Transactions {
		n := len(tx.Items)
		if n > 20 {
			panic("testutil: transaction too long for brute force")
		}
		for mask := 1; mask < 1<<n; mask++ {
			var sub itemset.Itemset
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					sub = append(sub, tx.Items[b])
				}
			}
			counts[sub.Key()]++
		}
	}
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	for key, c := range counts {
		if c < minsup {
			continue
		}
		set, err := itemset.ParseKey(key)
		if err != nil {
			panic(err)
		}
		res.Add(set, c)
	}
	res.Sort()
	return res
}

// RandomDB builds a random database of numTx transactions over numItems
// items with transaction sizes in [1, maxLen]. Item draws are skewed
// (favouring small item ids) so that frequent itemsets of size >= 3
// actually occur, as in real basket data.
func RandomDB(rng *rand.Rand, numTx, numItems, maxLen int) *db.Database {
	d := &db.Database{NumItems: numItems}
	for i := 0; i < numTx; i++ {
		n := 1 + rng.Intn(maxLen)
		items := make([]itemset.Item, n)
		for j := range items {
			// Square the uniform draw to skew towards low item ids.
			u := rng.Float64()
			items[j] = itemset.Item(int(u * u * float64(numItems)))
		}
		d.Transactions = append(d.Transactions, db.Transaction{
			TID:   itemset.TID(i),
			Items: itemset.New(items...),
		})
	}
	return d
}
