// Package stats collects the per-processor accounting every parallel run
// reports: virtual-time breakdown by resource (CPU, disk, network,
// synchronization wait), raw volume counters, and named phase timings.
// The paper's Table 2 break-up ("for Eclat we also show the break-up for
// the time spent in the initialization and transformation phase") and the
// section 8.1 observations are reproduced from these counters.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Breakdown is the accounting record of one simulated processor (or the
// merged record of a whole run).
type Breakdown struct {
	// Virtual nanoseconds by resource. Total virtual time of a processor
	// is the sum of the four.
	CPUNS  int64
	DiskNS int64
	NetNS  int64
	WaitNS int64 // time spent blocked at barriers/reductions waiting for slower peers

	// Volumes.
	DiskBytesRead    int64
	DiskBytesWritten int64
	NetBytes         int64
	NetMsgs          int64
	Barriers         int64
	Scans            int64 // full passes over the local partition
	Ops              int64 // abstract compute operations charged

	// Per-encoding split of the tid-set payload bytes shipped during the
	// transformation exchange (a subset of NetBytes; non-payload traffic
	// such as reductions and result gathers is in neither). With the
	// adaptive representation each list travels in whichever encoding is
	// smaller, and this split shows how the volume divided.
	NetBytesSparse int64 // tid-list payloads shipped sparse (4 B/tid)
	NetBytesDense  int64 // tid-list payloads shipped as bitsets (8 B/word + header)

	// Phases maps a phase name to virtual nanoseconds spent in it.
	Phases map[string]int64
}

// TotalNS returns the processor's total virtual time.
func (b *Breakdown) TotalNS() int64 { return b.CPUNS + b.DiskNS + b.NetNS + b.WaitNS }

// Total returns the total virtual time as a Duration.
func (b *Breakdown) Total() time.Duration { return time.Duration(b.TotalNS()) }

// AddPhase accrues virtual time to a named phase.
func (b *Breakdown) AddPhase(name string, ns int64) {
	if b.Phases == nil {
		b.Phases = map[string]int64{}
	}
	b.Phases[name] += ns
}

// Merge accumulates other into b (for cluster-wide volume totals; note
// that virtual times of concurrent processors do not add up to elapsed
// time — use the maximum clock for that).
func (b *Breakdown) Merge(other *Breakdown) {
	b.CPUNS += other.CPUNS
	b.DiskNS += other.DiskNS
	b.NetNS += other.NetNS
	b.WaitNS += other.WaitNS
	b.DiskBytesRead += other.DiskBytesRead
	b.DiskBytesWritten += other.DiskBytesWritten
	b.NetBytes += other.NetBytes
	b.NetBytesSparse += other.NetBytesSparse
	b.NetBytesDense += other.NetBytesDense
	b.NetMsgs += other.NetMsgs
	b.Barriers += other.Barriers
	b.Scans += other.Scans
	b.Ops += other.Ops
	for name, ns := range other.Phases {
		b.AddPhase(name, ns)
	}
}

// String renders a compact human-readable summary.
func (b *Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total=%v cpu=%v disk=%v net=%v wait=%v",
		time.Duration(b.TotalNS()), time.Duration(b.CPUNS),
		time.Duration(b.DiskNS), time.Duration(b.NetNS), time.Duration(b.WaitNS))
	fmt.Fprintf(&sb, " | scans=%d diskRead=%s netBytes=%s msgs=%d barriers=%d ops=%d",
		b.Scans, fmtBytes(b.DiskBytesRead), fmtBytes(b.NetBytes), b.NetMsgs, b.Barriers, b.Ops)
	if b.NetBytesSparse > 0 || b.NetBytesDense > 0 {
		fmt.Fprintf(&sb, " | payload: sparse=%s dense=%s",
			fmtBytes(b.NetBytesSparse), fmtBytes(b.NetBytesDense))
	}
	if len(b.Phases) > 0 {
		names := make([]string, 0, len(b.Phases))
		for n := range b.Phases {
			names = append(names, n)
		}
		sort.Strings(names)
		sb.WriteString(" | phases:")
		for _, n := range names {
			fmt.Fprintf(&sb, " %s=%v", n, time.Duration(b.Phases[n]))
		}
	}
	return sb.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
