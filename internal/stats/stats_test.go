package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTotals(t *testing.T) {
	b := Breakdown{CPUNS: 10, DiskNS: 20, NetNS: 30, WaitNS: 40}
	if b.TotalNS() != 100 {
		t.Fatalf("TotalNS = %d", b.TotalNS())
	}
	if b.Total() != 100*time.Nanosecond {
		t.Fatalf("Total = %v", b.Total())
	}
}

func TestAddPhase(t *testing.T) {
	var b Breakdown
	b.AddPhase("init", 5)
	b.AddPhase("init", 7)
	b.AddPhase("async", 1)
	if b.Phases["init"] != 12 || b.Phases["async"] != 1 {
		t.Fatalf("Phases = %v", b.Phases)
	}
}

func TestMerge(t *testing.T) {
	a := Breakdown{CPUNS: 1, DiskBytesRead: 100, Scans: 2}
	a.AddPhase("x", 3)
	b := Breakdown{CPUNS: 2, DiskBytesRead: 50, Scans: 1, NetMsgs: 4}
	b.AddPhase("x", 4)
	b.AddPhase("y", 1)
	a.Merge(&b)
	if a.CPUNS != 3 || a.DiskBytesRead != 150 || a.Scans != 3 || a.NetMsgs != 4 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if a.Phases["x"] != 7 || a.Phases["y"] != 1 {
		t.Fatalf("phase merge wrong: %v", a.Phases)
	}
}

func TestStringMentionsKeyFields(t *testing.T) {
	b := Breakdown{CPUNS: 1e9, DiskBytesRead: 3 << 20, Scans: 3, Barriers: 7}
	b.AddPhase("init", 12)
	s := b.String()
	for _, want := range []string{"cpu=1s", "scans=3", "barriers=7", "3.0MiB", "init="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q: %s", want, s)
		}
	}
}

func TestByteFormatting(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2 << 10: "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.0GiB",
	}
	for n, want := range cases {
		if got := fmtBytes(n); got != want {
			t.Fatalf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
