package itemset

import "testing"

// FuzzParseKey: arbitrary strings must never panic the parser, and every
// canonical key (produced by Key) must round-trip.
func FuzzParseKey(f *testing.F) {
	f.Add("")
	f.Add("1,2,3")
	f.Add(New(5, 900, 12).Key())
	f.Add(",,,")
	f.Add("zz@!")

	f.Fuzz(func(t *testing.T, key string) {
		set, err := ParseKey(key)
		if err != nil {
			return
		}
		// The parse may produce an unsorted "itemset" from a non-canonical
		// key; canonicalize and check that canonical keys are stable.
		canon := New(set...)
		back, err := ParseKey(canon.Key())
		if err != nil {
			t.Fatalf("canonical key failed to parse: %v", err)
		}
		if !back.Equal(canon) {
			t.Fatalf("canonical round trip: %v != %v", back, canon)
		}
	})
}

// FuzzSubsetAlgebra cross-checks SubsetOf / Union / Minus on arbitrary
// byte-derived itemsets.
func FuzzSubsetAlgebra(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{9})

	f.Fuzz(func(t *testing.T, ra, rb []byte) {
		var ai, bi []Item
		for _, x := range ra {
			ai = append(ai, Item(x))
		}
		for _, x := range rb {
			bi = append(bi, Item(x))
		}
		a, b := New(ai...), New(bi...)
		u := a.Union(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			t.Fatal("operands must be subsets of their union")
		}
		if d := u.Minus(b); !d.SubsetOf(a) {
			t.Fatal("(a ∪ b) \\ b must be within a")
		}
		if a.SubsetOf(b) && b.SubsetOf(a) && !a.Equal(b) {
			t.Fatal("mutual subsets must be equal")
		}
	})
}
