// Package itemset provides the basic value types of association mining:
// items, transaction identifiers, and sorted itemsets, together with the
// lexicographic operations (prefix tests, Apriori joins, k-subset
// enumeration) that every algorithm in this repository builds on.
//
// An Itemset is always kept sorted in increasing item order; all functions
// in this package assume and preserve that invariant. Sortedness is what
// makes the equivalence-class prefix partitioning of Zaki et al. (SPAA'97,
// section 4.1) and the tid-list layout (section 4.2) well defined.
package itemset

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Item identifies a single attribute (product, event, ...) in the database.
// Items are small dense integers in [0, N) as produced by the synthetic
// generator, matching the paper's N = 1000 item universe.
type Item int32

// TID identifies one transaction. The paper's databases run to 6.4 million
// transactions, comfortably inside int32.
type TID int32

// Itemset is a set of items in strictly increasing order. A k-itemset has
// length k. The zero value is the empty itemset.
type Itemset []Item

// New returns a sorted, deduplicated itemset built from items.
func New(items ...Item) Itemset {
	s := make(Itemset, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Deduplicate in place.
	out := s[:0]
	for i, it := range s {
		if i == 0 || it != s[i-1] {
			out = append(out, it)
		}
	}
	return out
}

// K returns the size of the itemset.
func (s Itemset) K() int { return len(s) }

// Clone returns an independent copy of s.
func (s Itemset) Clone() Itemset {
	c := make(Itemset, len(s))
	copy(c, s)
	return c
}

// Equal reports whether s and t contain the same items.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Less reports whether s precedes t in lexicographic order, with shorter
// prefixes ordered first. This is the order the paper assumes when it says
// "assuming L(k-1) is lexicographically sorted".
func (s Itemset) Less(t Itemset) bool {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i] != t[i] {
			return s[i] < t[i]
		}
	}
	return len(s) < len(t)
}

// Contains reports whether s contains item x.
func (s Itemset) Contains(x Item) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// SubsetOf reports whether every item of s appears in t. Both must be
// sorted; the test is a linear merge.
func (s Itemset) SubsetOf(t Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j >= len(t) || t[j] != x {
			return false
		}
		j++
	}
	return true
}

// Prefix returns the first n items of s. It panics if n > len(s).
func (s Itemset) Prefix(n int) Itemset { return s[:n] }

// HasPrefix reports whether s begins with p.
func (s Itemset) HasPrefix(p Itemset) bool {
	if len(p) > len(s) {
		return false
	}
	for i := range p {
		if s[i] != p[i] {
			return false
		}
	}
	return true
}

// SharesPrefix reports whether s and t (both k-itemsets) agree on their
// first k-1 items — the Apriori join condition A[1:k-2]=B[1:k-2] for
// generating (k+1)-candidates.
func (s Itemset) SharesPrefix(t Itemset) bool {
	if len(s) != len(t) || len(s) == 0 {
		return false
	}
	k := len(s) - 1
	for i := 0; i < k; i++ {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Join combines two k-itemsets sharing a (k-1)-prefix into the
// (k+1)-candidate A[1]A[2]...A[k]B[k] (paper figure 1). It requires
// s.SharesPrefix(t) and s[k-1] < t[k-1]; Join panics otherwise, since
// callers enumerate pairs in sorted order and a violation is a bug.
func (s Itemset) Join(t Itemset) Itemset {
	if !s.SharesPrefix(t) || s[len(s)-1] >= t[len(t)-1] {
		panic(fmt.Sprintf("itemset: invalid join %v x %v", s, t))
	}
	out := make(Itemset, len(s)+1)
	copy(out, s)
	out[len(s)] = t[len(t)-1]
	return out
}

// Without returns a copy of s with the item at index i removed; used for
// enumerating the (k-1)-subsets during Apriori pruning and for rule
// generation.
func (s Itemset) Without(i int) Itemset {
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// Minus returns s \ t (both sorted).
func (s Itemset) Minus(t Itemset) Itemset {
	out := make(Itemset, 0, len(s))
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j < len(t) && t[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// Union returns the sorted union of s and t.
func (s Itemset) Union(t Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// String renders the itemset as "{1 5 9}".
func (s Itemset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(int(it)))
	}
	b.WriteByte('}')
	return b.String()
}

// Key returns a compact string usable as a map key. Two itemsets have the
// same Key iff they are Equal.
func (s Itemset) Key() string {
	var b strings.Builder
	b.Grow(len(s) * 3)
	for i, it := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(it), 36))
	}
	return b.String()
}

// ParseKey reverses Key.
func ParseKey(key string) (Itemset, error) {
	if key == "" {
		return nil, nil
	}
	parts := strings.Split(key, ",")
	out := make(Itemset, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 36, 32)
		if err != nil {
			return nil, fmt.Errorf("itemset: bad key %q: %w", key, err)
		}
		out[i] = Item(v)
	}
	return out, nil
}

// Sort sorts a slice of itemsets lexicographically, the canonical order in
// which all algorithms emit L(k).
func Sort(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool { return sets[i].Less(sets[j]) })
}

// KSubsets calls fn for every k-subset of s in lexicographic order. This is
// the transaction-subset enumeration at the heart of Apriori support
// counting (figure 1); fn returning false aborts the enumeration early,
// which the CCPD short-circuit optimization exploits.
func KSubsets(s Itemset, k int, fn func(Itemset) bool) {
	if k < 0 || k > len(s) {
		return
	}
	if k == 0 {
		fn(nil)
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make(Itemset, k)
	for {
		for i, ix := range idx {
			buf[i] = s[ix]
		}
		if !fn(buf) {
			return
		}
		// Advance the combination odometer.
		i := k - 1
		for i >= 0 && idx[i] == len(s)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Binomial returns C(n, k) as an int64, saturating at MaxInt64. It backs
// the equivalence-class weight C(s,2) and the operation-count analysis in
// section 4.2 of the paper.
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var r int64 = 1
	for i := 0; i < k; i++ {
		r = r * int64(n-i) / int64(i+1)
	}
	return r
}
