package itemset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	s := New(5, 1, 3, 5, 1)
	want := Itemset{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("New(5,1,3,5,1) = %v, want %v", s, want)
	}
	if New().K() != 0 {
		t.Fatalf("New() should be empty")
	}
}

func TestEqualAndLess(t *testing.T) {
	cases := []struct {
		a, b       Itemset
		eq, aLessB bool
	}{
		{New(1, 2), New(1, 2), true, false},
		{New(1, 2), New(1, 3), false, true},
		{New(1, 2), New(1, 2, 3), false, true},
		{New(2), New(1, 9), false, false},
		{nil, nil, true, false},
		{nil, New(1), false, true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.eq {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.eq)
		}
		if got := c.a.Less(c.b); got != c.aLessB {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.aLessB)
		}
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 6, 8, 10)
	for _, x := range []Item{2, 4, 6, 8, 10} {
		if !s.Contains(x) {
			t.Errorf("%v should contain %d", s, x)
		}
	}
	for _, x := range []Item{1, 3, 5, 7, 9, 11, 0, -1} {
		if s.Contains(x) {
			t.Errorf("%v should not contain %d", s, x)
		}
	}
	if Itemset(nil).Contains(1) {
		t.Error("empty itemset contains nothing")
	}
}

func TestSubsetOf(t *testing.T) {
	tr := New(1, 3, 5, 7, 9, 11)
	if !New(3, 9).SubsetOf(tr) {
		t.Error("{3 9} should be subset")
	}
	if !New().SubsetOf(tr) {
		t.Error("empty set is subset of everything")
	}
	if New(3, 4).SubsetOf(tr) {
		t.Error("{3 4} is not a subset")
	}
	if New(1, 3, 5, 7, 9, 11, 13).SubsetOf(tr) {
		t.Error("longer set cannot be subset")
	}
	if !tr.SubsetOf(tr) {
		t.Error("set is subset of itself")
	}
}

func TestPrefixOps(t *testing.T) {
	s := New(1, 2, 3, 4)
	if !s.HasPrefix(New(1, 2)) || s.HasPrefix(New(2)) {
		t.Error("HasPrefix wrong")
	}
	if !s.Prefix(2).Equal(New(1, 2)) {
		t.Error("Prefix wrong")
	}
	a, b := New(1, 2, 5), New(1, 2, 9)
	if !a.SharesPrefix(b) {
		t.Error("SharesPrefix should hold for {1 2 5},{1 2 9}")
	}
	if a.SharesPrefix(New(1, 3, 9)) {
		t.Error("SharesPrefix should not hold across different prefixes")
	}
	if Itemset(nil).SharesPrefix(nil) {
		t.Error("empty itemsets share no prefix (join undefined)")
	}
}

func TestJoin(t *testing.T) {
	got := New(1, 2, 5).Join(New(1, 2, 9))
	if !got.Equal(New(1, 2, 5, 9)) {
		t.Fatalf("Join = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Join with unordered last items should panic")
		}
	}()
	New(1, 2, 9).Join(New(1, 2, 5))
}

func TestWithoutMinusUnion(t *testing.T) {
	s := New(1, 2, 3)
	if !s.Without(1).Equal(New(1, 3)) {
		t.Error("Without wrong")
	}
	if !s.Minus(New(2)).Equal(New(1, 3)) {
		t.Error("Minus wrong")
	}
	if !New(1, 5).Union(New(2, 5, 9)).Equal(New(1, 2, 5, 9)) {
		t.Error("Union wrong")
	}
	// Without must not alias the receiver's backing array.
	w := s.Without(2)
	w = append(w, 99)
	if !s.Equal(New(1, 2, 3)) {
		t.Error("Without aliased its receiver")
	}
}

func TestStringAndKey(t *testing.T) {
	s := New(1, 40, 100)
	if s.String() != "{1 40 100}" {
		t.Errorf("String = %q", s.String())
	}
	back, err := ParseKey(s.Key())
	if err != nil || !back.Equal(s) {
		t.Errorf("ParseKey(Key) = %v, %v", back, err)
	}
	if empty, err := ParseKey(""); err != nil || len(empty) != 0 {
		t.Errorf("ParseKey(\"\") = %v, %v", empty, err)
	}
	if _, err := ParseKey("zz,!!"); err == nil {
		t.Error("ParseKey should reject garbage")
	}
}

func TestKeyInjective(t *testing.T) {
	// Keys of distinct itemsets must differ (quick-check style over a
	// bounded random domain).
	rng := rand.New(rand.NewSource(42))
	seen := map[string]Itemset{}
	for i := 0; i < 2000; i++ {
		n := rng.Intn(6)
		items := make([]Item, n)
		for j := range items {
			items[j] = Item(rng.Intn(50))
		}
		s := New(items...)
		k := s.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(s) {
			t.Fatalf("key collision: %v and %v -> %q", prev, s, k)
		}
		seen[k] = s
	}
}

func TestSortLexicographic(t *testing.T) {
	sets := []Itemset{New(2, 3), New(1, 9), New(1, 2, 3), New(1, 2)}
	Sort(sets)
	want := []Itemset{New(1, 2), New(1, 2, 3), New(1, 9), New(2, 3)}
	for i := range want {
		if !sets[i].Equal(want[i]) {
			t.Fatalf("Sort order wrong at %d: %v", i, sets)
		}
	}
}

func TestKSubsetsEnumeration(t *testing.T) {
	s := New(1, 2, 3, 4)
	var got []string
	KSubsets(s, 2, func(sub Itemset) bool {
		got = append(got, sub.String())
		return true
	})
	want := []string{"{1 2}", "{1 3}", "{1 4}", "{2 3}", "{2 4}", "{3 4}"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("KSubsets = %v, want %v", got, want)
	}
}

func TestKSubsetsCountAndOrder(t *testing.T) {
	s := New(1, 2, 3, 4, 5, 6, 7)
	for k := 0; k <= 8; k++ {
		var n int64
		var prev Itemset
		KSubsets(s, k, func(sub Itemset) bool {
			if prev != nil && !prev.Less(sub) {
				t.Fatalf("k=%d not in lexicographic order: %v then %v", k, prev, sub)
			}
			prev = sub.Clone()
			n++
			return true
		})
		if want := Binomial(len(s), k); n != want {
			t.Fatalf("k=%d produced %d subsets, want %d", k, n, want)
		}
	}
}

func TestKSubsetsEarlyAbort(t *testing.T) {
	n := 0
	KSubsets(New(1, 2, 3, 4), 2, func(Itemset) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("abort after 3, got %d calls", n)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {5, 3, 10},
		{10, 4, 210}, {1000, 2, 499500}, {4, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// Property: SubsetOf agrees with a map-based oracle.
func TestSubsetOfQuick(t *testing.T) {
	f := func(a, b []uint8) bool {
		var ai, bi []Item
		for _, x := range a {
			ai = append(ai, Item(x%32))
		}
		for _, x := range b {
			bi = append(bi, Item(x%32))
		}
		s, tr := New(ai...), New(bi...)
		inT := map[Item]bool{}
		for _, x := range tr {
			inT[x] = true
		}
		want := true
		for _, x := range s {
			if !inT[x] {
				want = false
				break
			}
		}
		return s.SubsetOf(tr) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Union is sorted, contains exactly the set union, and Minus
// then Union round-trips.
func TestUnionMinusQuick(t *testing.T) {
	f := func(a, b []uint8) bool {
		var ai, bi []Item
		for _, x := range a {
			ai = append(ai, Item(x%64))
		}
		for _, x := range b {
			bi = append(bi, Item(x%64))
		}
		s, u := New(ai...), New(bi...)
		un := s.Union(u)
		if !sort.SliceIsSorted(un, func(i, j int) bool { return un[i] < un[j] }) {
			return false
		}
		want := map[Item]bool{}
		for _, x := range s {
			want[x] = true
		}
		for _, x := range u {
			want[x] = true
		}
		if len(un) != len(want) {
			return false
		}
		for _, x := range un {
			if !want[x] {
				return false
			}
		}
		// (s ∪ u) \ u ⊆ s and re-union restores.
		diff := un.Minus(u)
		return diff.SubsetOf(s) && diff.Union(u).Equal(un)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every k-subset emitted is sorted, a subset of s, and distinct.
func TestKSubsetsQuick(t *testing.T) {
	f := func(raw []uint8, kk uint8) bool {
		var items []Item
		for _, x := range raw {
			items = append(items, Item(x%40))
		}
		s := New(items...)
		if len(s) > 12 {
			s = s[:12]
		}
		k := int(kk % 6)
		seen := map[string]bool{}
		ok := true
		KSubsets(s, k, func(sub Itemset) bool {
			if len(sub) != k || !sub.SubsetOf(s) || seen[sub.Key()] {
				ok = false
				return false
			}
			seen[sub.Key()] = true
			return true
		})
		return ok && int64(len(seen)) == Binomial(len(s), k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
