// Package datadist implements the Data Distribution algorithm (Agrawal &
// Shafer), the baseline "designed to utilize the total system memory by
// generating disjoint candidate sets on each processor. However to
// generate the global support each processor must scan the entire
// database (its local partition, and all the remote partitions) in all
// iterations. It thus suffers from high communication overhead, and
// performs very poorly when compared to Count Distribution."
//
// Candidates of each pass are dealt round-robin to processors; every
// processor counts its share against the whole database, paying disk for
// the local partition and network for every remote partition, then all
// processors exchange their locally-frequent candidates to construct the
// global L(k).
package datadist

import (
	"repro/internal/apriori"
	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// frequentSet crosses the all-gather with its global support.
type frequentSet struct {
	set   itemset.Itemset
	count int
}

// Mine runs Data Distribution on the simulated cluster. The result is
// identical to sequential Apriori's.
func Mine(cl *cluster.Cluster, d *db.Database, minsup int) (*mining.Result, cluster.Report) {
	if minsup < 1 {
		minsup = 1
	}
	t := cl.NumProcs()
	parts := d.Partition(t)
	fanout := d.NumItems
	if fanout < 64 {
		fanout = 64
	}

	var final *mining.Result

	cl.Run(func(p *cluster.Proc) {
		part := parts[p.ID()]
		res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}

		// Pass 1: L1 by sum-reduction, as in Count Distribution (the
		// candidate set of pass 1 is trivially small).
		p.ChargeScan(part.SizeBytes(), p.HostProcs())
		var itemOps int64
		for _, tx := range part.Transactions {
			itemOps += int64(len(tx.Items))
		}
		p.ChargeCPU(itemOps)
		gItems := cluster.SumReduceInt(p, apriori.CountItems(part))
		var l1 []itemset.Item
		for it, c := range gItems {
			if c >= minsup {
				res.Add(itemset.Itemset{itemset.Item(it)}, c)
				l1 = append(l1, itemset.Item(it))
			}
		}

		// Passes k >= 2: disjoint candidate shares, full-database scans.
		prev := []itemset.Itemset(nil) // global L(k-1), identical everywhere
		for k := 2; ; k++ {
			// Generate the global candidate set (identically on every
			// processor, so shares can be dealt without communication) and
			// keep the round-robin share. The share is inserted directly
			// into this processor's tree; the full set is never
			// materialized.
			mine := hashtree.New(k, hashtree.WithFanout(fanout))
			var numCands int64
			if k == 2 {
				for i := 0; i < len(l1); i++ {
					for j := i + 1; j < len(l1); j++ {
						if int(numCands)%t == p.ID() {
							mine.Insert(itemset.Itemset{l1[i], l1[j]})
						}
						numCands++
					}
				}
			} else {
				if len(prev) < 2 {
					break
				}
				tree := apriori.GenerateCandidates(prev, hashtree.WithFanout(fanout))
				for _, c := range tree.Candidates() {
					if int(numCands)%t == p.ID() {
						mine.Insert(c.Set)
					}
					numCands++
				}
			}
			p.ChargeOps(cluster.OpHashTree, numCands*int64(k))
			if numCands == 0 {
				break
			}

			// Count the share against the entire database: local partition
			// from disk, every remote partition over the interconnect.
			var ops int64
			var remoteBytes int64
			for q := 0; q < t; q++ {
				if q == p.ID() {
					p.ChargeScan(part.SizeBytes(), p.HostProcs())
				} else {
					remoteBytes += parts[q].SizeBytes()
				}
				ops += apriori.CountPartition(mine, parts[q])
			}
			p.ChargeNet(t-1, remoteBytes)
			factor := p.PageFactor(int64(p.HostProcs()) * mine.SizeBytes())
			p.ChargeOps(cluster.OpHashTree, ops*factor)

			// Exchange locally-determined frequent candidates; the union is
			// the global L(k) since shares are disjoint and counts global.
			var local []frequentSet
			var localBytes int64
			for _, c := range mine.Frequent(minsup) {
				local = append(local, frequentSet{set: c.Set, count: c.Count})
				localBytes += 4 * int64(k+1)
			}
			gathered := cluster.Gather(p, local, localBytes)
			prev = prev[:0]
			for _, fromProc := range gathered {
				for _, f := range fromProc {
					res.Add(f.set, f.count)
					prev = append(prev, f.set)
				}
			}
			itemset.Sort(prev)
		}

		res.Sort()
		if p.ID() == 0 {
			final = res
		}
	})

	return final, cl.Report()
}
