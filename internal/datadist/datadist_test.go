package datadist

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/cluster"
	"repro/internal/countdist"
	"repro/internal/mining"
	"repro/internal/testutil"
)

func TestMatchesSequentialApriori(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d := testutil.RandomDB(rng, 200, 12, 6)
	minsup := 5
	want, _, _ := apriori.Mine(context.Background(), d, minsup)
	for _, hp := range [][2]int{{1, 1}, {2, 2}, {4, 1}} {
		cl := cluster.New(cluster.Default(hp[0], hp[1]))
		got, rep := Mine(cl, d, minsup)
		if !mining.Equal(got, want) {
			t.Fatalf("H=%d P=%d: %s", hp[0], hp[1], mining.Diff(got, want))
		}
		if rep.ElapsedNS <= 0 {
			t.Fatal("no elapsed time")
		}
	}
}

func TestRemoteScanTrafficDominates(t *testing.T) {
	// Data Distribution reads every remote partition each iteration: with
	// T processors its network volume must far exceed Count
	// Distribution's count-only exchanges.
	rng := rand.New(rand.NewSource(53))
	d := testutil.RandomDB(rng, 400, 14, 7)
	clDD := cluster.New(cluster.Default(4, 1))
	Mine(clDD, d, 8)
	clCD := cluster.New(cluster.Default(4, 1))
	// Use the triangular pass-2 CD variant so the comparison isolates the
	// remote-partition traffic rather than candidate-count vectors.
	countdist.MineOpts(clCD, d, 8, countdist.Options{TriangularPass2: true})
	dd := clDD.Report().Merged.NetBytes
	cd := clCD.Report().Merged.NetBytes
	if dd <= cd {
		t.Fatalf("Data Distribution net bytes (%d) should exceed Count Distribution's (%d)", dd, cd)
	}
}

func TestSlowerThanCountDistribution(t *testing.T) {
	// The paper: Data Distribution "performs very poorly when compared to
	// Count Distribution".
	rng := rand.New(rand.NewSource(57))
	d := testutil.RandomDB(rng, 400, 14, 7)
	clDD := cluster.New(cluster.Default(4, 1))
	_, repDD := Mine(clDD, d, 8)
	clCD := cluster.New(cluster.Default(4, 1))
	_, repCD := countdist.Mine(clCD, d, 8)
	if repDD.ElapsedNS <= repCD.ElapsedNS {
		t.Fatalf("DD (%v) should be slower than CD (%v)", repDD.Elapsed(), repCD.Elapsed())
	}
}
