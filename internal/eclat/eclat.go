// Package eclat implements the paper's contribution: the Eclat
// (Equivalence CLass Transformation) algorithm for frequent-itemset
// mining, in a sequential form and in the four-phase parallel form of
// section 5 (initialization, transformation, asynchronous, final
// reduction), plus the hybrid host-level parallelization sketched as
// future work in section 8.1.
//
// The mining core is Compute_Frequent (figure 3): within an equivalence
// class, every pair of member tid-lists is intersected (short-circuited
// on the minimum support); surviving itemsets form the next level, which
// is recursively partitioned into classes by prefix. A class never needs
// more than its own current level in memory, and candidate pruning is
// deliberately absent — the paper found it "of little or no help" with
// the vertical layout (section 5.3).
package eclat

import (
	"context"
	"sort"

	"repro/internal/db"
	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obsv"
	"repro/internal/paircount"
	"repro/internal/tidlist"
)

// Global intersection-work counters (see /metricsz). They are flushed
// once per equivalence class — the hot inner loop still updates only the
// run-local Stats struct, so the atomics never appear on the
// per-intersection path. Kernel-dispatch counters (sparse vs dense
// intersections, words touched, conversions) live in internal/tidlist
// and are flushed on the same per-class cadence.
const (
	mnIntersections = "eclat_intersections_total"
	mnShortCircuit  = "eclat_intersections_shortcircuited_total"
	mnIntersectOps  = "eclat_intersect_ops_total"
	mnTidlistBytes  = "eclat_tidlist_bytes_total"
	mnClasses       = "eclat_classes_total"
	mnDiffsetsUsed  = "eclat_diffset_classes_total"
)

var (
	mIntersections = obsv.Default.Counter(mnIntersections, "tid-list intersections attempted")
	mShortCircuit  = obsv.Default.Counter(mnShortCircuit, "intersections aborted early by the minimum-support bound")
	mIntersectOps  = obsv.Default.Counter(mnIntersectOps, "tid-set kernel operations performed (element comparisons or words)")
	mTidlistBytes  = obsv.Default.Counter(mnTidlistBytes, "tid-set bytes touched by intersections")
	mClasses       = obsv.Default.Counter(mnClasses, "top-level equivalence classes mined")
	mDiffsetsUsed  = obsv.Default.Counter(mnDiffsetsUsed, "sub-classes switched to the dEclat diffset representation")
)

// tidBytes is the in-memory size of one sparse tid-list element.
const tidBytes = 4 // sizeof(itemset.TID) — int32

// flushStats publishes the delta between two snapshots of a run's Stats
// to the global counters (prev is updated to cur's values).
func flushStats(prev, cur *Stats) {
	mIntersections.Add(cur.Intersections - prev.Intersections)
	mShortCircuit.Add(cur.ShortCircuited - prev.ShortCircuited)
	mIntersectOps.Add(cur.IntersectOps - prev.IntersectOps)
	mTidlistBytes.Add((cur.Kernel.SparseOps()-prev.Kernel.SparseOps())*tidBytes +
		(cur.Kernel.WordsTouched()-prev.Kernel.WordsTouched())*8 +
		(cur.Kernel.RoaringElemOps()-prev.Kernel.RoaringElemOps())*2 +
		(cur.Kernel.RoaringWords()-prev.Kernel.RoaringWords())*8)
	mDiffsetsUsed.Add(cur.DiffsetClasses - prev.DiffsetClasses)
	cur.Kernel.Flush(&prev.Kernel)
}

// Options selects algorithm variants used by the ablation benchmarks.
// The zero value is the paper's algorithm.
type Options struct {
	// NoShortCircuit disables the minimum-support short-circuiting of
	// tid-list intersections (section 5.3).
	NoShortCircuit bool
	// RoundRobinSchedule replaces the greedy weighted class scheduling
	// (section 5.2.1) with naive round-robin dealing.
	RoundRobinSchedule bool
	// SupportWeightedSchedule replaces the C(s,2) class weight with a
	// support-aware estimate of the intersection work — sum over member
	// pairs of min(support_i, support_j) — the refinement the paper
	// suggests in section 5.2.1 ("We could also make use of the average
	// support of the itemsets within a class to get better weight
	// factors").
	SupportWeightedSchedule bool
	// ExternalTransform performs the vertical transformation through
	// bounded disk buffers instead of anonymous memory-mapped regions —
	// the improvement the paper reports as in progress ("we are currently
	// implementing an external memory transformation, keeping only small
	// buffers in main memory"). It trades one extra structured pass over
	// the tid-list data for immunity to paging, so it wins exactly when
	// the mapped regions would overflow host memory.
	ExternalTransform bool
	// Representation selects the tid-set representation the class
	// recursion mines through: ReprAuto (the zero value) decides per
	// equivalence class by density, ReprSparse forces the paper's sorted
	// slice with the scalar merge kernel, ReprBitset forces the
	// word-packed dense kernel, ReprRoaring forces the containerized
	// compressed kernels.
	Representation tidlist.Repr
	// NoDiffsets disables the dEclat diffset transition: every sub-class
	// carries full tid-lists even past the density break-even where
	// diffsets become the smaller encoding. The zero value (diffsets on)
	// is the default; the ablation benchmarks flip this to isolate the
	// transition's effect.
	NoDiffsets bool
	// DiffsetBreakEven overrides the density threshold at which a
	// sub-class switches to diffsets (see DefaultDiffsetBreakEven).
	// Zero means the measured default; values > 1 never switch (useful
	// in tests that pin the tid-list path without the NoDiffsets knob).
	DiffsetBreakEven float64
	// Workers is the number of real goroutines MineParallelLocal mines
	// with (0 means runtime.GOMAXPROCS(0)). MineMaximalOpts and
	// MineClosedOpts honor it too (0 means 1 there — their historical
	// sequential default); the simulated-cluster entry points ignore it.
	Workers int
	// TopK, when > 0, mines the k highest-support itemsets instead of a
	// fixed-threshold collection: the engine's support heap adaptively
	// raises the effective minimum support as itemsets are found, and
	// the result is truncated to k by support (ties broken
	// lexicographically). Output is byte-identical to a full mine at the
	// same floor followed by Result.TruncateTopK. Honored by the local
	// all-frequent entry points (MineSequentialOpts, MineParallelLocal,
	// MineVerticalLocal); the variant and cluster forms ignore it.
	TopK int
	// MustContain, when non-empty, restricts mining to itemsets
	// containing every listed item (a targeted query): equivalence
	// classes whose prefix cannot contain the items are skipped
	// entirely, and emissions are filtered. Output equals post-filtering
	// a full mine. Honored by the same entry points as TopK.
	MustContain []itemset.Item
}

// Stats counts the work of a sequential or shared-memory-parallel run
// (the simulated parallel forms report through cluster.Report instead).
type Stats struct {
	Scans          int
	Intersections  int64 // tid-set intersections attempted
	ShortCircuited int64 // intersections aborted by the support bound
	// IntersectOps counts kernel operations: element comparisons for the
	// sparse merge kernel, 64-bit words touched for the dense kernel (the
	// per-kind split is in Kernel).
	IntersectOps int64
	Classes      int // top-level equivalence classes mined
	// Workers is the number of mining goroutines a MineParallelLocal run
	// used (1 for sequential runs).
	Workers int
	// Steals counts the work-stealing events of a MineParallelLocal run
	// (always 0 for sequential runs).
	Steals int64
	// DiffsetClasses counts the sub-classes the recursion switched to
	// the dEclat diffset representation (0 when Options.NoDiffsets is
	// set or nothing crossed the density break-even).
	DiffsetClasses int64
	// EffectiveMinSup is the minimum support the run ended at: the
	// caller's floor, raised by the top-k support heap when Options.TopK
	// is set (equal to the floor otherwise).
	EffectiveMinSup int
	// Kernel is the representation-dispatch accounting of the run: how
	// many intersections went to the sparse, dense, mixed and roaring
	// kernels, their per-kind work units, and representation
	// conversions.
	Kernel tidlist.KernelStats
}

// merge folds a worker's counters into the run totals. Scans, Classes,
// Workers and Steals are run-level figures owned by the coordinator and
// are deliberately not summed.
func (s *Stats) merge(w *Stats) {
	s.Intersections += w.Intersections
	s.ShortCircuited += w.ShortCircuited
	s.IntersectOps += w.IntersectOps
	s.DiffsetClasses += w.DiffsetClasses
	s.Kernel.Add(w.Kernel)
}

// member is one itemset of the current level within a class, with its
// tid-set (sparse or dense, per the class's chosen representation).
type member struct {
	set  itemset.Itemset
	tids tidlist.Set
}

// computeFrequent is figure 3: mine everything derivable from one
// equivalence class. members must be lexicographically sorted and share a
// common prefix of len(set)-1 items. emit is called for every frequent
// itemset found (sets of size len(members[0].set)+1 and deeper).
//
// Cancellation is checked once per sub-class (each iteration of the
// i-loop opens the class prefixed by members[i].set), never inside the
// intersection inner loop, so an expired ctx stops the search promptly
// without per-intersection overhead. On cancellation the walk simply
// unwinds; the caller is responsible for reporting ctx.Err().
//
// ar is the caller's scratch arena; a sub-class's member slice and
// surviving tid-set clones are carved from it and released when the
// recursion unwinds past the sub-class, so the steady state allocates
// nothing per itemset (ar may be nil: heap allocation, same results).
//
// th is the pruning bound, re-read once per sub-class so a top-k run
// picks up threshold raises promptly; with a fixed threshold the reads
// are constant and the kernel call sequence is identical to mining
// against a plain minsup.
func computeFrequent(ctx context.Context, members []member, th *threshold, st *Stats, opts Options, ar *arena, emit Emitter) {
	// Pairing member i with each j > i yields the class prefixed by
	// members[i].set, so the recursion needs no separate partitioning
	// pass: the i-loop enumerates the next level's classes directly.
	//
	// scratch is whatever set the last kernel call returned; the dispatch
	// functions recover its storage when the representation matches, so
	// the buffer-reuse discipline of the sparse-only loop survives the
	// abstraction.
	breakEven := diffsetBreakEven(opts)
	var span int
	if breakEven > 0 {
		span = classSpan(members)
	}
	var scratch tidlist.Set
	for i := 0; i < len(members)-1; i++ {
		if ctx.Err() != nil {
			return
		}
		minsup := th.current()
		if breakEven > 0 && diffsetWins(members, i, span, breakEven) {
			st.DiffsetClasses++
			diffTransition(ctx, members, i, th, st, ar, nil, emit)
			continue
		}
		mark := ar.mark()
		next := ar.nextMembers(len(members) - 1 - i)
		for j := i + 1; j < len(members); j++ {
			st.Intersections++
			var tids tidlist.Set
			var ops int
			var ok bool
			if opts.NoShortCircuit {
				tids, ops = tidlist.IntersectSets(scratch, members[i].tids, members[j].tids, &st.Kernel)
				ok = tids.Support() >= minsup
			} else {
				tids, ops, ok = tidlist.IntersectSetsSC(scratch, members[i].tids, members[j].tids, minsup, &st.Kernel)
			}
			st.IntersectOps += int64(ops)
			scratch = tids
			if !ok {
				st.ShortCircuited++
				continue
			}
			next = append(next, member{
				set:  members[i].set.Join(members[j].set),
				tids: ar.cloneSet(tids),
			})
		}
		for _, m := range next {
			emit(m.set, m.tids.Support())
		}
		if len(next) > 1 {
			computeFrequent(ctx, next, th, st, opts, ar, emit)
		}
		ar.release(mark)
	}
}

// DefaultDiffsetBreakEven is the measured density break-even of the
// dEclat diffset transition: when the estimated support retention of a
// sub-class's children (partner density over the class span) reaches
// this fraction, d(PXY) = t(PX) \ t(PY) is smaller than t(PXY) and the
// difference kernels touch fewer bytes per level than the intersection
// kernels at the same support. The 0.5 crossover follows directly from
// |d(PXY)| = sup(PX) - sup(PXY): the diffset is the smaller encoding
// exactly when a child keeps more than half its parent's tids, and the
// kernel measurements in BENCH_kernels.json (see EXPERIMENTS.md) put
// the measured ns/op crossing at the same grid point — diff beats
// intersect from the 50% density row down to ~12.5% only on bytes
// touched in deeper levels, and on both bytes and first-transition cost
// at ≥ 50%.
const DefaultDiffsetBreakEven = 0.5

// diffsetBreakEven resolves the run's diffset-transition threshold:
// 0 disables the transition entirely.
func diffsetBreakEven(opts Options) float64 {
	if opts.NoDiffsets {
		return 0
	}
	if opts.DiffsetBreakEven > 0 {
		return opts.DiffsetBreakEven
	}
	return DefaultDiffsetBreakEven
}

// classSpan is the tid span covered by a class's members — the density
// denominator shared by the representation policy and the diffset gate.
func classSpan(members []member) int {
	lo, hi, any := itemset.TID(0), itemset.TID(0), false
	for _, m := range members {
		l, h, ok := tidlist.Bounds(m.tids)
		if !ok {
			continue
		}
		if !any || l < lo {
			lo = l
		}
		if !any || h > hi {
			hi = h
		}
		any = true
	}
	if !any {
		return 0
	}
	return int(hi-lo) + 1
}

// diffsetWins estimates whether the children of members[i] will retain
// enough of their parent's support for diffsets to be the smaller
// encoding: under independence a child PXY keeps a fraction of t(PX)
// close to the partner's density sup(PY)/span, so the partners' average
// density is the retention estimate compared against the break-even.
func diffsetWins(members []member, i, span int, breakEven float64) bool {
	if span <= 0 {
		return false
	}
	sum := 0
	for j := i + 1; j < len(members); j++ {
		sum += members[j].tids.Support()
	}
	n := len(members) - 1 - i
	return float64(sum) >= breakEven*float64(span)*float64(n)
}

// diffTransition opens the sub-class prefixed by members[i] in diffset
// form — the dEclat first transition: each child carries
// d(PXY) = t(PX) \ t(PY) with sup(PXY) = sup(PX) - |d(PXY)|, and the
// recursion below continues in computeFrequentDiffCtx. The emitted
// (itemset, support) pairs are identical to the tid-list path's (tested
// property); only the intermediate encoding differs.
//
// lb, when non-nil, accumulates the bytes of every kept diffset — the
// DiffStats.ListBytes figure of the pure-diffset policy. The automatic
// transition inside computeFrequent passes nil (Stats has no such
// figure, keeping its counters exactly as before the engine refactor).
func diffTransition(ctx context.Context, members []member, i int, th *threshold, st *Stats, ar *arena, lb *int64, emit Emitter) {
	minsup := th.current()
	mark := ar.mark()
	defer ar.release(mark)
	var scratch tidlist.Set
	next := make([]dmember, 0, len(members)-1-i)
	supI := members[i].tids.Support()
	for j := i + 1; j < len(members); j++ {
		st.Intersections++
		diffs, ops := tidlist.DiffSets(scratch, members[i].tids, members[j].tids, &st.Kernel)
		st.IntersectOps += int64(ops)
		scratch = diffs
		sup := supI - diffs.Support()
		if sup < minsup {
			continue
		}
		kept := ar.cloneSet(diffs)
		if lb != nil {
			*lb += kept.SizeBytes()
		}
		next = append(next, dmember{
			set:   members[i].set.Join(members[j].set),
			diffs: kept,
			sup:   sup,
		})
	}
	for _, m := range next {
		emit(m.set, m.sup)
	}
	if len(next) > 1 {
		computeFrequentDiffCtx(ctx, next, th, st, ar, lb, emit)
	}
}

// computeFrequentDiffCtx is computeFrequent in diffset form: members
// share a common prefix and carry diffsets relative to their shared
// parent, with d(PXY) = d(PY) \ d(PX) and
// sup(PXY) = sup(PX) - |d(PXY)|. There is no §5.3 short-circuit here —
// the support is known only after the full difference — but the sets
// shrink level over level instead of the supports, which is exactly the
// trade the break-even gate prices.
func computeFrequentDiffCtx(ctx context.Context, members []dmember, th *threshold, st *Stats, ar *arena, lb *int64, emit Emitter) {
	var scratch tidlist.Set
	for i := 0; i < len(members)-1; i++ {
		if ctx.Err() != nil {
			return
		}
		minsup := th.current()
		mark := ar.mark()
		next := make([]dmember, 0, len(members)-1-i)
		for j := i + 1; j < len(members); j++ {
			st.Intersections++
			diffs, ops := tidlist.DiffSets(scratch, members[j].diffs, members[i].diffs, &st.Kernel)
			st.IntersectOps += int64(ops)
			scratch = diffs
			sup := members[i].sup - diffs.Support()
			if sup < minsup {
				continue
			}
			kept := ar.cloneSet(diffs)
			if lb != nil {
				*lb += kept.SizeBytes()
			}
			next = append(next, dmember{
				set:   members[i].set.Join(members[j].set),
				diffs: kept,
				sup:   sup,
			})
		}
		for _, m := range next {
			emit(m.set, m.sup)
		}
		if len(next) > 1 {
			computeFrequentDiffCtx(ctx, next, th, st, ar, lb, emit)
		}
		ar.release(mark)
	}
}

// classMembers assembles the sorted member list of one L2 equivalence
// class from the global pair tid-list map, then applies the per-class
// representation policy: with ReprAuto the class density (average member
// support over the class's tid span) decides between sparse and bitset,
// so dense classes get the word kernel and sparse ones keep the merge
// loop — the decision is as localized as the class computation itself.
func classMembers(class *eqclass.Class, lists map[tidlist.Pair]tidlist.List, repr tidlist.Repr, ks *tidlist.KernelStats) []member {
	out := make([]member, 0, len(class.Members))
	for _, set := range class.Members {
		out = append(out, member{set: set, tids: lists[tidlist.Pair{A: set[0], B: set[1]}]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].set.Less(out[j].set) })
	applyClassRepr(out, repr, ks)
	return out
}

// applyClassRepr resolves repr against the class's density and, when the
// outcome is one of the packed encodings (bitset or roaring), re-encodes
// every member in place.
func applyClassRepr(members []member, repr tidlist.Repr, ks *tidlist.KernelStats) {
	chosen := repr
	if repr == tidlist.ReprAuto {
		if len(members) == 0 {
			return
		}
		span := classSpan(members)
		if span == 0 {
			return
		}
		sum := 0
		for _, m := range members {
			sum += m.tids.Support()
		}
		chosen = tidlist.ChooseRepr(repr, sum/len(members), span)
	}
	switch chosen {
	case tidlist.ReprBitset, tidlist.ReprRoaring:
		for i := range members {
			members[i].tids = tidlist.Convert(members[i].tids, chosen, ks)
		}
	}
}

// MineSequential runs Eclat on a single processor: one pass for global
// item and 2-itemset counts, one pass to invert the database into
// per-pair tid-lists, then in-memory class-by-class mining. Like the
// parallel form it reads the horizontal data twice; the third "scan" of
// the paper (reading the inverted lists back from disk) has no in-memory
// counterpart here.
//
// This is the convenience form for tests, benchmarks and experiments: no
// cancellation (background context) and the paper's default options. The
// canonical context-first entry point is MineSequentialOpts.
func MineSequential(d *db.Database, minsup int) (*mining.Result, Stats) {
	res, st, _ := MineSequentialOpts(context.Background(), d, minsup, Options{})
	return res, st
}

// MineSequentialOpts is the canonical context-first sequential entry
// point: MineSequential with explicit variant options and cooperative
// cancellation. ctx is consulted between equivalence classes (see
// computeFrequent), so a cancel or deadline stops the mine promptly
// without slowing the intersection inner loop. On cancellation it
// returns (nil, partial stats, ctx.Err()).
func MineSequentialOpts(ctx context.Context, d *db.Database, minsup int, opts Options) (*mining.Result, Stats, error) {
	return mineSequential(ctx, d, minsup, opts, &arena{})
}

// mineSequential is MineSequentialOpts with an explicit (possibly nil)
// scratch arena, the knob the allocation benchmarks use to measure the
// arena's effect.
func mineSequential(ctx context.Context, d *db.Database, minsup int, opts Options, ar *arena) (*mining.Result, Stats, error) {
	if minsup < 1 {
		minsup = 1
	}
	var st Stats
	st.Workers = 1
	v := buildVertical(ctx, d, minsup, &st, opts)
	eng := newEngine(v, minsup, opts, policyAll{})
	if _, err := eng.run(ctx, 1, &st, ar, v.res.Add); err != nil {
		return nil, st, err
	}
	eng.finish(v.res, &st)
	return v.res, st, nil
}

// vertical is the output of the initialization and transformation phases
// shared by MineSequentialOpts and MineParallelLocal: the result seeded
// with L1 and L2, the pruned equivalence classes, and the global per-pair
// tid-lists the asynchronous phase mines from.
type vertical struct {
	res     *mining.Result
	classes []eqclass.Class
	lists   map[tidlist.Pair]tidlist.List
	// roots, when non-nil, holds pre-assembled member lists (one per
	// class) instead of pair tid-lists — the CHARM root level, whose
	// members are frequent singletons rather than L2 pairs.
	roots [][]member
	// ooc, when non-nil, marks a budgeted out-of-core run: lists is nil
	// and member lists are re-derived per class inside the class's
	// residency window (see ooc.go).
	ooc *oocState
}

// members assembles the sorted, representation-resolved member list of
// class ci — the one entry every engine driver fetches class operands
// through.
func (v *vertical) members(ci int, repr tidlist.Repr, ks *tidlist.KernelStats) []member {
	if v.roots != nil {
		m := v.roots[ci]
		applyClassRepr(m, repr, ks)
		return m
	}
	if v.ooc != nil {
		return v.ooc.classMembers(&v.classes[ci], repr, ks)
	}
	return classMembers(&v.classes[ci], v.lists, repr, ks)
}

// buildVertical runs the one-scan initialization (global 1- and 2-itemset
// counts) and the vertical transformation (per-pair tid-lists), recording
// the two phases on the ctx trace and charging st.Scans/st.Classes. A
// targeted query (opts.MustContain) filters the seeded L1/L2 itemsets and
// drops the equivalence classes whose prefix cannot contain the items —
// their tid-lists are never built.
func buildVertical(ctx context.Context, d *db.Database, minsup int, st *Stats, opts Options) *vertical {
	must := canonMust(opts.MustContain)
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	tr := obsv.TraceFrom(ctx)

	// Initialization: count 1-itemsets (for the result; Eclat itself never
	// needs them) and all 2-itemsets via the triangular array.
	sp := tr.Start("initialization")
	st.Scans++
	itemCounts := make([]int, d.NumItems)
	pc := paircount.New(d.NumItems)
	for _, tx := range d.Transactions {
		for _, it := range tx.Items {
			itemCounts[it]++
		}
		pc.AddTransaction(tx.Items)
	}
	for it, c := range itemCounts {
		if c >= minsup && (must == nil || containsAll(itemset.Itemset{itemset.Item(it)}, must)) {
			res.Add(itemset.Itemset{itemset.Item(it)}, c)
		}
	}
	freqPairs := pc.Frequent(minsup)
	l2 := make([]itemset.Itemset, 0, len(freqPairs))
	for _, fp := range freqPairs {
		set := fp.Pair.Itemset()
		if must == nil || containsAll(set, must) {
			res.Add(set, fp.Count)
		}
		l2 = append(l2, set)
	}
	sp.End()

	// Transformation: build tid-lists for every 2-itemset in a class with
	// at least two members (singleton classes generate no candidates).
	sp = tr.Start("transformation")
	classes := filterClasses(eqclass.PruneSingletons(eqclass.Partition(l2)), must)
	st.Classes = len(classes)
	want := make(map[tidlist.Pair]bool)
	for _, c := range classes {
		for _, m := range c.Members {
			want[tidlist.Pair{A: m[0], B: m[1]}] = true
		}
	}
	st.Scans++
	lists := tidlist.BuildPairs(d, want)
	sp.End()

	return &vertical{res: res, classes: classes, lists: lists}
}
