package eclat

import (
	"context"
	"runtime"

	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obsv"
	"repro/internal/tidlist"
)

// VerticalInput is a dataset already in the paper's vertical layout: one
// tid-set per item, as served zero-copy by the persistent store
// (internal/store) or memoized by the service registry. Mining from it
// skips the horizontal scans entirely — the property the store exists to
// buy — and the sets are treated as immutable operands throughout (a
// mapped view must never be written, so they are never used as kernel
// scratch).
type VerticalInput struct {
	// NumTransactions is |D|, needed for percentage supports.
	NumTransactions int
	// Items holds the tid-set of each item (index = item id); nil entries
	// are items with no transactions.
	Items []tidlist.Set
	// Residency, when non-nil, switches the mine to the budgeted
	// out-of-core protocol: classes are ordered by bundle locality, pair
	// tid-lists are re-derived per class instead of retained for the
	// whole run, and every class mine is bracketed by Acquire/Release so
	// the store can evict dead segments. Output bytes are identical to
	// the in-core path at every budget and worker count.
	Residency Residency
}

// MineVerticalLocal mines a vertical dataset on this host: L1 is read
// off the per-item supports, L2 comes from pairwise short-circuited
// intersections of the frequent items' tid-sets, and the class recursion
// then proceeds exactly as in MineSequential/MineParallelLocal (whose
// class-mining cores it shares). The result is byte-identical to mining
// the corresponding horizontal database with the same minsup and
// options: both paths produce the same L1/L2 (a pair is frequent in the
// intersection iff its co-occurrence count passes minsup) and the same
// sorted pair tid-lists, and Result.Sort imposes the canonical order.
//
// Stats.Scans is always 0 — no horizontal pass happens — which is the
// figure restart-without-rebuild tests assert on. opts.Workers > 1 mines
// classes with the work-stealing pool; ≤ 1 mines sequentially.
func MineVerticalLocal(ctx context.Context, in VerticalInput, minsup int, opts Options) (*mining.Result, Stats, error) {
	if minsup < 1 {
		minsup = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var st Stats
	st.Workers = workers
	if in.Residency != nil {
		// Done on every exit path — error, cancellation, success — so a
		// cut-short mine never leaves segments accounted resident.
		defer in.Residency.Done()
	}
	v := buildVerticalFromSets(ctx, in, minsup, &st, opts)
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	eng := newEngine(v, minsup, opts, policyAll{})
	if _, err := eng.run(ctx, workers, &st, &arena{}, v.res.Add); err != nil {
		return nil, st, err
	}
	eng.finish(v.res, &st)
	return v.res, st, nil
}

// buildVerticalFromSets is buildVertical's counterpart for data that is
// already vertical: the same (res, classes, lists) bundle, built from
// per-item tid-sets instead of horizontal scans. Everything — L1, L2,
// class partitioning — happens under the "initialization" span; there is
// no transformation phase because the data arrives transformed, so
// tracing-based tests can assert the phase never ran. Targeted queries
// (opts.MustContain) filter the seeded L1/L2 and the classes exactly as
// buildVertical does; the pairwise L2 intersections still all run, so
// the work counters of the init phase stay query-independent.
func buildVerticalFromSets(ctx context.Context, in VerticalInput, minsup int, st *Stats, opts Options) *vertical {
	must := canonMust(opts.MustContain)
	res := &mining.Result{MinSup: minsup, NumTransactions: in.NumTransactions}
	tr := obsv.TraceFrom(ctx)
	sp := tr.Start("initialization")
	defer sp.End()

	frequent := make([]int, 0, len(in.Items))
	for it, s := range in.Items {
		if s == nil {
			continue
		}
		if c := s.Support(); c >= minsup {
			if must == nil || containsAll(itemset.Itemset{itemset.Item(it)}, must) {
				res.Add(itemset.Itemset{itemset.Item(it)}, c)
			}
			frequent = append(frequent, it)
		}
	}

	// L2: pairwise intersections over frequent items, short-circuited on
	// minsup. Aborted results live only in scratch; surviving pair lists
	// are copied out as sorted sparse lists — the same bytes BuildPairs
	// produces on the horizontal path, since intersection preserves tid
	// order. Under a residency budget the counting pass runs identically
	// (so the work counters stay equal to the in-core path) but the pair
	// lists are not retained: they are re-derived per class inside the
	// class's residency window instead.
	ooc := in.Residency != nil
	var scratch tidlist.Set
	var lists map[tidlist.Pair]tidlist.List
	if !ooc {
		lists = make(map[tidlist.Pair]tidlist.List)
	}
	var l2 []itemset.Itemset
	for i := 0; i < len(frequent) && ctx.Err() == nil; i++ {
		a := frequent[i]
		for j := i + 1; j < len(frequent); j++ {
			b := frequent[j]
			st.Intersections++
			tids, ops, ok := tidlist.IntersectSetsSC(scratch, in.Items[a], in.Items[b], minsup, &st.Kernel)
			st.IntersectOps += int64(ops)
			scratch = tids
			if !ok {
				st.ShortCircuited++
				continue
			}
			set := itemset.Itemset{itemset.Item(a), itemset.Item(b)}
			if must == nil || containsAll(set, must) {
				res.Add(set, tids.Support())
			}
			l2 = append(l2, set)
			if !ooc {
				lists[tidlist.Pair{A: itemset.Item(a), B: itemset.Item(b)}] = append(tidlist.List(nil), tidlist.TIDsOf(tids)...)
			}
		}
	}

	classes := filterClasses(eqclass.PruneSingletons(eqclass.Partition(l2)), must)
	st.Classes = len(classes)
	if ooc {
		// Store-aware scheduling: run classes in bundle-segment order
		// (the canonical result sort makes class order invisible in the
		// output), then hand the per-class item needs to the residency
		// layer. Indices in the plan are final class indices.
		orderClassesByLocality(classes, in.Residency)
		planResidency(classes, in.Residency)
		return &vertical{res: res, classes: classes,
			ooc: &oocState{items: in.Items, minsup: minsup, res: in.Residency}}
	}
	// Drop pair lists no surviving class needs (singleton classes generate
	// no candidates), mirroring buildVertical's want-set discipline.
	want := make(map[tidlist.Pair]bool, len(lists))
	for _, c := range classes {
		for _, m := range c.Members {
			want[tidlist.Pair{A: m[0], B: m[1]}] = true
		}
	}
	for p := range lists {
		if !want[p] {
			delete(lists, p)
		}
	}
	return &vertical{res: res, classes: classes, lists: lists}
}
