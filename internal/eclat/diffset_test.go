package eclat

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/testutil"
)

func TestDiffsetsMatchStandardEclat(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 15; trial++ {
		d := testutil.RandomDB(rng, 120+trial*25, 12, 7)
		for _, minsup := range []int{2, 4, 8} {
			want, _ := MineSequential(d, minsup)
			got, _, _ := MineSequentialDiffsetsOpts(context.Background(), d, minsup, Options{})
			if !mining.Equal(got, want) {
				t.Fatalf("trial %d minsup %d:\n%s", trial, minsup, mining.Diff(got, want))
			}
		}
	}
}

func TestDiffsetsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	d := testutil.RandomDB(rng, 150, 10, 6)
	got, _, _ := MineSequentialDiffsetsOpts(context.Background(), d, 4, Options{})
	want := testutil.BruteForce(d, 4)
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
}

func TestDiffsetsOnGeneratedData(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(3000))
	minsup := d.MinSupCount(0.5)
	want, _ := MineSequential(d, minsup)
	got, st, _ := MineSequentialDiffsetsOpts(context.Background(), d, minsup, Options{})
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
	if st.Scans != 2 || st.Intersections == 0 {
		t.Fatalf("stats look wrong: %+v", st)
	}
}

func TestDiffsetsShrinkDeepLists(t *testing.T) {
	// On a database with a strong embedded pattern, the diffsets
	// materialized below level 3 must be much smaller than the
	// corresponding tid-lists (the dEclat claim). Measure the bytes of
	// intermediate lists both algorithms materialize.
	d := &db.Database{NumItems: 12}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		// 90% of transactions contain the whole pattern {0..5}; noise on
		// top.
		var items []itemset.Item
		if rng.Float64() < 0.9 {
			items = append(items, 0, 1, 2, 3, 4, 5)
		}
		for n := rng.Intn(4); n > 0; n-- {
			items = append(items, itemset.Item(6+rng.Intn(6)))
		}
		if len(items) == 0 {
			items = append(items, 6)
		}
		d.Transactions = append(d.Transactions, db.Transaction{
			TID: itemset.TID(i), Items: itemset.New(items...),
		})
	}
	// Threshold above the pattern-noise cross pairs: the recursion then
	// runs inside the dense pattern, the regime where diffsets shine
	// (dEclat can lose at the first transition on sparse mixtures — a
	// trade-off Zaki's own follow-up reports).
	minsup := 200

	want, _ := MineSequential(d, minsup)
	got, st, _ := MineSequentialDiffsetsOpts(context.Background(), d, minsup, Options{})
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}

	// Standard Eclat's intermediate lists carry nearly the full pattern
	// support at every level (tid-list bytes ~ support per k>=3 itemset);
	// diffsets carry only the shrinkage.
	var tidBytes int64
	for _, f := range want.Itemsets {
		if f.Set.K() >= 3 {
			tidBytes += 4 * int64(f.Support)
		}
	}
	if st.ListBytes >= tidBytes {
		t.Fatalf("diffset bytes (%d) should be far below tid-list bytes (%d) on dense pattern data",
			st.ListBytes, tidBytes)
	}
}

func TestDiffsetsEmptyDatabase(t *testing.T) {
	res, _, _ := MineSequentialDiffsetsOpts(context.Background(), &db.Database{NumItems: 3}, 1, Options{})
	if res.Len() != 0 {
		t.Fatal("empty database should mine nothing")
	}
}
