package eclat

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/mining"
	"repro/internal/testutil"
	"repro/internal/tidlist"
)

// verticalSets builds the per-item tid-sets of d in the requested
// representation — the shape the persistent store and the service
// registry hand to MineVerticalLocal.
func verticalSets(d *db.Database, repr tidlist.Repr) []tidlist.Set {
	lists := make([]tidlist.List, d.NumItems)
	for _, tx := range d.Transactions {
		for _, it := range tx.Items {
			lists[it] = append(lists[it], tx.TID)
		}
	}
	sets := make([]tidlist.Set, d.NumItems)
	for it, l := range lists {
		if len(l) == 0 {
			continue
		}
		if repr == tidlist.ReprBitset {
			var bs tidlist.Bitset
			bs.SetTIDs(l)
			sets[it] = &bs
		} else {
			sets[it] = l
		}
	}
	return sets
}

func resultBytes(t *testing.T, res *mining.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := mining.Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMineVerticalLocalMatchesHorizontal is the differential contract of
// the vertical path: for every input representation, mining
// representation and worker count, MineVerticalLocal's serialized result
// is byte-identical to the horizontal sequential miner's, and it never
// scans horizontal data.
func TestMineVerticalLocalMatchesHorizontal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, numTx := range []int{60, 250} {
		d := testutil.RandomDB(rng, numTx, 30, 8)
		minsup := 3
		want, _ := MineSequential(d, minsup)
		wantBytes := resultBytes(t, want)

		for _, inputRepr := range []tidlist.Repr{tidlist.ReprSparse, tidlist.ReprBitset} {
			in := VerticalInput{NumTransactions: d.Len(), Items: verticalSets(d, inputRepr)}
			for _, mineRepr := range []tidlist.Repr{tidlist.ReprAuto, tidlist.ReprSparse, tidlist.ReprBitset} {
				for _, workers := range []int{1, 2, 4} {
					res, st, err := MineVerticalLocal(context.Background(), in, minsup,
						Options{Representation: mineRepr, Workers: workers})
					if err != nil {
						t.Fatalf("numTx=%d input=%v repr=%v workers=%d: %v",
							numTx, inputRepr, mineRepr, workers, err)
					}
					if got := resultBytes(t, res); !bytes.Equal(got, wantBytes) {
						t.Fatalf("numTx=%d input=%v repr=%v workers=%d: vertical result differs from horizontal",
							numTx, inputRepr, mineRepr, workers)
					}
					if st.Scans != 0 {
						t.Fatalf("vertical mine reported %d horizontal scans", st.Scans)
					}
					if st.Workers != workers {
						t.Fatalf("st.Workers = %d, want %d", st.Workers, workers)
					}
				}
			}
		}
	}
}

// TestMineVerticalLocalCancel proves the vertical path honors ctx during
// the pairwise L2 build and the class recursion.
func TestMineVerticalLocalCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := testutil.RandomDB(rng, 200, 25, 8)
	in := VerticalInput{NumTransactions: d.Len(), Items: verticalSets(d, tidlist.ReprSparse)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := MineVerticalLocal(ctx, in, 2, Options{Workers: 1}); err == nil {
		t.Fatal("canceled vertical mine returned nil error")
	}
}

// TestMineVerticalLocalEmpty covers the degenerate inputs a store can
// legitimately serve: no items frequent, and an empty dataset.
func TestMineVerticalLocalEmpty(t *testing.T) {
	res, st, err := MineVerticalLocal(context.Background(),
		VerticalInput{NumTransactions: 4, Items: []tidlist.Set{tidlist.List{0}, nil, tidlist.List{1}}},
		3, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Itemsets) != 0 {
		t.Fatalf("infrequent input yielded %v", res.Itemsets)
	}
	if st.Classes != 0 {
		t.Fatalf("infrequent input yielded %d classes", st.Classes)
	}
	res, _, err = MineVerticalLocal(context.Background(), VerticalInput{}, 1, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Itemsets) != 0 {
		t.Fatalf("empty input yielded %v", res.Itemsets)
	}
}
