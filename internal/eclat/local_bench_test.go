package eclat

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/tidlist"
)

// benchTx sizes the T10.I6-style benchmark dataset (generation is
// deterministic in the seed, so every sub-benchmark mines the same data).
const benchTx = 20000

func BenchmarkMineParallelLocal(b *testing.B) {
	d := gen.MustGenerate(gen.T10I6(benchTx))
	minsup := d.MinSupCount(0.25)
	for _, repr := range []tidlist.Repr{tidlist.ReprSparse, tidlist.ReprBitset} {
		for _, workers := range []int{0, 1, 2, 4, 8} {
			name := fmt.Sprintf("repr=%s/workers=%d", repr, workers)
			if workers == 0 {
				name = fmt.Sprintf("repr=%s/workers=seq", repr)
			}
			b.Run(name, func(b *testing.B) {
				opts := Options{Representation: repr, Workers: workers}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					if workers == 0 {
						_, _, err = MineSequentialOpts(context.Background(), d, minsup, opts)
					} else {
						_, _, err = MineParallelLocal(context.Background(), d, minsup, opts)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMineVariants is the engine-scaling grid for the policies that
// gained multicore from the class-task engine: maximal and closed at
// 1/2/4 workers (workers=1 is the engine's sequential driver — the
// pre-engine baseline shape), plus a top-k row showing what the adaptive
// threshold saves against mining everything at the same floor.
func BenchmarkMineVariants(b *testing.B) {
	d := gen.MustGenerate(gen.T10I6(benchTx))
	minsup := d.MinSupCount(0.25)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("variant=maximal/workers=%d", workers), func(b *testing.B) {
			opts := Options{Workers: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := MineMaximalOpts(context.Background(), d, minsup, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("variant=closed/workers=%d", workers), func(b *testing.B) {
			opts := Options{Workers: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := MineClosedOpts(context.Background(), d, minsup, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("variant=topk100/workers=1", func(b *testing.B) {
		opts := Options{TopK: 100}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := MineSequentialOpts(context.Background(), d, minsup, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMineSequentialAlloc measures the scratch arena's effect on the
// sequential recursion: arena=off is the pre-arena behaviour (every
// sub-class member slice and surviving tid-set clone hits the heap),
// arena=on the stack-disciplined reuse path.
func BenchmarkMineSequentialAlloc(b *testing.B) {
	d := gen.MustGenerate(gen.T10I6(benchTx))
	minsup := d.MinSupCount(0.25)
	for _, mode := range []string{"off", "on"} {
		b.Run("arena="+mode, func(b *testing.B) {
			var ar *arena
			if mode == "on" {
				ar = &arena{}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := mineSequential(context.Background(), d, minsup, Options{}, ar); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
