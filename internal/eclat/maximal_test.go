package eclat

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/testutil"
)

// oracleMaximal derives the maximal sets from a full mining result: those
// with no frequent strict superset.
func oracleMaximal(full *mining.Result) *mining.Result {
	out := &mining.Result{MinSup: full.MinSup, NumTransactions: full.NumTransactions}
	for _, f := range full.Itemsets {
		maximal := true
		for _, g := range full.Itemsets {
			if g.Set.K() > f.Set.K() && f.Set.SubsetOf(g.Set) {
				maximal = false
				break
			}
		}
		if maximal {
			out.Add(f.Set, f.Support)
		}
	}
	out.Sort()
	return out
}

func TestMaximalMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 15; trial++ {
		d := testutil.RandomDB(rng, 120+trial*20, 12, 6)
		for _, minsup := range []int{3, 6, 12} {
			full, _ := MineSequential(d, minsup)
			want := oracleMaximal(full)
			got, _, _ := MineMaximalOpts(context.Background(), d, minsup, Options{})
			if !mining.Equal(got, want) {
				t.Fatalf("trial %d minsup %d:\n%s", trial, minsup, mining.Diff(got, want))
			}
		}
	}
}

func TestMaximalOnGeneratedData(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(2000))
	minsup := d.MinSupCount(1.0)
	full, fullStats := MineSequential(d, minsup)
	want := oracleMaximal(full)
	got, st, _ := MineMaximalOpts(context.Background(), d, minsup, Options{})
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
	if got.Len() >= full.Len() {
		t.Fatalf("maximal sets (%d) should be far fewer than all frequent sets (%d)", got.Len(), full.Len())
	}
	if st.Lookaheads == 0 {
		t.Fatal("lookahead should be attempted")
	}
	// The hybrid search should not do more intersection work than full
	// enumeration on pattern-structured data.
	if st.IntersectOps > 2*fullStats.IntersectOps {
		t.Fatalf("maximal search did %dx the intersection work of full mining",
			st.IntersectOps/max64(fullStats.IntersectOps, 1))
	}
}

func TestMaximalLookaheadCollapsesCliqueData(t *testing.T) {
	// A database where one 6-item pattern appears in most transactions:
	// the class of its smallest item should collapse in one lookahead.
	d := &db.Database{NumItems: 10}
	pattern := itemset.New(1, 2, 3, 4, 5, 6)
	for i := 0; i < 50; i++ {
		d.Transactions = append(d.Transactions, db.Transaction{
			TID: itemset.TID(i), Items: pattern,
		})
	}
	got, st, _ := MineMaximalOpts(context.Background(), d, 40, Options{})
	if got.Len() != 1 || !got.Itemsets[0].Set.Equal(pattern) {
		t.Fatalf("maximal = %v, want just %v", got.Itemsets, pattern)
	}
	if got.Itemsets[0].Support != 50 {
		t.Fatalf("support = %d", got.Itemsets[0].Support)
	}
	if st.LookaheadHits == 0 {
		t.Fatal("the pattern class should collapse via lookahead")
	}
}

func TestMaximalSubsetsCoverFullResult(t *testing.T) {
	// Downward closure: every frequent itemset is a subset of some
	// maximal set, and every subset of a maximal set is frequent.
	rng := rand.New(rand.NewSource(123))
	d := testutil.RandomDB(rng, 200, 12, 6)
	minsup := 5
	full, _ := MineSequential(d, minsup)
	maxres, _, _ := MineMaximalOpts(context.Background(), d, minsup, Options{})
	for _, f := range full.Itemsets {
		covered := false
		for _, m := range maxres.Itemsets {
			if f.Set.SubsetOf(m.Set) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("frequent %v not covered by any maximal set", f.Set)
		}
	}
	fullMap := full.SupportMap()
	for _, m := range maxres.Itemsets {
		if fullMap[m.Set.Key()] != m.Support {
			t.Fatalf("maximal %v support %d != full mining's %d",
				m.Set, m.Support, fullMap[m.Set.Key()])
		}
	}
}

func TestMaximalNoSubsumedPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	d := testutil.RandomDB(rng, 150, 10, 6)
	got, _, _ := MineMaximalOpts(context.Background(), d, 4, Options{})
	for i, a := range got.Itemsets {
		for j, b := range got.Itemsets {
			if i != j && a.Set.SubsetOf(b.Set) {
				t.Fatalf("maximal result contains subsumed pair %v ⊆ %v", a.Set, b.Set)
			}
		}
	}
}

func TestMaximalParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	d := testutil.RandomDB(rng, 250, 13, 7)
	for _, minsup := range []int{4, 8} {
		want, _, _ := MineMaximalOpts(context.Background(), d, minsup, Options{})
		for _, hp := range [][2]int{{1, 1}, {2, 2}, {4, 1}, {1, 4}, {3, 2}} {
			cl := cluster.New(cluster.Default(hp[0], hp[1]))
			got, rep := MineMaximalParallel(cl, d, minsup)
			if !mining.Equal(got, want) {
				t.Fatalf("H=%d P=%d minsup %d:\n%s", hp[0], hp[1], minsup, mining.Diff(got, want))
			}
			if rep.ElapsedNS <= 0 {
				t.Fatal("no elapsed time")
			}
		}
	}
}

func TestMaximalParallelOnGeneratedData(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1500))
	minsup := d.MinSupCount(1.0)
	want, _, _ := MineMaximalOpts(context.Background(), d, minsup, Options{})
	cl := cluster.New(cluster.Default(2, 2))
	got, _ := MineMaximalParallel(cl, d, minsup)
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
}

func TestMaximalEmptyDatabase(t *testing.T) {
	res, _, _ := MineMaximalOpts(context.Background(), &db.Database{NumItems: 4}, 1, Options{})
	if res.Len() != 0 {
		t.Fatal("empty database has no maximal sets")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
