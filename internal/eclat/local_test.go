package eclat

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/mining"
	"repro/internal/tidlist"
)

// byteIdentical reports whether two sorted results are exactly equal —
// same itemsets with the same supports in the same order — which is the
// determinism contract MineParallelLocal makes, stronger than the
// order-insensitive mining.Equal.
func byteIdentical(a, b *mining.Result) bool {
	return a.MinSup == b.MinSup &&
		a.NumTransactions == b.NumTransactions &&
		reflect.DeepEqual(a.Itemsets, b.Itemsets)
}

func TestParallelLocalMatchesSequentialExactly(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(2000))
	minsup := d.MinSupCount(0.6)
	for _, repr := range []tidlist.Repr{tidlist.ReprAuto, tidlist.ReprSparse, tidlist.ReprBitset} {
		opts := Options{Representation: repr}
		want, wantSt, err := MineSequentialOpts(context.Background(), d, minsup, opts)
		if err != nil {
			t.Fatal(err)
		}
		for workers := 1; workers <= 8; workers++ {
			opts.Workers = workers
			got, st, err := MineParallelLocal(context.Background(), d, minsup, opts)
			if err != nil {
				t.Fatalf("repr=%v workers=%d: %v", repr, workers, err)
			}
			if !byteIdentical(got, want) {
				t.Fatalf("repr=%v workers=%d: output differs from sequential:\n%s",
					repr, workers, mining.Diff(got, want))
			}
			if st.Workers != workers {
				t.Fatalf("repr=%v workers=%d: Stats.Workers = %d", repr, workers, st.Workers)
			}
			// The intersection totals are interleaving-independent sums, so
			// any worker count must report exactly the sequential work.
			if st.Intersections != wantSt.Intersections ||
				st.ShortCircuited != wantSt.ShortCircuited ||
				st.IntersectOps != wantSt.IntersectOps ||
				st.Classes != wantSt.Classes ||
				st.Scans != wantSt.Scans {
				t.Fatalf("repr=%v workers=%d: stats diverge: par=%+v seq=%+v", repr, workers, st, wantSt)
			}
		}
	}
}

func TestParallelLocalRepeatRunsDeterministic(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1500))
	minsup := d.MinSupCount(0.6)
	opts := Options{Workers: 8}
	first, _, err := MineParallelLocal(context.Background(), d, minsup, opts)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		got, _, err := MineParallelLocal(context.Background(), d, minsup, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !byteIdentical(got, first) {
			t.Fatalf("run %d differs from run 0 despite identical inputs", run)
		}
	}
}

func TestParallelLocalDefaultWorkers(t *testing.T) {
	d := gen.MustGenerate(gen.T5I2(300))
	minsup := d.MinSupCount(1.0)
	_, st, err := MineParallelLocal(context.Background(), d, minsup, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); st.Workers != want {
		t.Fatalf("Workers = %d, want GOMAXPROCS = %d", st.Workers, want)
	}
}

// cancelAfterN is a context whose Err starts reporting context.Canceled
// after the n-th call, which lands cancellation deterministically in the
// middle of the class recursion (real timers land wherever the scheduler
// happens to be).
type cancelAfterN struct {
	context.Context
	calls atomic.Int64
	n     int64
}

func (c *cancelAfterN) Err() error {
	if c.calls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

func TestParallelLocalCancellation(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(2000))
	minsup := d.MinSupCount(0.6)
	before := runtime.NumGoroutine()
	for _, n := range []int64{0, 1, 10, 100, 1000} {
		ctx := &cancelAfterN{Context: context.Background(), n: n}
		res, _, err := MineParallelLocal(ctx, d, minsup, Options{Workers: 4})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("n=%d: err = %v, want context.Canceled", n, err)
		}
		if res != nil {
			t.Fatalf("n=%d: canceled run returned a result", n)
		}
	}
	// Workers join before MineParallelLocal returns, so the goroutine
	// count must settle back to the baseline (allow the runtime a moment
	// to retire exiting goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestParallelLocalAlreadyCanceled(t *testing.T) {
	d := gen.MustGenerate(gen.T5I2(200))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := MineParallelLocal(ctx, d, 2, Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDequeStealMovesBackHalf(t *testing.T) {
	var a, b wsDeque
	for ci := 0; ci < 5; ci++ {
		a.tasks = append(a.tasks, classTask{ci: ci, weight: int64(10 - ci)})
		a.weight += int64(10 - ci)
	}
	if n := a.stealInto(&b, 0, 1); n != 3 {
		t.Fatalf("stole %d tasks, want 3 (ceil of half)", n)
	}
	if len(a.tasks) != 2 || len(b.tasks) != 3 {
		t.Fatalf("post-steal sizes: victim=%d thief=%d", len(a.tasks), len(b.tasks))
	}
	if b.tasks[0].ci != 2 {
		t.Fatalf("steal must take the back of the victim's queue, got front task %d", b.tasks[0].ci)
	}
	wantA, wantB := int64(10+9), int64(8+7+6)
	if a.weight != wantA || b.weight != wantB {
		t.Fatalf("weights: victim=%d thief=%d, want %d/%d", a.weight, b.weight, wantA, wantB)
	}
	if _, ok := (&wsDeque{}).popFront(); ok {
		t.Fatal("popFront on empty deque returned a task")
	}
	var empty wsDeque
	if n := empty.stealInto(&a, 1, 0); n != 0 {
		t.Fatalf("steal from empty deque moved %d tasks", n)
	}
}
