package eclat

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/mining"
)

// TestMaximalClosedMulticoreSteals is the acceptance check that the
// engine's work-stealing driver really runs the maximal and closed
// policies on multiple cores: output byte-identical to sequential AND a
// nonzero steal count. Stealing depends on scheduling, so each variant
// retries until a run observes a steal — deterministic output is
// asserted on every attempt either way.
func TestMaximalClosedMulticoreSteals(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(2000))
	minsup := d.MinSupCount(0.6)

	seqMax, _, err := MineMaximalOpts(context.Background(), d, minsup, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqClosed, _, err := MineClosedOpts(context.Background(), d, minsup, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const attempts = 50
	stole := false
	for i := 0; i < attempts && !stole; i++ {
		res, st, err := MineMaximalOpts(context.Background(), d, minsup, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !byteIdentical(res, seqMax) {
			t.Fatalf("maximal workers=4 attempt %d differs from sequential:\n%s",
				i, mining.Diff(res, seqMax))
		}
		if st.Workers != 4 {
			t.Fatalf("maximal Stats.Workers = %d, want 4", st.Workers)
		}
		stole = st.Steals > 0
	}
	if !stole {
		t.Fatalf("maximal: no steal observed in %d multicore runs", attempts)
	}

	stole = false
	for i := 0; i < attempts && !stole; i++ {
		res, st, err := MineClosedOpts(context.Background(), d, minsup, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !byteIdentical(res, seqClosed) {
			t.Fatalf("closed workers=4 attempt %d differs from sequential:\n%s",
				i, mining.Diff(res, seqClosed))
		}
		if st.Workers != 4 {
			t.Fatalf("closed Stats.Workers = %d, want 4", st.Workers)
		}
		stole = st.Steals > 0
	}
	if !stole {
		t.Fatalf("closed: no steal observed in %d multicore runs", attempts)
	}
}
