package eclat

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/testutil"
)

// oracleClosed derives closed sets by the definition: no strict superset
// with equal support.
func oracleClosed(full *mining.Result) *mining.Result {
	out := &mining.Result{MinSup: full.MinSup, NumTransactions: full.NumTransactions}
	for _, f := range full.Itemsets {
		closed := true
		for _, g := range full.Itemsets {
			if g.Set.K() > f.Set.K() && f.Set.SubsetOf(g.Set) && g.Support == f.Support {
				closed = false
				break
			}
		}
		if closed {
			out.Add(f.Set, f.Support)
		}
	}
	out.Sort()
	return out
}

func TestClosedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 12; trial++ {
		d := testutil.RandomDB(rng, 120+trial*20, 11, 6)
		for _, minsup := range []int{3, 6} {
			full, _ := MineSequential(d, minsup)
			want := oracleClosed(full)
			got, _, _ := MineClosedOpts(context.Background(), d, minsup, Options{})
			if !mining.Equal(got, want) {
				t.Fatalf("trial %d minsup %d:\n%s", trial, minsup, mining.Diff(got, want))
			}
		}
	}
}

func TestClosedBetweenMaximalAndFull(t *testing.T) {
	// |maximal| <= |closed| <= |full|, and every maximal set is closed.
	d := gen.MustGenerate(gen.T10I6(1500))
	minsup := d.MinSupCount(1.0)
	full, _ := MineSequential(d, minsup)
	closed, _, _ := MineClosedOpts(context.Background(), d, minsup, Options{})
	maximal, _, _ := MineMaximalOpts(context.Background(), d, minsup, Options{})
	if !(maximal.Len() <= closed.Len() && closed.Len() <= full.Len()) {
		t.Fatalf("|maximal|=%d |closed|=%d |full|=%d out of order",
			maximal.Len(), closed.Len(), full.Len())
	}
	cm := closed.SupportMap()
	for _, m := range maximal.Itemsets {
		if cm[m.Set.Key()] != m.Support {
			t.Fatalf("maximal set %v missing from closed result", m.Set)
		}
	}
}

func TestSupportFromClosedLossless(t *testing.T) {
	// The closed representation determines every frequent itemset's
	// support exactly.
	rng := rand.New(rand.NewSource(157))
	d := testutil.RandomDB(rng, 180, 10, 6)
	minsup := 5
	full, _ := MineSequential(d, minsup)
	closed, _, _ := MineClosedOpts(context.Background(), d, minsup, Options{})
	for _, f := range full.Itemsets {
		if got := SupportFromClosed(closed, f.Set); got != f.Support {
			t.Fatalf("support of %v from closed = %d, want %d", f.Set, got, f.Support)
		}
	}
	// An itemset with no closed superset is not frequent and reconstructs
	// to support 0.
	notFrequent := full.Itemsets[0].Set.Union(itemset.New(9999))
	if got := SupportFromClosed(closed, notFrequent); got != 0 {
		t.Fatalf("non-frequent itemset should reconstruct to 0, got %d", got)
	}
}
