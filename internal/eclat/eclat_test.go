package eclat

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/testutil"
)

func TestSequentialTinyKnownAnswer(t *testing.T) {
	d := &db.Database{NumItems: 4, Transactions: []db.Transaction{
		{TID: 0, Items: itemset.New(0, 1, 2)},
		{TID: 1, Items: itemset.New(0, 1, 2)},
		{TID: 2, Items: itemset.New(0, 1, 3)},
		{TID: 3, Items: itemset.New(0, 2)},
	}}
	res, st := MineSequential(d, 2)
	m := res.SupportMap()
	if m[itemset.New(0, 1, 2).Key()] != 2 {
		t.Fatalf("sup({0,1,2}) = %d, want 2", m[itemset.New(0, 1, 2).Key()])
	}
	if m[itemset.New(0, 1).Key()] != 3 || m[itemset.New(0, 2).Key()] != 3 {
		t.Fatalf("2-itemset supports wrong: %v", m)
	}
	if st.Scans != 2 {
		t.Fatalf("sequential Eclat should scan twice, got %d", st.Scans)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		d := testutil.RandomDB(rng, 60, 12, 6)
		for _, minsup := range []int{1, 2, 3, 5, 10} {
			got, _ := MineSequential(d, minsup)
			want := testutil.BruteForce(d, minsup)
			if !mining.Equal(got, want) {
				t.Fatalf("trial %d minsup %d:\n%s", trial, minsup, mining.Diff(got, want))
			}
		}
	}
}

func TestSequentialMatchesApriori(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1500))
	minsup := d.MinSupCount(1.0)
	ecl, _ := MineSequential(d, minsup)
	apr, _, _ := apriori.Mine(context.Background(), d, minsup)
	if !mining.Equal(ecl, apr) {
		t.Fatalf("Eclat and Apriori disagree on %s:\n%s", gen.T10I6(1500).Name(), mining.Diff(ecl, apr))
	}
	if ecl.Len() == 0 {
		t.Fatal("expected some frequent itemsets at 1% support")
	}
}

func TestShortCircuitCountersAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := testutil.RandomDB(rng, 200, 15, 8)
	_, st := MineSequential(d, 20)
	if st.Intersections == 0 {
		t.Skip("no intersections at this support; adjust test data")
	}
	if st.IntersectOps == 0 {
		t.Fatal("IntersectOps should be positive when intersections happen")
	}
}

func TestParallelMatchesSequentialAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := testutil.RandomDB(rng, 300, 14, 7)
	minsup := 6
	want, _ := MineSequential(d, minsup)
	configs := [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {4, 2}, {1, 8}, {3, 3}}
	for _, hp := range configs {
		cl := cluster.New(cluster.Default(hp[0], hp[1]))
		got, rep := MineOpts(cl, d, minsup, Options{})
		if !mining.Equal(got, want) {
			t.Fatalf("H=%d P=%d: parallel result differs:\n%s", hp[0], hp[1], mining.Diff(got, want))
		}
		if rep.ElapsedNS <= 0 {
			t.Fatalf("H=%d P=%d: elapsed %d", hp[0], hp[1], rep.ElapsedNS)
		}
		if err := got.Verify(); err != nil {
			t.Fatalf("H=%d P=%d: %v", hp[0], hp[1], err)
		}
	}
}

func TestParallelThreeLocalScans(t *testing.T) {
	// "the algorithm scans the local database partition only three times":
	// two horizontal scans plus reading the inverted lists back.
	d := gen.MustGenerate(gen.T10I6(800))
	cl := cluster.New(cluster.Default(2, 2))
	_, rep := MineOpts(cl, d, d.MinSupCount(1.0), Options{})
	for i, st := range rep.PerProc {
		if st.Scans != 3 {
			t.Fatalf("proc %d performed %d scans, want 3", i, st.Scans)
		}
	}
}

func TestParallelNoBarriersInAsyncPhase(t *testing.T) {
	// The barrier count must be a fixed constant of the SPMD program,
	// independent of how deep the mining recursion goes — Eclat
	// synchronizes only during set-up and the final reduction.
	d := gen.MustGenerate(gen.T10I6(800))
	cl1 := cluster.New(cluster.Default(2, 2))
	MineOpts(cl1, d, d.MinSupCount(2.0), Options{}) // shallow mining
	cl2 := cluster.New(cluster.Default(2, 2))
	MineOpts(cl2, d, d.MinSupCount(0.5), Options{}) // much deeper mining
	b1 := cl1.Report().PerProc[0].Barriers
	b2 := cl2.Report().PerProc[0].Barriers
	if b1 != b2 {
		t.Fatalf("barrier count depends on mining depth (%d vs %d); asynchronous phase must not synchronize", b1, b2)
	}
}

func TestParallelDeterministicVirtualTime(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(600))
	run := func() int64 {
		cl := cluster.New(cluster.Default(2, 2))
		_, rep := MineOpts(cl, d, d.MinSupCount(1.0), Options{})
		return rep.ElapsedNS
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("virtual time nondeterministic: %d vs %d", a, b)
	}
}

func TestParallelPhaseBreakdownPresent(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(600))
	cl := cluster.New(cluster.Default(2, 2))
	_, rep := MineOpts(cl, d, d.MinSupCount(1.0), Options{})
	for _, ph := range []string{PhaseInit, PhaseTransform, PhaseAsync, PhaseReduce} {
		if rep.PhaseMaxNS(ph) <= 0 {
			t.Fatalf("phase %q has no time recorded", ph)
		}
	}
	setup := rep.PhaseMaxNS(PhaseInit) + rep.PhaseMaxNS(PhaseTransform)
	if setup >= rep.ElapsedNS {
		t.Fatalf("setup (%d) should be below total (%d)", setup, rep.ElapsedNS)
	}
}

func TestParallelEmptyDatabase(t *testing.T) {
	d := &db.Database{NumItems: 10}
	cl := cluster.New(cluster.Default(2, 2))
	res, _ := MineOpts(cl, d, 1, Options{})
	if res.Len() != 0 {
		t.Fatalf("empty database mined %d itemsets", res.Len())
	}
}

func TestParallelMoreProcsThanTransactions(t *testing.T) {
	d := &db.Database{NumItems: 5, Transactions: []db.Transaction{
		{TID: 0, Items: itemset.New(0, 1)},
		{TID: 1, Items: itemset.New(0, 1)},
	}}
	cl := cluster.New(cluster.Default(2, 4)) // 8 procs, 2 transactions
	res, _ := MineOpts(cl, d, 2, Options{})
	if res.SupportMap()[itemset.New(0, 1).Key()] != 2 {
		t.Fatalf("result wrong with empty partitions: %v", res.SupportMap())
	}
}

func TestMineSequentialOptsCanceled(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1500))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := MineSequentialOpts(ctx, d, 10, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled mine returned a result")
	}
}

func TestMineSequentialOptsBackgroundMatchesPlain(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1500))
	want, _ := MineSequential(d, 10)
	got, _, err := MineSequentialOpts(context.Background(), d, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Itemsets) != len(got.Itemsets) {
		t.Fatalf("ctx variant mined %d itemsets, plain mined %d", len(got.Itemsets), len(want.Itemsets))
	}
}
