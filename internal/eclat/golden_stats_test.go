package eclat

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/mining"
	"repro/internal/tidlist"
)

// The golden-stats suite pins the class-task engine to the work-counter
// profile and output fingerprints captured from the pre-engine variants
// (scripts/golden_stats.go regenerates the file; the committed copy was
// produced by the PR 7 tree). Equality here is the refactor's contract:
// same kernel call sequence, same short-circuits, same diffset
// transitions, same bytes out — at every representation and worker
// count, not just on one lucky configuration.

type kernelGold struct {
	SparseOps      int64 `json:"sparseOps"`
	WordsTouched   int64 `json:"wordsTouched"`
	RoaringElemOps int64 `json:"roaringElemOps"`
	RoaringWords   int64 `json:"roaringWords"`
	Conversions    int64 `json:"conversions"`
}

type statsGold struct {
	Scans          int        `json:"scans"`
	Intersections  int64      `json:"intersections"`
	ShortCircuited int64      `json:"shortCircuited"`
	IntersectOps   int64      `json:"intersectOps"`
	Classes        int        `json:"classes"`
	DiffsetClasses int64      `json:"diffsetClasses"`
	Kernel         kernelGold `json:"kernel"`
}

type maxGold struct {
	statsGold
	Lookaheads    int64 `json:"lookaheads"`
	LookaheadHits int64 `json:"lookaheadHits"`
	Candidates    int   `json:"candidates"`
}

type diffGold struct {
	Scans         int        `json:"scans"`
	Intersections int64      `json:"intersections"`
	DiffOps       int64      `json:"diffOps"`
	ListBytes     int64      `json:"listBytes"`
	Kernel        kernelGold `json:"kernel"`
}

type goldenEntry struct {
	Dataset      string            `json:"dataset"`
	MinSup       int               `json:"minsup"`
	Repr         string            `json:"repr"`
	Stats        statsGold         `json:"stats"`
	Max          maxGold           `json:"max"`
	Diff         diffGold          `json:"diff"`
	Fingerprints map[string]uint64 `json:"fingerprints"`
}

func loadGoldens(t *testing.T) []goldenEntry {
	t.Helper()
	buf, err := os.ReadFile("testdata/golden_stats.json")
	if err != nil {
		t.Fatalf("read goldens: %v", err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(buf, &entries); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no golden entries")
	}
	return entries
}

// goldenDB rebuilds the deterministic seed datasets the goldens were
// captured on (generation is pure in the config seed).
func goldenDB(t *testing.T, name string) *db.Database {
	t.Helper()
	switch name {
	case "T10I6-2000":
		return gen.MustGenerate(gen.T10I6(2000))
	case "T5I2-800":
		return gen.MustGenerate(gen.T5I2(800))
	default:
		t.Fatalf("unknown golden dataset %q", name)
		return nil
	}
}

// goldenFingerprint matches scripts/golden_stats.go: FNV-64a over the
// canonical sorted (minsup, |D|, itemset, support) stream.
func goldenFingerprint(res *mining.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(res.MinSup))
	put(int64(res.NumTransactions))
	for _, f := range res.Itemsets {
		put(int64(f.Set.K()))
		for _, it := range f.Set {
			put(int64(it))
		}
		put(int64(f.Support))
	}
	return h.Sum64()
}

func kernelOf(k *tidlist.KernelStats) kernelGold {
	return kernelGold{
		SparseOps:      k.SparseOps(),
		WordsTouched:   k.WordsTouched(),
		RoaringElemOps: k.RoaringElemOps(),
		RoaringWords:   k.RoaringWords(),
		Conversions:    k.Conversions(),
	}
}

func statsOf(st *Stats) statsGold {
	return statsGold{
		Scans:          st.Scans,
		Intersections:  st.Intersections,
		ShortCircuited: st.ShortCircuited,
		IntersectOps:   st.IntersectOps,
		Classes:        st.Classes,
		DiffsetClasses: st.DiffsetClasses,
		Kernel:         kernelOf(&st.Kernel),
	}
}

func parseGoldenRepr(t *testing.T, s string) tidlist.Repr {
	t.Helper()
	r, err := tidlist.ParseRepr(s)
	if err != nil {
		t.Fatalf("golden repr %q: %v", s, err)
	}
	return r
}

// TestEngineMatchesGoldenStats drives every engine policy over the
// frozen profile: the all-frequent counters at workers 1–8, the maximal
// counters at workers 1–8, the pure-diffset counters, and the output
// fingerprints of all eight variants (sequential, parallel-local,
// maximal, diffsets, closed, CHARM, cluster, hybrid, maximal-cluster).
// Workers and Steals are scheduling figures, not work counters, and are
// deliberately outside the comparison.
func TestEngineMatchesGoldenStats(t *testing.T) {
	dbs := map[string]*db.Database{}
	for _, e := range loadGoldens(t) {
		d, ok := dbs[e.Dataset]
		if !ok {
			d = goldenDB(t, e.Dataset)
			dbs[e.Dataset] = d
		}
		repr := parseGoldenRepr(t, e.Repr)
		opts := Options{Representation: repr}
		t.Run(e.Dataset+"/"+e.Repr, func(t *testing.T) {
			res, st, err := MineSequentialOpts(context.Background(), d, e.MinSup, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := statsOf(&st); got != e.Stats {
				t.Errorf("sequential stats = %+v, want %+v", got, e.Stats)
			}
			if fp := goldenFingerprint(res); fp != e.Fingerprints["all"] {
				t.Errorf("sequential fingerprint = %#x, want %#x", fp, e.Fingerprints["all"])
			}

			for workers := 1; workers <= 8; workers++ {
				o := opts
				o.Workers = workers
				pres, pst, err := MineParallelLocal(context.Background(), d, e.MinSup, o)
				if err != nil {
					t.Fatal(err)
				}
				if got := statsOf(&pst); got != e.Stats {
					t.Errorf("parallel workers=%d stats = %+v, want %+v", workers, got, e.Stats)
				}
				if fp := goldenFingerprint(pres); fp != e.Fingerprints["all"] {
					t.Errorf("parallel workers=%d fingerprint = %#x, want %#x", workers, fp, e.Fingerprints["all"])
				}

				mres, mst, err := MineMaximalOpts(context.Background(), d, e.MinSup, o)
				if err != nil {
					t.Fatal(err)
				}
				got := maxGold{
					statsGold:     statsOf(&mst.Stats),
					Lookaheads:    mst.Lookaheads,
					LookaheadHits: mst.LookaheadHits,
					Candidates:    mst.Candidates,
				}
				if got != e.Max {
					t.Errorf("maximal workers=%d stats = %+v, want %+v", workers, got, e.Max)
				}
				if fp := goldenFingerprint(mres); fp != e.Fingerprints["maximal"] {
					t.Errorf("maximal workers=%d fingerprint = %#x, want %#x", workers, fp, e.Fingerprints["maximal"])
				}

				cres, _, err := MineClosedOpts(context.Background(), d, e.MinSup, o)
				if err != nil {
					t.Fatal(err)
				}
				if fp := goldenFingerprint(cres); fp != e.Fingerprints["closed"] {
					t.Errorf("closed workers=%d fingerprint = %#x, want %#x", workers, fp, e.Fingerprints["closed"])
				}
			}

			dres, dst, err := MineSequentialDiffsetsOpts(context.Background(), d, e.MinSup, opts)
			if err != nil {
				t.Fatal(err)
			}
			gotDiff := diffGold{
				Scans:         dst.Scans,
				Intersections: dst.Intersections,
				DiffOps:       dst.DiffOps,
				ListBytes:     dst.ListBytes,
				Kernel:        kernelOf(&dst.Kernel),
			}
			if gotDiff != e.Diff {
				t.Errorf("diffsets stats = %+v, want %+v", gotDiff, e.Diff)
			}
			if fp := goldenFingerprint(dres); fp != e.Fingerprints["diffsets"] {
				t.Errorf("diffsets fingerprint = %#x, want %#x", fp, e.Fingerprints["diffsets"])
			}

			chres, _, err := MineClosedCHARMOpts(context.Background(), d, e.MinSup, opts)
			if err != nil {
				t.Fatal(err)
			}
			if fp := goldenFingerprint(chres); fp != e.Fingerprints["charm"] {
				t.Errorf("charm fingerprint = %#x, want %#x", fp, e.Fingerprints["charm"])
			}

			clres, _ := MineOpts(cluster.New(cluster.Default(2, 2)), d, e.MinSup, opts)
			if fp := goldenFingerprint(clres); fp != e.Fingerprints["cluster"] {
				t.Errorf("cluster fingerprint = %#x, want %#x", fp, e.Fingerprints["cluster"])
			}
			hyres, _ := MineHybridOpts(cluster.New(cluster.Default(2, 2)), d, e.MinSup, opts)
			if fp := goldenFingerprint(hyres); fp != e.Fingerprints["hybrid"] {
				t.Errorf("hybrid fingerprint = %#x, want %#x", fp, e.Fingerprints["hybrid"])
			}
			mpres, _ := MineMaximalParallelOpts(cluster.New(cluster.Default(2, 2)), d, e.MinSup, opts)
			if fp := goldenFingerprint(mpres); fp != e.Fingerprints["maximalCluster"] {
				t.Errorf("maximal-cluster fingerprint = %#x, want %#x", fp, e.Fingerprints["maximalCluster"])
			}
		})
	}
}
