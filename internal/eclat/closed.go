package eclat

import (
	"context"

	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// MineClosedOpts discovers the closed frequent itemsets: those with no
// strict superset of equal support. Closed sets are the lossless
// compression of the frequent collection — together with their supports
// they determine the support of every frequent itemset, unlike the
// (smaller, lossy) maximal sets of MineMaximalOpts.
//
// The implementation mines the full collection on the class-task engine
// and applies the closure filter by the immediate-superset property: an
// itemset is non-closed iff one of its single-item extensions has the
// same support, so marking each frequent set's (k-1)-subsets of equal
// support as non-closed visits each frequent set only k times.
//
// opts.Workers > 1 mines the underlying full collection with the
// work-stealing pool; the filter input is byte-identical at every worker
// count, so the closed output is too. opts.Workers ≤ 0 means 1 — the
// historical sequential default. TopK and MustContain are ignored (their
// adaptive pruning is unsound against the closed output contract).
func MineClosedOpts(ctx context.Context, d *db.Database, minsup int, opts Options) (*mining.Result, Stats, error) {
	if minsup < 1 {
		minsup = 1
	}
	opts.TopK, opts.MustContain = 0, nil
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	var st Stats
	st.Workers = workers

	v := buildVertical(ctx, d, minsup, &st, opts)
	eng := newEngine(v, minsup, opts, policyAll{})
	if _, err := eng.run(ctx, workers, &st, &arena{}, v.res.Add); err != nil {
		return nil, st, err
	}
	eng.finish(v.res, &st)

	res := &mining.Result{MinSup: v.res.MinSup, NumTransactions: v.res.NumTransactions}
	res.Itemsets = closedFilter(v.res.Itemsets)
	res.Sort()
	return res, st, nil
}

// closedFilter returns the closed subsets of a complete frequent
// collection (each itemset paired with its exact support).
func closedFilter(all []mining.FrequentItemset) []mining.FrequentItemset {
	sup := make(map[string]int, len(all))
	for _, f := range all {
		sup[f.Set.Key()] = f.Support
	}
	nonClosed := make(map[string]bool)
	for _, g := range all {
		if g.Set.K() < 2 {
			continue
		}
		for i := range g.Set {
			s := g.Set.Without(i)
			if sup[s.Key()] == g.Support {
				nonClosed[s.Key()] = true
			}
		}
	}
	var out []mining.FrequentItemset
	for _, f := range all {
		if !nonClosed[f.Set.Key()] {
			out = append(out, f)
		}
	}
	return out
}

// SupportFromClosed reconstructs the support of an arbitrary itemset from
// a closed-itemset result: it is the maximum support among closed
// supersets, or 0 if no closed superset exists (the itemset is not
// frequent). This is the losslessness property the closed representation
// is used for.
func SupportFromClosed(closed *mining.Result, set itemset.Itemset) int {
	best := 0
	for _, c := range closed.Itemsets {
		if set.SubsetOf(c.Set) && c.Support > best {
			best = c.Support
		}
	}
	return best
}
