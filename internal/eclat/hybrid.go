package eclat

import (
	"context"
	"sort"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paircount"
	"repro/internal/tidlist"
)

// MineHybridOpts implements the hybrid parallelization the paper proposes
// as future work (section 8.1): "we plan to implement a hybrid
// parallelization where the database is partitioned only among the hosts
// ... the Compute_Frequent procedure could be carried out in parallel" by
// the processors within each host.
//
// The database is block-partitioned across the H hosts; each host's P
// processors scan disjoint chunks of the host partition (so the host disk
// moves each byte once), equivalence classes are scheduled across hosts,
// the tid-list exchange runs between host leaders only, and within a host
// the classes are sub-scheduled across its processors for the
// asynchronous phase. This removes both the per-processor disk
// contention and the T-way exchange that limit flat Eclat when P > 1.
// The class mining routes through the engine's all-frequent policy; the
// host-level SPMD orchestration (cooperative scans, leader exchange,
// sub-scheduling) is what this entry point adds. TopK and MustContain
// are ignored on the cluster forms.
func MineHybridOpts(cl *cluster.Cluster, d *db.Database, minsup int, opts Options) (*mining.Result, cluster.Report) {
	if minsup < 1 {
		minsup = 1
	}
	opts.TopK, opts.MustContain = 0, nil
	cfg := cl.Config()
	h, pp := cfg.Hosts, cfg.ProcsPerHost
	t := cl.NumProcs()

	hostParts := d.Partition(h)
	// chunk[i] for processor i: the i%P-th chunk of host i/P's partition.
	chunks := make([]*db.Database, t)
	for host := 0; host < h; host++ {
		sub := hostParts[host].Partition(pp)
		for q := 0; q < pp; q++ {
			chunks[host*pp+q] = sub[q]
		}
	}

	locals := make([]*mining.Result, t)
	var globalPairs []paircount.FrequentPair
	var globalItems []int

	cl.Run(func(p *cluster.Proc) {
		chunk := chunks[p.ID()]
		host := p.Host()
		leader := host * pp // first processor of this host
		local := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
		locals[p.ID()] = local

		// ---- Initialization: cooperative scan of the host partition -----
		p.SetPhase(PhaseInit)
		// Each processor reads only its chunk; with P concurrent scanners
		// the disk moves partition bytes exactly once.
		p.ChargeScan(chunk.SizeBytes(), pp)
		itemCounts := make([]int, d.NumItems)
		pc := paircount.New(d.NumItems)
		var itemOps int64
		for _, tx := range chunk.Transactions {
			for _, it := range tx.Items {
				itemCounts[it]++
			}
			itemOps += int64(len(tx.Items))
		}
		p.ChargeCPU(itemOps)
		p.ChargeOps(cluster.OpPairCount, pc.AddPartition(chunk))
		gItems := cluster.SumReduceInt(p, itemCounts)
		gpc := paircount.FromCounts(d.NumItems, cluster.SumReduceInt32(p, pc.Counts()))
		freqPairs := gpc.Frequent(minsup)
		p.ChargeCPU(int64(gpc.NumCells()))
		if p.ID() == 0 {
			globalItems = gItems
			globalPairs = freqPairs
		}

		// ---- Transformation: host-level classes, leader exchange --------
		p.SetPhase(PhaseTransform)
		l2 := make([]itemset.Itemset, len(freqPairs))
		for i, fp := range freqPairs {
			l2[i] = fp.Pair.Itemset()
		}
		classes := eqclass.PruneSingletons(eqclass.Partition(l2))
		hostSched := eqclass.Schedule(classes, h)
		p.ChargeCPU(int64(len(classes)))

		hostOwner := make(map[tidlist.Pair]int)
		want := make(map[tidlist.Pair]bool)
		for ci := range classes {
			for _, m := range classes[ci].Members {
				pr := tidlist.Pair{A: m[0], B: m[1]}
				hostOwner[pr] = hostSched.Owner[ci]
				want[pr] = true
			}
		}

		// Second cooperative scan: partials from this chunk only.
		p.ChargeScan(chunk.SizeBytes(), pp)
		partials := tidlist.BuildPairs(chunk, want)
		var buildOps int64
		for _, tx := range chunk.Transactions {
			l := int64(len(tx.Items))
			buildOps += l * (l - 1) / 2
		}
		p.ChargeOps(cluster.OpPairCount, buildOps)

		// Exchange between hosts: every processor routes its partials to
		// the owning host's leader; intra-host payloads cross shared
		// memory, not the Memory Channel.
		out := make([][]pairList, t)
		var sentBytes, sentSparse, sentDense int64
		for pr, tids := range partials {
			dstHost := hostOwner[pr]
			out[dstHost*pp] = append(out[dstHost*pp], pairList{pair: pr, tids: tids})
			if dstHost != host {
				n, enc := tidlist.EncodedSize(tids, opts.Representation)
				sentBytes += n
				if enc == tidlist.ReprBitset {
					sentDense += n
				} else {
					sentSparse += n
				}
			}
		}
		p.AddNetPayload(sentSparse, sentDense)
		for dst := range out {
			sort.Slice(out[dst], func(i, j int) bool {
				a, b := out[dst][i].pair, out[dst][j].pair
				if a.A != b.A {
					return a.A < b.A
				}
				return a.B < b.B
			})
		}
		in := cluster.Exchange(p, out, sentBytes)

		// Leaders assemble the host's global tid-lists; chunk partials
		// arrive in processor order = TID order, so concatenation stays
		// sorted.
		assembled := map[tidlist.Pair]tidlist.List{}
		if p.ID() == leader {
			for src := 0; src < t; src++ {
				for _, pl := range in[src] {
					assembled[pl.pair] = append(assembled[pl.pair], pl.tids...)
				}
			}
		}
		// Share the assembled lists host-wide (shared memory: no wire
		// cost beyond the rendezvous).
		allAssembled := cluster.Gather(p, assembled, 0)
		lists := allAssembled[leader]

		var hostBytes int64
		for _, l := range lists {
			n, _ := tidlist.EncodedSize(l, opts.Representation)
			hostBytes += n
		}
		// The host's inverted partition is written once, cooperatively.
		factor := p.PageFactor(hostBytes)
		p.ChargeDiskWrite(hostBytes*factor/int64(pp), pp)

		// ---- Asynchronous phase: sub-schedule classes within the host ---
		p.SetPhase(PhaseAsync)
		myHostClasses := hostSched.ClassesOf(host)
		sub := make([]eqclass.Class, len(myHostClasses))
		for i, ci := range myHostClasses {
			sub[i] = classes[ci]
		}
		subSched := eqclass.Schedule(sub, pp)
		var myBytes int64
		var st Stats
		w := &worker{st: &st, opts: opts, th: fixedThreshold(minsup), ar: &arena{}, ext: policyAll{}.newExt()}
		for i := range sub {
			if subSched.Owner[i] != p.ID()-leader {
				continue
			}
			// The read-back is charged at the lists' encoded (on-disk)
			// size — the same basis the transformation write used — not at
			// the size of the in-memory sets classMembers materializes.
			for _, m := range sub[i].Members {
				n, _ := tidlist.EncodedSize(lists[tidlist.Pair{A: m[0], B: m[1]}], opts.Representation)
				myBytes += n
			}
			members := classMembers(&sub[i], lists, opts.Representation, &st.Kernel)
			policyAll{}.explore(context.Background(), w, members, local.Add)
		}
		p.ChargeScan(myBytes, pp)
		chargeKernel(p, &st)

		// ---- Final reduction --------------------------------------------
		p.SetPhase(PhaseReduce)
		var localBytes int64
		for _, f := range local.Itemsets {
			localBytes += 4*int64(f.Set.K()) + 4
		}
		cluster.Gather(p, localBytes, localBytes)
	})

	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	for it, c := range globalItems {
		if c >= minsup {
			res.Add(itemset.Itemset{itemset.Item(it)}, c)
		}
	}
	for _, fp := range globalPairs {
		res.Add(fp.Pair.Itemset(), fp.Count)
	}
	for _, local := range locals {
		res.Itemsets = append(res.Itemsets, local.Itemsets...)
	}
	res.Sort()
	rep := cl.Report()
	rep.Representation = opts.Representation.String()
	return res, rep
}
