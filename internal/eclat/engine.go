package eclat

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obsv"
)

// Top-k and targeted-query metrics (see /metricsz). Raises are published
// once per run (the heap keeps a run-local count); skipped classes are
// counted where the class list is pruned, which happens once per run too.
const (
	mnTopKRaises      = "eclat_topk_raises_total"
	mnTargetedSkipped = "eclat_targeted_classes_skipped_total"
)

var (
	mTopKRaises      = obsv.Default.Counter(mnTopKRaises, "effective minimum-support raises performed by the top-k support heap")
	mTargetedSkipped = obsv.Default.Counter(mnTargetedSkipped, "equivalence classes skipped because their prefix cannot contain the targeted items")
)

// Emitter receives one frequent itemset with its exact support. The
// engine owns delivery order: single-goroutine, deterministic (class-index
// order under every worker count).
type Emitter func(itemset.Itemset, int)

// supportHeap is the concurrent top-k pruning hook: a bounded min-heap of
// the k largest supports emitted so far. Once full, its minimum is the
// kth-largest support seen, which is a lower bound on nothing and an
// *upper-bounded* estimate of the true kth-largest overall support s_k
// (adding elements can only raise the kth largest), so mining may prune
// any branch whose support falls strictly below it without losing a
// top-k itemset — ties at the threshold always survive.
type supportHeap struct {
	mu sync.Mutex
	k  int
	h  []int // min-heap of the k largest supports seen (with duplicates)
	// eff is the current effective threshold (0 until the heap fills),
	// readable without the lock on the hot path.
	eff    atomic.Int64
	raises atomic.Int64
}

func newSupportHeap(k int) *supportHeap { return &supportHeap{k: k} }

// offer records one emitted support. Safe for concurrent use; the
// lock-free fast path rejects supports that can neither enter the heap
// nor raise its minimum.
func (sh *supportHeap) offer(sup int) {
	if eff := sh.eff.Load(); eff > 0 && int64(sup) <= eff {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.h) < sh.k {
		sh.h = append(sh.h, sup)
		for i := len(sh.h) - 1; i > 0; {
			parent := (i - 1) / 2
			if sh.h[parent] <= sh.h[i] {
				break
			}
			sh.h[parent], sh.h[i] = sh.h[i], sh.h[parent]
			i = parent
		}
		if len(sh.h) == sh.k {
			sh.eff.Store(int64(sh.h[0]))
			sh.raises.Add(1)
		}
		return
	}
	if sup <= sh.h[0] {
		return
	}
	sh.h[0] = sup
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(sh.h) && sh.h[l] < sh.h[smallest] {
			smallest = l
		}
		if r < len(sh.h) && sh.h[r] < sh.h[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		sh.h[i], sh.h[smallest] = sh.h[smallest], sh.h[i]
		i = smallest
	}
	if m := int64(sh.h[0]); m > sh.eff.Load() {
		sh.eff.Store(m)
		sh.raises.Add(1)
	}
}

// threshold is the pruning bound the class recursion mines against: a
// fixed floor (the caller's minsup) possibly raised at runtime by a
// top-k support heap. With a nil heap, current() is a constant — the
// pre-engine behaviour, byte- and counter-identical.
type threshold struct {
	floor int
	heap  *supportHeap
}

func fixedThreshold(minsup int) *threshold { return &threshold{floor: minsup} }

// current returns the effective minimum support right now. It is read
// once per sub-class (i-iteration or recursion entry), never inside the
// intersection inner loop.
func (t *threshold) current() int {
	if t.heap == nil {
		return t.floor
	}
	if e := int(t.heap.eff.Load()); e > t.floor {
		return e
	}
	return t.floor
}

// worker bundles the per-goroutine mining state every policy explores
// with: the run (or worker-local) Stats, the run options, the shared
// threshold, a scratch arena, and the policy's extra-counter block.
type worker struct {
	st   *Stats
	opts Options
	th   *threshold
	ar   *arena
	ext  any
}

// ExplorePolicy is a search strategy over one equivalence class: the
// all-frequent recursion of figure 3, the MaxEclat lookahead search, the
// dEclat diffset recursion, or the CHARM closed-set search. Policies are
// stateless values; per-run counters that Stats does not cover live in
// the ext block (newExt per worker, mergeExt at run end).
type ExplorePolicy interface {
	// newExt allocates the policy's extra-counter block (nil if none).
	newExt() any
	// mergeExt folds one worker's block into the run block.
	mergeExt(dst, src any)
	// explore mines one class's members, emitting every (itemset,
	// support) the policy's output contract includes.
	explore(ctx context.Context, w *worker, members []member, emit Emitter)
}

// policyAll is the paper's Compute_Frequent: emit every frequent itemset
// derivable from the class (diffset auto-transition included).
type policyAll struct{}

func (policyAll) newExt() any       { return nil }
func (policyAll) mergeExt(_, _ any) {}
func (policyAll) explore(ctx context.Context, w *worker, members []member, emit Emitter) {
	computeFrequent(ctx, members, w.th, w.st, w.opts, w.ar, emit)
}

// maxExt carries the MaxEclat lookahead counters.
type maxExt struct {
	lookaheads int64
	hits       int64
}

// policyMaximal is the MaxEclat hybrid search: emit locally-maximal sets
// only (the caller applies the global subsumption filter).
type policyMaximal struct{}

func (policyMaximal) newExt() any { return &maxExt{} }
func (policyMaximal) mergeExt(dst, src any) {
	d, s := dst.(*maxExt), src.(*maxExt)
	d.lookaheads += s.lookaheads
	d.hits += s.hits
}
func (policyMaximal) explore(ctx context.Context, w *worker, members []member, emit Emitter) {
	computeMaximal(ctx, members, w.th, w.st, w.ext.(*maxExt), w.ar, emit)
}

// diffExt carries the diffset byte-volume counter.
type diffExt struct {
	listBytes int64
}

// policyDiffsets is pure dEclat: every sub-class takes the diffset first
// transition immediately instead of waiting for the density break-even.
type policyDiffsets struct{}

func (policyDiffsets) newExt() any { return &diffExt{} }
func (policyDiffsets) mergeExt(dst, src any) {
	dst.(*diffExt).listBytes += src.(*diffExt).listBytes
}
func (policyDiffsets) explore(ctx context.Context, w *worker, members []member, emit Emitter) {
	lb := &w.ext.(*diffExt).listBytes
	for i := 0; i < len(members)-1; i++ {
		if ctx.Err() != nil {
			return
		}
		diffTransition(ctx, members, i, w.th, w.st, w.ar, lb, emit)
	}
}

// charmExt carries the CHARM merge/subsumption counters and the run's
// closed-set accumulator (CHARM is a single global task, so there is
// exactly one).
type charmExt struct {
	merges int64
	subs   int64
	acc    *charmAcc
}

// policyCharm is the CHARM closed-set search over the singleton roots.
// It is not class-decomposable (extensions merge across prefixes), so
// the engine runs it as one task; emission happens once, from the
// accumulator, after the search completes.
type policyCharm struct{}

func (policyCharm) newExt() any {
	return &charmExt{acc: &charmAcc{byHash: map[int64][]mining.FrequentItemset{}}}
}
func (policyCharm) mergeExt(dst, src any) {
	d, s := dst.(*charmExt), src.(*charmExt)
	d.merges += s.merges
	d.subs += s.subs
	if d.acc == nil || len(d.acc.byHash) == 0 {
		d.acc = s.acc
	}
}
func (policyCharm) explore(ctx context.Context, w *worker, members []member, emit Emitter) {
	ext := w.ext.(*charmExt)
	nodes := make([]*charmNode, len(members))
	for i, m := range members {
		nodes[i] = &charmNode{set: m.set, tids: m.tids}
	}
	charmExtend(ctx, nodes, w.th.current(), ext.acc, w.st, ext)
	for _, bucket := range ext.acc.byHash {
		for _, f := range bucket {
			emit(f.Set, f.Support)
		}
	}
}

// engine is the class-task engine every Mine* entry point binds a policy
// to: it owns class iteration, emit filtering (targeted queries), top-k
// threshold raising, per-class stats flushing, ctx checks, and — under
// Workers > 1 — the work-stealing deques with the deterministic
// class-index-order merge.
type engine struct {
	v    *vertical
	th   *threshold
	opts Options
	pol  ExplorePolicy
	must []itemset.Item // canonical (sorted, deduped) MustContain
}

func newEngine(v *vertical, minsup int, opts Options, pol ExplorePolicy) *engine {
	th := fixedThreshold(minsup)
	if opts.TopK > 0 {
		th = &threshold{floor: minsup, heap: newSupportHeap(opts.TopK)}
	}
	return &engine{v: v, th: th, opts: opts, pol: pol, must: canonMust(opts.MustContain)}
}

// wrapEmit layers the engine's emit hooks under a sink: the targeted
// containment filter first (only matching itemsets reach the output or
// the heap), then the top-k support offer.
func (e *engine) wrapEmit(sink Emitter) Emitter {
	emit := sink
	if len(e.must) > 0 {
		must, inner := e.must, emit
		emit = func(set itemset.Itemset, sup int) {
			if containsAll(set, must) {
				inner(set, sup)
			}
		}
	}
	if e.th.heap != nil {
		heap, inner := e.th.heap, emit
		emit = func(set itemset.Itemset, sup int) {
			heap.offer(sup)
			inner(set, sup)
		}
	}
	return emit
}

// run mines every class of e.v, delivering emissions to sink in
// class-index order (the sequential mining order) regardless of worker
// count. ar is the sequential path's scratch arena (parallel workers own
// their own); the returned value is the policy's merged ext block.
func (e *engine) run(ctx context.Context, workers int, st *Stats, ar *arena, sink Emitter) (any, error) {
	if e.th.heap != nil {
		// Seed the heap with the already-known L1/L2 supports so the
		// effective threshold starts rising before the first class.
		for _, f := range e.v.res.Itemsets {
			e.th.heap.offer(f.Support)
		}
	}
	if workers > 1 {
		return e.runParallel(ctx, workers, st, sink)
	}
	return e.runSequential(ctx, st, ar, sink)
}

// runSequential is the single-goroutine driver: mine class by class,
// flushing the intersection counters to the metrics registry at class
// granularity.
func (e *engine) runSequential(ctx context.Context, st *Stats, ar *arena, sink Emitter) (any, error) {
	tr := obsv.TraceFrom(ctx)
	sp := tr.Start("asynchronous")
	ext := e.pol.newExt()
	w := &worker{st: st, opts: e.opts, th: e.th, ar: ar, ext: ext}
	emit := e.wrapEmit(sink)
	for ci := range e.v.classes {
		if err := ctx.Err(); err != nil {
			return ext, err
		}
		before := *st
		e.v.acquire(ci)
		e.pol.explore(ctx, w, e.v.members(ci, e.opts.Representation, &st.Kernel), emit)
		e.v.release(ci)
		flushStats(&before, st)
		mClasses.Inc()
	}
	sp.End()
	return ext, ctx.Err()
}

// finish applies the engine's post-mine output shaping shared by every
// all-collection entry point: canonical sort, then — under TopK — the
// support-descending truncation, plus the raise-count metric.
func (e *engine) finish(res *mining.Result, st *Stats) {
	res.Sort()
	st.EffectiveMinSup = e.th.current()
	if e.th.heap != nil {
		res.TruncateTopK(e.th.heap.k)
		mTopKRaises.Add(e.th.heap.raises.Load())
	}
}

// canonMust returns the canonical targeted-item list: sorted ascending,
// deduplicated, nil when empty.
func canonMust(must []itemset.Item) []itemset.Item {
	if len(must) == 0 {
		return nil
	}
	out := append([]itemset.Item(nil), must...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, it := range out {
		if i == 0 || it != out[n-1] {
			out[n] = it
			n++
		}
	}
	return out[:n]
}

// containsAll reports whether set contains every item of must (both
// sorted ascending; a merge walk).
func containsAll(set itemset.Itemset, must []itemset.Item) bool {
	i := 0
	for _, it := range set {
		if i == len(must) {
			return true
		}
		if it == must[i] {
			i++
		} else if it > must[i] {
			return false
		}
	}
	return i == len(must)
}

// classCanContain reports whether the sub-lattice rooted at an L2
// equivalence class can produce an itemset containing every targeted
// item: every itemset derivable from the class is a subset of the class
// prefix plus its members' last items.
func classCanContain(c *eqclass.Class, must []itemset.Item) bool {
	for _, x := range must {
		ok := false
		for _, p := range c.Prefix {
			if p == x {
				ok = true
				break
			}
		}
		if !ok {
			for _, m := range c.Members {
				if m[len(m)-1] == x {
					ok = true
					break
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// filterClasses prunes the classes a targeted query can never satisfy,
// counting the skips. It returns classes unchanged when must is empty.
func filterClasses(classes []eqclass.Class, must []itemset.Item) []eqclass.Class {
	if len(must) == 0 {
		return classes
	}
	kept := classes[:0]
	skipped := 0
	for i := range classes {
		if classCanContain(&classes[i], must) {
			kept = append(kept, classes[i])
		} else {
			skipped++
		}
	}
	if skipped > 0 {
		mTargetedSkipped.Add(int64(skipped))
	}
	return kept
}
