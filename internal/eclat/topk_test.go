package eclat

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/testutil"
	"repro/internal/tidlist"
)

// cloneResult deep-copies a result so oracle truncation/filtering cannot
// alias the mined slice.
func cloneResult(r *mining.Result) *mining.Result {
	out := &mining.Result{MinSup: r.MinSup, NumTransactions: r.NumTransactions}
	out.Itemsets = append([]mining.FrequentItemset(nil), r.Itemsets...)
	return out
}

// filterContains is the targeted-query oracle: the full mine post-filtered
// to the itemsets containing every queried item.
func filterContains(r *mining.Result, must []itemset.Item) *mining.Result {
	canon := canonMust(must)
	out := &mining.Result{MinSup: r.MinSup, NumTransactions: r.NumTransactions}
	for _, f := range r.Itemsets {
		if containsAll(f.Set, canon) {
			out.Itemsets = append(out.Itemsets, f)
		}
	}
	return out
}

// TestTopKMatchesTruncatedFullMine is the headline top-k contract: the
// adaptive mine (support heap raising the effective threshold mid-run)
// returns byte-identical output to mining everything at the caller's
// floor and truncating afterwards — at every k, representation, and
// worker count, ties at the kth support included.
func TestTopKMatchesTruncatedFullMine(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1500))
	minsup := d.MinSupCount(0.6)
	for _, repr := range []tidlist.Repr{tidlist.ReprAuto, tidlist.ReprSparse, tidlist.ReprRoaring} {
		full, _, err := MineSequentialOpts(context.Background(), d, minsup, Options{Representation: repr})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 5, 17, 100, full.Len(), full.Len() + 50} {
			want := cloneResult(full)
			want.TruncateTopK(k)
			opts := Options{Representation: repr, TopK: k}
			got, st, err := MineSequentialOpts(context.Background(), d, minsup, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !byteIdentical(got, want) {
				t.Fatalf("repr=%v k=%d: top-k mine differs from truncated full mine:\n%s",
					repr, k, mining.Diff(got, want))
			}
			if st.EffectiveMinSup < minsup {
				t.Fatalf("repr=%v k=%d: EffectiveMinSup %d below floor %d", repr, k, st.EffectiveMinSup, minsup)
			}
			if k < full.Len() && st.EffectiveMinSup == minsup {
				t.Errorf("repr=%v k=%d: threshold never rose above the floor on a truncating query", repr, k)
			}
			for workers := 1; workers <= 8; workers *= 2 {
				o := opts
				o.Workers = workers
				pgot, pst, err := MineParallelLocal(context.Background(), d, minsup, o)
				if err != nil {
					t.Fatal(err)
				}
				if !byteIdentical(pgot, want) {
					t.Fatalf("repr=%v k=%d workers=%d: parallel top-k differs:\n%s",
						repr, k, workers, mining.Diff(pgot, want))
				}
				if pst.EffectiveMinSup < minsup {
					t.Fatalf("repr=%v k=%d workers=%d: EffectiveMinSup %d below floor",
						repr, k, workers, pst.EffectiveMinSup)
				}
			}
		}
	}
}

// TestTopKRandomDatabases anchors the equivalence on the brute-force
// oracle over random databases, so the property does not secretly depend
// on the generator's distribution.
func TestTopKRandomDatabases(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		d := testutil.RandomDB(rng, 60+rng.Intn(60), 12, 8)
		minsup := 2 + rng.Intn(3)
		brute := testutil.BruteForce(d, minsup)
		k := 1 + rng.Intn(brute.Len()+3)
		want := cloneResult(brute)
		want.TruncateTopK(k)
		got, _, err := MineSequentialOpts(context.Background(), d, minsup, Options{TopK: k})
		if err != nil {
			t.Fatal(err)
		}
		if !byteIdentical(got, want) {
			t.Fatalf("trial=%d minsup=%d k=%d: top-k differs from brute force:\n%s",
				trial, minsup, k, mining.Diff(got, want))
		}
	}
}

// TestTargetedMatchesPostFilter: a MustContain query returns exactly the
// full mine post-filtered to supersets of the queried items, in the same
// order — at every worker count, including queries over infrequent or
// unknown items (empty result).
func TestTargetedMatchesPostFilter(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1500))
	minsup := d.MinSupCount(0.6)
	full, _, err := MineSequentialOpts(context.Background(), d, minsup, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pick anchors from real output: a frequent singleton, a frequent
	// pair's items, and an item that never appears.
	var single itemset.Item = -1
	var pair itemset.Itemset
	for _, f := range full.Itemsets {
		if f.Set.K() == 1 && single < 0 {
			single = f.Set[0]
		}
		if f.Set.K() == 2 && pair == nil {
			pair = f.Set
		}
	}
	if single < 0 || pair == nil {
		t.Fatal("seed dataset produced no singleton or pair — test setup broken")
	}
	queries := [][]itemset.Item{
		{single},
		{pair[0], pair[1]},
		{pair[1], pair[0], pair[1]}, // unsorted with duplicates: canonicalization
		{9999},                      // unknown item: empty result
	}
	for qi, must := range queries {
		want := filterContains(full, must)
		for workers := 0; workers <= 4; workers += 2 {
			opts := Options{MustContain: must, Workers: workers}
			var got *mining.Result
			var err error
			if workers == 0 {
				got, _, err = MineSequentialOpts(context.Background(), d, minsup, opts)
			} else {
				got, _, err = MineParallelLocal(context.Background(), d, minsup, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !byteIdentical(got, want) {
				t.Fatalf("query=%d workers=%d: targeted mine differs from post-filter:\n%s",
					qi, workers, mining.Diff(got, want))
			}
		}
	}
}

// TestTopKTargetedCompose: TopK and MustContain together mean "the k
// best itemsets containing these items" — the oracle filters first, then
// truncates.
func TestTopKTargetedCompose(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1500))
	minsup := d.MinSupCount(0.6)
	full, _, err := MineSequentialOpts(context.Background(), d, minsup, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var single itemset.Item = -1
	for _, f := range full.Itemsets {
		if f.Set.K() == 1 {
			single = f.Set[0]
			break
		}
	}
	must := []itemset.Item{single}
	for _, k := range []int{1, 3, 10} {
		want := filterContains(full, must)
		want.TruncateTopK(k)
		for _, workers := range []int{0, 4} {
			opts := Options{TopK: k, MustContain: must, Workers: workers}
			var got *mining.Result
			var err error
			if workers == 0 {
				got, _, err = MineSequentialOpts(context.Background(), d, minsup, opts)
			} else {
				got, _, err = MineParallelLocal(context.Background(), d, minsup, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !byteIdentical(got, want) {
				t.Fatalf("k=%d workers=%d: composed query differs from filter-then-truncate:\n%s",
					k, workers, mining.Diff(got, want))
			}
		}
	}
}

// TestTopKTargetedCancellation lands cancellation deterministically in
// the middle of top-k and targeted runs. A run either surfaces
// context.Canceled with no result, or — when the (possibly
// class-pruned) mine finished before the nth ctx check — returns the
// exact oracle answer; nothing in between. At least one n must land
// mid-mine per configuration or the test isn't exercising cancellation.
func TestTopKTargetedCancellation(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1500))
	minsup := d.MinSupCount(0.6)
	full, _, err := MineSequentialOpts(context.Background(), d, minsup, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var single itemset.Item = -1
	for _, f := range full.Itemsets {
		if f.Set.K() == 1 {
			single = f.Set[0]
			break
		}
	}
	for _, opts := range []Options{
		{TopK: 5},
		{MustContain: []itemset.Item{single}},
		{TopK: 5, MustContain: []itemset.Item{single}},
	} {
		want := filterContains(full, opts.MustContain)
		want.TruncateTopK(opts.TopK)
		canceled := 0
		for _, n := range []int64{0, 3, 50, 500} {
			ctx := &cancelAfterN{Context: context.Background(), n: n}
			res, _, err := MineSequentialOpts(ctx, d, minsup, opts)
			switch {
			case errors.Is(err, context.Canceled):
				canceled++
				if res != nil {
					t.Fatalf("sequential opts=%+v n=%d: canceled run returned a result", opts, n)
				}
			case err == nil:
				if !byteIdentical(res, want) {
					t.Fatalf("sequential opts=%+v n=%d: uncanceled run returned wrong output:\n%s",
						opts, n, mining.Diff(res, want))
				}
			default:
				t.Fatalf("sequential opts=%+v n=%d: err = %v", opts, n, err)
			}
			pctx := &cancelAfterN{Context: context.Background(), n: n}
			popts := opts
			popts.Workers = 4
			pres, _, perr := MineParallelLocal(pctx, d, minsup, popts)
			switch {
			case errors.Is(perr, context.Canceled):
				if pres != nil {
					t.Fatalf("parallel opts=%+v n=%d: canceled run returned a result", opts, n)
				}
			case perr == nil:
				if !byteIdentical(pres, want) {
					t.Fatalf("parallel opts=%+v n=%d: uncanceled run returned wrong output:\n%s",
						opts, n, mining.Diff(pres, want))
				}
			default:
				t.Fatalf("parallel opts=%+v n=%d: err = %v", opts, n, perr)
			}
		}
		if canceled == 0 {
			t.Fatalf("opts=%+v: no n landed mid-mine — cancellation untested", opts)
		}
	}
}

// FuzzTopKHeap fuzzes the concurrent support heap against the sort-based
// oracle: after offering any support sequence, the effective threshold
// must equal the kth-largest support seen (0 while fewer than k seen),
// and must never exceed it — the soundness condition that makes top-k
// pruning lossless.
func FuzzTopKHeap(f *testing.F) {
	f.Add(uint8(3), []byte{5, 1, 9, 9, 2, 7})
	f.Add(uint8(1), []byte{4})
	f.Add(uint8(8), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, kRaw uint8, data []byte) {
		k := int(kRaw)%16 + 1
		sh := newSupportHeap(k)
		var seen []int
		for _, b := range data {
			sup := int(b) + 1 // supports are always ≥ 1
			sh.offer(sup)
			seen = append(seen, sup)
			sort.Sort(sort.Reverse(sort.IntSlice(seen)))
			want := 0
			if len(seen) >= k {
				want = seen[k-1]
			}
			if got := int(sh.eff.Load()); got != want {
				t.Fatalf("k=%d after %d offers: eff = %d, want kth-largest %d (seen %v)",
					k, len(seen), got, want, seen)
			}
		}
	})
}
