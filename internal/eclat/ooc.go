package eclat

import (
	"sort"

	"repro/internal/eqclass"
	"repro/internal/obsv"
	"repro/internal/tidlist"
)

const mnClassRefetches = "eclat_class_refetches_total"

var mClassRefetches = obsv.Default.Counter(mnClassRefetches, "equivalence classes whose pair tid-lists were re-derived from item sets under a residency budget")

// Residency is the engine's view of a store residency budget
// (structurally satisfied by *store.Residency, so neither package
// imports the other; the root package wires them together). The engine
// calls Plan once before mining, brackets every class mine with
// Acquire/Release, and the entry point defers Done. All methods must be
// safe for concurrent use by worker goroutines.
type Residency interface {
	// ItemSegment returns the bundle segment where item's tid-list
	// starts (-1 unknown) — the locality key class scheduling sorts by.
	ItemSegment(item int) int
	// Plan announces, before mining starts, which items each class
	// (addressed by index) will read.
	Plan(classes [][]int)
	// Acquire is called before class ci is mined; its segments must be
	// resident until the matching Release.
	Acquire(ci int)
	// Release is called after class ci is mined (even when mining was
	// cut short by cancellation); segments no pending class needs may be
	// evicted.
	Release(ci int)
	// Done ends the run: everything may be evicted. Idempotent.
	Done()
}

// oocState is the budgeted counterpart of vertical.lists: instead of
// retaining every surviving L2 pair tid-list for the whole run — the
// allocation the budget exists to avoid — it keeps only the item sets
// (views over the store mapping) and re-derives a class's pair lists
// when the class is mined, inside its Acquire/Release window. The
// re-intersections charge none of the run's work counters (they would
// break counter-equality with the in-core path); their volume is
// observable as eclat_class_refetches_total.
type oocState struct {
	items  []tidlist.Set
	minsup int
	res    Residency
}

// classMembers re-derives the sorted, representation-resolved member
// list of class from the item sets. The intersections use a local
// scratch and a throwaway kernel-stats block; only the final
// representation conversion charges ks, exactly as the in-core
// classMembers does.
func (o *oocState) classMembers(class *eqclass.Class, repr tidlist.Repr, ks *tidlist.KernelStats) []member {
	mClassRefetches.Inc()
	var refetch tidlist.KernelStats
	var scratch tidlist.Set
	out := make([]member, 0, len(class.Members))
	for _, set := range class.Members {
		tids, _, ok := tidlist.IntersectSetsSC(scratch, o.items[int(set[0])], o.items[int(set[1])], o.minsup, &refetch)
		scratch = tids
		if !ok {
			// Unreachable in practice: only pairs that passed minsup
			// during L2 become class members, and the item sets have not
			// changed since.
			continue
		}
		out = append(out, member{set: set, tids: append(tidlist.List(nil), tidlist.TIDsOf(tids)...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].set.Less(out[j].set) })
	applyClassRepr(out, repr, ks)
	return out
}

// classItems returns the distinct items class c reads: its prefix item
// plus every extension, i.e. the union of its member pairs.
func classItems(c *eqclass.Class) []int {
	seen := make(map[int]bool, len(c.Members)+1)
	out := make([]int, 0, len(c.Members)+1)
	for _, set := range c.Members {
		for _, it := range set {
			if !seen[int(it)] {
				seen[int(it)] = true
				out = append(out, int(it))
			}
		}
	}
	sort.Ints(out)
	return out
}

// orderClassesByLocality stably reorders classes so that classes whose
// item tid-lists start in the same or adjacent bundle segments run
// adjacently — sequential segment traversal instead of random paging.
// Classes with no known segment sort last. The canonical Result.Sort
// makes the output independent of class order, so this is purely a
// paging optimization.
func orderClassesByLocality(classes []eqclass.Class, res Residency) {
	keys := make([]int, len(classes))
	for ci := range classes {
		key := int(^uint(0) >> 1) // unknown → last
		for _, it := range classItems(&classes[ci]) {
			if s := res.ItemSegment(it); s >= 0 && s < key {
				key = s
			}
		}
		keys[ci] = key
	}
	order := make([]int, len(classes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	sorted := make([]eqclass.Class, len(classes))
	for i, ci := range order {
		sorted[i] = classes[ci]
	}
	copy(classes, sorted)
}

// planResidency hands the per-class item map to the residency layer.
// Must run after any reordering: classes are addressed by final index.
func planResidency(classes []eqclass.Class, res Residency) {
	plan := make([][]int, len(classes))
	for ci := range classes {
		plan[ci] = classItems(&classes[ci])
	}
	res.Plan(plan)
}

// spanSchedule deals the locality-ordered classes to workers as
// contiguous spans balanced by the same C(s,2)+1 weight the greedy
// schedule uses. Under a residency budget the greedy deal is wrong: it
// interleaves classes across workers, so every worker touches every
// segment. Contiguous spans keep each worker inside a consecutive
// segment range; work stealing still rebalances the tail, trading some
// locality for utilization only when a worker actually runs dry.
func spanSchedule(classes []eqclass.Class, workers int) [][]int {
	out := make([][]int, workers)
	var total int64
	for i := range classes {
		total += classes[i].Weight() + 1
	}
	var acc int64
	w := 0
	for ci := range classes {
		if w < workers-1 && acc >= (total*int64(w+1)+int64(workers)-1)/int64(workers) {
			w++
		}
		out[w] = append(out[w], ci)
		acc += classes[ci].Weight() + 1
	}
	return out
}

// acquire/release bracket one class mine with the residency layer; they
// are no-ops for in-core runs so the engine drivers call them
// unconditionally.
func (v *vertical) acquire(ci int) {
	if v.ooc != nil {
		v.ooc.res.Acquire(ci)
	}
}

func (v *vertical) release(ci int) {
	if v.ooc != nil {
		v.ooc.res.Release(ci)
	}
}
