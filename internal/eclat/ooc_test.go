package eclat

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/tidlist"
)

// oocDataset persists a random database into a store dataset with a
// deliberately tiny segment size, so even a small test bundle spans many
// segments and partitions several tid-lists.
func oocDataset(t testing.TB, numTx int, segBytes int64) *store.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	d := testutil.RandomDB(rng, numTx, 30, 8)
	path := filepath.Join(t.TempDir(), "ooc.ds")
	if err := store.CreateDatasetSeg(path, store.DatasetMeta("ooc", "test", d), d, store.VerticalLists(d), segBytes); err != nil {
		t.Fatalf("CreateDatasetSeg: %v", err)
	}
	ds, err := store.OpenDataset(path)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

// TestOOCMatchesInCoreExactly is the acceptance contract of the
// out-of-core path: for every representation, worker count and budget,
// a budgeted mine over the store mapping is byte-identical to the
// in-core mine AND reports exactly the same work counters — the budget
// changes paging behavior, never the algorithm.
func TestOOCMatchesInCoreExactly(t *testing.T) {
	const segBytes = 64
	ds := oocDataset(t, 250, segBytes)
	in := VerticalInput{NumTransactions: ds.NumTransactions(), Items: ds.Sets(tidlist.ReprSparse)}
	minsup := 3

	for _, repr := range []tidlist.Repr{tidlist.ReprAuto, tidlist.ReprSparse, tidlist.ReprBitset, tidlist.ReprRoaring} {
		opts := Options{Representation: repr, Workers: 1}
		want, wantSt, err := MineVerticalLocal(context.Background(), in, minsup, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes := resultBytes(t, want)

		for _, budget := range []int64{segBytes, 2 * segBytes} {
			for _, workers := range []int{1, 2, 4} {
				name := fmt.Sprintf("repr=%v/budget=%d/workers=%d", repr, budget, workers)
				r := ds.NewResidency(budget)
				if r == nil {
					t.Fatalf("%s: NewResidency = nil (mapping %d bytes)", name, ds.BytesMapped())
				}
				bin := in
				bin.Residency = r
				got, st, err := MineVerticalLocal(context.Background(), bin, minsup,
					Options{Representation: repr, Workers: workers})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !bytes.Equal(resultBytes(t, got), wantBytes) {
					t.Fatalf("%s: budgeted result differs from in-core", name)
				}
				if st.Intersections != wantSt.Intersections ||
					st.ShortCircuited != wantSt.ShortCircuited ||
					st.IntersectOps != wantSt.IntersectOps ||
					st.Classes != wantSt.Classes ||
					st.DiffsetClasses != wantSt.DiffsetClasses ||
					st.Kernel != wantSt.Kernel {
					t.Fatalf("%s: counters diverged from in-core:\n got %+v\nwant %+v", name, st, wantSt)
				}
				if n := r.ResidentSegments(); n != 0 {
					t.Fatalf("%s: %d segments still resident after the run", name, n)
				}
			}
		}
	}
}

// TestOOCUnlimitedBudgetIsInCore pins the fallback: a budget the whole
// mapping fits under yields no residency tracker at all, so the caller
// mines in-core through the identical harness.
func TestOOCUnlimitedBudgetIsInCore(t *testing.T) {
	ds := oocDataset(t, 120, 64)
	if r := ds.NewResidency(ds.BytesMapped()); r != nil {
		t.Fatal("budget covering the whole mapping produced a residency tracker")
	}
}

// cutoffCtx is a context whose Err flips to context.Canceled after a
// fixed number of polls — a deterministic mid-mine cancellation,
// independent of timing.
type cutoffCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *cutoffCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestOOCCancelReleasesResidency proves the deferred Done runs on the
// cancellation path: a mine cut off mid-run under a tight budget leaves
// zero resident segments behind.
func TestOOCCancelReleasesResidency(t *testing.T) {
	const segBytes = 64
	ds := oocDataset(t, 250, segBytes)
	r := ds.NewResidency(segBytes)
	if r == nil {
		t.Fatal("NewResidency = nil")
	}
	in := VerticalInput{
		NumTransactions: ds.NumTransactions(),
		Items:           ds.Sets(tidlist.ReprSparse),
		Residency:       r,
	}
	// Let the L2 pass and a few classes through, then cancel.
	ctx := &cutoffCtx{Context: context.Background(), after: 40}
	_, _, err := MineVerticalLocal(ctx, in, 3, Options{Workers: 1})
	if err == nil {
		t.Fatal("cut-off mine returned nil error")
	}
	if n := r.ResidentSegments(); n != 0 {
		t.Fatalf("%d segments resident after canceled mine", n)
	}
}

// fakeResidency records the call protocol for scheduling unit tests.
type fakeResidency struct {
	segs     map[int]int
	acquired []int
	released []int
	planned  [][]int
	done     bool
}

func (f *fakeResidency) ItemSegment(item int) int {
	if s, ok := f.segs[item]; ok {
		return s
	}
	return -1
}
func (f *fakeResidency) Plan(classes [][]int) { f.planned = classes }
func (f *fakeResidency) Acquire(ci int)       { f.acquired = append(f.acquired, ci) }
func (f *fakeResidency) Release(ci int)       { f.released = append(f.released, ci) }
func (f *fakeResidency) Done()                { f.done = true }

func classOf(items ...int) eqclass.Class {
	var c eqclass.Class
	for _, it := range items[1:] {
		c.Members = append(c.Members, itemset.Itemset{itemset.Item(items[0]), itemset.Item(it)})
	}
	return c
}

// TestOrderClassesByLocality pins the scheduling key: classes sort by
// the smallest segment any of their items starts in, stably, with
// unknown-segment classes last.
func TestOrderClassesByLocality(t *testing.T) {
	res := &fakeResidency{segs: map[int]int{0: 5, 1: 5, 2: 0, 3: 0, 4: 2}}
	classes := []eqclass.Class{
		classOf(0, 1), // seg 5
		classOf(2, 3), // seg 0
		classOf(9, 8), // unknown
		classOf(4, 0), // min(2, 5) = 2
	}
	orderClassesByLocality(classes, res)
	want := [][2]int{{2, 3}, {4, 0}, {0, 1}, {9, 8}}
	for i, w := range want {
		got := classes[i].Members[0]
		if int(got[0]) != w[0] || int(got[1]) != w[1] {
			t.Fatalf("position %d: class %v, want %v", i, got, w)
		}
	}
}

// TestSpanScheduleCoversAllClassesContiguously checks the OOC deal:
// every class exactly once, in order, as contiguous per-worker spans.
func TestSpanScheduleCoversAllClassesContiguously(t *testing.T) {
	classes := make([]eqclass.Class, 13)
	for i := range classes {
		classes[i] = classOf(i, i+20, i+40)
	}
	for _, workers := range []int{1, 2, 3, 4, 16} {
		sched := spanSchedule(classes, workers)
		if len(sched) != workers {
			t.Fatalf("workers=%d: %d spans", workers, len(sched))
		}
		next := 0
		for w, span := range sched {
			for _, ci := range span {
				if ci != next {
					t.Fatalf("workers=%d: worker %d got class %d, want %d (non-contiguous deal)", workers, w, ci, next)
				}
				next++
			}
		}
		if next != len(classes) {
			t.Fatalf("workers=%d: %d of %d classes dealt", workers, next, len(classes))
		}
	}
}
