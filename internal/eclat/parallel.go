package eclat

import (
	"context"
	"sort"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paircount"
	"repro/internal/tidlist"
)

// Phase names used in the per-processor time break-up (Table 2 reports
// "Setup" = PhaseInit + PhaseTransform).
const (
	PhaseInit      = "init"
	PhaseTransform = "transform"
	PhaseAsync     = "async"
	PhaseReduce    = "reduce"
)

// pairList is the unit of the transformation-phase exchange: a partial
// tid-list for one frequent 2-itemset, tagged with its pair.
type pairList struct {
	pair tidlist.Pair
	tids tidlist.List
}

// MineOpts runs four-phase parallel Eclat (figure 2) on the simulated
// cluster. The database is block-partitioned across all T processors;
// each processor executes the SPMD program. The returned result is the
// globally assembled set of frequent itemsets, identical to
// MineSequentialOpts's on the same inputs. TopK and MustContain are
// ignored on the cluster forms (use the local entry points).
func MineOpts(cl *cluster.Cluster, d *db.Database, minsup int, opts Options) (*mining.Result, cluster.Report) {
	if minsup < 1 {
		minsup = 1
	}
	opts.TopK, opts.MustContain = 0, nil
	globalItems, globalPairs, locals := clusterMine(cl, d, minsup, opts, policyAll{})

	// Assemble the global result exactly as processor 0 prints it.
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	for it, c := range globalItems {
		if c >= minsup {
			res.Add(itemset.Itemset{itemset.Item(it)}, c)
		}
	}
	for _, fp := range globalPairs {
		res.Add(fp.Pair.Itemset(), fp.Count)
	}
	for _, local := range locals {
		res.Itemsets = append(res.Itemsets, local...)
	}
	res.Sort()
	rep := cl.Report()
	rep.Representation = opts.Representation.String()
	return res, rep
}

// clusterMine is the four-phase SPMD program shared by every simulated-
// cluster entry point: initialization (section 5.1), transformation with
// the scheduled tid-list exchange (section 5.2), the asynchronous phase
// mining each owned class through pol (section 5.3), and the final
// reduction gathering the per-processor emissions (section 5.4). It
// returns the globally reduced item/pair counts and each processor's
// emitted itemsets; result assembly differs per policy and stays with
// the caller.
func clusterMine(cl *cluster.Cluster, d *db.Database, minsup int, opts Options, pol ExplorePolicy) (globalItems []int, globalPairs []paircount.FrequentPair, locals [][]mining.FrequentItemset) {
	t := cl.NumProcs()
	parts := d.Partition(t)
	locals = make([][]mining.FrequentItemset, t)

	cl.Run(func(p *cluster.Proc) {
		part := parts[p.ID()]

		// ---- Initialization phase (section 5.1) -------------------------
		p.SetPhase(PhaseInit)
		p.ChargeScan(part.SizeBytes(), p.HostProcs())
		itemCounts := make([]int, d.NumItems)
		pc := paircount.New(d.NumItems)
		var itemOps int64
		for _, tx := range part.Transactions {
			for _, it := range tx.Items {
				itemCounts[it]++
			}
			itemOps += int64(len(tx.Items))
		}
		p.ChargeCPU(itemOps)
		p.ChargeOps(cluster.OpPairCount, pc.AddPartition(part))
		gItems := cluster.SumReduceInt(p, itemCounts)
		gPairVec := cluster.SumReduceInt32(p, pc.Counts())
		gpc := paircount.FromCounts(d.NumItems, gPairVec)
		freqPairs := gpc.Frequent(minsup)
		p.ChargeCPU(int64(gpc.NumCells())) // threshold sweep over the triangular array
		if p.ID() == 0 {
			globalItems = gItems
			globalPairs = freqPairs
		}

		// ---- Transformation phase (section 5.2) -------------------------
		p.SetPhase(PhaseTransform)
		l2 := make([]itemset.Itemset, len(freqPairs))
		for i, fp := range freqPairs {
			l2[i] = fp.Pair.Itemset()
		}
		classes := eqclass.PruneSingletons(eqclass.Partition(l2))
		var sched eqclass.Assignment
		switch {
		case opts.RoundRobinSchedule:
			sched = eqclass.ScheduleRoundRobin(classes, t)
		case opts.SupportWeightedSchedule:
			pairSup := make(map[tidlist.Pair]int, len(freqPairs))
			for _, fp := range freqPairs {
				pairSup[fp.Pair] = fp.Count
			}
			weights := make([]int64, len(classes))
			for ci := range classes {
				ms := classes[ci].Members
				for i := 0; i < len(ms); i++ {
					for j := i + 1; j < len(ms); j++ {
						si := pairSup[tidlist.Pair{A: ms[i][0], B: ms[i][1]}]
						sj := pairSup[tidlist.Pair{A: ms[j][0], B: ms[j][1]}]
						if sj < si {
							si = sj
						}
						weights[ci] += int64(si)
					}
				}
			}
			sched = eqclass.ScheduleByWeight(weights, t)
		default:
			sched = eqclass.Schedule(classes, t)
		}
		p.ChargeCPU(int64(len(classes))) // scheduling sweep

		// Which pairs exist, and who owns each.
		owner := make(map[tidlist.Pair]int)
		want := make(map[tidlist.Pair]bool)
		for ci := range classes {
			for _, m := range classes[ci].Members {
				pr := tidlist.Pair{A: m[0], B: m[1]}
				owner[pr] = sched.Owner[ci]
				want[pr] = true
			}
		}

		// Second local scan: partial tid-lists for all frequent pairs.
		p.ChargeScan(part.SizeBytes(), p.HostProcs())
		partials := tidlist.BuildPairs(part, want)
		var buildOps int64
		for _, tx := range part.Transactions {
			l := int64(len(tx.Items))
			buildOps += l * (l - 1) / 2
		}
		p.ChargeOps(cluster.OpPairCount, buildOps)

		// Exchange: route each partial list to its owner. Payload for
		// ourselves stays local (G at its offset); the rest is R,
		// transmitted over the Memory Channel. Each list crosses the wire
		// in its chosen encoding, so the byte charge is the true encoded
		// size, not unconditionally 4 bytes per tid.
		out := make([][]pairList, t)
		var sentBytes, sentSparse, sentDense int64
		for pr, tids := range partials {
			dst := owner[pr]
			out[dst] = append(out[dst], pairList{pair: pr, tids: tids})
			if dst != p.ID() {
				n, enc := tidlist.EncodedSize(tids, opts.Representation)
				sentBytes += n
				if enc == tidlist.ReprBitset {
					sentDense += n
				} else {
					sentSparse += n
				}
			}
		}
		p.AddNetPayload(sentSparse, sentDense)
		// Deterministic order within each destination payload.
		for dst := range out {
			sort.Slice(out[dst], func(i, j int) bool {
				a, b := out[dst][i].pair, out[dst][j].pair
				if a.A != b.A {
					return a.A < b.A
				}
				return a.B < b.B
			})
		}
		in := cluster.Exchange(p, out, sentBytes)

		// Assemble global tid-lists for owned pairs: concatenate the
		// per-source partials in processor order — block partitions carry
		// increasing TID ranges, so the result is sorted without sorting.
		lists := make(map[tidlist.Pair]tidlist.List)
		var ownedBytes, partialBytes int64
		for _, pl := range partials {
			n, _ := tidlist.EncodedSize(pl, opts.Representation)
			partialBytes += n
		}
		for src := 0; src < t; src++ {
			for _, pl := range in[src] {
				lists[pl.pair] = append(lists[pl.pair], pl.tids...)
			}
		}
		for _, l := range lists {
			n, _ := tidlist.EncodedSize(l, opts.Representation)
			ownedBytes += n
		}
		// The inverted local database is written out to disk and read back
		// at the start of the asynchronous phase (the third and last scan).
		// The transformation works in anonymous memory-mapped regions — the
		// algorithm's one acknowledged weakness ("the one disadvantage of
		// our algorithm is the virtual memory it requires to perform the
		// transformation"): each of the host's processors holds its partial
		// and assembled lists, and overflowing physical memory turns the
		// region traffic into swap traffic.
		if opts.ExternalTransform {
			// External-memory transformation: spill the partial lists to
			// disk as they are built, then merge them into the owned
			// global lists in one more sequential pass. No paging — only
			// bounded buffers live in memory — at the price of writing and
			// re-reading the partials once.
			p.ChargeDiskWrite(partialBytes, p.HostProcs())
			p.ChargeScan(partialBytes, p.HostProcs())
			p.ChargeDiskWrite(ownedBytes, p.HostProcs())
		} else {
			resident := int64(p.HostProcs()) * (ownedBytes + partialBytes)
			factor := p.PageFactor(resident)
			p.ChargeDiskWrite(ownedBytes*factor, p.HostProcs())
		}

		// ---- Asynchronous phase (section 5.3) ---------------------------
		p.SetPhase(PhaseAsync)
		p.ChargeScan(ownedBytes, p.HostProcs())
		var st Stats
		w := &worker{st: &st, opts: opts, th: fixedThreshold(minsup), ar: &arena{}, ext: pol.newExt()}
		var acc []mining.FrequentItemset
		emit := func(set itemset.Itemset, sup int) {
			acc = append(acc, mining.FrequentItemset{Set: set, Support: sup})
		}
		for _, ci := range sched.ClassesOf(p.ID()) {
			pol.explore(context.Background(), w, classMembers(&classes[ci], lists, opts.Representation, &st.Kernel), emit)
		}
		chargeKernel(p, &st)
		locals[p.ID()] = acc

		// ---- Final reduction phase (section 5.4) ------------------------
		p.SetPhase(PhaseReduce)
		var localBytes int64
		for _, f := range acc {
			localBytes += 4*int64(f.Set.K()) + 4
		}
		cluster.Gather(p, localBytes, localBytes)
	})
	return globalItems, globalPairs, locals
}

// chargeKernel charges a processor's asynchronous-phase intersection work
// at the per-kernel rates — element comparisons of the sparse and mixed
// kernels at OpIntersect, words of the dense kernel at OpBitsetWord, and
// the roaring containers at the matching per-container rates (array and
// run containers compare elements like the merge kernel, bitmap
// containers stream words like the dense kernel) — and flushes the run's
// kernel-dispatch counts to the metrics registry.
func chargeKernel(p *cluster.Proc, st *Stats) {
	p.ChargeOps(cluster.OpIntersect, st.Kernel.SparseOps()+st.Kernel.RoaringElemOps())
	p.ChargeOps(cluster.OpBitsetWord, st.Kernel.WordsTouched()+st.Kernel.RoaringWords())
	p.ChargeCPU(st.Intersections)
	var prev Stats
	flushStats(&prev, st)
}
