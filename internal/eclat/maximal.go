package eclat

import (
	"context"
	"sort"

	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/tidlist"
)

// MaxStats extends Stats with the lookahead counters of the maximal
// search.
type MaxStats struct {
	Stats
	Lookaheads    int64 // class-collapse attempts
	LookaheadHits int64 // classes whose full union was frequent
	Candidates    int   // locally-maximal sets before global subsumption filtering
}

// MineMaximalOpts discovers only the maximal frequent itemsets (those
// with no frequent superset) using the MaxEclat hybrid search of the
// authors' companion report [18] ("New algorithms for fast discovery of
// association rules"): the usual bottom-up class recursion is augmented
// with a top-down lookahead that first intersects an entire class's
// tid-lists — if the class's top itemset is frequent, the whole sub-
// lattice collapses into one maximal set without enumerating it.
//
// Supports in the result are exact. The union of the subsets of the
// returned sets equals the full frequent-itemset collection mined by
// MineSequentialOpts at the same threshold (tested property).
//
// The search runs on the class-task engine: opts.Workers > 1 mines the
// classes with the work-stealing pool and the result is identical to the
// sequential run (the global subsumption filter is order-independent).
// opts.Workers ≤ 0 means 1 — the historical sequential default. TopK and
// MustContain are ignored (their adaptive pruning is unsound against the
// maximal output contract).
func MineMaximalOpts(ctx context.Context, d *db.Database, minsup int, opts Options) (*mining.Result, MaxStats, error) {
	if minsup < 1 {
		minsup = 1
	}
	opts.TopK, opts.MustContain = 0, nil
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	var st MaxStats
	st.Workers = workers

	v := buildVertical(ctx, d, minsup, &st.Stats, opts)
	// Candidate maximal sets: the frequent singletons and pairs seeded
	// into v.res (they survive the final filter only if nothing subsumes
	// them), then every locally-maximal set the class search emits.
	cands := append([]mining.FrequentItemset(nil), v.res.Itemsets...)
	eng := newEngine(v, minsup, opts, policyMaximal{})
	ext, err := eng.run(ctx, workers, &st.Stats, &arena{}, func(set itemset.Itemset, sup int) {
		cands = append(cands, mining.FrequentItemset{Set: set, Support: sup})
	})
	me := ext.(*maxExt)
	st.Lookaheads, st.LookaheadHits = me.lookaheads, me.hits
	if err != nil {
		return nil, st, err
	}
	st.Candidates = len(cands)

	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	for _, f := range filterMaximal(cands) {
		res.Add(f.Set, f.Support)
	}
	res.Sort()
	return res, st, nil
}

// computeMaximal mines one class, emitting locally-maximal frequent sets
// (a superset of the globally maximal ones; the caller filters). Work
// counters land in st; the lookahead tallies in ext. Cancellation is
// checked once per sub-class, as in computeFrequent.
func computeMaximal(ctx context.Context, members []member, th *threshold, st *Stats, ext *maxExt, ar *arena, emit Emitter) {
	if len(members) == 0 {
		return
	}
	if len(members) == 1 {
		emit(members[0].set, members[0].tids.Support())
		return
	}
	minsup := th.current()

	// Top-down lookahead: the class's top itemset is the union of all
	// members; its tid-list is the k-way intersection of all member
	// lists. The k-way kernel folds smallest-support-first and rotates
	// its two scratch buffers, so a long prefix costs at most two
	// intermediate allocations and the §5.3 bound aborts the fold as
	// early as the operand order allows. On abort the partial result is
	// discarded with the lookahead (the ok=false contract).
	ext.lookaheads++
	opSets := make([]tidlist.Set, len(members))
	for i, m := range members {
		opSets[i] = m.tids
	}
	top, ops, folds, feasible := tidlist.IntersectKSetsSC(opSets, minsup, &st.Kernel)
	st.Intersections += int64(folds)
	st.IntersectOps += int64(ops)
	if feasible {
		ext.hits++
		union := members[0].set
		for _, m := range members[1:] {
			union = union.Union(m.set)
		}
		emit(union, top.Support())
		return
	}
	st.ShortCircuited++

	// Bottom-up expansion, emitting members with no frequent extension.
	var scratch tidlist.Set
	for i := 0; i < len(members); i++ {
		if ctx.Err() != nil {
			return
		}
		mark := ar.mark()
		next := ar.nextMembers(len(members) - 1 - i)
		for j := i + 1; j < len(members); j++ {
			st.Intersections++
			tids, ops, ok := tidlist.IntersectSetsSC(scratch, members[i].tids, members[j].tids, minsup, &st.Kernel)
			st.IntersectOps += int64(ops)
			scratch = tids
			if !ok {
				st.ShortCircuited++
				continue
			}
			next = append(next, member{
				set:  members[i].set.Join(members[j].set),
				tids: ar.cloneSet(tids),
			})
		}
		if len(next) == 0 {
			emit(members[i].set, members[i].tids.Support())
		} else {
			computeMaximal(ctx, next, th, st, ext, ar, emit)
		}
		ar.release(mark)
	}
}

// filterMaximal removes every candidate subsumed by another candidate,
// returning the true maximal sets (deduplicated). The outcome is
// independent of the candidate order (it sorts first), which is what
// makes the parallel and cluster maximal miners byte-identical to the
// sequential one.
func filterMaximal(cands []mining.FrequentItemset) []mining.FrequentItemset {
	// Sort by size descending so keepers accumulate largest-first, and
	// dedupe identical sets.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Set.K() != cands[j].Set.K() {
			return cands[i].Set.K() > cands[j].Set.K()
		}
		return cands[i].Set.Less(cands[j].Set)
	})
	var out []mining.FrequentItemset
	seen := map[string]bool{}
	// byItem indexes kept sets by their first item: a subsuming superset
	// of c must contain c[0], so only those keepers need a subset check.
	byItem := map[itemset.Item][]int{}
	for _, c := range cands {
		if seen[c.Set.Key()] {
			continue
		}
		seen[c.Set.Key()] = true
		subsumed := false
		for _, ki := range byItem[c.Set[0]] {
			kept := out[ki]
			if c.Set.K() < kept.Set.K() && c.Set.SubsetOf(kept.Set) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			idx := len(out)
			out = append(out, c)
			for _, it := range c.Set {
				byItem[it] = append(byItem[it], idx)
			}
		}
	}
	return out
}
