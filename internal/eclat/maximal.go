package eclat

import (
	"sort"

	"repro/internal/db"
	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paircount"
	"repro/internal/tidlist"
)

// MaxStats extends Stats with the lookahead counters of the maximal
// search.
type MaxStats struct {
	Stats
	Lookaheads    int64 // class-collapse attempts
	LookaheadHits int64 // classes whose full union was frequent
	Candidates    int   // locally-maximal sets before global subsumption filtering
}

// MineMaximal discovers only the maximal frequent itemsets (those with no
// frequent superset) using the MaxEclat hybrid search of the authors'
// companion report [18] ("New algorithms for fast discovery of
// association rules"): the usual bottom-up class recursion is augmented
// with a top-down lookahead that first intersects an entire class's
// tid-lists — if the class's top itemset is frequent, the whole sub-
// lattice collapses into one maximal set without enumerating it.
//
// Supports in the result are exact. The union of the subsets of the
// returned sets equals the full frequent-itemset collection mined by
// MineSequential at the same threshold (tested property).
func MineMaximal(d *db.Database, minsup int) (*mining.Result, MaxStats) {
	return MineMaximalOpts(d, minsup, Options{})
}

// MineMaximalOpts is MineMaximal with explicit variant options (notably
// the tid-set representation the class searches run through).
func MineMaximalOpts(d *db.Database, minsup int, opts Options) (*mining.Result, MaxStats) {
	if minsup < 1 {
		minsup = 1
	}
	var st MaxStats
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}

	// Initialization scan, as in MineSequential.
	st.Scans++
	itemCounts := make([]int, d.NumItems)
	pc := paircount.New(d.NumItems)
	for _, tx := range d.Transactions {
		for _, it := range tx.Items {
			itemCounts[it]++
		}
		pc.AddTransaction(tx.Items)
	}
	freqPairs := pc.Frequent(minsup)
	l2 := make([]itemset.Itemset, 0, len(freqPairs))
	pairSup := map[tidlist.Pair]int{}
	for _, fp := range freqPairs {
		l2 = append(l2, fp.Pair.Itemset())
		pairSup[fp.Pair] = fp.Count
	}

	// Candidate maximal sets: start with frequent singletons and pairs
	// (they survive the final filter only if nothing subsumes them).
	var cands []mining.FrequentItemset
	for it, c := range itemCounts {
		if c >= minsup {
			cands = append(cands, mining.FrequentItemset{Set: itemset.Itemset{itemset.Item(it)}, Support: c})
		}
	}
	for _, fp := range freqPairs {
		cands = append(cands, mining.FrequentItemset{Set: fp.Pair.Itemset(), Support: fp.Count})
	}

	classes := eqclass.PruneSingletons(eqclass.Partition(l2))
	st.Classes = len(classes)
	want := make(map[tidlist.Pair]bool)
	for _, c := range classes {
		for _, m := range c.Members {
			want[tidlist.Pair{A: m[0], B: m[1]}] = true
		}
	}
	st.Scans++
	lists := tidlist.BuildPairs(d, want)

	emit := func(set itemset.Itemset, sup int) {
		cands = append(cands, mining.FrequentItemset{Set: set, Support: sup})
	}
	for i := range classes {
		before := st.Stats
		computeMaximal(classMembers(&classes[i], lists, opts.Representation, &st.Kernel), minsup, &st, emit)
		flushStats(&before, &st.Stats)
	}
	st.Candidates = len(cands)

	for _, f := range filterMaximal(cands) {
		res.Add(f.Set, f.Support)
	}
	res.Sort()
	return res, st
}

// computeMaximal mines one class, emitting locally-maximal frequent sets
// (a superset of the globally maximal ones; the caller filters).
func computeMaximal(members []member, minsup int, st *MaxStats, emit func(itemset.Itemset, int)) {
	if len(members) == 0 {
		return
	}
	if len(members) == 1 {
		emit(members[0].set, members[0].tids.Support())
		return
	}

	// Top-down lookahead: the class's top itemset is the union of all
	// members; its tid-list is the k-way intersection of all member
	// lists. The k-way kernel folds smallest-support-first and rotates
	// its two scratch buffers, so a long prefix costs at most two
	// intermediate allocations and the §5.3 bound aborts the fold as
	// early as the operand order allows. On abort the partial result is
	// discarded with the lookahead (the ok=false contract).
	st.Lookaheads++
	opSets := make([]tidlist.Set, len(members))
	for i, m := range members {
		opSets[i] = m.tids
	}
	top, ops, folds, feasible := tidlist.IntersectKSetsSC(opSets, minsup, &st.Kernel)
	st.Intersections += int64(folds)
	st.IntersectOps += int64(ops)
	if feasible {
		st.LookaheadHits++
		union := members[0].set
		for _, m := range members[1:] {
			union = union.Union(m.set)
		}
		emit(union, top.Support())
		return
	}
	st.ShortCircuited++

	// Bottom-up expansion, emitting members with no frequent extension.
	var scratch tidlist.Set
	for i := 0; i < len(members); i++ {
		var next []member
		for j := i + 1; j < len(members); j++ {
			st.Intersections++
			tids, ops, ok := tidlist.IntersectSetsSC(scratch, members[i].tids, members[j].tids, minsup, &st.Kernel)
			st.IntersectOps += int64(ops)
			scratch = tids
			if !ok {
				st.ShortCircuited++
				continue
			}
			next = append(next, member{
				set:  members[i].set.Join(members[j].set),
				tids: tidlist.CloneSet(tids),
			})
		}
		if len(next) == 0 {
			emit(members[i].set, members[i].tids.Support())
		} else {
			computeMaximal(next, minsup, st, emit)
		}
	}
}

// filterMaximal removes every candidate subsumed by another candidate,
// returning the true maximal sets (deduplicated).
func filterMaximal(cands []mining.FrequentItemset) []mining.FrequentItemset {
	// Sort by size descending so keepers accumulate largest-first, and
	// dedupe identical sets.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Set.K() != cands[j].Set.K() {
			return cands[i].Set.K() > cands[j].Set.K()
		}
		return cands[i].Set.Less(cands[j].Set)
	})
	var out []mining.FrequentItemset
	seen := map[string]bool{}
	// byItem indexes kept sets by their first item: a subsuming superset
	// of c must contain c[0], so only those keepers need a subset check.
	byItem := map[itemset.Item][]int{}
	for _, c := range cands {
		if seen[c.Set.Key()] {
			continue
		}
		seen[c.Set.Key()] = true
		subsumed := false
		for _, ki := range byItem[c.Set[0]] {
			kept := out[ki]
			if c.Set.K() < kept.Set.K() && c.Set.SubsetOf(kept.Set) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			idx := len(out)
			out = append(out, c)
			for _, it := range c.Set {
				byItem[it] = append(byItem[it], idx)
			}
		}
	}
	return out
}
