package eclat

import (
	"repro/internal/tidlist"
)

// memberChunkLen is the member capacity of one freshly allocated member
// chunk (larger sub-classes get a dedicated chunk).
const memberChunkLen = 1 << 10

// arena is one worker's reusable mining scratch: tid-set clone storage
// (tidlist.Arena) plus a matching stack allocator for the member slices
// of the class recursion. Compute_Frequent's intermediate state has a
// strict stack lifetime — the members of a sub-class die when the
// recursion unwinds past it — so each i-iteration brackets its next-level
// members and tid-set clones with mark/release and the steady state
// allocates nothing per itemset.
//
// A nil *arena is valid and falls back to plain heap allocation (the
// pre-arena behaviour, kept reachable for the allocation benchmarks).
type arena struct {
	sets    tidlist.Arena
	members memberStack
}

// arenaMark is a point-in-time position of an arena.
type arenaMark struct {
	sets    tidlist.ArenaMark
	members chunkPos
}

func (a *arena) mark() arenaMark {
	if a == nil {
		return arenaMark{}
	}
	return arenaMark{sets: a.sets.Mark(), members: a.members.mark()}
}

func (a *arena) release(m arenaMark) {
	if a == nil {
		return
	}
	a.sets.Release(m.sets)
	a.members.release(m.members)
}

// cloneSet copies a surviving intersection result out of kernel scratch
// into storage that lives until the enclosing mark is released.
func (a *arena) cloneSet(s tidlist.Set) tidlist.Set {
	if a == nil {
		return tidlist.CloneSet(s)
	}
	return a.sets.CloneSetInto(s)
}

// nextMembers carves an empty member slice with capacity n — the exact
// upper bound of a sub-class's next level.
func (a *arena) nextMembers(n int) []member {
	if a == nil {
		return make([]member, 0, n)
	}
	return a.members.alloc(n)
}

// chunkPos addresses one allocation point inside a memberStack.
type chunkPos struct {
	chunk, off int
}

// memberStack is a chunked stack allocator for []member (the same
// discipline as tidlist's arena chunks, specialized to eclat's member
// type so the two packages stay decoupled).
type memberStack struct {
	chunks [][]member
	ci     int
	off    int
}

// alloc carves an empty slice with capacity exactly n.
func (s *memberStack) alloc(n int) []member {
	for {
		if s.ci < len(s.chunks) {
			c := s.chunks[s.ci]
			if s.off+n <= len(c) {
				out := c[s.off : s.off : s.off+n]
				s.off += n
				return out
			}
			s.ci++
			s.off = 0
			continue
		}
		size := memberChunkLen
		if n > size {
			size = n
		}
		s.chunks = append(s.chunks, make([]member, size))
		s.ci = len(s.chunks) - 1
		s.off = 0
	}
}

func (s *memberStack) mark() chunkPos { return chunkPos{s.ci, s.off} }

// release frees everything carved since p. Stale member values are left
// in place (they are overwritten before any read, and everything they
// reference is owned by the arena or by the emitted result anyway).
func (s *memberStack) release(p chunkPos) { s.ci, s.off = p.chunk, p.off }
