package eclat

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/mining"
	"repro/internal/testutil"
)

func TestHybridMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	d := testutil.RandomDB(rng, 300, 14, 7)
	minsup := 6
	want, _ := MineSequential(d, minsup)
	for _, hp := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {4, 2}, {2, 4}, {3, 3}} {
		cl := cluster.New(cluster.Default(hp[0], hp[1]))
		got, rep := MineHybridOpts(cl, d, minsup, Options{})
		if !mining.Equal(got, want) {
			t.Fatalf("H=%d P=%d: %s", hp[0], hp[1], mining.Diff(got, want))
		}
		if rep.ElapsedNS <= 0 {
			t.Fatal("no elapsed time")
		}
	}
}

func TestHybridBeatsFlatEclatAtHighProcsPerHost(t *testing.T) {
	// The motivation for the hybrid: with several processors per host,
	// flat Eclat suffers disk contention (every processor scans its own
	// partition through the shared disk) while the hybrid moves each byte
	// once. At P=4 per host the hybrid should win.
	d := gen.MustGenerate(gen.T10I6(4000))
	minsup := d.MinSupCount(0.25)
	cfg := cluster.Default(2, 4)
	clFlat := cluster.New(cfg)
	_, repFlat := MineOpts(clFlat, d, minsup, Options{})
	clHyb := cluster.New(cfg)
	_, repHyb := MineHybridOpts(clHyb, d, minsup, Options{})
	if repHyb.ElapsedNS >= repFlat.ElapsedNS {
		t.Fatalf("hybrid (%v) should beat flat Eclat (%v) at P=4", repHyb.Elapsed(), repFlat.Elapsed())
	}
}

func TestHybridDiskVolumeLower(t *testing.T) {
	// Cooperative chunk scanning: the hybrid's total disk reads of the
	// horizontal data equal the database size per pass, while flat Eclat
	// at P>1 also reads each byte once per pass but with P-way contention;
	// the hybrid's *charged disk time* must be lower.
	d := gen.MustGenerate(gen.T10I6(4000))
	minsup := d.MinSupCount(0.5)
	cfg := cluster.Default(2, 4)
	clFlat := cluster.New(cfg)
	MineOpts(clFlat, d, minsup, Options{})
	clHyb := cluster.New(cfg)
	MineHybridOpts(clHyb, d, minsup, Options{})
	if clHyb.Report().Merged.DiskNS >= clFlat.Report().Merged.DiskNS {
		t.Fatalf("hybrid disk time (%d) should be below flat (%d)",
			clHyb.Report().Merged.DiskNS, clFlat.Report().Merged.DiskNS)
	}
}

func TestHybridDeterministic(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(800))
	run := func() int64 {
		cl := cluster.New(cluster.Default(2, 2))
		_, rep := MineHybridOpts(cl, d, d.MinSupCount(1.0), Options{})
		return rep.ElapsedNS
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}
