package eclat

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/testutil"
)

func TestCharmMatchesClosedFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 15; trial++ {
		d := testutil.RandomDB(rng, 100+trial*25, 11, 6)
		for _, minsup := range []int{2, 4, 8} {
			want, _, _ := MineClosedOpts(context.Background(), d, minsup, Options{})
			got, _, _ := MineClosedCHARMOpts(context.Background(), d, minsup, Options{})
			if !mining.Equal(got, want) {
				t.Fatalf("trial %d minsup %d:\n%s", trial, minsup, mining.Diff(got, want))
			}
		}
	}
}

func TestCharmOnGeneratedData(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1500))
	minsup := d.MinSupCount(1.0)
	want, _, _ := MineClosedOpts(context.Background(), d, minsup, Options{})
	got, st, _ := MineClosedCHARMOpts(context.Background(), d, minsup, Options{})
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
	if st.Scans != 1 {
		t.Fatalf("CHARM needs one scan to build item tid-lists, got %d", st.Scans)
	}
	// Exact tid-set containment is rare on noisy Quest data (the merges
	// fire on correlated data — see the dedicated test); the subsumption
	// check, however, must be doing work whenever non-closed candidates
	// exist.
	full, _ := MineSequential(d, minsup)
	if full.Len() > got.Len() && st.Subsumptions == 0 && st.Merges == 0 {
		t.Fatal("non-closed sets exist but CHARM never merged or subsumed")
	}
}

func TestCharmCollapsesPerfectCorrelation(t *testing.T) {
	// Items 1,2,3 always co-occur: CHARM should fold them into a single
	// node via property 1, never enumerating the 2-subsets separately.
	d := &db.Database{NumItems: 6}
	for i := 0; i < 30; i++ {
		items := itemset.New(1, 2, 3)
		if i%3 == 0 {
			items = items.Union(itemset.New(5))
		}
		d.Transactions = append(d.Transactions, db.Transaction{TID: itemset.TID(i), Items: items})
	}
	got, st, _ := MineClosedCHARMOpts(context.Background(), d, 5, Options{})
	// Closed sets: {1,2,3} (sup 30), {1,2,3,5} (sup 10).
	if got.Len() != 2 {
		t.Fatalf("closed sets = %v, want 2", got.Itemsets)
	}
	if got.SupportOf(itemset.New(1, 2, 3)) != 30 || got.SupportOf(itemset.New(1, 2, 3, 5)) != 10 {
		t.Fatalf("closed supports wrong: %v", got.Itemsets)
	}
	if st.Merges == 0 {
		t.Fatal("perfect correlation must be handled by merges")
	}
}

func TestCharmSubsumptionCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	d := testutil.RandomDB(rng, 200, 10, 6)
	_, st, _ := MineClosedCHARMOpts(context.Background(), d, 4, Options{})
	if st.Intersections == 0 {
		t.Fatal("no intersections recorded")
	}
}

func TestCharmEmptyDatabase(t *testing.T) {
	res, _, _ := MineClosedCHARMOpts(context.Background(), &db.Database{NumItems: 3}, 1, Options{})
	if res.Len() != 0 {
		t.Fatal("empty database has no closed sets")
	}
}
