package eclat

import (
	"context"

	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/tidlist"
)

// DiffStats reports the work of a diffset run, with the byte volumes that
// make the representational trade-off visible.
type DiffStats struct {
	Scans         int
	Intersections int64 // set operations (differences) performed
	DiffOps       int64 // kernel operations in differences (comparisons or words)
	// ListBytes is the total bytes of all intermediate sets materialized
	// during the class recursion (diffsets here, in their chosen encoding;
	// compare with the tid-list bytes of the standard algorithm at the
	// same support).
	ListBytes int64
	// Kernel is the representation-dispatch accounting (see Stats.Kernel).
	Kernel tidlist.KernelStats
}

// dmember is one itemset of the current level, represented by its diffset
// relative to its generating parent and its exact support.
type dmember struct {
	set   itemset.Itemset
	diffs tidlist.Set
	sup   int
}

// MineSequentialDiffsetsOpts runs Eclat with the diffset representation —
// the dEclat refinement Zaki published as the successor of this paper's
// algorithm. Instead of carrying each itemset's full tid-list, the
// recursion carries the *difference* from its parent: for class prefix P,
//
//	d(PXY) = t(PX) \ t(PY)        at the first level, and
//	d(PXY) = d(PY) \ d(PX)        below it,
//	sup(PXY) = sup(PX) - |d(PXY)|.
//
// Deep in a class supports shrink slowly, so diffsets are much smaller
// than tid-lists and the class recursion touches far fewer bytes; the
// output is identical to MineSequentialOpts's (tested property). The
// diffset policy runs on the class-task engine; this entry point mines
// sequentially (Workers is ignored, honoring the name), and TopK and
// MustContain are ignored like the other variant forms. Under the bitset
// encoding the differences use the AND NOT word kernel.
func MineSequentialDiffsetsOpts(ctx context.Context, d *db.Database, minsup int, opts Options) (*mining.Result, DiffStats, error) {
	if minsup < 1 {
		minsup = 1
	}
	opts.TopK, opts.MustContain = 0, nil
	var st Stats
	st.Workers = 1

	v := buildVertical(ctx, d, minsup, &st, opts)
	eng := newEngine(v, minsup, opts, policyDiffsets{})
	ext, err := eng.run(ctx, 1, &st, &arena{}, v.res.Add)
	de := ext.(*diffExt)
	dst := DiffStats{
		Scans:         st.Scans,
		Intersections: st.Intersections,
		DiffOps:       st.IntersectOps,
		ListBytes:     de.listBytes,
		Kernel:        st.Kernel,
	}
	if err != nil {
		return nil, dst, err
	}
	v.res.Sort()
	return v.res, dst, nil
}
