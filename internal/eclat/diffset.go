package eclat

import (
	"repro/internal/db"
	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paircount"
	"repro/internal/tidlist"
)

// DiffStats reports the work of a diffset run, with the byte volumes that
// make the representational trade-off visible.
type DiffStats struct {
	Scans         int
	Intersections int64 // set operations (differences) performed
	DiffOps       int64 // kernel operations in differences (comparisons or words)
	// ListBytes is the total bytes of all intermediate sets materialized
	// during the class recursion (diffsets here, in their chosen encoding;
	// compare with the tid-list bytes of the standard algorithm at the
	// same support).
	ListBytes int64
	// Kernel is the representation-dispatch accounting (see Stats.Kernel).
	Kernel tidlist.KernelStats
}

// dmember is one itemset of the current level, represented by its diffset
// relative to its generating parent and its exact support.
type dmember struct {
	set   itemset.Itemset
	diffs tidlist.Set
	sup   int
}

// MineSequentialDiffsets runs Eclat with the diffset representation — the
// dEclat refinement Zaki published as the successor of this paper's
// algorithm. Instead of carrying each itemset's full tid-list, the
// recursion carries the *difference* from its parent: for class prefix P,
//
//	d(PXY) = t(PX) \ t(PY)        at the first level, and
//	d(PXY) = d(PY) \ d(PX)        below it,
//	sup(PXY) = sup(PX) - |d(PXY)|.
//
// Deep in a class supports shrink slowly, so diffsets are much smaller
// than tid-lists and the class recursion touches far fewer bytes; the
// output is identical to MineSequential's (tested property).
func MineSequentialDiffsets(d *db.Database, minsup int) (*mining.Result, DiffStats) {
	return MineSequentialDiffsetsOpts(d, minsup, Options{})
}

// MineSequentialDiffsetsOpts is MineSequentialDiffsets with explicit
// variant options (notably the tid-set representation; diffsets under the
// bitset encoding use the AND NOT word kernel).
func MineSequentialDiffsetsOpts(d *db.Database, minsup int, opts Options) (*mining.Result, DiffStats) {
	if minsup < 1 {
		minsup = 1
	}
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	var st DiffStats

	// Initialization and transformation, exactly as in MineSequential.
	st.Scans++
	itemCounts := make([]int, d.NumItems)
	pc := paircount.New(d.NumItems)
	for _, tx := range d.Transactions {
		for _, it := range tx.Items {
			itemCounts[it]++
		}
		pc.AddTransaction(tx.Items)
	}
	for it, c := range itemCounts {
		if c >= minsup {
			res.Add(itemset.Itemset{itemset.Item(it)}, c)
		}
	}
	freqPairs := pc.Frequent(minsup)
	l2 := make([]itemset.Itemset, 0, len(freqPairs))
	for _, fp := range freqPairs {
		res.Add(fp.Pair.Itemset(), fp.Count)
		l2 = append(l2, fp.Pair.Itemset())
	}
	classes := eqclass.PruneSingletons(eqclass.Partition(l2))
	want := make(map[tidlist.Pair]bool)
	for _, c := range classes {
		for _, m := range c.Members {
			want[tidlist.Pair{A: m[0], B: m[1]}] = true
		}
	}
	st.Scans++
	lists := tidlist.BuildPairs(d, want)

	// First transition per class: children carry diffsets of their
	// tid-set parents.
	for ci := range classes {
		members := classMembers(&classes[ci], lists, opts.Representation, &st.Kernel)
		var scratch tidlist.Set
		for i := 0; i < len(members)-1; i++ {
			var next []dmember
			for j := i + 1; j < len(members); j++ {
				st.Intersections++
				diffs, ops := tidlist.DiffSets(scratch, members[i].tids, members[j].tids, &st.Kernel)
				st.DiffOps += int64(ops)
				scratch = diffs
				sup := members[i].tids.Support() - diffs.Support()
				if sup < minsup {
					continue
				}
				kept := tidlist.CloneSet(diffs)
				next = append(next, dmember{
					set:   members[i].set.Join(members[j].set),
					diffs: kept,
					sup:   sup,
				})
				st.ListBytes += kept.SizeBytes()
			}
			for _, m := range next {
				res.Add(m.set, m.sup)
			}
			if len(next) > 1 {
				computeFrequentDiff(next, minsup, &st, res.Add)
			}
		}
	}

	res.Sort()
	return res, st
}

// computeFrequentDiff is the diffset form of Compute_Frequent: members
// share a common prefix of len(set)-1 items and carry diffsets relative
// to their shared parent.
func computeFrequentDiff(members []dmember, minsup int, st *DiffStats, emit func(itemset.Itemset, int)) {
	var scratch tidlist.Set
	for i := 0; i < len(members)-1; i++ {
		var next []dmember
		for j := i + 1; j < len(members); j++ {
			st.Intersections++
			// d(PXY) = d(PY) \ d(PX): the transactions that contain PX but
			// lose Y beyond what PX already lost.
			diffs, ops := tidlist.DiffSets(scratch, members[j].diffs, members[i].diffs, &st.Kernel)
			st.DiffOps += int64(ops)
			sup := members[i].sup - diffs.Support()
			scratch = diffs
			if sup < minsup {
				continue
			}
			d := tidlist.CloneSet(diffs)
			next = append(next, dmember{
				set:   members[i].set.Join(members[j].set),
				diffs: d,
				sup:   sup,
			})
			st.ListBytes += d.SizeBytes()
		}
		for _, m := range next {
			emit(m.set, m.sup)
		}
		if len(next) > 1 {
			computeFrequentDiff(next, minsup, st, emit)
		}
	}
}
