package eclat

import (
	"sort"

	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/tidlist"
)

// CharmStats counts the work of a CHARM run.
type CharmStats struct {
	Scans         int
	Intersections int64
	Merges        int64 // itemset extensions via the tid-set containment properties
	Subsumptions  int64 // candidates discarded by the closed-set check
	// Kernel is the representation-dispatch accounting (see Stats.Kernel).
	Kernel tidlist.KernelStats
}

// MineClosedCHARM discovers the closed frequent itemsets with the CHARM
// search (Zaki & Hsiao) — the successor algorithm that prunes the search
// space itself rather than filtering afterwards like MineClosed. Its four
// tid-set properties fold equal-support extensions into their generators:
// when t(X) = t(Y) the two itemsets always co-occur and collapse into one
// node; when t(X) ⊂ t(Y), X's closure absorbs Y's items; only
// incomparable tid-sets spawn new search nodes. A candidate enters the
// closed set only if no equal-support superset is already there.
//
// The result equals MineClosed's (tested property); the work profile
// differs — CHARM never enumerates the non-closed lattice.
func MineClosedCHARM(d *db.Database, minsup int) (*mining.Result, CharmStats) {
	return MineClosedCHARMOpts(d, minsup, Options{})
}

// MineClosedCHARMOpts is MineClosedCHARM with explicit variant options
// (notably the tid-set representation the search runs through).
func MineClosedCHARMOpts(d *db.Database, minsup int, opts Options) (*mining.Result, CharmStats) {
	if minsup < 1 {
		minsup = 1
	}
	var st CharmStats
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}

	// One scan: per-item tid-lists (CHARM starts from 1-itemsets; unlike
	// Eclat it needs their tid-lists, trading the triangular-array pass
	// for a simpler lattice root).
	st.Scans++
	itemLists := make([]tidlist.List, d.NumItems)
	for _, tx := range d.Transactions {
		for _, it := range tx.Items {
			itemLists[it] = append(itemLists[it], tx.TID)
		}
	}
	var roots []*charmNode
	for it, l := range itemLists {
		if len(l) >= minsup {
			roots = append(roots, &charmNode{set: itemset.Itemset{itemset.Item(it)}, tids: l})
		}
	}
	applyCharmRepr(roots, opts.Representation, &st.Kernel)

	acc := &charmAcc{byHash: map[int64][]mining.FrequentItemset{}}
	charmExtend(roots, minsup, acc, &st)

	for _, bucket := range acc.byHash {
		for _, f := range bucket {
			res.Add(f.Set, f.Support)
		}
	}
	res.Sort()
	return res, st
}

// charmNode is one search node: an itemset (which may grow via the
// containment properties) and its tid-set.
type charmNode struct {
	set  itemset.Itemset
	tids tidlist.Set
}

// charmChild defers itemset materialization: the parent's set may still
// grow while its children are being generated, so a child records only
// the partner's items and composes with the parent's final set.
type charmChild struct {
	extra itemset.Itemset
	tids  tidlist.Set
}

// applyCharmRepr resolves the representation against the root level's
// density (CHARM has no L2 equivalence classes; the root item lists are
// the per-run analog) and re-encodes the roots when a packed encoding
// (bitset or roaring) wins.
func applyCharmRepr(roots []*charmNode, repr tidlist.Repr, ks *tidlist.KernelStats) {
	chosen := repr
	if repr == tidlist.ReprAuto {
		lo, hi, any := itemset.TID(0), itemset.TID(0), false
		sum := 0
		for _, n := range roots {
			sum += n.tids.Support()
			l, h, ok := tidlist.Bounds(n.tids)
			if !ok {
				continue
			}
			if !any || l < lo {
				lo = l
			}
			if !any || h > hi {
				hi = h
			}
			any = true
		}
		if !any || len(roots) == 0 {
			return
		}
		chosen = tidlist.ChooseRepr(repr, sum/len(roots), int(hi-lo)+1)
	}
	switch chosen {
	case tidlist.ReprBitset, tidlist.ReprRoaring:
		for _, n := range roots {
			n.tids = tidlist.Convert(n.tids, chosen, ks)
		}
	}
}

// charmExtend processes one level of sibling nodes, sorted by increasing
// support (CHARM's ordering heuristic: low-support nodes merge into their
// high-support partners most often).
func charmExtend(nodes []*charmNode, minsup int, acc *charmAcc, st *CharmStats) {
	sort.SliceStable(nodes, func(i, j int) bool {
		si, sj := nodes[i].tids.Support(), nodes[j].tids.Support()
		if si != sj {
			return si < sj
		}
		return nodes[i].set.Less(nodes[j].set)
	})
	for i := range nodes {
		if nodes[i] == nil {
			continue
		}
		var children []charmChild
		for j := i + 1; j < len(nodes); j++ {
			if nodes[j] == nil {
				continue
			}
			st.Intersections++
			// No scratch: surviving children keep the result, so every
			// intersection gets fresh storage (as the List-only code did).
			y, _ := tidlist.IntersectSets(nil, nodes[i].tids, nodes[j].tids, &st.Kernel)
			ySup := y.Support()
			switch {
			case ySup == nodes[i].tids.Support() && ySup == nodes[j].tids.Support():
				// t(Xi) = t(Xj): Xj always co-occurs with Xi — fold it in.
				st.Merges++
				nodes[i].set = nodes[i].set.Union(nodes[j].set)
				nodes[j] = nil
			case ySup == nodes[i].tids.Support():
				// t(Xi) ⊂ t(Xj): Xi implies Xj; Xi's closure absorbs it,
				// Xj lives on (it occurs without Xi too).
				st.Merges++
				nodes[i].set = nodes[i].set.Union(nodes[j].set)
			case ySup == nodes[j].tids.Support():
				// t(Xi) ⊃ t(Xj): Xj implies Xi; the combination replaces
				// Xj, growing under Xi.
				if ySup >= minsup {
					children = append(children, charmChild{extra: nodes[j].set, tids: y})
				}
				nodes[j] = nil
			default:
				if ySup >= minsup {
					children = append(children, charmChild{extra: nodes[j].set, tids: y})
				}
			}
		}
		if len(children) > 0 {
			level := make([]*charmNode, len(children))
			for k, ch := range children {
				level[k] = &charmNode{set: nodes[i].set.Union(ch.extra), tids: ch.tids}
			}
			charmExtend(level, minsup, acc, st)
		}
		acc.insert(nodes[i].set, nodes[i].tids.Support(), nodes[i].tids, st)
	}
}

// charmAcc is the closed-set accumulator with the standard
// tid-sum-hashed subsumption check: a candidate is dropped iff an
// equal-support superset is already present.
type charmAcc struct {
	byHash map[int64][]mining.FrequentItemset
}

func (a *charmAcc) insert(set itemset.Itemset, sup int, tids tidlist.Set, st *CharmStats) {
	h := tidlist.HashTIDs(tids)
	for _, f := range a.byHash[h] {
		if f.Support == sup && set.SubsetOf(f.Set) {
			st.Subsumptions++
			return
		}
	}
	a.byHash[h] = append(a.byHash[h], mining.FrequentItemset{Set: set, Support: sup})
}
