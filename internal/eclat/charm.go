package eclat

import (
	"context"
	"sort"

	"repro/internal/db"
	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/tidlist"
)

// CharmStats counts the work of a CHARM run.
type CharmStats struct {
	Scans         int
	Intersections int64
	Merges        int64 // itemset extensions via the tid-set containment properties
	Subsumptions  int64 // candidates discarded by the closed-set check
	// Kernel is the representation-dispatch accounting (see Stats.Kernel).
	Kernel tidlist.KernelStats
}

// MineClosedCHARMOpts discovers the closed frequent itemsets with the
// CHARM search (Zaki & Hsiao) — the successor algorithm that prunes the
// search space itself rather than filtering afterwards like
// MineClosedOpts. Its four tid-set properties fold equal-support
// extensions into their generators: when t(X) = t(Y) the two itemsets
// always co-occur and collapse into one node; when t(X) ⊂ t(Y), X's
// closure absorbs Y's items; only incomparable tid-sets spawn new search
// nodes. A candidate enters the closed set only if no equal-support
// superset is already there.
//
// The result equals MineClosedOpts's (tested property); the work profile
// differs — CHARM never enumerates the non-closed lattice. On the engine
// the whole search is one task (extensions merge across prefixes, so it
// is not class-decomposable): Workers, TopK and MustContain are ignored.
func MineClosedCHARMOpts(ctx context.Context, d *db.Database, minsup int, opts Options) (*mining.Result, CharmStats, error) {
	if minsup < 1 {
		minsup = 1
	}
	opts.TopK, opts.MustContain = 0, nil
	var st Stats
	st.Workers = 1

	v := buildVerticalItems(d, minsup, &st)
	eng := newEngine(v, minsup, opts, policyCharm{})
	ext, err := eng.run(ctx, 1, &st, nil, v.res.Add)
	ce := ext.(*charmExt)
	cst := CharmStats{
		Scans:         st.Scans,
		Intersections: st.Intersections,
		Merges:        ce.merges,
		Subsumptions:  ce.subs,
		Kernel:        st.Kernel,
	}
	if err != nil {
		return nil, cst, err
	}
	v.res.Sort()
	return v.res, cst, nil
}

// buildVerticalItems is the one-scan initialization CHARM starts from:
// per-item tid-lists (CHARM needs the 1-itemset lists; unlike Eclat it
// skips the triangular pair-counting pass for a simpler lattice root).
// The frequent singletons form the root members of one engine task.
func buildVerticalItems(d *db.Database, minsup int, st *Stats) *vertical {
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	st.Scans++
	itemLists := make([]tidlist.List, d.NumItems)
	for _, tx := range d.Transactions {
		for _, it := range tx.Items {
			itemLists[it] = append(itemLists[it], tx.TID)
		}
	}
	var roots []member
	for it, l := range itemLists {
		if len(l) >= minsup {
			roots = append(roots, member{set: itemset.Itemset{itemset.Item(it)}, tids: l})
		}
	}
	st.Classes = 1
	return &vertical{res: res, classes: make([]eqclass.Class, 1), roots: [][]member{roots}}
}

// charmNode is one search node: an itemset (which may grow via the
// containment properties) and its tid-set.
type charmNode struct {
	set  itemset.Itemset
	tids tidlist.Set
}

// charmChild defers itemset materialization: the parent's set may still
// grow while its children are being generated, so a child records only
// the partner's items and composes with the parent's final set.
type charmChild struct {
	extra itemset.Itemset
	tids  tidlist.Set
}

// charmExtend processes one level of sibling nodes, sorted by increasing
// support (CHARM's ordering heuristic: low-support nodes merge into their
// high-support partners most often). Work counters land in st, the
// merge/subsumption tallies in ext. Cancellation is checked once per
// node; on an expired ctx the walk unwinds with a partial accumulator
// (the caller discards it).
func charmExtend(ctx context.Context, nodes []*charmNode, minsup int, acc *charmAcc, st *Stats, ext *charmExt) {
	sort.SliceStable(nodes, func(i, j int) bool {
		si, sj := nodes[i].tids.Support(), nodes[j].tids.Support()
		if si != sj {
			return si < sj
		}
		return nodes[i].set.Less(nodes[j].set)
	})
	for i := range nodes {
		if nodes[i] == nil {
			continue
		}
		if ctx.Err() != nil {
			return
		}
		var children []charmChild
		for j := i + 1; j < len(nodes); j++ {
			if nodes[j] == nil {
				continue
			}
			st.Intersections++
			// No scratch: surviving children keep the result, so every
			// intersection gets fresh storage (as the List-only code did).
			y, _ := tidlist.IntersectSets(nil, nodes[i].tids, nodes[j].tids, &st.Kernel)
			ySup := y.Support()
			switch {
			case ySup == nodes[i].tids.Support() && ySup == nodes[j].tids.Support():
				// t(Xi) = t(Xj): Xj always co-occurs with Xi — fold it in.
				ext.merges++
				nodes[i].set = nodes[i].set.Union(nodes[j].set)
				nodes[j] = nil
			case ySup == nodes[i].tids.Support():
				// t(Xi) ⊂ t(Xj): Xi implies Xj; Xi's closure absorbs it,
				// Xj lives on (it occurs without Xi too).
				ext.merges++
				nodes[i].set = nodes[i].set.Union(nodes[j].set)
			case ySup == nodes[j].tids.Support():
				// t(Xi) ⊃ t(Xj): Xj implies Xi; the combination replaces
				// Xj, growing under Xi.
				if ySup >= minsup {
					children = append(children, charmChild{extra: nodes[j].set, tids: y})
				}
				nodes[j] = nil
			default:
				if ySup >= minsup {
					children = append(children, charmChild{extra: nodes[j].set, tids: y})
				}
			}
		}
		if len(children) > 0 {
			level := make([]*charmNode, len(children))
			for k, ch := range children {
				level[k] = &charmNode{set: nodes[i].set.Union(ch.extra), tids: ch.tids}
			}
			charmExtend(ctx, level, minsup, acc, st, ext)
		}
		acc.insert(nodes[i].set, nodes[i].tids.Support(), nodes[i].tids, ext)
	}
}

// charmAcc is the closed-set accumulator with the standard
// tid-sum-hashed subsumption check: a candidate is dropped iff an
// equal-support superset is already present.
type charmAcc struct {
	byHash map[int64][]mining.FrequentItemset
}

func (a *charmAcc) insert(set itemset.Itemset, sup int, tids tidlist.Set, ext *charmExt) {
	h := tidlist.HashTIDs(tids)
	for _, f := range a.byHash[h] {
		if f.Support == sup && set.SubsetOf(f.Set) {
			ext.subs++
			return
		}
	}
	a.byHash[h] = append(a.byHash[h], mining.FrequentItemset{Set: set, Support: sup})
}
