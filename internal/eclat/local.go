package eclat

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obsv"
)

// Shared-memory parallel mining metrics. Steals and classes are counted
// once per event by the coordinator path (cheap); per-worker busy time is
// observed once per worker at run end.
const (
	mnSteals       = "eclat_steals_total"
	mnClassesMined = "eclat_classes_mined_total"
	mnWorkerBusyNS = "eclat_worker_busy_ns"
)

var (
	mSteals       = obsv.Default.Counter(mnSteals, "work-stealing transfers between MineParallelLocal workers")
	mClassesMined = obsv.Default.Counter(mnClassesMined, "equivalence classes mined by MineParallelLocal workers")
	mWorkerBusyNS = obsv.Default.Histogram(mnWorkerBusyNS, "per-worker busy nanoseconds of MineParallelLocal runs",
		[]int64{1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000})
)

// classTask is one unit of stealable work: a top-level equivalence class,
// tagged with its C(s,2) weight so victims can be ranked by the work they
// still hold.
type classTask struct {
	ci     int   // index into the vertical's class slice
	weight int64 // eqclass weight, ≥ 1 so deque weights stay positive
}

// wsDeque is one worker's class queue. The owner pops from the front;
// thieves steal a batch from the back, where the lighter classes sit
// (deques are seeded heaviest-first), so a steal rebalances without
// taking the victim's next — likely heaviest — task out from under it.
//
// A plain mutex is deliberate: the unit of work is an entire equivalence
// class (milliseconds to seconds), so deque operations are nowhere near
// the contention regime that justifies a lock-free Chase-Lev deque.
type wsDeque struct {
	mu     sync.Mutex
	tasks  []classTask
	weight int64 // sum of queued task weights, guarded by mu
}

// popFront removes the owner's next task.
func (q *wsDeque) popFront() (classTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return classTask{}, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	q.weight -= t.weight
	return t, true
}

// queuedWeight is the victim-ranking key (racy reads are fine: stealing
// only needs a heuristic ranking, and the transfer itself re-checks under
// both locks).
func (q *wsDeque) queuedWeight() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.weight
}

// stealInto moves the back half (rounded up) of q into dst. Both locks
// are held for the transfer, in deque-index order to rule out deadlock
// between symmetric thieves, so queued classes are never in limbo: any
// moment an observer takes a deque's lock, every unmined class is in
// exactly one deque. Returns the number of classes moved.
func (q *wsDeque) stealInto(dst *wsDeque, qi, dsti int) int {
	first, second := q, dst
	if dsti < qi {
		first, second = dst, q
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()

	n := (len(q.tasks) + 1) / 2
	if n == 0 {
		return 0
	}
	cut := len(q.tasks) - n
	var moved int64
	for _, t := range q.tasks[cut:] {
		moved += t.weight
	}
	dst.tasks = append(dst.tasks, q.tasks[cut:]...)
	dst.weight += moved
	q.tasks = q.tasks[:cut]
	q.weight -= moved
	return n
}

// MineParallelLocal mines d on opts.Workers real goroutines sharing this
// process's memory — the paper's asynchronous phase (section 5.3) mapped
// onto a multicore host instead of the simulated cluster. Initialization
// and transformation run once on the calling goroutine; the top-level
// equivalence classes are then dealt to per-worker deques by the greedy
// C(s,2) weight schedule (section 5.2.1) and mined with work stealing:
// an idle worker takes the back half of the queue of the victim holding
// the most queued weight, so one skewed class cannot serialize the run
// the way it can under the paper's static schedule.
//
// The result is byte-identical to MineSequential at every worker count:
// each class is mined single-threaded into its own slot, slots are
// concatenated in class-index order (the sequential mining order), and
// the final Sort is a total order over the distinct itemsets.
//
// opts.Workers ≤ 0 means runtime.GOMAXPROCS(0). On context cancellation
// every worker drains, the partial result is discarded and ctx.Err() is
// returned; no goroutines outlive the call.
func MineParallelLocal(ctx context.Context, d *db.Database, minsup int, opts Options) (*mining.Result, Stats, error) {
	if minsup < 1 {
		minsup = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var st Stats
	st.Workers = workers
	v := buildVertical(ctx, d, minsup, &st, opts)
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	eng := newEngine(v, minsup, opts, policyAll{})
	if _, err := eng.run(ctx, workers, &st, nil, v.res.Add); err != nil {
		return nil, st, err
	}
	eng.finish(v.res, &st)
	return v.res, st, nil
}

// runParallel is the engine's work-stealing driver, shared by every
// policy and entry point that mines with Workers > 1: deal the top-level
// classes to per-worker deques, mine with stealing, then deliver the
// per-class outputs to the sink in class-index order (the sequential
// mining order), so the bytes match the sequential driver regardless of
// which worker mined what. Worker counters are folded into st;
// st.Steals is overwritten with the run's steal count.
func (e *engine) runParallel(ctx context.Context, workers int, st *Stats, sink Emitter) (any, error) {
	tr := obsv.TraceFrom(ctx)
	sp := tr.Start("asynchronous")
	v := e.v

	// Deal classes to deques with the greedy weighted schedule, then order
	// each deque heaviest-first so owners start on the big classes while
	// thieves nibble the light tail. Under a residency budget both rules
	// flip: the classes are already in bundle-locality order, so each
	// worker takes one contiguous span (balanced by the same weights) and
	// keeps it in order — sequential segment traversal beats
	// heaviest-first when pages are the scarce resource.
	deques := make([]*wsDeque, workers)
	for w := range deques {
		deques[w] = &wsDeque{}
	}
	if v.ooc != nil {
		for w, span := range spanSchedule(v.classes, workers) {
			q := deques[w]
			for _, ci := range span {
				q.tasks = append(q.tasks, classTask{ci: ci, weight: v.classes[ci].Weight() + 1})
				q.weight += q.tasks[len(q.tasks)-1].weight
			}
		}
	} else {
		sched := eqclass.Schedule(v.classes, workers)
		for w := 0; w < workers; w++ {
			q := deques[w]
			for _, ci := range sched.ClassesOf(w) {
				q.tasks = append(q.tasks, classTask{ci: ci, weight: v.classes[ci].Weight() + 1})
				q.weight += q.tasks[len(q.tasks)-1].weight
			}
			sort.SliceStable(q.tasks, func(i, j int) bool { return q.tasks[i].weight > q.tasks[j].weight })
		}
	}

	// classOut[ci] receives class ci's itemsets; only the worker that
	// popped ci writes the slot, so no lock is needed.
	classOut := make([][]mining.FrequentItemset, len(v.classes))
	workerStats := make([]Stats, workers)
	exts := make([]any, workers)
	var steals atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			start := time.Now()
			defer func() { mWorkerBusyNS.Observe(time.Since(start).Nanoseconds()) }()

			wst := &workerStats[self]
			var prev Stats
			ext := e.pol.newExt()
			exts[self] = ext
			wk := &worker{st: wst, opts: e.opts, th: e.th, ar: &arena{}, ext: ext}
			var acc []mining.FrequentItemset
			emit := e.wrapEmit(func(set itemset.Itemset, sup int) {
				acc = append(acc, mining.FrequentItemset{Set: set, Support: sup})
			})

			mine := func(t classTask) {
				acc = acc[:0]
				v.acquire(t.ci)
				e.pol.explore(ctx, wk, v.members(t.ci, e.opts.Representation, &wst.Kernel), emit)
				v.release(t.ci)
				out := make([]mining.FrequentItemset, len(acc))
				copy(out, acc)
				classOut[t.ci] = out
				flushStats(&prev, wst)
				mClassesMined.Inc()
			}

			for ctx.Err() == nil {
				if t, ok := deques[self].popFront(); ok {
					mine(t)
					continue
				}
				// Own deque empty: pick the victim with the most queued
				// weight and take the back half of its queue.
				victim, best := -1, int64(0)
				for i, q := range deques {
					if i == self {
						continue
					}
					if w := q.queuedWeight(); w > best {
						victim, best = i, w
					}
				}
				if victim < 0 {
					return // every deque empty: no class left unowned
				}
				if n := deques[victim].stealInto(deques[self], victim, self); n > 0 {
					steals.Add(1)
					mSteals.Inc()
				}
				// A failed steal (the victim drained between the scan and
				// the transfer) just rescans; the loop terminates because
				// the top-level class set is fixed and never grows.
			}
		}(w)
	}
	wg.Wait()
	sp.End()

	for w := range workerStats {
		st.merge(&workerStats[w])
	}
	st.Steals = steals.Load()
	ext := e.pol.newExt()
	for _, we := range exts {
		if we != nil {
			e.pol.mergeExt(ext, we)
		}
	}
	if err := ctx.Err(); err != nil {
		return ext, err
	}

	for _, out := range classOut {
		for _, f := range out {
			sink(f.Set, f.Support)
		}
	}
	return ext, nil
}
