package eclat

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/eqclass"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paircount"
	"repro/internal/tidlist"
)

// MineMaximalParallel runs the MaxEclat hybrid search on the simulated
// cluster, reusing Eclat's four-phase structure: the equivalence classes
// are scheduled and their tid-lists exchanged exactly as in Mine, each
// processor mines its classes with the lookahead search, and the final
// reduction gathers the locally-maximal candidates for the global
// subsumption filter (local filtering alone cannot be final, because a
// set from one class can be subsumed by a set owned by another
// processor). Results equal MineMaximal's on the same input.
func MineMaximalParallel(cl *cluster.Cluster, d *db.Database, minsup int) (*mining.Result, cluster.Report) {
	return MineMaximalParallelOpts(cl, d, minsup, Options{})
}

// MineMaximalParallelOpts is MineMaximalParallel with explicit variant
// options (notably the tid-set representation).
func MineMaximalParallelOpts(cl *cluster.Cluster, d *db.Database, minsup int, opts Options) (*mining.Result, cluster.Report) {
	if minsup < 1 {
		minsup = 1
	}
	t := cl.NumProcs()
	parts := d.Partition(t)

	locals := make([][]mining.FrequentItemset, t)
	var globalPairs []paircount.FrequentPair
	var globalItems []int

	cl.Run(func(p *cluster.Proc) {
		part := parts[p.ID()]

		// ---- Initialization (identical to Mine) -------------------------
		p.SetPhase(PhaseInit)
		p.ChargeScan(part.SizeBytes(), p.HostProcs())
		itemCounts := make([]int, d.NumItems)
		pc := paircount.New(d.NumItems)
		var itemOps int64
		for _, tx := range part.Transactions {
			for _, it := range tx.Items {
				itemCounts[it]++
			}
			itemOps += int64(len(tx.Items))
		}
		p.ChargeCPU(itemOps)
		p.ChargeOps(cluster.OpPairCount, pc.AddPartition(part))
		gItems := cluster.SumReduceInt(p, itemCounts)
		gpc := paircount.FromCounts(d.NumItems, cluster.SumReduceInt32(p, pc.Counts()))
		freqPairs := gpc.Frequent(minsup)
		p.ChargeCPU(int64(gpc.NumCells()))
		if p.ID() == 0 {
			globalItems = gItems
			globalPairs = freqPairs
		}

		// ---- Transformation (identical to Mine) -------------------------
		p.SetPhase(PhaseTransform)
		l2 := make([]itemset.Itemset, len(freqPairs))
		for i, fp := range freqPairs {
			l2[i] = fp.Pair.Itemset()
		}
		classes := eqclass.PruneSingletons(eqclass.Partition(l2))
		sched := eqclass.Schedule(classes, t)
		p.ChargeCPU(int64(len(classes)))

		owner := make(map[tidlist.Pair]int)
		want := make(map[tidlist.Pair]bool)
		for ci := range classes {
			for _, m := range classes[ci].Members {
				pr := tidlist.Pair{A: m[0], B: m[1]}
				owner[pr] = sched.Owner[ci]
				want[pr] = true
			}
		}
		p.ChargeScan(part.SizeBytes(), p.HostProcs())
		partials := tidlist.BuildPairs(part, want)
		var buildOps int64
		for _, tx := range part.Transactions {
			l := int64(len(tx.Items))
			buildOps += l * (l - 1) / 2
		}
		p.ChargeOps(cluster.OpPairCount, buildOps)

		out := make([][]pairList, t)
		var sentBytes, sentSparse, sentDense int64
		for pr, tids := range partials {
			dst := owner[pr]
			out[dst] = append(out[dst], pairList{pair: pr, tids: tids})
			if dst != p.ID() {
				n, enc := tidlist.EncodedSize(tids, opts.Representation)
				sentBytes += n
				if enc == tidlist.ReprBitset {
					sentDense += n
				} else {
					sentSparse += n
				}
			}
		}
		p.AddNetPayload(sentSparse, sentDense)
		for dst := range out {
			sort.Slice(out[dst], func(i, j int) bool {
				a, b := out[dst][i].pair, out[dst][j].pair
				if a.A != b.A {
					return a.A < b.A
				}
				return a.B < b.B
			})
		}
		in := cluster.Exchange(p, out, sentBytes)
		lists := make(map[tidlist.Pair]tidlist.List)
		var ownedBytes, partialBytes int64
		for _, pl := range partials {
			n, _ := tidlist.EncodedSize(pl, opts.Representation)
			partialBytes += n
		}
		for src := 0; src < t; src++ {
			for _, pl := range in[src] {
				lists[pl.pair] = append(lists[pl.pair], pl.tids...)
			}
		}
		for _, l := range lists {
			n, _ := tidlist.EncodedSize(l, opts.Representation)
			ownedBytes += n
		}
		factor := p.PageFactor(int64(p.HostProcs()) * (ownedBytes + partialBytes))
		p.ChargeDiskWrite(ownedBytes*factor, p.HostProcs())

		// ---- Asynchronous maximal search --------------------------------
		p.SetPhase(PhaseAsync)
		p.ChargeScan(ownedBytes, p.HostProcs())
		var st MaxStats
		var cands []mining.FrequentItemset
		emit := func(set itemset.Itemset, sup int) {
			cands = append(cands, mining.FrequentItemset{Set: set, Support: sup})
		}
		for _, ci := range sched.ClassesOf(p.ID()) {
			computeMaximal(classMembers(&classes[ci], lists, opts.Representation, &st.Kernel), minsup, &st, emit)
		}
		chargeKernel(p, &st.Stats)
		locals[p.ID()] = cands

		// ---- Final reduction: candidates, not just counts ----------------
		p.SetPhase(PhaseReduce)
		var localBytes int64
		for _, f := range cands {
			localBytes += 4*int64(f.Set.K()) + 4
		}
		cluster.Gather(p, localBytes, localBytes)
	})

	// Global subsumption filter over all candidates, including frequent
	// singletons and pairs.
	var cands []mining.FrequentItemset
	for it, c := range globalItems {
		if c >= minsup {
			cands = append(cands, mining.FrequentItemset{Set: itemset.Itemset{itemset.Item(it)}, Support: c})
		}
	}
	for _, fp := range globalPairs {
		cands = append(cands, mining.FrequentItemset{Set: fp.Pair.Itemset(), Support: fp.Count})
	}
	for _, local := range locals {
		cands = append(cands, local...)
	}
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	for _, f := range filterMaximal(cands) {
		res.Add(f.Set, f.Support)
	}
	res.Sort()
	rep := cl.Report()
	rep.Representation = opts.Representation.String()
	return res, rep
}
