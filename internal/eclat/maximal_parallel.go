package eclat

import (
	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// MineMaximalParallel runs the MaxEclat hybrid search on the simulated
// cluster, reusing Eclat's four-phase structure: the equivalence classes
// are scheduled and their tid-lists exchanged exactly as in MineOpts,
// each processor mines its classes with the lookahead search, and the
// final reduction gathers the locally-maximal candidates for the global
// subsumption filter (local filtering alone cannot be final, because a
// set from one class can be subsumed by a set owned by another
// processor). Results equal MineMaximalOpts's on the same input.
func MineMaximalParallel(cl *cluster.Cluster, d *db.Database, minsup int) (*mining.Result, cluster.Report) {
	return MineMaximalParallelOpts(cl, d, minsup, Options{})
}

// MineMaximalParallelOpts is MineMaximalParallel with explicit variant
// options (notably the tid-set representation). It shares the SPMD
// program of MineOpts via clusterMine with the maximal policy; only the
// final assembly differs (subsumption filter instead of union).
func MineMaximalParallelOpts(cl *cluster.Cluster, d *db.Database, minsup int, opts Options) (*mining.Result, cluster.Report) {
	if minsup < 1 {
		minsup = 1
	}
	opts.TopK, opts.MustContain = 0, nil
	globalItems, globalPairs, locals := clusterMine(cl, d, minsup, opts, policyMaximal{})

	// Global subsumption filter over all candidates, including frequent
	// singletons and pairs.
	var cands []mining.FrequentItemset
	for it, c := range globalItems {
		if c >= minsup {
			cands = append(cands, mining.FrequentItemset{Set: itemset.Itemset{itemset.Item(it)}, Support: c})
		}
	}
	for _, fp := range globalPairs {
		cands = append(cands, mining.FrequentItemset{Set: fp.Pair.Itemset(), Support: fp.Count})
	}
	for _, local := range locals {
		cands = append(cands, local...)
	}
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	for _, f := range filterMaximal(cands) {
		res.Add(f.Set, f.Support)
	}
	res.Sort()
	rep := cl.Report()
	rep.Representation = opts.Representation.String()
	return res, rep
}
