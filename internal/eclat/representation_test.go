package eclat

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/testutil"
	"repro/internal/tidlist"
)

// reprVariants runs every eclat-family miner under a given
// representation. The parallel entries build a fresh simulated cluster
// per run, as Cluster clocks are single-use.
var reprVariants = []struct {
	name string
	mine func(d *db.Database, minsup int, opts Options) *mining.Result
}{
	{"sequential", func(d *db.Database, minsup int, opts Options) *mining.Result {
		res, _, _ := MineSequentialOpts(context.Background(), d, minsup, opts)
		return res
	}},
	{"parallel", func(d *db.Database, minsup int, opts Options) *mining.Result {
		res, _ := MineOpts(cluster.New(cluster.Default(2, 2)), d, minsup, opts)
		return res
	}},
	{"hybrid", func(d *db.Database, minsup int, opts Options) *mining.Result {
		res, _ := MineHybridOpts(cluster.New(cluster.Default(2, 2)), d, minsup, opts)
		return res
	}},
	{"maximal", func(d *db.Database, minsup int, opts Options) *mining.Result {
		res, _, _ := MineMaximalOpts(context.Background(), d, minsup, opts)
		return res
	}},
	{"maximal-parallel", func(d *db.Database, minsup int, opts Options) *mining.Result {
		res, _ := MineMaximalParallelOpts(cluster.New(cluster.Default(2, 2)), d, minsup, opts)
		return res
	}},
	{"closed", func(d *db.Database, minsup int, opts Options) *mining.Result {
		res, _, _ := MineClosedOpts(context.Background(), d, minsup, opts)
		return res
	}},
	{"charm", func(d *db.Database, minsup int, opts Options) *mining.Result {
		res, _, _ := MineClosedCHARMOpts(context.Background(), d, minsup, opts)
		return res
	}},
	{"diffsets", func(d *db.Database, minsup int, opts Options) *mining.Result {
		res, _, _ := MineSequentialDiffsetsOpts(context.Background(), d, minsup, opts)
		return res
	}},
}

var allReprs = []tidlist.Repr{tidlist.ReprSparse, tidlist.ReprBitset, tidlist.ReprRoaring, tidlist.ReprAuto}

// TestAllVariantsAgreeAcrossRepresentations is the acceptance criterion
// for the representation layer: every eclat variant must produce
// identical itemsets under sparse, bitset, and auto. The minsup sweep
// includes values high enough to trigger short-circuit aborts on most
// candidates, so a partial prefix leaking into a result would break the
// equality.
func TestAllVariantsAgreeAcrossRepresentations(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	dbs := []*db.Database{
		testutil.RandomDB(rng, 120, 10, 6), // dense: auto goes bitset
		testutil.RandomDB(rng, 400, 25, 5), // sparser classes
		gen.MustGenerate(gen.T10I6(500)),   // paper-style synthetic data
	}
	for di, d := range dbs {
		for _, minsup := range []int{2, 5, d.Len() / 8, d.Len() / 3} {
			if minsup < 1 {
				continue
			}
			for _, v := range reprVariants {
				want := v.mine(d, minsup, Options{Representation: tidlist.ReprSparse})
				for _, r := range allReprs[1:] {
					got := v.mine(d, minsup, Options{Representation: r})
					if !mining.Equal(got, want) {
						t.Fatalf("db %d minsup %d variant %s: %v differs from sparse:\n%s",
							di, minsup, v.name, r, mining.Diff(got, want))
					}
				}
			}
		}
	}
}

// TestRepresentationsMatchBruteForce anchors the full-mining variants to
// ground truth, not just to each other.
func TestRepresentationsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	d := testutil.RandomDB(rng, 100, 12, 6)
	for _, minsup := range []int{2, 4, 8} {
		want := testutil.BruteForce(d, minsup)
		for _, r := range allReprs {
			got, _, _ := MineSequentialOpts(context.Background(), d, minsup, Options{Representation: r})
			if !mining.Equal(got, want) {
				t.Fatalf("minsup %d repr %v differs from brute force:\n%s", minsup, r, mining.Diff(got, want))
			}
		}
	}
}

// TestBitsetRunDispatchesDenseKernel guards against the bitset path
// silently falling back to the sparse merge: an explicit bitset run must
// record dense kernel dispatches in its stats.
func TestBitsetRunDispatchesDenseKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	d := testutil.RandomDB(rng, 200, 12, 7)
	_, st, _ := MineSequentialOpts(context.Background(), d, 4, Options{Representation: tidlist.ReprBitset})
	if st.Intersections == 0 {
		t.Skip("no intersections at this support; adjust test data")
	}
	if st.Kernel.DenseIntersections() == 0 {
		t.Fatal("explicit bitset run performed no dense kernel dispatches")
	}
	if st.Kernel.WordsTouched() == 0 {
		t.Fatal("dense dispatches must touch words")
	}
	// A sparse run on the same data must not touch the dense kernel.
	_, st, _ = MineSequentialOpts(context.Background(), d, 4, Options{Representation: tidlist.ReprSparse})
	if st.Kernel.DenseIntersections() != 0 || st.Kernel.WordsTouched() != 0 {
		t.Fatal("explicit sparse run dispatched to the dense kernel")
	}
}

// TestAdaptivePolicySwitchesByDensity pins the auto policy's two sides
// on data engineered to sit on either side of DenseThreshold.
func TestAdaptivePolicySwitchesByDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	// Dense: 10 items over 120 transactions, every class far above 1/32
	// density, so auto must pack classes into bitsets.
	dense := testutil.RandomDB(rng, 120, 8, 6)
	_, st, _ := MineSequentialOpts(context.Background(), dense, 2, Options{Representation: tidlist.ReprAuto})
	if st.Intersections > 0 && st.Kernel.DenseIntersections() == 0 {
		t.Fatal("auto on dense data never used the bitset kernel")
	}
	// Sparse: supports near minsup over a wide tid range keep density
	// far below the threshold, so auto must stay on the merge kernel.
	sparse := testutil.RandomDB(rng, 4000, 120, 4)
	_, st, _ = MineSequentialOpts(context.Background(), sparse, 2, Options{Representation: tidlist.ReprAuto})
	if st.Kernel.DenseIntersections() != 0 {
		t.Fatalf("auto on sparse data dispatched %d dense intersections", st.Kernel.DenseIntersections())
	}
}

// TestRoaringRunDispatchesContainerKernel is the roaring analog of the
// dense-kernel guard: an explicit roaring run must record containerized
// dispatches and container work, and a sparse run must record none.
func TestRoaringRunDispatchesContainerKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	d := testutil.RandomDB(rng, 200, 12, 7)
	_, st, _ := MineSequentialOpts(context.Background(), d, 4, Options{Representation: tidlist.ReprRoaring})
	if st.Intersections == 0 {
		t.Skip("no intersections at this support; adjust test data")
	}
	if st.Kernel.RoaringIntersections() == 0 {
		t.Fatal("explicit roaring run performed no containerized dispatches")
	}
	if st.Kernel.RoaringElemOps()+st.Kernel.RoaringWords() == 0 {
		t.Fatal("containerized dispatches must record container work")
	}
	_, st, _ = MineSequentialOpts(context.Background(), d, 4, Options{Representation: tidlist.ReprSparse})
	if st.Kernel.RoaringIntersections() != 0 {
		t.Fatal("explicit sparse run dispatched to the roaring kernel")
	}
}

// TestDiffsetTransitionByDensity pins the dEclat gate's two sides: dense
// classes (children retain most of their parent's support) must switch
// sub-classes to diffsets by default, the NoDiffsets ablation must not,
// and both must mine identical itemsets under every representation.
func TestDiffsetTransitionByDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	// Each transaction keeps all but one of 6 items: every pair retains
	// ~2/3 of the transactions and every extension ~3/4 of its parent,
	// comfortably above the 0.5 break-even.
	dense := &db.Database{NumItems: 6}
	for i := 0; i < 200; i++ {
		drop := rng.Intn(6)
		var items []itemset.Item
		for it := 0; it < 6; it++ {
			if it != drop {
				items = append(items, itemset.Item(it))
			}
		}
		dense.Transactions = append(dense.Transactions, db.Transaction{
			TID:   itemset.TID(i),
			Items: itemset.New(items...),
		})
	}
	for _, r := range allReprs {
		want, stOff, _ := MineSequentialOpts(context.Background(), dense, 2,
			Options{Representation: r, NoDiffsets: true})
		if stOff.DiffsetClasses != 0 {
			t.Fatalf("repr %v: NoDiffsets run still switched %d sub-classes", r, stOff.DiffsetClasses)
		}
		got, stOn, _ := MineSequentialOpts(context.Background(), dense, 2, Options{Representation: r})
		if stOn.DiffsetClasses == 0 {
			t.Fatalf("repr %v: dense data never crossed the diffset break-even", r)
		}
		if !mining.Equal(got, want) {
			t.Fatalf("repr %v: diffset-first output differs from tid-list output:\n%s",
				r, mining.Diff(got, want))
		}
	}
	// Sparse data sits far below the break-even: the default must keep
	// tid-lists so the §5.3 short-circuit stays in play.
	sparse := testutil.RandomDB(rng, 4000, 120, 4)
	_, st, _ := MineSequentialOpts(context.Background(), sparse, 2, Options{Representation: tidlist.ReprAuto})
	if st.DiffsetClasses != 0 {
		t.Fatalf("sparse data switched %d sub-classes to diffsets below the break-even", st.DiffsetClasses)
	}
	// A break-even above 1 can never be met by a retention estimate.
	_, st, _ = MineSequentialOpts(context.Background(), dense, 2,
		Options{Representation: tidlist.ReprAuto, DiffsetBreakEven: 1.5})
	if st.DiffsetClasses != 0 {
		t.Fatalf("DiffsetBreakEven 1.5 still switched %d sub-classes", st.DiffsetClasses)
	}
}

// TestParallelReportTaggedWithRepresentation checks the cluster report
// carries the representation it was mined through, for all parallel
// variants.
func TestParallelReportTaggedWithRepresentation(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(400))
	minsup := d.MinSupCount(1.0)
	for _, r := range allReprs {
		opts := Options{Representation: r}
		_, rep := MineOpts(cluster.New(cluster.Default(2, 2)), d, minsup, opts)
		if rep.Representation != r.String() {
			t.Fatalf("Mine report representation %q, want %q", rep.Representation, r)
		}
		_, rep = MineHybridOpts(cluster.New(cluster.Default(2, 2)), d, minsup, opts)
		if rep.Representation != r.String() {
			t.Fatalf("hybrid report representation %q, want %q", rep.Representation, r)
		}
		_, rep = MineMaximalParallelOpts(cluster.New(cluster.Default(2, 2)), d, minsup, opts)
		if rep.Representation != r.String() {
			t.Fatalf("maximal report representation %q, want %q", rep.Representation, r)
		}
	}
}

// TestPayloadSplitAccounted checks the transformation-phase exchange
// records its per-representation payload split: under an explicit
// encoding all payload bytes land on that side, and the split never
// exceeds the total network volume.
func TestPayloadSplitAccounted(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(400))
	minsup := d.MinSupCount(1.0)
	for _, r := range allReprs {
		_, rep := MineOpts(cluster.New(cluster.Default(2, 2)), d, minsup, Options{Representation: r})
		sparse := rep.Merged.NetBytesSparse
		dense := rep.Merged.NetBytesDense
		if sparse+dense == 0 {
			t.Fatalf("repr %v: no payload split recorded", r)
		}
		if sparse+dense > rep.Merged.NetBytes {
			t.Fatalf("repr %v: payload split %d exceeds total net bytes %d", r, sparse+dense, rep.Merged.NetBytes)
		}
		switch r {
		case tidlist.ReprSparse:
			if dense != 0 {
				t.Fatalf("sparse run shipped %d dense payload bytes", dense)
			}
		case tidlist.ReprBitset:
			if sparse != 0 {
				t.Fatalf("bitset run shipped %d sparse payload bytes", sparse)
			}
		}
	}
}
