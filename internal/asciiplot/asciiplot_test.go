package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	out := Chart("demo", []string{"1", "2", "3"}, []Series{
		{Name: "up", Y: []float64{1, 2, 3}},
		{Name: "down", Y: []float64{3, 2, 1}},
	}, Options{Width: 30, Height: 8})
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if strings.Count(out, "*") < 3 {
		t.Fatalf("series points missing:\n%s", out)
	}
	// The y-axis should show the extremes.
	if !strings.Contains(out, "3") || !strings.Contains(out, "1") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	if out := Chart("t", nil, nil, Options{}); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart should say so: %q", out)
	}
	out := Chart("t", []string{"a"}, []Series{{Name: "s", Y: []float64{math.NaN()}}}, Options{})
	if !strings.Contains(out, "no data") {
		t.Fatalf("all-NaN chart should say so: %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	out := Chart("flat", []string{"a", "b"}, []Series{{Name: "s", Y: []float64{5, 5}}}, Options{Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series should still plot:\n%s", out)
	}
}

func TestChartLogY(t *testing.T) {
	out := Chart("log", []string{"a", "b", "c"}, []Series{
		{Name: "s", Y: []float64{10, 1000, 100000}},
	}, Options{Height: 6, LogY: true})
	if !strings.Contains(out, "100000") {
		t.Fatalf("log axis should label the max in linear units:\n%s", out)
	}
	// Zero values are skipped, not crashed on.
	out = Chart("log0", []string{"a", "b"}, []Series{{Name: "s", Y: []float64{0, 10}}},
		Options{LogY: true})
	if !strings.Contains(out, "*") {
		t.Fatalf("log chart with zeros should plot the positive point:\n%s", out)
	}
}

func TestChartMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Chart("bad", []string{"a", "b"}, []Series{{Name: "s", Y: []float64{1}}}, Options{})
}

func TestChartSinglePoint(t *testing.T) {
	out := Chart("one", []string{"x"}, []Series{{Name: "s", Y: []float64{7}}}, Options{Height: 3})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point should render:\n%s", out)
	}
}
