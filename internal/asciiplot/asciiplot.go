// Package asciiplot renders small line charts as plain text, so the
// regenerated paper figures can be *seen*, not just tabulated, without
// leaving the terminal or adding dependencies.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	Y    []float64 // one value per x position; NaN skips the point
}

// Options controls the canvas.
type Options struct {
	Width  int // plot columns (default: number of x positions, min 24)
	Height int // plot rows (default 12)
	// LogY plots log10(y) (for the paper's figure 6, whose counts span
	// orders of magnitude).
	LogY bool
}

// markers distinguish series; cycled if there are more series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart renders the series over the shared x labels. All series must have
// len(Y) == len(xlabels).
func Chart(title string, xlabels []string, series []Series, opts Options) string {
	n := len(xlabels)
	for _, s := range series {
		if len(s.Y) != n {
			panic(fmt.Sprintf("asciiplot: series %q has %d points for %d x positions", s.Name, len(s.Y), n))
		}
	}
	if n == 0 || len(series) == 0 {
		return title + "\n(no data)\n"
	}
	height := opts.Height
	if height <= 0 {
		height = 12
	}
	width := opts.Width
	if width <= 0 {
		width = n * 4
		if width < 24 {
			width = 24
		}
	}

	tr := func(v float64) float64 {
		if opts.LogY {
			if v <= 0 {
				return math.NaN()
			}
			return math.Log10(v)
		}
		return v
	}

	// Value range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			tv := tr(v)
			if math.IsNaN(tv) {
				continue
			}
			if tv < lo {
				lo = tv
			}
			if tv > hi {
				hi = tv
			}
		}
	}
	if math.IsInf(lo, 1) {
		return title + "\n(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(i int) int {
		if n == 1 {
			return width / 2
		}
		return i * (width - 1) / (n - 1)
	}
	row := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := height - 1 - int(math.Round(frac*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	for si, s := range series {
		m := markers[si%len(markers)]
		prevCol, prevRow := -1, -1
		for i, v := range s.Y {
			tv := tr(v)
			if math.IsNaN(tv) {
				prevCol = -1
				continue
			}
			c, r := col(i), row(tv)
			// Connect to the previous point with a sparse line of dots.
			if prevCol >= 0 {
				steps := c - prevCol
				for step := 1; step < steps; step++ {
					ic := prevCol + step
					irow := prevRow + (r-prevRow)*step/steps
					if grid[irow][ic] == ' ' {
						grid[irow][ic] = '.'
					}
				}
			}
			grid[r][c] = m
			prevCol, prevRow = c, r
		}
	}

	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	yfmt := func(v float64) string {
		if opts.LogY {
			return fmt.Sprintf("%9.0f", math.Pow(10, v))
		}
		if math.Abs(v) >= 100 || v == math.Trunc(v) {
			return fmt.Sprintf("%9.0f", v)
		}
		return fmt.Sprintf("%9.2f", v)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 9)
		switch r {
		case 0:
			label = yfmt(hi)
		case height / 2:
			label = yfmt(lo + (hi-lo)/2)
		case height - 1:
			label = yfmt(lo)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(grid[r]))
	}
	sb.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", width) + "\n")

	// X labels: first, middle, last.
	xline := make([]byte, width+11)
	for i := range xline {
		xline[i] = ' '
	}
	place := func(i int) {
		lab := xlabels[i]
		start := 11 + col(i) - len(lab)/2
		if start < 11 {
			start = 11
		}
		if start+len(lab) > len(xline) {
			start = len(xline) - len(lab)
		}
		copy(xline[start:], lab)
	}
	place(0)
	if n > 2 {
		place(n / 2)
	}
	if n > 1 {
		place(n - 1)
	}
	sb.Write(xline)
	sb.WriteByte('\n')

	// Legend.
	for si, s := range series {
		fmt.Fprintf(&sb, "           %c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}
