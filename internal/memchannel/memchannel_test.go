package memchannel

import "testing"

func TestDefaultDECFigures(t *testing.T) {
	m := DefaultDEC()
	if m.LatencyNS != 5200 {
		t.Fatalf("latency = %d, paper says 5.2us", m.LatencyNS)
	}
	if m.LinkBytesPerSecond != 30<<20 || m.AggBytesPerSecond != 32<<20 {
		t.Fatal("bandwidths should match the published 30/32 MB/s")
	}
	if m.BufferBytes != 2<<20 {
		t.Fatal("exchange buffer should be the paper's 2MB")
	}
}

func TestSendCost(t *testing.T) {
	n := New(DefaultDEC())
	zero := n.SendNS(0)
	if zero != 5200 {
		t.Fatalf("zero-byte send should cost one latency, got %d", zero)
	}
	mb := n.SendNS(30 << 20)
	// 30MB at 30MB/s is 1s of link time, doubled by write-doubling.
	wantLow, wantHigh := int64(1.9e9), int64(2.1e9)
	if mb < wantLow || mb > wantHigh {
		t.Fatalf("30MB send = %dns, want ~2s with write-doubling", mb)
	}
	m := DefaultDEC()
	m.WriteDoubling = false
	single := New(m).SendNS(30 << 20)
	if single >= mb {
		t.Fatal("write-doubling should double transfer cost")
	}
}

func TestExclusiveReduceSerializes(t *testing.T) {
	n := New(DefaultDEC())
	one := n.ExclusiveReduceNS(1024, 1)
	eight := n.ExclusiveReduceNS(1024, 8)
	if eight != 8*one {
		t.Fatalf("O(P) reduction: P=8 should be 8x P=1 (%d vs %d)", eight, one)
	}
	if n.ExclusiveReduceNS(1024, 0) != one {
		t.Fatal("procs < 1 should clamp")
	}
}

func TestExchangeCostShape(t *testing.T) {
	n := New(DefaultDEC())
	// Balanced exchange.
	costs := n.ExchangeNS([]int64{1 << 20, 1 << 20, 1 << 20, 1 << 20})
	for i := 1; i < len(costs); i++ {
		if costs[i] != costs[0] {
			t.Fatalf("balanced exchange should cost the same everywhere: %v", costs)
		}
	}
	// The aggregate-bandwidth floor binds: 4MB total (8MB written with
	// doubling) at 32MB/s aggregate is 250ms; a single link could do its
	// 1MB much faster.
	if costs[0] < 200e6 {
		t.Fatalf("aggregate bandwidth floor not applied: %v", costs)
	}
	// More total volume costs more.
	bigger := n.ExchangeNS([]int64{8 << 20, 8 << 20, 8 << 20, 8 << 20})
	if bigger[0] <= costs[0] {
		t.Fatal("larger exchange should cost more")
	}
	if got := n.ExchangeNS(nil); len(got) != 0 {
		t.Fatal("empty exchange")
	}
	// Zero-byte participants still pay the lock-step round latencies.
	z := n.ExchangeNS([]int64{0, 0})
	if z[0] < 2*5200 {
		t.Fatalf("zero exchange should still cost round latency, got %d", z[0])
	}
}

func TestExchangeRoundsGrowWithBuffer(t *testing.T) {
	small := DefaultDEC()
	small.BufferBytes = 64 << 10
	small.AggBytesPerSecond = 1 << 40 // disable the aggregate floor
	small.LinkBytesPerSecond = 1 << 40
	nSmall := New(small)
	big := small
	big.BufferBytes = 8 << 20
	nBig := New(big)
	sent := []int64{4 << 20, 4 << 20}
	if nSmall.ExchangeNS(sent)[0] <= nBig.ExchangeNS(sent)[0] {
		t.Fatal("smaller buffers mean more lock-step rounds and more latency")
	}
}

func TestBarrierCostLogDepth(t *testing.T) {
	n := New(DefaultDEC())
	b2 := n.BarrierNS(2)
	b32 := n.BarrierNS(32)
	if b32 != 5*b2 {
		t.Fatalf("barrier(32) should be log2(32)=5 levels: %d vs %d", b32, b2)
	}
	if n.BarrierNS(1) != 5200 {
		t.Fatal("single-proc barrier costs one latency minimum")
	}
}

func TestInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Model{LatencyNS: 1})
}
