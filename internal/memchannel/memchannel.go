// Package memchannel models the DEC Memory Channel interconnect of the
// paper's testbed (section 6.1): a global address space of mapped regions
// where "unicast and multicast process-to-process writes have a latency
// of 5.2 us, with per-link transfer bandwidths of 30 MB/s. MC peak
// aggregate bandwidth is also about 32 MB/s."
//
// The model is purely a deterministic virtual-time calculator; actual data
// movement in the simulation happens through Go memory, which preserves
// the Memory Channel's semantics (reliable, ordered, shared regions)
// exactly. Three cost shapes cover everything the algorithms do:
//
//   - point-to-point / broadcast writes (sum-reductions, result gathers);
//   - mutually exclusive updates of a shared region (the paper's O(P)
//     reduction in section 6.2);
//   - the lock-step buffered all-to-all tid-list exchange with 2 MB
//     transmit/receive buffers (section 6.3), whose round count the buffer
//     size controls and whose throughput the aggregate hub bandwidth caps.
//
// Write-doubling (section 6.1: each processor writes to its receive
// region and then its transmit region so same-host processes see the
// update without hub loop-back) doubles the charged write volume.
package memchannel

import "fmt"

// Model holds the interconnect parameters.
type Model struct {
	LatencyNS          int64 // per message (5.2 us on the DEC MC)
	LinkBytesPerSecond int64 // per-link bandwidth (30 MB/s)
	AggBytesPerSecond  int64 // hub aggregate bandwidth (32 MB/s)
	BufferBytes        int64 // transmit/receive region size (2 MB in the paper)
	WriteDoubling      bool  // double write volume instead of loop-back
}

// DefaultDEC returns the published Memory Channel figures.
func DefaultDEC() Model {
	return Model{
		LatencyNS:          5200,
		LinkBytesPerSecond: 30 << 20,
		AggBytesPerSecond:  32 << 20,
		BufferBytes:        2 << 20,
		WriteDoubling:      true,
	}
}

// Network is a cost calculator for one cluster's interconnect.
type Network struct {
	model Model
}

// New validates the model and returns a Network.
func New(m Model) *Network {
	if m.LinkBytesPerSecond <= 0 || m.AggBytesPerSecond <= 0 || m.BufferBytes <= 0 {
		panic(fmt.Sprintf("memchannel: invalid model %+v", m))
	}
	return &Network{model: m}
}

// Model returns the configured parameters.
func (n *Network) Model() Model { return n.model }

func (n *Network) writeFactor() int64 {
	if n.model.WriteDoubling {
		return 2
	}
	return 1
}

// SendNS returns the cost of one point-to-point (or multicast: the MC hub
// forwards a single write to all mapped receivers) write of `bytes`.
func (n *Network) SendNS(bytes int64) int64 {
	return n.model.LatencyNS + n.writeFactor()*bytes*1e9/n.model.LinkBytesPerSecond
}

// ExclusiveReduceNS returns the per-processor cost of the paper's simple
// O(P) sum-reduction: each of `procs` processors in turn acquires the
// shared region and adds its `bytes`-sized partial vector. Every
// participant effectively waits for the whole sequence, so the charge is
// the full serialized time.
func (n *Network) ExclusiveReduceNS(bytes int64, procs int) int64 {
	if procs < 1 {
		procs = 1
	}
	return int64(procs) * n.SendNS(bytes)
}

// ExchangeNS returns the per-processor virtual time of the lock-step
// all-to-all exchange in which processor i contributes sent[i] bytes. The
// protocol alternates write and read phases over fixed-size buffers
// (section 6.3), so processor i performs ceil(sent[i]/buffer) write
// rounds; every processor also rescans all receive regions each round, and
// the hub's aggregate bandwidth bounds total progress. The returned slice
// is indexed like sent.
func (n *Network) ExchangeNS(sent []int64) []int64 {
	out := make([]int64, len(sent))
	if len(sent) == 0 {
		return out
	}
	var total, maxSent int64
	for _, b := range sent {
		total += b
		if b > maxSent {
			maxSent = b
		}
	}
	// The exchange proceeds in global lock-step rounds; the number of
	// rounds is set by the largest sender.
	rounds := (maxSent + n.model.BufferBytes - 1) / n.model.BufferBytes
	if rounds < 1 {
		rounds = 1
	}
	// Aggregate-bandwidth floor: the hub moves `total` bytes once
	// (multiplied by write-doubling on the sender side).
	aggNS := n.writeFactor() * total * 1e9 / n.model.AggBytesPerSecond
	for i, b := range sent {
		// Own link time for writes plus per-round latency for the
		// alternating write/read phases (2 messages per round).
		own := 2*rounds*n.model.LatencyNS + n.writeFactor()*b*1e9/n.model.LinkBytesPerSecond
		if own < aggNS {
			own = aggNS
		}
		out[i] = own
	}
	return out
}

// BarrierNS returns the synchronization cost of one barrier among `procs`
// processors: a log-depth combining tree of MC writes.
func (n *Network) BarrierNS(procs int) int64 {
	depth := int64(0)
	for p := int64(1); p < int64(procs); p *= 2 {
		depth++
	}
	if depth == 0 {
		depth = 1
	}
	return depth * n.model.LatencyNS
}
