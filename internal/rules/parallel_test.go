package rules

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/cluster"
	"repro/internal/testutil"
)

func TestGenerateParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	d := testutil.RandomDB(rng, 200, 12, 6)
	res, _, _ := apriori.Mine(context.Background(), d, 4)
	for _, minConf := range []float64{0.4, 0.8, 1.0} {
		want := Generate(res, minConf)
		for _, hp := range [][2]int{{1, 1}, {2, 2}, {4, 1}, {1, 8}} {
			cl := cluster.New(cluster.Default(hp[0], hp[1]))
			got := GenerateParallel(cl, res, minConf)
			if len(got) != len(want) {
				t.Fatalf("H=%d P=%d minConf %v: %d rules, want %d",
					hp[0], hp[1], minConf, len(got), len(want))
			}
			for i := range want {
				if got[i].String() != want[i].String() {
					t.Fatalf("H=%d P=%d rule %d: %v != %v", hp[0], hp[1], i, got[i], want[i])
				}
			}
		}
	}
}

func TestGenerateParallelChargesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	d := testutil.RandomDB(rng, 200, 12, 6)
	res, _, _ := apriori.Mine(context.Background(), d, 4)
	cl := cluster.New(cluster.Default(2, 2))
	GenerateParallel(cl, res, 0.5)
	rep := cl.Report()
	if rep.ElapsedNS <= 0 {
		t.Fatal("no virtual time charged")
	}
	if rep.PhaseMaxNS("rules") <= 0 {
		t.Fatal("rules phase missing")
	}
}

func TestGenerateParallelBadMinConf(t *testing.T) {
	res := fixture()
	cl := cluster.New(cluster.Default(1, 2))
	got := GenerateParallel(cl, res, 0) // clamps to 1.0
	want := Generate(res, 1.0)
	if len(got) != len(want) {
		t.Fatalf("clamped minConf: %d rules, want %d", len(got), len(want))
	}
}
