// Package rules implements the second step of the association mining task
// (paper section 1.1): generating implication rules X - Y => Y from the
// frequent itemsets, keeping those whose confidence
// support(X) / support(X - Y) meets a user threshold.
//
// The generator follows the ap-genrules structure of Agrawal & Srikant
// [4]: consequents are grown level-wise, and the anti-monotonicity of
// confidence (if X-Y => Y fails, every rule with a superset of Y as
// consequent fails too) prunes the search.
package rules

import (
	"fmt"
	"sort"

	"repro/internal/itemset"
	"repro/internal/mining"
)

// Rule is an association rule Antecedent => Consequent.
type Rule struct {
	Antecedent itemset.Itemset
	Consequent itemset.Itemset
	// Support is the absolute support of Antecedent ∪ Consequent.
	Support int
	// Confidence is support(A ∪ C) / support(A), in (0, 1].
	Confidence float64
	// Lift is confidence / P(C); values above 1 indicate positive
	// correlation. Zero when the consequent's support is unknown.
	Lift float64
}

// String renders "{1 2} => {3} (sup=10, conf=0.83, lift=1.9)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup=%d, conf=%.3f, lift=%.2f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// Generate derives all rules with confidence >= minConf from the mined
// result. The result must include the supports of all frequent itemsets
// (as every miner in this repository produces); minConf is in (0, 1].
func Generate(res *mining.Result, minConf float64) []Rule {
	if minConf <= 0 || minConf > 1 {
		minConf = 1
	}
	sup := res.SupportMap()
	var out []Rule
	for _, f := range res.Itemsets {
		out = append(out, generateFrom(f, sup, res.NumTransactions, minConf)...)
	}
	Sort(out)
	return out
}

// generateFrom runs the ap-genrules consequent growth for one frequent
// itemset against a complete support table: level-1 consequents first,
// then Apriori-joined growth of the survivors (confidence
// anti-monotonicity prunes the rest).
func generateFrom(f mining.FrequentItemset, sup map[string]int, numTx int, minConf float64) []Rule {
	if f.Set.K() < 2 {
		return nil
	}
	var out []Rule
	emit := func(consequent itemset.Itemset) bool {
		ante := f.Set.Minus(consequent)
		anteSup, ok := sup[ante.Key()]
		if !ok || anteSup == 0 {
			// The antecedent must itself be frequent (downward closure);
			// a miss means the result is incomplete for rule generation.
			return false
		}
		conf := float64(f.Support) / float64(anteSup)
		if conf < minConf {
			return false
		}
		r := Rule{Antecedent: ante, Consequent: consequent, Support: f.Support, Confidence: conf}
		if cSup, ok := sup[consequent.Key()]; ok && cSup > 0 && numTx > 0 {
			r.Lift = conf / (float64(cSup) / float64(numTx))
		}
		out = append(out, r)
		return true
	}

	// Level 1 consequents.
	var h []itemset.Itemset
	for i := range f.Set {
		c := itemset.Itemset{f.Set[i]}
		if emit(c) {
			h = append(h, c)
		}
	}
	// Grow consequents: a consequent of size m+1 is viable only if all its
	// size-m subsets produced valid rules.
	for m := 1; m < f.Set.K()-1 && len(h) > 1; m++ {
		itemset.Sort(h)
		inH := make(map[string]bool, len(h))
		for _, c := range h {
			inH[c.Key()] = true
		}
		var next []itemset.Itemset
		for i := 0; i < len(h); i++ {
			for j := i + 1; j < len(h); j++ {
				if !h[i].SharesPrefix(h[j]) {
					continue
				}
				cand := h[i].Join(h[j])
				if !allSubsetsIn(cand, inH) {
					continue
				}
				if emit(cand) {
					next = append(next, cand)
				}
			}
		}
		h = next
	}
	return out
}

// allSubsetsIn checks that every (len-1)-subset of cand is in the
// surviving consequent set.
func allSubsetsIn(cand itemset.Itemset, in map[string]bool) bool {
	for i := range cand {
		if !in[cand.Without(i).Key()] {
			return false
		}
	}
	return true
}

// Sort orders rules by descending confidence, then descending support,
// then lexicographically — the presentation order of the cmd tools.
func Sort(rs []Rule) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if !a.Antecedent.Equal(b.Antecedent) {
			return a.Antecedent.Less(b.Antecedent)
		}
		return a.Consequent.Less(b.Consequent)
	})
}

// TopN returns the first n rules of a sorted slice (all if fewer).
func TopN(rs []Rule, n int) []Rule {
	if n > len(rs) {
		n = len(rs)
	}
	return rs[:n]
}
