package rules

import (
	"repro/internal/cluster"
	"repro/internal/mining"
)

// GenerateParallel derives rules on the simulated cluster: the frequent
// itemsets are dealt round-robin to the processors (rule generation from
// one itemset is independent of every other itemset, so the step
// parallelizes embarrassingly — the paper calls it "relatively
// straightforward"), each processor runs ap-genrules over its share
// against the shared support table, and a final gather concatenates the
// rule lists. Output equals Generate's.
func GenerateParallel(cl *cluster.Cluster, res *mining.Result, minConf float64) []Rule {
	if minConf <= 0 || minConf > 1 {
		minConf = 1
	}
	t := cl.NumProcs()
	perProc := make([][]Rule, t)

	cl.Run(func(p *cluster.Proc) {
		p.SetPhase("rules")
		// Every processor already holds the mining output (the final
		// reduction distributed it), so the support table is local.
		sup := res.SupportMap()
		p.ChargeCPU(int64(len(res.Itemsets)) / int64(t)) // table build share

		var local []Rule
		var ops int64
		for i, f := range res.Itemsets {
			if i%t != p.ID() {
				continue
			}
			rs := generateFrom(f, sup, res.NumTransactions, minConf)
			ops += int64(f.Set.K())*int64(f.Set.K()) + int64(len(rs))
			local = append(local, rs...)
		}
		p.ChargeCPU(ops)
		perProc[p.ID()] = local

		var bytes int64
		for _, r := range local {
			bytes += 4 * int64(r.Antecedent.K()+r.Consequent.K()+4)
		}
		cluster.Gather(p, bytes, bytes)
	})

	var out []Rule
	for _, rs := range perProc {
		out = append(out, rs...)
	}
	Sort(out)
	return out
}
