package rules

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/testutil"
)

// Hand-built result: sup(A)=4, sup(B)=3, sup(AB)=3, numTx=5.
// A => B: conf 3/4 = 0.75, lift = 0.75/(3/5) = 1.25.
// B => A: conf 3/3 = 1.00, lift = 1/(4/5) = 1.25.
func fixture() *mining.Result {
	r := &mining.Result{MinSup: 2, NumTransactions: 5}
	r.Add(itemset.New(0), 4)
	r.Add(itemset.New(1), 3)
	r.Add(itemset.New(0, 1), 3)
	r.Sort()
	return r
}

func TestGenerateBasic(t *testing.T) {
	rs := Generate(fixture(), 0.7)
	if len(rs) != 2 {
		t.Fatalf("got %d rules: %v", len(rs), rs)
	}
	// Sorted by descending confidence: B => A first.
	first := rs[0]
	if !first.Antecedent.Equal(itemset.New(1)) || !first.Consequent.Equal(itemset.New(0)) {
		t.Fatalf("first rule = %v", first)
	}
	if first.Confidence != 1.0 || math.Abs(first.Lift-1.25) > 1e-9 {
		t.Fatalf("B=>A conf=%v lift=%v", first.Confidence, first.Lift)
	}
	second := rs[1]
	if second.Confidence != 0.75 {
		t.Fatalf("A=>B conf=%v", second.Confidence)
	}
}

func TestConfidenceThreshold(t *testing.T) {
	if rs := Generate(fixture(), 0.8); len(rs) != 1 {
		t.Fatalf("minconf 0.8 should keep only B=>A, got %v", rs)
	}
	if rs := Generate(fixture(), 1.0); len(rs) != 1 {
		t.Fatalf("minconf 1.0 should keep only the exact rule, got %v", rs)
	}
}

func TestBadMinConfClampsToOne(t *testing.T) {
	if rs := Generate(fixture(), 0); len(rs) != 1 {
		t.Fatalf("minconf 0 clamps to 1: %v", rs)
	}
	if rs := Generate(fixture(), 1.5); len(rs) != 1 {
		t.Fatalf("minconf > 1 clamps to 1: %v", rs)
	}
}

func TestMultiItemConsequents(t *testing.T) {
	// sup(ABC)=4 with all subsets at 4: every rule has confidence 1,
	// including the 2-item consequents A => BC etc.
	r := &mining.Result{MinSup: 4, NumTransactions: 4}
	for _, s := range []itemset.Itemset{
		itemset.New(0), itemset.New(1), itemset.New(2),
		itemset.New(0, 1), itemset.New(0, 2), itemset.New(1, 2),
		itemset.New(0, 1, 2),
	} {
		r.Add(s, 4)
	}
	r.Sort()
	rs := Generate(r, 1.0)
	// From ABC: 3 one-item + 3 two-item consequents; from each 2-itemset:
	// 2 rules. Total 6 + 6 = 12.
	if len(rs) != 12 {
		t.Fatalf("got %d rules, want 12: %v", len(rs), rs)
	}
}

// Oracle: exhaustively enumerate all (antecedent, consequent) splits and
// compare with the pruned generator.
func TestGenerateMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		d := testutil.RandomDB(rng, 60, 10, 6)
		res, _, _ := apriori.Mine(context.Background(), d, 3)
		sup := res.SupportMap()
		for _, minConf := range []float64{0.3, 0.6, 0.9, 1.0} {
			want := map[string]float64{}
			for _, f := range res.Itemsets {
				k := f.Set.K()
				if k < 2 {
					continue
				}
				for mask := 1; mask < (1 << k); mask++ {
					if mask == (1<<k)-1 {
						continue // consequent must be a proper subset
					}
					var cons itemset.Itemset
					for b := 0; b < k; b++ {
						if mask&(1<<b) != 0 {
							cons = append(cons, f.Set[b])
						}
					}
					ante := f.Set.Minus(cons)
					conf := float64(f.Support) / float64(sup[ante.Key()])
					if conf >= minConf {
						want[ante.Key()+"=>"+cons.Key()] = conf
					}
				}
			}
			got := Generate(res, minConf)
			if len(got) != len(want) {
				t.Fatalf("trial %d minconf %v: %d rules, want %d", trial, minConf, len(got), len(want))
			}
			for _, r := range got {
				key := r.Antecedent.Key() + "=>" + r.Consequent.Key()
				if w, ok := want[key]; !ok || math.Abs(w-r.Confidence) > 1e-12 {
					t.Fatalf("trial %d: unexpected or wrong rule %v", trial, r)
				}
			}
		}
	}
}

func TestRuleInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	d := testutil.RandomDB(rng, 80, 12, 6)
	res, _, _ := apriori.Mine(context.Background(), d, 3)
	rs := Generate(res, 0.5)
	for _, r := range rs {
		if r.Confidence < 0.5 || r.Confidence > 1+1e-12 {
			t.Fatalf("confidence out of range: %v", r)
		}
		if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
			t.Fatalf("empty side: %v", r)
		}
		for _, c := range r.Consequent {
			if r.Antecedent.Contains(c) {
				t.Fatalf("antecedent and consequent overlap: %v", r)
			}
		}
		if r.Support < res.MinSup {
			t.Fatalf("rule support below minsup: %v", r)
		}
	}
	// Sorted by descending confidence.
	for i := 1; i < len(rs); i++ {
		if rs[i].Confidence > rs[i-1].Confidence {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

func TestTopN(t *testing.T) {
	rs := Generate(fixture(), 0.5)
	if len(TopN(rs, 1)) != 1 || len(TopN(rs, 100)) != len(rs) || len(TopN(rs, 0)) != 0 {
		t.Fatal("TopN bounds wrong")
	}
}

func TestStringFormat(t *testing.T) {
	r := Rule{Antecedent: itemset.New(1), Consequent: itemset.New(2), Support: 3, Confidence: 0.5, Lift: 2}
	want := "{1} => {2} (sup=3, conf=0.500, lift=2.00)"
	if r.String() != want {
		t.Fatalf("String = %q, want %q", r.String(), want)
	}
}
