package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/mining"
	"repro/internal/obsv"
)

// Job-lifecycle metrics (see /metricsz). They mirror the Manager's
// per-instance atomics, which /statsz still serves; the registry versions
// aggregate across every manager in the process.
const (
	mnJobsSubmitted = "service_jobs_submitted_total"
	mnJobsCompleted = "service_jobs_completed_total"
	mnJobsFailed    = "service_jobs_failed_total"
	mnJobsCanceled  = "service_jobs_canceled_total"
	mnJobsRejected  = "service_jobs_rejected_total"
	mnCacheServed   = "service_cache_served_total"
	mnJobsRunning   = "service_jobs_running"
	mnQueueWaitNS   = "service_queue_wait_ns"
	mnJobDurationNS = "service_job_duration_ns"
)

var (
	jobsSubmitted = obsv.Default.Counter(mnJobsSubmitted, "jobs accepted (queued or served from cache)")
	jobsCompleted = obsv.Default.Counter(mnJobsCompleted, "jobs finished successfully")
	jobsFailed    = obsv.Default.Counter(mnJobsFailed, "jobs finished with an error")
	jobsCanceled  = obsv.Default.Counter(mnJobsCanceled, "jobs canceled before or during execution")
	jobsRejected  = obsv.Default.Counter(mnJobsRejected, "submissions refused by queue backpressure")
	cacheServed   = obsv.Default.Counter(mnCacheServed, "jobs answered from the result cache without mining")
	jobsRunning   = obsv.Default.Gauge(mnJobsRunning, "jobs currently executing")
	queueWaitNS   = obsv.Default.Histogram(mnQueueWaitNS, "nanoseconds jobs spent queued before running", nil)
	jobDurationNS = obsv.Default.Histogram(mnJobDurationNS, "nanoseconds from job start to terminal state", nil)
)

// ErrQueueFull is returned by Submit when the bounded job queue has no
// free slot; HTTP maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("service: job queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = errors.New("service: shutting down")

// ErrUnknownJob is returned for job IDs the manager has never issued.
var ErrUnknownJob = errors.New("service: unknown job")

// RunFunc executes one job and returns its result. It must honor ctx:
// on cancellation it should return promptly with ctx.Err().
type RunFunc func(ctx context.Context, job *Job) (*mining.Result, *repro.RunInfo, error)

// ManagerConfig sizes the worker pool and queue.
type ManagerConfig struct {
	// Workers is the number of concurrent mining goroutines (default 1).
	Workers int
	// QueueDepth bounds the number of jobs waiting to run (default 16).
	// Submissions beyond Workers running + QueueDepth waiting fail with
	// ErrQueueFull.
	QueueDepth int
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 16
	}
	return c
}

// Manager owns the job table, the bounded FIFO queue, and the worker
// pool. Every job ever submitted stays in the table until the manager is
// discarded, so status and results remain queryable after completion.
type Manager struct {
	cfg ManagerConfig
	run RunFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for List
	queue  chan *Job
	closed bool
	nextID uint64

	wg sync.WaitGroup

	running   atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64
}

// NewManager starts cfg.Workers workers draining the queue through run.
func NewManager(cfg ManagerConfig, run RunFunc) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:   cfg,
		run:   run,
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.QueueDepth),
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues a job for req with cache identity key. It fails with
// ErrQueueFull when the queue is at capacity and ErrShuttingDown after
// Shutdown.
func (m *Manager) Submit(req Request, key Key) (*Job, error) {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		Req:     req,
		Key:     key,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  StatusQueued,
		created: time.Now(),
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return nil, ErrShuttingDown
	}
	m.nextID++
	j.ID = fmt.Sprintf("job-%d", m.nextID)
	select {
	case m.queue <- j:
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		m.mu.Unlock()
	default:
		m.mu.Unlock()
		cancel()
		m.rejected.Add(1)
		jobsRejected.Inc()
		return nil, ErrQueueFull
	}
	m.submitted.Add(1)
	jobsSubmitted.Inc()
	return j, nil
}

// Insert registers an already-terminal job (used for cache hits, which
// never pass through the queue) so it is queryable like any other job.
func (m *Manager) Insert(req Request, key Key, res *mining.Result, cached bool) *Job {
	now := time.Now()
	j := &Job{
		Req:      req,
		Key:      key,
		cancel:   func() {},
		done:     make(chan struct{}),
		status:   StatusDone,
		result:   res,
		cached:   cached,
		created:  now,
		started:  now,
		finished: now,
	}
	close(j.done)
	m.mu.Lock()
	m.nextID++
	j.ID = fmt.Sprintf("job-%d", m.nextID)
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
	m.submitted.Add(1)
	m.completed.Add(1)
	jobsSubmitted.Inc()
	jobsCompleted.Inc()
	cacheServed.Inc()
	return j
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// List returns snapshots of all jobs in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]View, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Snapshot())
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].Created.Before(out[k].Created) })
	return out
}

// Cancel requests cancellation of a job. A queued job transitions to
// canceled immediately (the worker will skip it); a running job's
// context is canceled and the worker records the terminal state when the
// run function returns. Canceling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		j.cancel()
		m.canceled.Add(1)
		jobsCanceled.Inc()
	case StatusRunning:
		j.mu.Unlock()
		j.cancel() // worker finishes the transition
	default:
		j.mu.Unlock()
	}
	return j, nil
}

// Wait blocks until the job reaches a terminal status or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (View, error) {
	j, err := m.Get(id)
	if err != nil {
		return View{}, err
	}
	select {
	case <-j.Done():
		return j.Snapshot(), nil
	case <-ctx.Done():
		return j.Snapshot(), ctx.Err()
	}
}

// QueueLen is the number of jobs waiting (not running).
func (m *Manager) QueueLen() int { return len(m.queue) }

// Shutdown stops accepting jobs, drains the queue and running jobs, and
// waits for the workers to exit. If ctx expires first, all outstanding
// jobs are canceled and Shutdown waits for the workers to observe the
// cancellation, then returns ctx.Err().
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue) // workers drain remaining jobs, then exit
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		jobs := make([]*Job, 0, len(m.jobs))
		for _, j := range m.jobs {
			jobs = append(jobs, j)
		}
		m.mu.Unlock()
		for _, j := range jobs {
			m.cancelIfPending(j)
		}
		<-done
		return ctx.Err()
	}
}

func (m *Manager) cancelIfPending(j *Job) {
	j.mu.Lock()
	if j.status == StatusQueued {
		j.status = StatusCanceled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		j.cancel()
		m.canceled.Add(1)
		jobsCanceled.Inc()
		return
	}
	j.mu.Unlock()
	j.cancel()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *Job) {
	tr := obsv.NewTrace()
	j.mu.Lock()
	if j.status != StatusQueued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.trace = tr
	queueWaitNS.Observe(j.started.Sub(j.created).Nanoseconds())
	j.mu.Unlock()

	m.running.Add(1)
	jobsRunning.Add(1)
	defer func() {
		m.running.Add(-1)
		jobsRunning.Add(-1)
	}()

	res, info, err := m.run(obsv.WithTrace(j.ctx, tr), j)
	j.cancel() // release the context's resources

	j.mu.Lock()
	defer func() {
		close(j.done)
		j.mu.Unlock()
	}()
	j.finished = time.Now()
	jobDurationNS.Observe(j.finished.Sub(j.started).Nanoseconds())
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = res
		j.info = info
		m.completed.Add(1)
		jobsCompleted.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status = StatusCanceled
		j.err = err.Error()
		m.canceled.Add(1)
		jobsCanceled.Inc()
	default:
		j.status = StatusFailed
		j.err = err.Error()
		m.failed.Add(1)
		jobsFailed.Inc()
	}
}
