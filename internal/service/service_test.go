package service

import (
	"bytes"
	"context"
	"testing"

	"repro"
	"repro/internal/db"
	"repro/internal/itemset"
)

func genDataset(t testing.TB, tx int) *db.Database {
	t.Helper()
	d, err := repro.Generate(repro.StandardConfig(tx))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newTestService(t testing.TB, cfg Config, tx int) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	if _, err := s.Registry().Add("t10", "generated", genDataset(t, tx)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServiceMineMatchesDirectCall(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 8}, 1000)
	req := Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportPct: 1.0}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone || v.Cached {
		t.Fatalf("first run: %+v, want uncached done", v)
	}

	got, err := s.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := s.Registry().Get("t10")
	dsDB, err := ds.Database()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := repro.Mine(context.Background(), dsDB, repro.MineOptions{SupportPct: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var gotBuf, wantBuf bytes.Buffer
	if err := repro.WriteResult(&gotBuf, got); err != nil {
		t.Fatal(err)
	}
	if err := repro.WriteResult(&wantBuf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
		t.Fatal("service result differs from direct repro.Mine result")
	}
}

func TestServiceSecondSubmissionHitsCache(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 8}, 500)
	req := Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportPct: 2.0}

	j1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j1.ID); err != nil {
		t.Fatal(err)
	}

	j2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v2 := j2.Snapshot()
	if v2.Status != StatusDone || !v2.Cached {
		t.Fatalf("second submission: %+v, want cached done", v2)
	}
	if s.Cache().Stats().Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", s.Cache().Stats().Hits)
	}

	// An equivalent request phrased as an absolute count shares the entry.
	ds, _ := s.Registry().Get("t10")
	minsup, err := repro.MineOptions{SupportPct: 2.0}.MinSupN(ds.Info().Transactions)
	if err != nil {
		t.Fatal(err)
	}
	abs := Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportCount: minsup}
	j3, err := s.Submit(abs)
	if err != nil {
		t.Fatal(err)
	}
	if v3 := j3.Snapshot(); !v3.Cached {
		t.Fatalf("absolute-count request missed the cache: %+v", v3)
	}
}

func TestServiceVariantAndAlgorithmGetDistinctEntries(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 8}, 300)
	for _, req := range []Request{
		{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportPct: 2.0},
		{Dataset: "t10", Algorithm: repro.AlgoApriori, SupportPct: 2.0},
		{Dataset: "t10", Algorithm: repro.AlgoEclat, Variant: VariantMaximal, SupportPct: 2.0},
	} {
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := s.Wait(context.Background(), j.ID); err != nil || v.Status != StatusDone {
			t.Fatalf("%+v: %v %v", req, v.Status, err)
		}
		if v := j.Snapshot(); v.Cached {
			t.Fatalf("request %+v should not share a cache entry", req)
		}
	}
	if got := s.Cache().Len(); got != 3 {
		t.Fatalf("cache entries = %d, want 3", got)
	}
}

func TestServiceRejectsBadRequests(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 2}, 100)
	for _, req := range []Request{
		{Dataset: "nope"},
		{Dataset: "t10", SupportPct: -1},
		{Dataset: "t10", SupportCount: -5},
	} {
		if _, err := s.Submit(req); err == nil {
			t.Fatalf("submit %+v succeeded, want error", req)
		}
	}
}

func TestDatasetVerticalIsMemoizedAndCorrect(t *testing.T) {
	d := &db.Database{
		NumItems: 4,
		Transactions: []db.Transaction{
			{TID: 0, Items: itemset.Itemset{0, 1}},
			{TID: 1, Items: itemset.Itemset{1, 2}},
			{TID: 2, Items: itemset.Itemset{1}},
		},
	}
	r := NewRegistry()
	ds, err := r.Add("tiny", "test", d)
	if err != nil {
		t.Fatal(err)
	}
	v1 := ds.Vertical()
	if got := v1[1].Support(); got != 3 {
		t.Fatalf("item 1 support = %d, want 3", got)
	}
	if got := v1[3].Support(); got != 0 {
		t.Fatalf("item 3 support = %d, want 0", got)
	}
	v2 := ds.Vertical()
	if &v1[0] != &v2[0] {
		t.Fatal("Vertical recomputed instead of memoized")
	}
	top := ds.TopItems(2)
	if len(top) != 2 || top[0].Item != 1 || top[0].Support != 3 {
		t.Fatalf("TopItems = %+v", top)
	}
}

// BenchmarkServiceQueries is the serving-path baseline: one end-to-end
// query (submit → wait → result) on a small generated database, cached
// vs uncached.
func BenchmarkServiceQueries(b *testing.B) {
	d, err := repro.Generate(repro.StandardConfig(2000))
	if err != nil {
		b.Fatal(err)
	}

	b.Run("uncached", func(b *testing.B) {
		// A one-entry-sized cache plus a rotating support threshold keeps
		// every query a miss, so each iteration pays for a full mine.
		s, err := New(Config{Workers: 1, QueueDepth: 2, CacheBytes: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Shutdown(context.Background())
		if _, err := s.Registry().Add("t10", "generated", d); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, err := s.Submit(Request{Dataset: "t10", SupportCount: 20 + i%64})
			if err != nil {
				b.Fatal(err)
			}
			if v, err := s.Wait(context.Background(), j.ID); err != nil || v.Status != StatusDone {
				b.Fatalf("%v %v", v.Status, err)
			}
			if _, err := s.Result(j.ID); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cached", func(b *testing.B) {
		s, err := New(Config{Workers: 1, QueueDepth: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Shutdown(context.Background())
		if _, err := s.Registry().Add("t10", "generated", d); err != nil {
			b.Fatal(err)
		}
		warm, err := s.Submit(Request{Dataset: "t10", SupportCount: 20})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), warm.ID); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, err := s.Submit(Request{Dataset: "t10", SupportCount: 20})
			if err != nil {
				b.Fatal(err)
			}
			if v := j.Snapshot(); v.Status != StatusDone || !v.Cached {
				b.Fatalf("expected cached hit, got %+v", v)
			}
			if _, err := s.Result(j.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}
