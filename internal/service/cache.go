package service

import (
	"container/list"
	"sync"

	"repro/internal/mining"
	"repro/internal/obsv"
)

// Cache metrics (see /metricsz); aggregated across all caches in the
// process, while per-cache counters remain on CacheStats.
const (
	mnCacheHits      = "service_cache_hits_total"
	mnCacheMisses    = "service_cache_misses_total"
	mnCacheEvictions = "service_cache_evictions_total"
)

var (
	cacheHits      = obsv.Default.Counter(mnCacheHits, "result-cache lookups that found an entry")
	cacheMisses    = obsv.Default.Counter(mnCacheMisses, "result-cache lookups that found nothing")
	cacheEvictions = obsv.Default.Counter(mnCacheEvictions, "entries evicted to respect the byte budget")
)

// CacheStats is a point-in-time view of the result cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	SizeBytes int64 `json:"sizeBytes"`
	MaxBytes  int64 `json:"maxBytes"`
}

// Cache is a byte-bounded LRU of mining results keyed by
// (dataset, algorithm, minsup, variant). Results are stored by pointer
// and must be treated as immutable by all readers — the mining paths
// never mutate a result after Sort, so sharing is safe.
type Cache struct {
	mu        sync.Mutex
	maxBytes  int64
	sizeBytes int64
	ll        *list.List // front = most recently used
	index     map[Key]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key   Key
	res   *mining.Result
	bytes int64
}

// NewCache builds a cache bounded to maxBytes of estimated result
// payload (default 64 MiB when maxBytes <= 0).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		index:    make(map[Key]*list.Element),
	}
}

// resultBytes estimates the heap footprint of a result: slice header plus
// items for each itemset, plus the support int.
func resultBytes(res *mining.Result) int64 {
	var b int64 = 48 // Result struct itself
	for _, f := range res.Itemsets {
		b += 24 /* slice header */ + 8 /* support */ + 4*int64(len(f.Set))
	}
	return b
}

// Get returns the cached result for k, marking it most recently used.
func (c *Cache) Get(k Key) (*mining.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[k]
	if !ok {
		c.misses++
		cacheMisses.Inc()
		return nil, false
	}
	c.hits++
	cacheHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores res under k, evicting least-recently-used entries until the
// byte budget holds. A result larger than the whole budget is not cached.
func (c *Cache) Put(k Key, res *mining.Result) {
	bytes := resultBytes(res)
	if bytes > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok { // refresh existing entry
		ent := el.Value.(*cacheEntry)
		c.sizeBytes += bytes - ent.bytes
		ent.res, ent.bytes = res, bytes
		c.ll.MoveToFront(el)
	} else {
		c.index[k] = c.ll.PushFront(&cacheEntry{key: k, res: res, bytes: bytes})
		c.sizeBytes += bytes
	}
	for c.sizeBytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.index, ent.key)
		c.sizeBytes -= ent.bytes
		c.evictions++
		cacheEvictions.Inc()
	}
}

// DropDataset removes every entry keyed to the named dataset — the
// invalidation RemoveDataset needs so a later dataset registered under
// the same name cannot be served another dataset's results.
func (c *Cache) DropDataset(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); ent.key.Dataset == name {
			c.ll.Remove(el)
			delete(c.index, ent.key)
			c.sizeBytes -= ent.bytes
		}
		el = next
	}
}

// Len is the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		SizeBytes: c.sizeBytes,
		MaxBytes:  c.maxBytes,
	}
}
