package service

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"repro"
)

func TestServiceParallelBudgetSplit(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueDepth: 8, ParallelBudget: 8}, 200)
	st := s.Stats()
	if st.ParallelBudget != 8 || st.JobParallelism != 2 {
		t.Fatalf("budget/jobParallelism = %d/%d, want 8/2", st.ParallelBudget, st.JobParallelism)
	}
	if st.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("GOMAXPROCS = %d", st.GOMAXPROCS)
	}

	// Asking for more than the per-job share is clamped; zero takes the
	// share; a modest ask passes through.
	for requested, want := range map[int]int{0: 2, 1: 1, 2: 2, 64: 2} {
		if got := s.effectiveParallelism(requested); got != want {
			t.Fatalf("effectiveParallelism(%d) = %d, want %d", requested, got, want)
		}
	}
}

func TestServiceParallelBudgetDefaults(t *testing.T) {
	// Budget defaults to GOMAXPROCS; a worker pool wider than the budget
	// still gives each job at least one goroutine.
	s := newTestService(t, Config{Workers: 2 * runtime.GOMAXPROCS(0), QueueDepth: 8}, 200)
	st := s.Stats()
	if st.ParallelBudget != runtime.GOMAXPROCS(0) {
		t.Fatalf("default budget = %d, want GOMAXPROCS", st.ParallelBudget)
	}
	if st.JobParallelism != 1 {
		t.Fatalf("jobParallelism = %d, want 1", st.JobParallelism)
	}
}

func TestServiceJobViewReportsParallelism(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 8, ParallelBudget: 4}, 500)
	j, err := s.Submit(Request{Dataset: "t10", SupportPct: 1.0, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Fatalf("job: %+v", v)
	}
	if v.Parallelism != 2 {
		t.Fatalf("view parallelism = %d, want 2", v.Parallelism)
	}
	if v.Steals < 0 {
		t.Fatalf("view steals = %d", v.Steals)
	}
}

func TestServiceNegativeParallelismRejected(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 8}, 200)
	_, err := s.Submit(Request{Dataset: "t10", SupportPct: 1.0, Parallelism: -1})
	if !errors.Is(err, repro.ErrInvalidParallelism) {
		t.Fatalf("err = %v, want ErrInvalidParallelism", err)
	}
}

func TestServiceParallelismSharesCacheEntry(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 8, ParallelBudget: 4}, 500)
	j1, err := s.Submit(Request{Dataset: "t10", SupportPct: 1.0, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j1.ID); err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(Request{Dataset: "t10", SupportPct: 1.0, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Wait(context.Background(), j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Fatalf("different parallelism should share one cache entry, got %+v", v2)
	}
}
