// Package service is the serving layer that turns the repository's
// batch miners into a long-running, concurrent, cancellable, cacheable
// mining service: a dataset registry (load once, mine many), a bounded
// job queue drained by a worker pool, and an LRU result cache keyed by
// (dataset, algorithm, minsup, variant). cmd/assocmined exposes it over
// HTTP with stdlib net/http only.
package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/mining"
	"repro/internal/obsv"
)

// Status is a job's lifecycle state. Transitions are strictly
// queued → running → done|failed|canceled, except that a job canceled
// while still queued goes straight to canceled without running.
type Status string

// The job lifecycle states.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is an end state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Variant selects which itemset collection a job mines.
type Variant string

// The mining variants.
const (
	VariantAll     Variant = "all"     // every frequent itemset
	VariantMaximal Variant = "maximal" // MaxEclat maximal sets only
	VariantClosed  Variant = "closed"  // closed sets only
)

// ParseVariant parses a variant name; "" means VariantAll.
func ParseVariant(s string) (Variant, error) {
	switch Variant(strings.ToLower(s)) {
	case "", VariantAll:
		return VariantAll, nil
	case VariantMaximal:
		return VariantMaximal, nil
	case VariantClosed:
		return VariantClosed, nil
	default:
		return "", fmt.Errorf("service: unknown variant %q (want all, maximal or closed)", s)
	}
}

// ParseAlgorithm maps the short names used by the CLIs and the HTTP API
// to algorithms; "" means Eclat.
func ParseAlgorithm(s string) (repro.Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "eclat":
		return repro.AlgoEclat, nil
	case "apriori":
		return repro.AlgoApriori, nil
	case "countdist":
		return repro.AlgoCountDistribution, nil
	case "datadist":
		return repro.AlgoDataDistribution, nil
	case "canddist":
		return repro.AlgoCandidateDistribution, nil
	case "hybrid":
		return repro.AlgoEclatHybrid, nil
	case "partition":
		return repro.AlgoPartition, nil
	case "sampling":
		return repro.AlgoSampling, nil
	case "dhp":
		return repro.AlgoDHP, nil
	default:
		return 0, fmt.Errorf("%w: %q (want eclat, apriori, countdist, datadist, canddist, hybrid, partition, sampling or dhp)", repro.ErrUnknownAlgorithm, s)
	}
}

// Request describes one mining job. MinSup is resolved against the
// dataset at submission time, so two requests expressed as an absolute
// count and as an equivalent percentage share a cache entry.
type Request struct {
	// Dataset is the registry name of the database to mine.
	Dataset string
	// Algorithm defaults to Eclat.
	Algorithm repro.Algorithm
	// Variant defaults to VariantAll.
	Variant Variant
	// SupportPct / SupportCount follow repro.MineOptions semantics.
	SupportPct   float64
	SupportCount int
	// Hosts / ProcsPerHost select a simulated cluster for the parallel
	// algorithms.
	Hosts        int
	ProcsPerHost int
	// Representation selects the tid-set representation for Eclat-family
	// algorithms (repro.MineOptions.Representation).
	Representation repro.Representation
	// Parallelism requests a worker count for the real Eclat path
	// (repro.MineOptions.Parallelism). 0 takes the service's per-job share
	// of the parallel budget; a positive ask is clamped to that share;
	// negative is rejected at submit time.
	Parallelism int
	// TopK, when > 0, mines only the K highest-support itemsets
	// (repro.MineOptions.TopK). Only VariantAll on the local Eclat path
	// supports it; anything else is rejected at submit time.
	TopK int
	// MustContain restricts the mine to itemsets containing every listed
	// item (repro.MineOptions.MustContain); same path restrictions as
	// TopK.
	MustContain []int
	// MemoryBudget caps the resident bytes of a store-backed mine
	// (repro.MineOptions.MemoryBudget). 0 takes the service's configured
	// ResidencyBudget; negative is rejected at submit time. Like
	// Parallelism it never changes the result — only paging behavior —
	// so it is not part of the cache identity.
	MemoryBudget int64
}

// Key identifies a result in the cache. Hosts/ProcsPerHost are
// deliberately absent: every algorithm returns identical itemsets
// regardless of the simulated cluster shape, so all shapes share one
// entry per (dataset, algorithm, minsup, variant, representation). The
// representation is part of the key even though all representations
// return identical itemsets too — keeping the entries apart preserves the
// per-representation run accounting a client asked to compare.
type Key struct {
	Dataset        string
	Algorithm      string
	MinSup         int
	Variant        Variant
	Representation string
	// TopK and MustContain are part of the identity because they change
	// the result set. MustContain is the canonical form (sorted, deduped,
	// comma-joined), so permutations and repeats of the same targeted
	// query share one entry.
	TopK        int
	MustContain string
}

func (k Key) String() string {
	s := fmt.Sprintf("%s/%s/minsup=%d/%s/repr=%s", k.Dataset, k.Algorithm, k.MinSup, k.Variant, k.Representation)
	if k.TopK > 0 {
		s += fmt.Sprintf("/topk=%d", k.TopK)
	}
	if k.MustContain != "" {
		s += "/contains=" + k.MustContain
	}
	return s
}

// Job is one queued or executed mining run. All mutable state is guarded
// by mu; readers use Snapshot.
type Job struct {
	// ID is the manager-assigned identifier ("job-1", "job-2", ...).
	ID string
	// Req is the submitted request, with Variant normalized.
	Req Request
	// Key is the cache identity of the job's result.
	Key Key

	ctx    context.Context // canceled by Cancel/Shutdown; honored by the run function
	cancel context.CancelFunc
	done   chan struct{} // closed on reaching a terminal status

	mu       sync.Mutex
	status   Status
	err      string
	result   *mining.Result
	info     *repro.RunInfo
	trace    *obsv.Trace // per-job phase tracer, set when the job starts
	cached   bool        // result came from the cache, no mine ran
	created  time.Time
	started  time.Time
	finished time.Time
}

// View is an immutable snapshot of a job, the unit the HTTP layer
// serializes.
type View struct {
	ID             string    `json:"id"`
	Status         Status    `json:"status"`
	Dataset        string    `json:"dataset"`
	Algorithm      string    `json:"algorithm"`
	Variant        Variant   `json:"variant"`
	MinSup         int       `json:"minsup"`
	Representation string    `json:"representation"`
	Cached         bool      `json:"cached"`
	Error          string    `json:"error,omitempty"`
	Itemsets       int       `json:"itemsets,omitempty"` // result size once done
	Created        time.Time `json:"created"`
	Started        time.Time `json:"started"`
	Finished       time.Time `json:"finished"`
	// QueueWaitNS is the queued→running wait; DurationNS the
	// running→terminal wall time; Phases the run's recorded phase spans
	// (virtual spans carry simulated cluster time, see obsv.PhaseSpan).
	QueueWaitNS int64            `json:"queueWaitNs,omitempty"`
	DurationNS  int64            `json:"durationNs,omitempty"`
	Phases      []obsv.PhaseSpan `json:"phases,omitempty"`
	// Parallelism is the worker count the run actually mined with and
	// Steals its work-stealing transfers (both 0 until the run finishes,
	// and for cache hits, which never ran).
	Parallelism int   `json:"parallelism,omitempty"`
	Steals      int64 `json:"steals,omitempty"`
	// TopK / MustContain echo the request's query options; EffectiveMinSup
	// is the support threshold the run ended at (raised above MinSup by a
	// top-k run, 0 until the run finishes).
	TopK            int   `json:"topK,omitempty"`
	MustContain     []int `json:"mustContain,omitempty"`
	EffectiveMinSup int   `json:"effectiveMinSup,omitempty"`
	// MemoryBudget is the residency budget the run mined under and
	// OutOfCore whether the budget actually engaged (store-backed source
	// larger than the budget). Both 0/false until the run finishes.
	MemoryBudget int64 `json:"memoryBudget,omitempty"`
	OutOfCore    bool  `json:"outOfCore,omitempty"`
}

// Snapshot returns a consistent view of the job.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:             j.ID,
		Status:         j.status,
		Dataset:        j.Req.Dataset,
		Algorithm:      j.Req.Algorithm.String(),
		Variant:        j.Req.Variant,
		MinSup:         j.Key.MinSup,
		Representation: j.Key.Representation,
		Cached:         j.cached,
		Error:          j.err,
		Created:        j.created,
		Started:        j.started,
		Finished:       j.finished,
	}
	if j.result != nil {
		v.Itemsets = j.result.Len()
	}
	if !j.started.IsZero() && j.started.After(j.created) {
		v.QueueWaitNS = j.started.Sub(j.created).Nanoseconds()
	}
	if j.status.Terminal() && !j.started.IsZero() && !j.finished.IsZero() {
		v.DurationNS = j.finished.Sub(j.started).Nanoseconds()
	}
	if j.trace != nil {
		v.Phases = j.trace.Spans()
	}
	v.TopK = j.Req.TopK
	v.MustContain = append([]int(nil), j.Req.MustContain...)
	if j.info != nil {
		v.Parallelism = j.info.Parallelism
		v.Steals = j.info.Steals
		v.EffectiveMinSup = j.info.EffectiveMinSup
		v.MemoryBudget = j.info.MemoryBudget
		v.OutOfCore = j.info.OutOfCore
	}
	return v
}

// Result returns the job's result once done (nil otherwise).
func (j *Job) Result() *mining.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusDone {
		return nil
	}
	return j.result
}

// Done returns a channel closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }
