package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/db"
	"repro/internal/mining"
	"repro/internal/obsv"
)

// JobRequest is the JSON body of POST /v1/jobs.
type JobRequest struct {
	// Dataset is a registered dataset name (required).
	Dataset string `json:"dataset"`
	// Algorithm is a short algorithm name ("eclat", "apriori",
	// "countdist", ...); empty means eclat.
	Algorithm string `json:"algorithm"`
	// Variant is "all" (default), "maximal" or "closed".
	Variant string `json:"variant"`
	// SupportPct / supportCount follow repro.MineOptions semantics.
	SupportPct   float64 `json:"supportPct"`
	SupportCount int     `json:"supportCount"`
	// Hosts / procs select a simulated cluster for parallel algorithms.
	Hosts int `json:"hosts"`
	Procs int `json:"procs"`
	// Representation is the tid-set representation for Eclat-family
	// algorithms: "auto" (default), "sparse" or "bitset".
	Representation string `json:"representation"`
	// Parallelism requests local worker goroutines for the real Eclat
	// path; 0 means the service's per-job share of its parallel budget
	// (asks beyond the share are clamped to it, negative is a 400).
	Parallelism int `json:"parallelism"`
	// TopK, when > 0, mines only the K highest-support itemsets. Only the
	// local eclat path with variant "all" supports it (anything else is a
	// 400 with code invalid_topk); with no support given the threshold
	// floor defaults to 1.
	TopK int `json:"topK"`
	// MustContain lists item ids every mined itemset must contain (a
	// targeted query; same path restrictions as topK, code
	// invalid_must_contain).
	MustContain []int `json:"mustContain"`
	// MemoryBudget caps the resident bytes of a store-backed mine; 0
	// takes the daemon's -memory-budget default, negative is a 400 with
	// code invalid_memory_budget. Does not change the result, only
	// paging behavior, so it is not part of the cache identity.
	MemoryBudget int64 `json:"memoryBudget"`
}

// DatasetRequest is the JSON body of POST /v1/datasets. Exactly one of
// Gen and Path selects the data source.
type DatasetRequest struct {
	// Name is the registry key (required).
	Name string `json:"name"`
	// Gen, when positive, generates a standard T10.I6 dataset with this
	// many transactions.
	Gen int `json:"gen,omitempty"`
	// Path loads a daemon-local database file; Format is "binary", "fimi"
	// or "" to infer from the extension (.fimi/.dat/.txt are FIMI text).
	Path   string `json:"path,omitempty"`
	Format string `json:"format,omitempty"`
}

// VerticalSizes reports the dataset's vertical-transform size under each
// tid-set encoding (the auto figure picks the cheaper encoding per item).
type VerticalSizes struct {
	SparseBytes  int64 `json:"sparseBytes"`
	DenseBytes   int64 `json:"denseBytes"`
	RoaringBytes int64 `json:"roaringBytes"`
	AutoBytes    int64 `json:"autoBytes"`
}

// apiError is the structured error body: {"error":{"code","message"}}.
// code is a stable machine-readable slug; message is human prose.
type apiError struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorCode maps an error to its (HTTP status, stable code slug). Typed
// sentinels from repro and this package drive the mapping; anything
// unrecognized is a generic bad request.
func errorCode(err error) (int, string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, ErrUnknownDataset):
		return http.StatusNotFound, "unknown_dataset"
	case errors.Is(err, ErrDatasetBusy):
		return http.StatusConflict, "dataset_busy"
	case errors.Is(err, ErrDatasetExists):
		return http.StatusConflict, "dataset_exists"
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound, "unknown_job"
	case errors.Is(err, repro.ErrInvalidSupport):
		return http.StatusBadRequest, "invalid_support"
	case errors.Is(err, repro.ErrUnknownAlgorithm):
		return http.StatusBadRequest, "unknown_algorithm"
	case errors.Is(err, repro.ErrInvalidParallelism):
		return http.StatusBadRequest, "invalid_parallelism"
	case errors.Is(err, repro.ErrInvalidRepresentation):
		return http.StatusBadRequest, "invalid_representation"
	case errors.Is(err, repro.ErrInvalidTopK):
		return http.StatusBadRequest, "invalid_topk"
	case errors.Is(err, repro.ErrInvalidMustContain):
		return http.StatusBadRequest, "invalid_must_contain"
	case errors.Is(err, repro.ErrInvalidMemoryBudget):
		return http.StatusBadRequest, "invalid_memory_budget"
	case errors.Is(err, repro.ErrCanceled):
		return http.StatusConflict, "canceled"
	default:
		return http.StatusBadRequest, "bad_request"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	_, slug := errorCode(err)
	writeJSON(w, code, apiError{Error: errorBody{Code: slug, Message: err.Error()}})
}

// writeMappedError derives both status and code from the error itself.
func writeMappedError(w http.ResponseWriter, err error) {
	code, slug := errorCode(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, apiError{Error: errorBody{Code: slug, Message: err.Error()}})
}

// NewHandler exposes the service over HTTP:
//
//	POST   /v1/jobs           submit a job (202; 429 when the queue is full)
//	GET    /v1/jobs           list jobs
//	GET    /v1/jobs/{id}      job status
//	GET    /v1/jobs/{id}/result  finished result in the WriteResult text format
//	DELETE /v1/jobs/{id}      cancel a job
//	GET    /v1/datasets       registered datasets
//	POST   /v1/datasets       register a dataset (persists when the daemon has -data-dir)
//	GET    /v1/datasets/{name}  dataset detail with top items (memoized vertical transform)
//	DELETE /v1/datasets/{name}  remove a dataset (409 while jobs reference it)
//	GET    /healthz           liveness
//	GET    /statsz            queue/worker/cache counters
//	GET    /metricsz          metrics registry (expvar JSON or ?format=prometheus)
//	GET    /debug/pprof/      runtime profiling (profile, heap, trace, ...)
//
// Errors are returned as {"error":{"code","message"}} with a stable
// machine-readable code (see errorCode).
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var jr JobRequest
		if err := json.NewDecoder(r.Body).Decode(&jr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		algo, err := ParseAlgorithm(jr.Algorithm)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		variant, err := ParseVariant(jr.Variant)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		repr, err := repro.ParseRepresentation(jr.Representation)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job, err := s.Submit(Request{
			Dataset:        jr.Dataset,
			Algorithm:      algo,
			Variant:        variant,
			SupportPct:     jr.SupportPct,
			SupportCount:   jr.SupportCount,
			Hosts:          jr.Hosts,
			ProcsPerHost:   jr.Procs,
			Representation: repr,
			Parallelism:    jr.Parallelism,
			TopK:           jr.TopK,
			MustContain:    jr.MustContain,
			MemoryBudget:   jr.MemoryBudget,
		})
		if err != nil {
			writeMappedError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Snapshot())
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		v, err := s.Job(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		res, err := s.Result(id)
		if err != nil {
			code := http.StatusConflict // not done yet (or failed/canceled)
			if v.Status == StatusQueued || v.Status == StatusRunning {
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Itemsets", strconv.Itoa(res.Len()))
		if err := mining.Write(w, res); err != nil {
			// Headers are gone; nothing to do but drop the connection.
			return
		}
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})

	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Datasets())
	})

	mux.HandleFunc("POST /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		var dr DatasetRequest
		if err := json.NewDecoder(r.Body).Decode(&dr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if dr.Name == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("dataset name is required"))
			return
		}
		var (
			d      *db.Database
			source string
			err    error
		)
		switch {
		case dr.Gen > 0 && dr.Path != "":
			writeError(w, http.StatusBadRequest, fmt.Errorf("gen and path are mutually exclusive"))
			return
		case dr.Gen > 0:
			d, err = repro.Generate(repro.StandardConfig(dr.Gen))
			source = fmt.Sprintf("generated T10.I6 n=%d", dr.Gen)
		case dr.Path != "":
			d, err = loadDatasetFile(dr.Path, dr.Format)
			source = dr.Path
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("one of gen or path is required"))
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("dataset %s: %w", dr.Name, err))
			return
		}
		info, err := s.RegisterDataset(dr.Name, source, d)
		if err != nil {
			writeMappedError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("DELETE /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.RemoveDataset(r.PathValue("name")); err != nil {
			writeMappedError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		ds, err := s.Dataset(r.PathValue("name"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		n := 10
		if q := r.URL.Query().Get("top"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad top %q", q))
				return
			}
			n = v
		}
		sparse, dense, roaring, auto := ds.VerticalSizes()
		writeJSON(w, http.StatusOK, struct {
			DatasetInfo
			TopItems []ItemSupport `json:"topItems"`
			Vertical VerticalSizes `json:"vertical"`
		}{
			DatasetInfo: ds.Info(),
			TopItems:    ds.TopItems(n),
			Vertical:    VerticalSizes{SparseBytes: sparse, DenseBytes: dense, RoaringBytes: roaring, AutoBytes: auto},
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	// Observability: the default metrics registry in expvar-compatible
	// JSON or Prometheus text exposition (content-negotiated), and the
	// standard pprof endpoints (registered by hand because the service
	// runs on its own mux, not http.DefaultServeMux).
	mux.Handle("GET /metricsz", obsv.Default.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// loadDatasetFile reads a daemon-local database file for POST
// /v1/datasets; format "" infers from the extension (.fimi/.dat/.txt are
// FIMI text, everything else binary).
func loadDatasetFile(path, format string) (*db.Database, error) {
	if format == "" {
		format = "binary"
		if i := strings.LastIndexByte(path, '.'); i >= 0 {
			switch strings.ToLower(path[i+1:]) {
			case "fimi", "dat", "txt":
				format = "fimi"
			}
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "binary":
		return db.Decode(f)
	case "fimi":
		return db.DecodeFIMI(f, 0)
	default:
		return nil, fmt.Errorf("unknown format %q (want binary or fimi)", format)
	}
}
