package service

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/itemset"
	"repro/internal/mining"
)

// resultOfSize builds a result whose resultBytes is deterministic: n
// 1-itemsets of 36 bytes each plus the 48-byte header.
func resultOfSize(n int) *mining.Result {
	res := &mining.Result{MinSup: 1, NumTransactions: n}
	for i := 0; i < n; i++ {
		res.Add(itemset.Itemset{itemset.Item(i)}, i+1)
	}
	return res
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(1 << 20)
	k := Key{Dataset: "d", Algorithm: "Eclat", MinSup: 5, Variant: VariantAll}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, resultOfSize(3))
	res, ok := c.Get(k)
	if !ok || res.Len() != 3 {
		t.Fatalf("get after put: ok=%v len=%d", ok, res.Len())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.SizeBytes != resultBytes(res) {
		t.Fatalf("size accounting %d != %d", st.SizeBytes, resultBytes(res))
	}
}

func TestCacheDistinguishesKeyFields(t *testing.T) {
	c := NewCache(1 << 20)
	base := Key{Dataset: "d", Algorithm: "Eclat", MinSup: 5, Variant: VariantAll}
	c.Put(base, resultOfSize(1))
	for _, k := range []Key{
		{Dataset: "other", Algorithm: "Eclat", MinSup: 5, Variant: VariantAll},
		{Dataset: "d", Algorithm: "Apriori", MinSup: 5, Variant: VariantAll},
		{Dataset: "d", Algorithm: "Eclat", MinSup: 6, Variant: VariantAll},
		{Dataset: "d", Algorithm: "Eclat", MinSup: 5, Variant: VariantMaximal},
	} {
		if _, ok := c.Get(k); ok {
			t.Fatalf("key %v unexpectedly hit entry for %v", k, base)
		}
	}
}

func TestCacheEvictsLRUUnderSizePressure(t *testing.T) {
	one := resultBytes(resultOfSize(1))
	c := NewCache(3 * one) // room for exactly three single-itemset results
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = Key{Dataset: fmt.Sprint("d", i), MinSup: 1}
	}
	c.Put(keys[0], resultOfSize(1))
	c.Put(keys[1], resultOfSize(1))
	c.Put(keys[2], resultOfSize(1))
	c.Get(keys[0]) // freshen 0 so 1 is now the LRU
	c.Put(keys[3], resultOfSize(1))

	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry 1 should have been evicted")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(keys[i]); !ok {
			t.Fatalf("entry %d should have survived", i)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.SizeBytes != 3*one {
		t.Fatalf("stats after eviction = %+v", st)
	}
}

func TestCacheRefreshSameKeyAdjustsSize(t *testing.T) {
	c := NewCache(1 << 20)
	k := Key{Dataset: "d", MinSup: 1}
	c.Put(k, resultOfSize(10))
	c.Put(k, resultOfSize(2))
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if st.SizeBytes != resultBytes(resultOfSize(2)) {
		t.Fatalf("size = %d after shrink, want %d", st.SizeBytes, resultBytes(resultOfSize(2)))
	}
}

func TestCacheRejectsOversizedEntry(t *testing.T) {
	c := NewCache(100)
	c.Put(Key{Dataset: "big"}, resultOfSize(1000))
	if st := c.Stats(); st.Entries != 0 || st.SizeBytes != 0 {
		t.Fatalf("oversized entry was cached: %+v", st)
	}
}

// TestCacheConcurrentAccess exercises parallel Put/Get/Stats under size
// pressure so -race can catch unlocked paths and eviction races.
func TestCacheConcurrentAccess(t *testing.T) {
	one := resultBytes(resultOfSize(1))
	c := NewCache(8 * one) // small enough to evict constantly
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Dataset: fmt.Sprint("d", (g+i)%16), MinSup: 1}
				if i%2 == 0 {
					c.Put(k, resultOfSize(1))
				} else {
					c.Get(k)
				}
				if i%17 == 0 {
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.SizeBytes > 8*one {
		t.Fatalf("size %d exceeds budget %d", st.SizeBytes, 8*one)
	}
	if st.Entries > 8 {
		t.Fatalf("entries %d exceed what the budget allows", st.Entries)
	}
}
