package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/mining"
)

// instantRun completes immediately with an empty result.
func instantRun(ctx context.Context, j *Job) (*mining.Result, *repro.RunInfo, error) {
	return &mining.Result{MinSup: j.Key.MinSup}, nil, nil
}

// gatedRun blocks every run until release is closed (or ctx is
// canceled), making queue occupancy deterministic in tests.
func gatedRun(release <-chan struct{}) RunFunc {
	return func(ctx context.Context, j *Job) (*mining.Result, *repro.RunInfo, error) {
		select {
		case <-release:
			return &mining.Result{MinSup: j.Key.MinSup}, nil, nil
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

func waitStatus(t *testing.T, m *Manager, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.Snapshot().Status == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	j, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (stuck at %s)", id, want, j.Snapshot().Status)
}

func TestManagerRunsJobsToDone(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8}, instantRun)
	defer m.Shutdown(context.Background())
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := m.Submit(Request{Dataset: "d"}, Key{Dataset: "d", MinSup: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		v, err := m.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusDone {
			t.Fatalf("job %s: status %s, want done", id, v.Status)
		}
	}
	if got := m.List(); len(got) != 5 {
		t.Fatalf("List returned %d jobs, want 5", len(got))
	}
}

func TestManagerQueueFullAndFIFO(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 1}, gatedRun(release))
	defer m.Shutdown(context.Background())

	j1, err := m.Submit(Request{Dataset: "d"}, Key{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, j1.ID, StatusRunning) // worker holds j1, queue is empty

	j2, err := m.Submit(Request{Dataset: "d"}, Key{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Request{Dataset: "d"}, Key{MinSup: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}

	close(release)
	for _, id := range []string{j1.ID, j2.ID} {
		v, err := m.Wait(context.Background(), id)
		if err != nil || v.Status != StatusDone {
			t.Fatalf("job %s: %v %v", id, v.Status, err)
		}
	}
	if got := m.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

func TestManagerCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4}, gatedRun(release))
	// Release the gate before the deferred Shutdown drains the worker
	// (defers run LIFO).
	defer m.Shutdown(context.Background())
	defer close(release)

	j1, err := m.Submit(Request{Dataset: "d"}, Key{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, j1.ID, StatusRunning)

	j2, err := m.Submit(Request{Dataset: "d"}, Key{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	v, err := m.Wait(context.Background(), j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCanceled {
		t.Fatalf("queued job after cancel: %s, want canceled", v.Status)
	}
	if !v.Started.IsZero() {
		t.Fatalf("canceled-while-queued job should never start, started=%v", v.Started)
	}
}

func TestManagerCancelRunningJob(t *testing.T) {
	never := make(chan struct{}) // only ctx cancellation can finish the run
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4}, gatedRun(never))
	j, err := m.Submit(Request{Dataset: "d"}, Key{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, j.ID, StatusRunning)
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	v, err := m.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCanceled {
		t.Fatalf("running job after cancel: %s, want canceled", v.Status)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestManagerCancelUnknownJob(t *testing.T) {
	m := NewManager(ManagerConfig{}, instantRun)
	defer m.Shutdown(context.Background())
	if _, err := m.Cancel("job-999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

func TestManagerShutdownDrainsQueuedJobs(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 8}, instantRun)
	var ids []string
	for i := 0; i < 6; i++ {
		j, err := m.Submit(Request{Dataset: "d"}, Key{MinSup: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if s := j.Snapshot().Status; s != StatusDone {
			t.Fatalf("job %s after drain: %s, want done", id, s)
		}
	}
	if _, err := m.Submit(Request{Dataset: "d"}, Key{}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
}

func TestManagerShutdownTimeoutCancelsRunning(t *testing.T) {
	never := make(chan struct{})
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4}, gatedRun(never))
	j1, _ := m.Submit(Request{Dataset: "d"}, Key{MinSup: 1})
	waitStatus(t, m, j1.ID, StatusRunning)
	j2, _ := m.Submit(Request{Dataset: "d"}, Key{MinSup: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if s := mustSnap(t, m, j1.ID).Status; s != StatusCanceled {
		t.Fatalf("running job after forced shutdown: %s, want canceled", s)
	}
	if s := mustSnap(t, m, j2.ID).Status; s != StatusCanceled {
		t.Fatalf("queued job after forced shutdown: %s, want canceled", s)
	}
}

func mustSnap(t *testing.T, m *Manager, id string) View {
	t.Helper()
	j, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return j.Snapshot()
}

// TestManagerConcurrentSubmitCancelGet hammers the manager from many
// goroutines; it exists to fail under -race if any lock is missing.
func TestManagerConcurrentSubmitCancelGet(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 4, QueueDepth: 64}, instantRun)
	defer m.Shutdown(context.Background())

	var wg sync.WaitGroup
	var mu sync.Mutex
	var ids []string
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j, err := m.Submit(Request{Dataset: fmt.Sprintf("d%d", g)}, Key{MinSup: i + 1})
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				ids = append(ids, j.ID)
				mu.Unlock()
				if i%3 == 0 {
					m.Cancel(j.ID)
				}
				if i%2 == 0 {
					m.Get(j.ID)
					m.List()
				}
			}
		}(g)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for _, id := range ids {
		for {
			s := mustSnap(t, m, id).Status
			if s.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never terminal (%s)", id, s)
			}
			time.Sleep(time.Millisecond)
		}
	}
}
