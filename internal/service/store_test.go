package service

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro"
	"repro/internal/store"
)

// newStoreService builds a service over a persistent store rooted at
// dir. The returned service owns the manager; the caller's t owns the
// store (closed after shutdown, as in the daemon).
func newStoreService(t testing.TB, dir string, cfg Config) *Service {
	t.Helper()
	st, err := store.Open(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cfg.Store = st
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s
}

// mineBytes submits req, waits, and returns the serialized result.
func mineBytes(t *testing.T, s *Service, req Request) ([]byte, View) {
	t.Helper()
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Fatalf("job %s ended %s: %s", v.ID, v.Status, v.Error)
	}
	res, err := s.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), v
}

// TestServiceStoreBackedMiningMatchesInMemory is the service-level
// differential contract: a store-backed dataset mined from the mmap
// bundle yields byte-identical results to the same data registered
// in-memory, across representations and worker counts, and the
// store-backed jobs never run the horizontal transformation phase.
func TestServiceStoreBackedMiningMatchesInMemory(t *testing.T) {
	d := genDataset(t, 800)
	mem := newTestService(t, Config{Workers: 2, QueueDepth: 16, ParallelBudget: 8}, 800)
	st := newStoreService(t, t.TempDir(), Config{Workers: 2, QueueDepth: 16, ParallelBudget: 8})
	if _, err := st.RegisterDataset("t10", "generated", d); err != nil {
		t.Fatal(err)
	}
	info, err := st.Dataset("t10")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Info().Stored {
		t.Fatal("dataset registered through a store-backed service is not stored")
	}

	for _, repr := range []repro.Representation{repro.ReprAuto, repro.ReprSparse, repro.ReprBitset} {
		for _, workers := range []int{1, 2, 4} {
			// Distinct minsup per worker count keeps every run a cache miss
			// (the cache key deliberately omits parallelism).
			req := Request{
				Dataset:        "t10",
				Algorithm:      repro.AlgoEclat,
				SupportCount:   4 + 2*workers,
				Representation: repr,
				Parallelism:    workers,
			}
			want, _ := mineBytes(t, mem, req)
			got, v := mineBytes(t, st, req)
			if !bytes.Equal(got, want) {
				t.Fatalf("repr=%v workers=%d: store-backed result differs from in-memory", repr, workers)
			}
			for _, sp := range v.Phases {
				if sp.Name == "transformation" {
					t.Fatalf("repr=%v workers=%d: store-backed job ran the horizontal transformation phase", repr, workers)
				}
			}
		}
	}
}

// TestServiceStoreRestartServesWithoutRebuild closes a store-backed
// service, reopens the same directory in a fresh service, and mines —
// the dataset must be served from disk (no re-registration) with
// byte-identical results.
func TestServiceStoreRestartServesWithoutRebuild(t *testing.T) {
	dir := t.TempDir()
	d := genDataset(t, 600)
	req := Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportCount: 6}

	s1 := newStoreService(t, dir, Config{Workers: 1, QueueDepth: 4})
	if _, err := s1.RegisterDataset("t10", "generated", d); err != nil {
		t.Fatal(err)
	}
	want, _ := mineBytes(t, s1, req)
	s1.Shutdown(context.Background())

	s2 := newStoreService(t, dir, Config{Workers: 1, QueueDepth: 4})
	infos := s2.Datasets()
	if len(infos) != 1 || infos[0].Name != "t10" || !infos[0].Stored {
		t.Fatalf("restarted service datasets = %+v, want stored t10", infos)
	}
	got, v := mineBytes(t, s2, req)
	if !bytes.Equal(got, want) {
		t.Fatal("result after restart differs from the original run")
	}
	for _, sp := range v.Phases {
		if sp.Name == "transformation" {
			t.Fatal("restarted service re-ran the horizontal transformation")
		}
	}
}

// TestServiceRemoveDataset covers the eviction contract: busy datasets
// are refused with ErrDatasetBusy, removal drops cached results, and
// removed store-backed datasets stay gone after a restart.
func TestServiceRemoveDataset(t *testing.T) {
	dir := t.TempDir()
	s := newStoreService(t, dir, Config{Workers: 1, QueueDepth: 4})
	if _, err := s.RegisterDataset("t10", "generated", genDataset(t, 400)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterDataset("big", "generated", genDataset(t, 30000)); err != nil {
		t.Fatal(err)
	}

	if err := s.RemoveDataset("nope"); !strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("removing unknown dataset: %v", err)
	}

	// A long-running job holds its dataset busy.
	slow, err := s.Submit(Request{Dataset: "big", Algorithm: repro.AlgoEclat, SupportPct: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveDataset("big"); err == nil || !strings.Contains(err.Error(), "dataset busy") {
		t.Fatalf("removing busy dataset: %v, want ErrDatasetBusy", err)
	}
	if _, err := s.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), slow.ID); err != nil {
		t.Fatal(err)
	}

	// Terminal jobs release the dataset; removal also drops its cache
	// entries so a later same-named dataset cannot serve stale results.
	if _, _ = mineBytes(t, s, Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportCount: 4}); s.Cache().Len() == 0 {
		t.Fatal("mining did not populate the cache")
	}
	if err := s.RemoveDataset("t10"); err != nil {
		t.Fatal(err)
	}
	if got := s.Cache().Len(); got != 0 {
		t.Fatalf("cache still holds %d entries after RemoveDataset", got)
	}
	if err := s.RemoveDataset("big"); err != nil {
		t.Fatal(err)
	}
	if len(s.Datasets()) != 0 {
		t.Fatalf("datasets after removal: %+v", s.Datasets())
	}
	s.Shutdown(context.Background())

	// The removal persisted: a fresh service over the same directory has
	// nothing to register.
	s2 := newStoreService(t, dir, Config{Workers: 1, QueueDepth: 4})
	if got := s2.Datasets(); len(got) != 0 {
		t.Fatalf("removed datasets reappeared after restart: %+v", got)
	}
}

// TestServiceStoreSpillsDenseTransform checks the spill path through the
// registry: asking a store-backed dataset for its dense representation
// persists the bitsets, so a reopened dataset serves them from the
// mapping without re-encoding.
func TestServiceStoreSpillsDenseTransform(t *testing.T) {
	dir := t.TempDir()
	s1 := newStoreService(t, dir, Config{Workers: 1, QueueDepth: 4})
	if _, err := s1.RegisterDataset("t10", "generated", genDataset(t, 300)); err != nil {
		t.Fatal(err)
	}
	req := Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportCount: 3, Representation: repro.ReprBitset}
	want, _ := mineBytes(t, s1, req)
	s1.Shutdown(context.Background())

	s2 := newStoreService(t, dir, Config{Workers: 1, QueueDepth: 4})
	ds, err := s2.Dataset("t10")
	if err != nil {
		t.Fatal(err)
	}
	// The first process's bitset request spilled the dense transform; the
	// reopened dataset must see it in its bundle without computing.
	if !storedBitsetsPresent(ds) {
		t.Fatal("dense transform was not spilled to the store")
	}
	got, _ := mineBytes(t, s2, req)
	if !bytes.Equal(got, want) {
		t.Fatal("bitset mine from spilled transform differs")
	}
}

// storedBitsetsPresent peeks at whether the underlying stored dataset
// holds a dense encoding for every non-empty item (test-only accessor).
func storedBitsetsPresent(ds *Dataset) bool {
	if ds.stored == nil {
		return false
	}
	_, ok := ds.stored.Bitsets()
	return ok
}
