package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro"
	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/store"
	"repro/internal/tidlist"
)

// Registered datasets are repro.Sources: runJob hands them straight to
// repro.MineFrom, which picks the vertical or horizontal path itself.
var _ repro.Source = (*Dataset)(nil)

// ErrUnknownDataset is returned for dataset names not in the registry.
var ErrUnknownDataset = errors.New("service: unknown dataset")

// ErrDatasetExists is returned by Add for names already registered.
var ErrDatasetExists = errors.New("service: dataset already registered")

// Dataset is one registered database, backed either by in-memory
// horizontal data or by the persistent store's mapping. The vertical
// tid-list transformation (one tid-list per item) is computed lazily on
// first use and memoized — once per representation — so repeated
// item-level queries never rescan the horizontal data and never
// re-encode a transform they already have. For store-backed datasets the
// sparse transform is served zero-copy from the mapped bundle (no
// horizontal pass at all), the dense transform is served from the
// mapping when a previous process spilled it, and the horizontal data is
// loaded from disk only if an algorithm actually scans it.
type Dataset struct {
	// Name is the registry key.
	Name string
	// Source describes where the data came from (file path, "generated",
	// "stored", ...), for /v1/datasets.
	Source string

	// info carries the dataset-shape figures; always available without
	// touching horizontal data.
	info DatasetInfo

	// Exactly one of memDB (in-memory registration) and stored
	// (store-backed) is non-nil at construction; memDB may be filled
	// later by a lazy Database() load.
	memDB  *db.Database
	stored *store.Dataset

	dbOnce sync.Once
	dbErr  error

	// logf receives spill warnings (nil: discarded).
	logf func(format string, args ...any)

	verticalOnce sync.Once
	vertical     []tidlist.List // index = item; nil until first use

	bitsetOnce sync.Once
	bitsets    []*tidlist.Bitset // index = item; nil until first use

	roaringOnce sync.Once
	roarings    []*tidlist.Roaring // index = item; nil until first use

	// The four VerticalSets slices, memoized per representation so jobs
	// never rebuild them (ReprAuto in particular re-ran EncodedSize over
	// every item on each call before this cache existed).
	sparseSetsOnce  sync.Once
	sparseSets      []tidlist.Set
	bitsetSetsOnce  sync.Once
	bitsetSets      []tidlist.Set
	roaringSetsOnce sync.Once
	roaringSets     []tidlist.Set
	autoSetsOnce    sync.Once
	autoSets        []tidlist.Set
}

// StoreBacked reports whether this dataset serves its vertical transform
// from the persistent store's mapping.
func (ds *Dataset) StoreBacked() bool { return ds.stored != nil }

// BytesMapped reports the bytes of bundle data this dataset's mapping
// pins (0 for in-memory datasets) — the figure a job's MemoryBudget is
// compared against. Together with NewResidency it makes a store-backed
// *Dataset satisfy repro's optional residencySource interface, so
// MineFrom can pick the out-of-core path.
func (ds *Dataset) BytesMapped() int64 {
	if ds.stored == nil {
		return 0
	}
	return ds.stored.BytesMapped()
}

// NewResidency forwards to the stored dataset's residency constructor;
// nil for in-memory datasets or budgets the mapping already fits.
func (ds *Dataset) NewResidency(budget int64) *store.Residency {
	if ds.stored == nil {
		return nil
	}
	return ds.stored.NewResidency(budget)
}

// Info returns the dataset-shape summary without loading any data.
func (ds *Dataset) Info() DatasetInfo { return ds.info }

// NumTransactions is |D|, read off the registered shape metadata.
// Together with Horizontal and VerticalSets it makes *Dataset a
// repro.Source: runJob hands datasets straight to repro.MineFrom without
// branching on where the data lives.
func (ds *Dataset) NumTransactions() int { return ds.info.Transactions }

// Horizontal returns the horizontal database (repro.Source spelling of
// Database).
func (ds *Dataset) Horizontal() (*db.Database, error) { return ds.Database() }

// Database returns the horizontal database, loading it from the store on
// first use for store-backed datasets. The vertical mining path never
// calls this; it exists for the algorithms that genuinely scan
// horizontal data (Apriori, the cluster simulations, ...).
func (ds *Dataset) Database() (*db.Database, error) {
	ds.dbOnce.Do(func() {
		if ds.memDB != nil {
			return
		}
		ds.memDB, ds.dbErr = ds.stored.Horizontal()
	})
	return ds.memDB, ds.dbErr
}

// Vertical returns the memoized per-item tid-lists of the dataset — the
// paper's vertical layout at the 1-itemset level. In-memory datasets pay
// one pass over the horizontal data on first call; store-backed datasets
// return views over the mapped bundle and never scan. The returned slice
// and its lists are shared and must not be mutated (store-backed lists
// alias read-only mapped memory).
func (ds *Dataset) Vertical() []tidlist.List {
	ds.verticalOnce.Do(func() {
		if ds.stored != nil {
			ds.vertical = ds.stored.SparseLists()
			return
		}
		lists := make([]tidlist.List, ds.memDB.NumItems)
		for _, tx := range ds.memDB.Transactions {
			for _, it := range tx.Items {
				lists[it] = append(lists[it], tx.TID)
			}
		}
		ds.vertical = lists
	})
	return ds.vertical
}

// VerticalBitsets returns the memoized dense encoding of the vertical
// transform (one Bitset per item; empty items get an empty Bitset).
// Store-backed datasets serve it from the mapping when a previous
// process spilled it; otherwise the transform is computed once and then
// spilled to the store so the next open of the dataset gets it for free.
// Shared — must not be mutated.
func (ds *Dataset) VerticalBitsets() []*tidlist.Bitset {
	ds.bitsetOnce.Do(func() {
		if ds.stored != nil {
			if stored, ok := ds.stored.Bitsets(); ok {
				sets := make([]*tidlist.Bitset, len(stored))
				for it, b := range stored {
					if b == nil {
						b = tidlist.NewBitset(nil)
					}
					sets[it] = b
				}
				ds.bitsets = sets
				return
			}
		}
		vert := ds.Vertical()
		sets := make([]*tidlist.Bitset, len(vert))
		for it, l := range vert {
			sets[it] = tidlist.NewBitset(l)
		}
		ds.bitsets = sets
		if ds.stored != nil {
			if err := ds.stored.AppendBitsets(sets); err != nil && ds.logf != nil {
				ds.logf("service: spilling dense transform of %q failed: %v", ds.Name, err)
			}
		}
	})
	return ds.bitsets
}

// VerticalRoarings returns the memoized containerized encoding of the
// vertical transform (one Roaring per item; empty items get an empty
// Roaring). Store-backed datasets serve it from the mapping when a
// previous process spilled it; otherwise the transform is computed once
// and spilled so the next open gets it for free. Shared — must not be
// mutated.
func (ds *Dataset) VerticalRoarings() []*tidlist.Roaring {
	ds.roaringOnce.Do(func() {
		if ds.stored != nil {
			if stored, ok := ds.stored.Roarings(); ok {
				sets := make([]*tidlist.Roaring, len(stored))
				for it, r := range stored {
					if r == nil {
						r = tidlist.NewRoaring(nil)
					}
					sets[it] = r
				}
				ds.roarings = sets
				return
			}
		}
		vert := ds.Vertical()
		sets := make([]*tidlist.Roaring, len(vert))
		for it, l := range vert {
			sets[it] = tidlist.NewRoaring(l)
		}
		ds.roarings = sets
		if ds.stored != nil {
			if err := ds.stored.AppendRoarings(sets); err != nil && ds.logf != nil {
				ds.logf("service: spilling containerized transform of %q failed: %v", ds.Name, err)
			}
		}
	})
	return ds.roarings
}

// VerticalSets returns the memoized vertical transform under the given
// representation as []tidlist.Set (ReprAuto picks per item by density —
// each item's list in whichever encoding is smaller, mixing
// representations within one dataset). Each representation's slice is
// built once and shared — must not be mutated. ok is always true (the
// repro.Source contract): store-backed datasets serve views over the
// mapping, in-memory datasets pay one memoized transform pass, so every
// local Eclat job mines scan-free from here.
func (ds *Dataset) VerticalSets(r tidlist.Repr) ([]tidlist.Set, bool) {
	switch r {
	case tidlist.ReprBitset:
		ds.bitsetSetsOnce.Do(func() {
			dense := ds.VerticalBitsets()
			out := make([]tidlist.Set, len(dense))
			for it, b := range dense {
				out[it] = b
			}
			ds.bitsetSets = out
		})
		return ds.bitsetSets, true
	case tidlist.ReprSparse:
		ds.sparseSetsOnce.Do(func() {
			vert := ds.Vertical()
			out := make([]tidlist.Set, len(vert))
			for it, l := range vert {
				out[it] = l
			}
			ds.sparseSets = out
		})
		return ds.sparseSets, true
	case tidlist.ReprRoaring:
		ds.roaringSetsOnce.Do(func() {
			roarings := ds.VerticalRoarings()
			out := make([]tidlist.Set, len(roarings))
			for it, r := range roarings {
				out[it] = r
			}
			ds.roaringSets = out
		})
		return ds.roaringSets, true
	default: // ReprAuto: per-item cheapest encoding
		ds.autoSetsOnce.Do(func() {
			vert := ds.Vertical()
			out := make([]tidlist.Set, len(vert))
			var dense []*tidlist.Bitset
			var roarings []*tidlist.Roaring
			for it, l := range vert {
				switch _, enc := tidlist.EncodedSize(l, tidlist.ReprAuto); enc {
				case tidlist.ReprBitset:
					if dense == nil {
						dense = ds.VerticalBitsets()
					}
					out[it] = dense[it]
				case tidlist.ReprRoaring:
					if roarings == nil {
						roarings = ds.VerticalRoarings()
					}
					out[it] = roarings[it]
				default:
					out[it] = l
				}
			}
			ds.autoSets = out
		})
		return ds.autoSets, true
	}
}

// VerticalSizes reports the encoded size of the whole vertical transform
// under each representation — the dataset-detail figures that let a
// caller see which encoding its tid-lists favor.
func (ds *Dataset) VerticalSizes() (sparse, dense, roaring, auto int64) {
	for _, l := range ds.Vertical() {
		s, _ := tidlist.EncodedSize(l, tidlist.ReprSparse)
		d, _ := tidlist.EncodedSize(l, tidlist.ReprBitset)
		r, _ := tidlist.EncodedSize(l, tidlist.ReprRoaring)
		a, _ := tidlist.EncodedSize(l, tidlist.ReprAuto)
		sparse, dense, roaring, auto = sparse+s, dense+d, roaring+r, auto+a
	}
	return sparse, dense, roaring, auto
}

// ItemSupport is one item with its support count.
type ItemSupport struct {
	Item    itemset.Item `json:"item"`
	Support int          `json:"support"`
}

// TopItems returns the n most frequent items, by support descending then
// item ascending, computed from the memoized vertical transform.
func (ds *Dataset) TopItems(n int) []ItemSupport {
	vert := ds.Vertical()
	out := make([]ItemSupport, 0, len(vert))
	for it, l := range vert {
		if len(l) > 0 {
			out = append(out, ItemSupport{Item: itemset.Item(it), Support: l.Support()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Item < out[j].Item
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// DatasetInfo is the /v1/datasets summary of one dataset.
type DatasetInfo struct {
	Name         string  `json:"name"`
	Source       string  `json:"source"`
	Transactions int     `json:"transactions"`
	NumItems     int     `json:"numItems"`
	AvgLen       float64 `json:"avgLen"`
	SizeBytes    int64   `json:"sizeBytes"`
	// Stored reports whether the dataset is persisted in the daemon's
	// data directory (and therefore survives restarts).
	Stored bool `json:"stored,omitempty"`
}

// Registry holds the registered datasets. Registration happens at daemon
// startup and over HTTP; lookups are concurrent. With a store attached,
// Add persists new datasets and Remove evicts them from disk.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]*Dataset
	names []string
	st    *store.Store
	logf  func(format string, args ...any)
}

// NewRegistry returns an empty registry with no persistence.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*Dataset)}
}

// AttachStore wires the persistent store into the registry: every
// dataset the store already holds is registered store-backed (in sorted
// name order), and subsequent Add/Remove calls persist through it. logf
// receives spill warnings; nil discards them.
func (r *Registry) AttachStore(st *store.Store, logf func(format string, args ...any)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.st != nil {
		return fmt.Errorf("service: registry already has a store attached")
	}
	r.st = st
	r.logf = logf
	for _, name := range st.Names() {
		if _, ok := r.byKey[name]; ok {
			return fmt.Errorf("service: stored dataset %q collides with a registered one", name)
		}
		sd, err := st.Get(name)
		if err != nil {
			return err
		}
		r.insertLocked(storeBackedDataset(sd, logf))
	}
	return nil
}

// storeBackedDataset wraps an opened stored dataset for the registry.
func storeBackedDataset(sd *store.Dataset, logf func(format string, args ...any)) *Dataset {
	m := sd.Meta()
	return &Dataset{
		Name:   m.Name,
		Source: m.Source,
		info: DatasetInfo{
			Name:         m.Name,
			Source:       m.Source,
			Transactions: m.Transactions,
			NumItems:     m.NumItems,
			AvgLen:       m.AvgLen,
			SizeBytes:    m.SizeBytes,
			Stored:       true,
		},
		stored: sd,
		logf:   logf,
	}
}

// Add registers d under name; duplicate names are ErrDatasetExists. With
// a store attached the dataset is persisted first (crash-safe) and
// registered store-backed, so even the registering process mines from
// the mapping.
func (r *Registry) Add(name, source string, d *db.Database) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("service: empty dataset name")
	}
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("service: dataset %q is empty", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byKey[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	var ds *Dataset
	if r.st != nil {
		sd, err := r.st.Register(store.DatasetMeta(name, source, d), d, store.VerticalLists(d))
		if err != nil {
			return nil, err
		}
		ds = storeBackedDataset(sd, r.logf)
	} else {
		ds = &Dataset{
			Name:   name,
			Source: source,
			info: DatasetInfo{
				Name:         name,
				Source:       source,
				Transactions: d.Len(),
				NumItems:     d.NumItems,
				AvgLen:       d.AvgLen(),
				SizeBytes:    d.SizeBytes(),
			},
			memDB: d,
		}
	}
	r.insertLocked(ds)
	return ds, nil
}

// insertLocked adds ds to the map and name order; r.mu must be held.
func (r *Registry) insertLocked(ds *Dataset) {
	r.byKey[ds.Name] = ds
	r.names = append(r.names, ds.Name)
}

// Remove unregisters name, deleting it from the persistent store when
// the dataset is store-backed. Views already handed out stay valid until
// the store is closed. Unknown names are ErrUnknownDataset. Whether the
// dataset is safe to remove (no jobs referencing it) is the caller's
// check — the registry has no job visibility.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.byKey[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	if ds.stored != nil && r.st != nil {
		if err := r.st.Remove(name); err != nil {
			return err
		}
	}
	delete(r.byKey, name)
	for i, n := range r.names {
		if n == name {
			r.names = append(r.names[:i], r.names[i+1:]...)
			break
		}
	}
	return nil
}

// Get looks a dataset up by name.
func (r *Registry) Get(name string) (*Dataset, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ds, ok := r.byKey[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return ds, nil
}

// List returns summaries of all datasets in registration order.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.byKey[name].info)
	}
	return out
}
