package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/tidlist"
)

// ErrUnknownDataset is returned for dataset names not in the registry.
var ErrUnknownDataset = errors.New("service: unknown dataset")

// Dataset is one registered database. The horizontal data is loaded once
// and held immutably; the vertical tid-list transformation (one tid-list
// per item) is computed lazily on first use and memoized — once per
// representation — so repeated item-level queries never rescan the
// horizontal data and never re-encode a transform they already have.
type Dataset struct {
	// Name is the registry key.
	Name string
	// Source describes where the data came from (file path, "generated",
	// ...), for /v1/datasets.
	Source string
	// DB is the immutable horizontal database.
	DB *db.Database

	verticalOnce sync.Once
	vertical     []tidlist.List // index = item; nil until first use

	bitsetOnce sync.Once
	bitsets    []*tidlist.Bitset // index = item; nil until first use
}

// Vertical returns the memoized per-item tid-lists of the dataset — the
// paper's vertical layout at the 1-itemset level. The first call costs
// one pass over the horizontal data; later calls are free. The returned
// slice and its lists are shared and must not be mutated.
func (ds *Dataset) Vertical() []tidlist.List {
	ds.verticalOnce.Do(func() {
		lists := make([]tidlist.List, ds.DB.NumItems)
		for _, tx := range ds.DB.Transactions {
			for _, it := range tx.Items {
				lists[it] = append(lists[it], tx.TID)
			}
		}
		ds.vertical = lists
	})
	return ds.vertical
}

// VerticalBitsets returns the memoized dense encoding of the vertical
// transform (one Bitset per item; empty items get an empty Bitset). The
// first call re-encodes the sparse transform once; later calls are free.
// Shared — must not be mutated.
func (ds *Dataset) VerticalBitsets() []*tidlist.Bitset {
	ds.bitsetOnce.Do(func() {
		vert := ds.Vertical()
		sets := make([]*tidlist.Bitset, len(vert))
		for it, l := range vert {
			sets[it] = tidlist.NewBitset(l)
		}
		ds.bitsets = sets
	})
	return ds.bitsets
}

// VerticalSets returns the memoized vertical transform under the given
// representation as []tidlist.Set (ReprAuto picks per item by density —
// each item's list in whichever encoding is smaller, mixing
// representations within one dataset). Shared — must not be mutated.
func (ds *Dataset) VerticalSets(r tidlist.Repr) []tidlist.Set {
	vert := ds.Vertical()
	out := make([]tidlist.Set, len(vert))
	switch r {
	case tidlist.ReprBitset:
		for it, b := range ds.VerticalBitsets() {
			out[it] = b
		}
	case tidlist.ReprSparse:
		for it, l := range vert {
			out[it] = l
		}
	default: // ReprAuto: per-item cheapest encoding
		var dense []*tidlist.Bitset
		for it, l := range vert {
			if _, enc := tidlist.EncodedSize(l, tidlist.ReprAuto); enc == tidlist.ReprBitset {
				if dense == nil {
					dense = ds.VerticalBitsets()
				}
				out[it] = dense[it]
			} else {
				out[it] = l
			}
		}
	}
	return out
}

// VerticalSizes reports the encoded size of the whole vertical transform
// under each representation — the dataset-detail figures that let a
// caller see which encoding its tid-lists favor.
func (ds *Dataset) VerticalSizes() (sparse, dense, auto int64) {
	for _, l := range ds.Vertical() {
		s, _ := tidlist.EncodedSize(l, tidlist.ReprSparse)
		d, _ := tidlist.EncodedSize(l, tidlist.ReprBitset)
		a, _ := tidlist.EncodedSize(l, tidlist.ReprAuto)
		sparse, dense, auto = sparse+s, dense+d, auto+a
	}
	return sparse, dense, auto
}

// ItemSupport is one item with its support count.
type ItemSupport struct {
	Item    itemset.Item `json:"item"`
	Support int          `json:"support"`
}

// TopItems returns the n most frequent items, by support descending then
// item ascending, computed from the memoized vertical transform.
func (ds *Dataset) TopItems(n int) []ItemSupport {
	vert := ds.Vertical()
	out := make([]ItemSupport, 0, len(vert))
	for it, l := range vert {
		if len(l) > 0 {
			out = append(out, ItemSupport{Item: itemset.Item(it), Support: l.Support()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Item < out[j].Item
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// DatasetInfo is the /v1/datasets summary of one dataset.
type DatasetInfo struct {
	Name         string  `json:"name"`
	Source       string  `json:"source"`
	Transactions int     `json:"transactions"`
	NumItems     int     `json:"numItems"`
	AvgLen       float64 `json:"avgLen"`
	SizeBytes    int64   `json:"sizeBytes"`
}

// Registry holds the registered datasets. Registration happens at daemon
// startup (and in tests); lookups are concurrent.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]*Dataset
	names []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*Dataset)}
}

// Add registers d under name; duplicate names are an error.
func (r *Registry) Add(name, source string, d *db.Database) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("service: empty dataset name")
	}
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("service: dataset %q is empty", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byKey[name]; ok {
		return nil, fmt.Errorf("service: dataset %q already registered", name)
	}
	ds := &Dataset{Name: name, Source: source, DB: d}
	r.byKey[name] = ds
	r.names = append(r.names, name)
	return ds, nil
}

// Get looks a dataset up by name.
func (r *Registry) Get(name string) (*Dataset, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ds, ok := r.byKey[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return ds, nil
}

// List returns summaries of all datasets in registration order.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.names))
	for _, name := range r.names {
		ds := r.byKey[name]
		out = append(out, DatasetInfo{
			Name:         ds.Name,
			Source:       ds.Source,
			Transactions: ds.DB.Len(),
			NumItems:     ds.DB.NumItems,
			AvgLen:       ds.DB.AvgLen(),
			SizeBytes:    ds.DB.SizeBytes(),
		})
	}
	return out
}
