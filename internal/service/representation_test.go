package service

import (
	"bytes"
	"context"
	"testing"

	"repro"
	"repro/internal/tidlist"
)

// TestServiceRepresentationsDistinctEntriesSameResult checks that the
// cache keeps per-representation entries apart (the key includes the
// representation) while every representation mines identical itemsets.
func TestServiceRepresentationsDistinctEntriesSameResult(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 8}, 400)
	var first []byte
	for _, r := range []repro.Representation{repro.ReprSparse, repro.ReprBitset, repro.ReprAuto} {
		j, err := s.Submit(Request{Dataset: "t10", SupportPct: 2.0, Representation: r})
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Wait(context.Background(), j.ID)
		if err != nil || v.Status != StatusDone {
			t.Fatalf("repr %v: %v %v", r, v.Status, err)
		}
		if v.Cached {
			t.Fatalf("repr %v shared a cache entry with another representation", r)
		}
		if v.Representation != r.String() {
			t.Fatalf("job view representation %q, want %q", v.Representation, r)
		}
		res, err := s.Result(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := repro.WriteResult(&buf, res); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("repr %v mined different itemsets", r)
		}
	}
	if got := s.Cache().Len(); got != 3 {
		t.Fatalf("cache entries = %d, want 3 (one per representation)", got)
	}
	// Resubmitting under the same representation hits its entry.
	j, err := s.Submit(Request{Dataset: "t10", SupportPct: 2.0, Representation: repro.ReprBitset})
	if err != nil {
		t.Fatal(err)
	}
	if v := j.Snapshot(); !v.Cached {
		t.Fatalf("same-representation resubmission missed the cache: %+v", v)
	}
}

// TestDatasetVerticalSetsMemoizedPerRepresentation checks the dense
// transform is computed once, shared across VerticalSets calls, and that
// every representation of the transform carries the same tid-sets.
func TestDatasetVerticalSetsMemoizedPerRepresentation(t *testing.T) {
	r := NewRegistry()
	ds, err := r.Add("t10", "generated", genDataset(t, 300))
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := ds.VerticalBitsets(), ds.VerticalBitsets()
	if &b1[0] != &b2[0] {
		t.Fatal("VerticalBitsets recomputed instead of memoized")
	}
	sparse, _ := ds.VerticalSets(tidlist.ReprSparse)
	dense, _ := ds.VerticalSets(tidlist.ReprBitset)
	roaring, ok := ds.VerticalSets(tidlist.ReprRoaring)
	if !ok {
		t.Fatal("VerticalSets must always serve the repro.Source vertical view")
	}
	auto, _ := ds.VerticalSets(tidlist.ReprAuto)
	vert := ds.Vertical()
	for it := range vert {
		want := vert[it]
		for _, sets := range [][]tidlist.Set{sparse, dense, roaring, auto} {
			got := tidlist.TIDsOf(sets[it])
			if len(got) != len(want) {
				t.Fatalf("item %d: %d tids, want %d", it, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("item %d: tid mismatch at %d", it, i)
				}
			}
		}
		if sparse[it].Repr() != tidlist.ReprSparse {
			t.Fatalf("item %d: sparse transform has repr %v", it, sparse[it].Repr())
		}
		if vert[it].Support() > 0 && dense[it].Repr() != tidlist.ReprBitset {
			t.Fatalf("item %d: dense transform has repr %v", it, dense[it].Repr())
		}
		if vert[it].Support() > 0 && roaring[it].Repr() != tidlist.ReprRoaring {
			t.Fatalf("item %d: roaring transform has repr %v", it, roaring[it].Repr())
		}
	}
	// The auto transform never ships an item in a more expensive
	// encoding, so its total size is the VerticalSizes auto figure.
	sp, de, ro, au := ds.VerticalSizes()
	if au > sp || au > de || au > ro {
		t.Fatalf("auto size %d exceeds sparse %d, dense %d, or roaring %d", au, sp, de, ro)
	}
	var autoSum int64
	for _, s := range auto {
		autoSum += s.SizeBytes()
	}
	if autoSum != au {
		t.Fatalf("auto transform totals %d bytes, VerticalSizes says %d", autoSum, au)
	}
}
