package service

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro"
)

// TestServiceTopKTargetedMatchesDirect: the serving path's top-k and
// targeted queries return exactly what a direct repro.Mine with the same
// options returns, and the job view echoes the query parameters plus the
// effective threshold the heap ended at.
func TestServiceTopKTargetedMatchesDirect(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 8}, 800)
	ds, _ := s.Registry().Get("t10")
	d, err := ds.Database()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		req  Request
		opts repro.MineOptions
	}{
		{
			"topk",
			Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportPct: 1.0, TopK: 25},
			repro.MineOptions{SupportPct: 1.0, TopK: 25},
		},
		{
			"contains",
			Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportPct: 1.0, MustContain: []int{3}},
			repro.MineOptions{SupportPct: 1.0, MustContain: []int{3}},
		},
		{
			"both",
			Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportPct: 1.0, TopK: 5, MustContain: []int{3}},
			repro.MineOptions{SupportPct: 1.0, TopK: 5, MustContain: []int{3}},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			j, err := s.Submit(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			v, err := s.Wait(context.Background(), j.ID)
			if err != nil {
				t.Fatal(err)
			}
			if v.Status != StatusDone {
				t.Fatalf("status = %v (%s)", v.Status, v.Error)
			}
			if v.TopK != tc.req.TopK {
				t.Fatalf("view TopK = %d, want %d", v.TopK, tc.req.TopK)
			}
			if len(v.MustContain) != len(tc.req.MustContain) {
				t.Fatalf("view MustContain = %v, want %v", v.MustContain, tc.req.MustContain)
			}
			if v.EffectiveMinSup <= 0 {
				t.Fatalf("view EffectiveMinSup = %d, want > 0", v.EffectiveMinSup)
			}
			got, err := s.Result(j.ID)
			if err != nil {
				t.Fatal(err)
			}
			want, info, err := repro.Mine(context.Background(), d, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			var gotBuf, wantBuf bytes.Buffer
			if err := repro.WriteResult(&gotBuf, got); err != nil {
				t.Fatal(err)
			}
			if err := repro.WriteResult(&wantBuf, want); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
				t.Fatal("service result differs from direct repro.Mine with same query options")
			}
			if v.EffectiveMinSup != info.EffectiveMinSup {
				t.Fatalf("view EffectiveMinSup = %d, direct run reported %d", v.EffectiveMinSup, info.EffectiveMinSup)
			}
		})
	}
}

// TestServiceTopKTargetedCacheIdentity: the query options are part of
// the cache identity — distinct TopK values get distinct entries, while
// MustContain lists that canonicalize identically (permuted, duplicated)
// share one.
func TestServiceTopKTargetedCacheIdentity(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 8}, 400)
	run := func(req Request) *Job {
		t.Helper()
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := s.Wait(context.Background(), j.ID); err != nil || v.Status != StatusDone {
			t.Fatalf("%+v: %v %v", req, v.Status, err)
		}
		return j
	}

	base := Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportPct: 2.0}
	run(base)
	topk := base
	topk.TopK = 10
	j2 := run(topk)
	if j2.Snapshot().Cached {
		t.Fatal("TopK=10 shared a cache entry with the full mine")
	}
	otherK := base
	otherK.TopK = 11
	if j3 := run(otherK); j3.Snapshot().Cached {
		t.Fatal("TopK=11 shared a cache entry with TopK=10")
	}

	must := base
	must.MustContain = []int{7, 3, 3}
	j4 := run(must)
	if j4.Snapshot().Cached {
		t.Fatal("first MustContain query should miss the cache")
	}
	permuted := base
	permuted.MustContain = []int{3, 7}
	j5, err := s.Submit(permuted)
	if err != nil {
		t.Fatal(err)
	}
	if v := j5.Snapshot(); v.Status != StatusDone || !v.Cached {
		t.Fatalf("permuted+deduped MustContain missed the cache: %+v", v)
	}
}

// TestServiceRejectsBadQueryOptions: submit-time validation rejects
// malformed or mis-routed top-k/targeted queries with the repro
// sentinels the HTTP layer maps to typed 400s.
func TestServiceRejectsBadQueryOptions(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 2}, 200)
	for _, tc := range []struct {
		name string
		req  Request
		want error
	}{
		{"negative topk", Request{Dataset: "t10", SupportPct: 2.0, TopK: -1}, repro.ErrInvalidTopK},
		{"negative topk no support", Request{Dataset: "t10", TopK: -1}, repro.ErrInvalidTopK},
		{"topk on maximal", Request{Dataset: "t10", SupportPct: 2.0, Variant: VariantMaximal, TopK: 5}, repro.ErrInvalidTopK},
		{"topk on apriori", Request{Dataset: "t10", Algorithm: repro.AlgoApriori, SupportPct: 2.0, TopK: 5}, repro.ErrInvalidTopK},
		{"topk on cluster", Request{Dataset: "t10", SupportPct: 2.0, Hosts: 2, ProcsPerHost: 2, TopK: 5}, repro.ErrInvalidTopK},
		{"negative item", Request{Dataset: "t10", SupportPct: 2.0, MustContain: []int{2, -1}}, repro.ErrInvalidMustContain},
		{"contains on closed", Request{Dataset: "t10", SupportPct: 2.0, Variant: VariantClosed, MustContain: []int{2}}, repro.ErrInvalidMustContain},
	} {
		_, err := s.Submit(tc.req)
		if err == nil {
			t.Fatalf("%s: submit succeeded, want error", tc.name)
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		status, slug := errorCode(err)
		wantSlug := "invalid_topk"
		if errors.Is(err, repro.ErrInvalidMustContain) {
			wantSlug = "invalid_must_contain"
		}
		if status != 400 || slug != wantSlug {
			t.Fatalf("%s: errorCode = (%d, %q), want (400, %q)", tc.name, status, slug, wantSlug)
		}
	}
}
