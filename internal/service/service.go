package service

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/mining"
	"repro/internal/obsv"
)

// Config sizes a Service.
type Config struct {
	// Workers / QueueDepth size the job manager (see ManagerConfig).
	Workers    int
	QueueDepth int
	// CacheBytes bounds the result cache (default 64 MiB).
	CacheBytes int64
}

// Live-gauge metric names of the service.
const (
	mnQueueLen     = "service_queue_len"
	mnCacheEntries = "service_cache_entries"
	mnCacheBytes   = "service_cache_bytes"
	mnDatasets     = "service_datasets"
)

// Service wires the dataset registry, the job manager, and the result
// cache into the serving layer behind cmd/assocmined.
type Service struct {
	reg     *Registry
	cache   *Cache
	mgr     *Manager
	started time.Time
}

// New builds a Service and starts its worker pool. The newest Service
// owns the live-state gauges in the default metrics registry (tests that
// build several services hand the names forward; a daemon has one).
func New(cfg Config) *Service {
	s := &Service{
		reg:     NewRegistry(),
		cache:   NewCache(cfg.CacheBytes),
		started: time.Now(),
	}
	s.mgr = NewManager(ManagerConfig{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth}, s.runJob)
	obsv.Default.GaugeFunc(mnQueueLen, "jobs waiting in the bounded queue",
		func() int64 { return int64(s.mgr.QueueLen()) })
	obsv.Default.GaugeFunc(mnCacheEntries, "entries in the result cache",
		func() int64 { return int64(s.cache.Len()) })
	obsv.Default.GaugeFunc(mnCacheBytes, "estimated bytes held by the result cache",
		func() int64 { return s.cache.Stats().SizeBytes })
	obsv.Default.GaugeFunc(mnDatasets, "registered datasets",
		func() int64 { return int64(len(s.reg.List())) })
	return s
}

// Registry exposes the dataset registry for startup-time registration.
func (s *Service) Registry() *Registry { return s.reg }

// Manager exposes the job manager (tests and stats).
func (s *Service) Manager() *Manager { return s.mgr }

// Cache exposes the result cache (tests and stats).
func (s *Service) Cache() *Cache { return s.cache }

// normalize validates req against the registry and resolves its cache
// key (which fixes the absolute minsup).
func (s *Service) normalize(req Request) (Request, Key, error) {
	ds, err := s.reg.Get(req.Dataset)
	if err != nil {
		return req, Key{}, err
	}
	if req.Variant == "" {
		req.Variant = VariantAll
	}
	opts := repro.MineOptions{SupportPct: req.SupportPct, SupportCount: req.SupportCount}
	minsup, err := opts.MinSup(ds.DB)
	if err != nil {
		return req, Key{}, err
	}
	key := Key{
		Dataset:        req.Dataset,
		Algorithm:      req.Algorithm.String(),
		MinSup:         minsup,
		Variant:        req.Variant,
		Representation: req.Representation.String(),
	}
	return req, key, nil
}

// Submit validates req, serves it from the result cache when possible
// (the returned job is already done, with View.Cached set), and
// otherwise enqueues it. It fails with ErrQueueFull under backpressure.
func (s *Service) Submit(req Request) (*Job, error) {
	req, key, err := s.normalize(req)
	if err != nil {
		return nil, err
	}
	if res, ok := s.cache.Get(key); ok {
		return s.mgr.Insert(req, key, res, true), nil
	}
	return s.mgr.Submit(req, key)
}

// runJob executes one job against the registry and stores a successful
// result in the cache.
func (s *Service) runJob(ctx context.Context, j *Job) (*mining.Result, *repro.RunInfo, error) {
	ds, err := s.reg.Get(j.Req.Dataset)
	if err != nil {
		return nil, nil, err
	}
	opts := repro.MineOptions{
		Algorithm:      j.Req.Algorithm,
		SupportCount:   j.Key.MinSup, // resolved once at submit time
		Hosts:          j.Req.Hosts,
		ProcsPerHost:   j.Req.ProcsPerHost,
		Representation: j.Req.Representation,
	}
	var res *mining.Result
	var info *repro.RunInfo
	switch j.Req.Variant {
	case VariantMaximal:
		res, err = repro.MineMaximal(ctx, ds.DB, opts)
	case VariantClosed:
		res, err = repro.MineClosed(ctx, ds.DB, opts)
	default:
		res, info, err = repro.Mine(ctx, ds.DB, opts)
	}
	if err != nil {
		return nil, nil, err
	}
	s.cache.Put(j.Key, res)
	return res, info, nil
}

// Job returns a snapshot of the job with the given ID.
func (s *Service) Job(id string) (View, error) {
	j, err := s.mgr.Get(id)
	if err != nil {
		return View{}, err
	}
	return j.Snapshot(), nil
}

// Jobs lists all jobs.
func (s *Service) Jobs() []View { return s.mgr.List() }

// Result returns the finished result of a job, or an error naming the
// job's current status when it is not done.
func (s *Service) Result(id string) (*mining.Result, error) {
	j, err := s.mgr.Get(id)
	if err != nil {
		return nil, err
	}
	if res := j.Result(); res != nil {
		return res, nil
	}
	return nil, fmt.Errorf("service: job %s is %s, not done", id, j.Snapshot().Status)
}

// Cancel cancels a job (no-op if already terminal) and returns its
// snapshot after the cancellation request.
func (s *Service) Cancel(id string) (View, error) {
	j, err := s.mgr.Cancel(id)
	if err != nil {
		return View{}, err
	}
	return j.Snapshot(), nil
}

// Wait blocks until the job is terminal or ctx expires.
func (s *Service) Wait(ctx context.Context, id string) (View, error) {
	return s.mgr.Wait(ctx, id)
}

// Datasets lists the registered datasets.
func (s *Service) Datasets() []DatasetInfo { return s.reg.List() }

// Dataset returns one dataset for detail queries.
func (s *Service) Dataset(name string) (*Dataset, error) { return s.reg.Get(name) }

// Shutdown drains the job queue and workers (see Manager.Shutdown).
func (s *Service) Shutdown(ctx context.Context) error { return s.mgr.Shutdown(ctx) }

// Stats is the /statsz payload.
type Stats struct {
	UptimeSeconds float64    `json:"uptimeSeconds"`
	Workers       int        `json:"workers"`
	QueueDepth    int        `json:"queueDepth"`
	QueueLen      int        `json:"queueLen"`
	Running       int64      `json:"running"`
	Submitted     int64      `json:"submitted"`
	Completed     int64      `json:"completed"`
	Failed        int64      `json:"failed"`
	Canceled      int64      `json:"canceled"`
	Rejected      int64      `json:"rejected"`
	Cache         CacheStats `json:"cache"`
	Datasets      int        `json:"datasets"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	m := s.mgr
	return Stats{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       m.cfg.Workers,
		QueueDepth:    m.cfg.QueueDepth,
		QueueLen:      m.QueueLen(),
		Running:       m.running.Load(),
		Submitted:     m.submitted.Load(),
		Completed:     m.completed.Load(),
		Failed:        m.failed.Load(),
		Canceled:      m.canceled.Load(),
		Rejected:      m.rejected.Load(),
		Cache:         s.cache.Stats(),
		Datasets:      len(s.reg.List()),
	}
}
