package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/db"
	"repro/internal/mining"
	"repro/internal/obsv"
	"repro/internal/store"
)

// Config sizes a Service.
type Config struct {
	// Workers / QueueDepth size the job manager (see ManagerConfig).
	Workers    int
	QueueDepth int
	// CacheBytes bounds the result cache (default 64 MiB).
	CacheBytes int64
	// ParallelBudget caps the total mining goroutines across concurrently
	// running jobs (0 means runtime.GOMAXPROCS(0)). Each job gets
	// max(1, ParallelBudget/Workers) workers, so job-level concurrency
	// times intra-job parallelism never oversubscribes the host; a job
	// request asking for more is clamped to the per-job share.
	ParallelBudget int
	// Store, when non-nil, makes the registry store-backed: previously
	// persisted datasets are registered at construction, new
	// registrations persist, and eligible Eclat jobs mine from the
	// store's mapping with zero horizontal scans. The caller owns the
	// store's lifetime (Close after Shutdown).
	Store *store.Store
	// ResidencyBudget is the default per-job MemoryBudget (bytes) for
	// store-backed mines: jobs that do not set their own budget mine
	// out-of-core whenever their dataset's mapping exceeds it. 0 leaves
	// unbudgeted jobs in-core.
	ResidencyBudget int64
	// Logf receives registry warnings (failed transform spills, ...);
	// nil discards them.
	Logf func(format string, args ...any)
}

// ErrDatasetBusy is returned by RemoveDataset while jobs still reference
// the dataset; HTTP maps it to 409 Conflict.
var ErrDatasetBusy = errors.New("service: dataset busy")

// Live-gauge metric names of the service.
const (
	mnQueueLen     = "service_queue_len"
	mnCacheEntries = "service_cache_entries"
	mnCacheBytes   = "service_cache_bytes"
	mnDatasets     = "service_datasets"
)

// Service wires the dataset registry, the job manager, and the result
// cache into the serving layer behind cmd/assocmined.
type Service struct {
	reg     *Registry
	cache   *Cache
	mgr     *Manager
	started time.Time
	// parallelBudget / jobParallelism are the resolved Config.ParallelBudget
	// and the per-job worker share derived from it (both fixed at New).
	parallelBudget int
	jobParallelism int
	// residencyBudget is Config.ResidencyBudget, the default per-job
	// memory budget for store-backed mines.
	residencyBudget int64
}

// New builds a Service and starts its worker pool. The newest Service
// owns the live-state gauges in the default metrics registry (tests that
// build several services hand the names forward; a daemon has one). With
// cfg.Store set, every dataset the store holds is registered before New
// returns, so a restarted daemon serves its persisted datasets without
// rebuilding anything; the only error paths are store-attachment ones.
func New(cfg Config) (*Service, error) {
	s := &Service{
		reg:     NewRegistry(),
		cache:   NewCache(cfg.CacheBytes),
		started: time.Now(),
	}
	if cfg.Store != nil {
		if err := s.reg.AttachStore(cfg.Store, cfg.Logf); err != nil {
			return nil, err
		}
	}
	s.mgr = NewManager(ManagerConfig{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth}, s.runJob)
	s.parallelBudget = cfg.ParallelBudget
	if s.parallelBudget <= 0 {
		s.parallelBudget = runtime.GOMAXPROCS(0)
	}
	s.jobParallelism = s.parallelBudget / s.mgr.cfg.Workers
	if s.jobParallelism < 1 {
		s.jobParallelism = 1
	}
	s.residencyBudget = cfg.ResidencyBudget
	obsv.Default.GaugeFunc(mnQueueLen, "jobs waiting in the bounded queue",
		func() int64 { return int64(s.mgr.QueueLen()) })
	obsv.Default.GaugeFunc(mnCacheEntries, "entries in the result cache",
		func() int64 { return int64(s.cache.Len()) })
	obsv.Default.GaugeFunc(mnCacheBytes, "estimated bytes held by the result cache",
		func() int64 { return s.cache.Stats().SizeBytes })
	obsv.Default.GaugeFunc(mnDatasets, "registered datasets",
		func() int64 { return int64(len(s.reg.List())) })
	return s, nil
}

// Registry exposes the dataset registry for startup-time registration.
func (s *Service) Registry() *Registry { return s.reg }

// Manager exposes the job manager (tests and stats).
func (s *Service) Manager() *Manager { return s.mgr }

// Cache exposes the result cache (tests and stats).
func (s *Service) Cache() *Cache { return s.cache }

// normalize validates req against the registry and resolves its cache
// key (which fixes the absolute minsup).
func (s *Service) normalize(req Request) (Request, Key, error) {
	ds, err := s.reg.Get(req.Dataset)
	if err != nil {
		return req, Key{}, err
	}
	if req.Variant == "" {
		req.Variant = VariantAll
	}
	// Reject unusable query options first, before support resolution: a
	// malformed topk must surface as invalid_topk even when no support
	// was given. The top-k heap and class targeting exist only on the
	// local all-frequent Eclat path.
	must, err := canonContains(req.MustContain)
	if err != nil {
		return req, Key{}, err
	}
	localEclat := req.Algorithm == repro.AlgoEclat && req.Hosts <= 1 && req.ProcsPerHost <= 1
	switch {
	case req.TopK < 0:
		return req, Key{}, fmt.Errorf("%w: negative topk %d", repro.ErrInvalidTopK, req.TopK)
	case req.TopK > 0 && (req.Variant != VariantAll || !localEclat):
		return req, Key{}, fmt.Errorf("%w: topk requires the local eclat path with variant all", repro.ErrInvalidTopK)
	case must != "" && (req.Variant != VariantAll || !localEclat):
		return req, Key{}, fmt.Errorf("%w: mustContain requires the local eclat path with variant all", repro.ErrInvalidMustContain)
	}
	// MinSupN resolves from the dataset-shape metadata, so submission
	// never loads a store-backed dataset's horizontal data. TopK is part
	// of the resolution: a top-k request with no explicit support gets
	// the floor-1 default instead of a 400.
	opts := repro.MineOptions{SupportPct: req.SupportPct, SupportCount: req.SupportCount, TopK: req.TopK}
	minsup, err := opts.MinSupN(ds.Info().Transactions)
	if err != nil {
		return req, Key{}, err
	}
	// Reject a negative parallelism at submit time (a positive ask is
	// clamped to the per-job share when the job runs). The cache key
	// deliberately omits parallelism: MineParallelLocal's results are
	// byte-identical to sequential mining, so all worker counts share one
	// entry.
	if _, err := (repro.MineOptions{Parallelism: req.Parallelism}).Workers(); err != nil {
		return req, Key{}, err
	}
	// Reject a negative memory budget at submit time. Like parallelism,
	// the budget is absent from the cache key: a budgeted mine is
	// byte-identical to an in-core one, so all budgets share one entry.
	if req.MemoryBudget < 0 {
		return req, Key{}, fmt.Errorf("%w: negative memoryBudget %d", repro.ErrInvalidMemoryBudget, req.MemoryBudget)
	}
	key := Key{
		Dataset:        req.Dataset,
		Algorithm:      req.Algorithm.String(),
		MinSup:         minsup,
		Variant:        req.Variant,
		Representation: req.Representation.String(),
		TopK:           req.TopK,
		MustContain:    must,
	}
	return req, key, nil
}

// canonContains canonicalizes a targeted query's item list for the cache
// key: sorted, deduplicated, comma-joined ("" when empty). Negative items
// are an ErrInvalidMustContain.
func canonContains(items []int) (string, error) {
	if len(items) == 0 {
		return "", nil
	}
	sorted := append([]int(nil), items...)
	sort.Ints(sorted)
	var b strings.Builder
	for i, it := range sorted {
		if it < 0 {
			return "", fmt.Errorf("%w: negative item %d", repro.ErrInvalidMustContain, it)
		}
		if i > 0 && it == sorted[i-1] {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(it))
	}
	return b.String(), nil
}

// Submit validates req, serves it from the result cache when possible
// (the returned job is already done, with View.Cached set), and
// otherwise enqueues it. It fails with ErrQueueFull under backpressure.
func (s *Service) Submit(req Request) (*Job, error) {
	req, key, err := s.normalize(req)
	if err != nil {
		return nil, err
	}
	if res, ok := s.cache.Get(key); ok {
		return s.mgr.Insert(req, key, res, true), nil
	}
	return s.mgr.Submit(req, key)
}

// runJob executes one job against the registry and stores a successful
// result in the cache.
func (s *Service) runJob(ctx context.Context, j *Job) (*mining.Result, *repro.RunInfo, error) {
	ds, err := s.reg.Get(j.Req.Dataset)
	if err != nil {
		return nil, nil, err
	}
	// A job's explicit budget wins; otherwise the service default
	// applies. MineFrom picks the out-of-core path only when the
	// dataset's mapped size actually exceeds the budget.
	budget := j.Req.MemoryBudget
	if budget == 0 {
		budget = s.residencyBudget
	}
	opts := repro.MineOptions{
		Algorithm:      j.Req.Algorithm,
		SupportCount:   j.Key.MinSup, // resolved once at submit time
		Hosts:          j.Req.Hosts,
		ProcsPerHost:   j.Req.ProcsPerHost,
		Representation: j.Req.Representation,
		Parallelism:    s.effectiveParallelism(j.Req.Parallelism),
		TopK:           j.Req.TopK,
		MustContain:    j.Req.MustContain,
		MemoryBudget:   budget,
	}
	var res *mining.Result
	var info *repro.RunInfo
	switch j.Req.Variant {
	case VariantMaximal:
		d, derr := ds.Database()
		if derr != nil {
			return nil, nil, derr
		}
		res, info, err = repro.MineMaximal(ctx, d, opts)
	case VariantClosed:
		d, derr := ds.Database()
		if derr != nil {
			return nil, nil, derr
		}
		res, info, err = repro.MineClosed(ctx, d, opts)
	default:
		// The dataset is a repro.Source: MineFrom mines local Eclat jobs
		// straight from the memoized vertical transform (zero horizontal
		// scans, mapped views for store-backed datasets) and materializes
		// the horizontal database for everything else. Both paths are
		// byte-identical, so the cache identity is unchanged.
		res, info, err = repro.MineFrom(ctx, ds, opts)
	}
	if err != nil {
		return nil, nil, err
	}
	s.cache.Put(j.Key, res)
	return res, info, nil
}

// effectiveParallelism resolves a job's requested worker count against
// the per-job share of the parallel budget: 0 takes the full share, a
// positive ask is capped at the share, so the worst case — every manager
// worker running a mining job at once — uses at most ParallelBudget
// goroutines.
func (s *Service) effectiveParallelism(requested int) int {
	if requested <= 0 || requested > s.jobParallelism {
		return s.jobParallelism
	}
	return requested
}

// Job returns a snapshot of the job with the given ID.
func (s *Service) Job(id string) (View, error) {
	j, err := s.mgr.Get(id)
	if err != nil {
		return View{}, err
	}
	return j.Snapshot(), nil
}

// Jobs lists all jobs.
func (s *Service) Jobs() []View { return s.mgr.List() }

// Result returns the finished result of a job, or an error naming the
// job's current status when it is not done.
func (s *Service) Result(id string) (*mining.Result, error) {
	j, err := s.mgr.Get(id)
	if err != nil {
		return nil, err
	}
	if res := j.Result(); res != nil {
		return res, nil
	}
	return nil, fmt.Errorf("service: job %s is %s, not done", id, j.Snapshot().Status)
}

// Cancel cancels a job (no-op if already terminal) and returns its
// snapshot after the cancellation request.
func (s *Service) Cancel(id string) (View, error) {
	j, err := s.mgr.Cancel(id)
	if err != nil {
		return View{}, err
	}
	return j.Snapshot(), nil
}

// Wait blocks until the job is terminal or ctx expires.
func (s *Service) Wait(ctx context.Context, id string) (View, error) {
	return s.mgr.Wait(ctx, id)
}

// Datasets lists the registered datasets.
func (s *Service) Datasets() []DatasetInfo { return s.reg.List() }

// Dataset returns one dataset for detail queries.
func (s *Service) Dataset(name string) (*Dataset, error) { return s.reg.Get(name) }

// RegisterDataset registers d under name (persisting it when the service
// has a store). It is the HTTP registration path; startup-time flag
// registration goes through Registry() directly.
func (s *Service) RegisterDataset(name, source string, d *db.Database) (DatasetInfo, error) {
	ds, err := s.reg.Add(name, source, d)
	if err != nil {
		return DatasetInfo{}, err
	}
	return ds.Info(), nil
}

// RemoveDataset evicts name from the registry (and from the persistent
// store, when the dataset is stored). A dataset referenced by any
// non-terminal job is ErrDatasetBusy; cached results for it are dropped
// so a later dataset of the same name cannot serve stale entries.
func (s *Service) RemoveDataset(name string) error {
	if _, err := s.reg.Get(name); err != nil {
		return err
	}
	for _, v := range s.mgr.List() {
		if v.Dataset == name && !v.Status.Terminal() {
			return fmt.Errorf("%w: %q has job %s %s", ErrDatasetBusy, name, v.ID, v.Status)
		}
	}
	if err := s.reg.Remove(name); err != nil {
		return err
	}
	s.cache.DropDataset(name)
	return nil
}

// Shutdown drains the job queue and workers (see Manager.Shutdown).
func (s *Service) Shutdown(ctx context.Context) error { return s.mgr.Shutdown(ctx) }

// Stats is the /statsz payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queueDepth"`
	QueueLen      int     `json:"queueLen"`
	// ParallelBudget is the cap on total mining goroutines across jobs;
	// JobParallelism the per-job share each running job may use; GOMAXPROCS
	// the runtime's scheduler width, for judging both against the host.
	ParallelBudget int `json:"parallelBudget"`
	JobParallelism int `json:"jobParallelism"`
	GOMAXPROCS     int `json:"gomaxprocs"`
	// ResidencyBudget is the default per-job memory budget (bytes) for
	// store-backed mines; 0 means unbudgeted jobs run in-core.
	ResidencyBudget int64      `json:"residencyBudget"`
	Running         int64      `json:"running"`
	Submitted       int64      `json:"submitted"`
	Completed       int64      `json:"completed"`
	Failed          int64      `json:"failed"`
	Canceled        int64      `json:"canceled"`
	Rejected        int64      `json:"rejected"`
	Cache           CacheStats `json:"cache"`
	Datasets        int        `json:"datasets"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	m := s.mgr
	return Stats{
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Workers:         m.cfg.Workers,
		QueueDepth:      m.cfg.QueueDepth,
		QueueLen:        m.QueueLen(),
		ParallelBudget:  s.parallelBudget,
		JobParallelism:  s.jobParallelism,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		ResidencyBudget: s.residencyBudget,
		Running:         m.running.Load(),
		Submitted:       m.submitted.Load(),
		Completed:       m.completed.Load(),
		Failed:          m.failed.Load(),
		Canceled:        m.canceled.Load(),
		Rejected:        m.rejected.Load(),
		Cache:           s.cache.Stats(),
		Datasets:        len(s.reg.List()),
	}
}
