package service

import (
	"bytes"
	"errors"
	"testing"

	"repro"
)

// TestServiceMemoryBudgetedJobMatchesInMemory wires the out-of-core path
// end to end: a store-backed job with a tiny memory budget must mine
// out-of-core, report so in its view, and still produce byte-identical
// results to an unbudgeted in-memory service.
func TestServiceMemoryBudgetedJobMatchesInMemory(t *testing.T) {
	d := genDataset(t, 800)
	mem := newTestService(t, Config{Workers: 2, QueueDepth: 16}, 800)
	st := newStoreService(t, t.TempDir(), Config{Workers: 2, QueueDepth: 16})
	if _, err := st.RegisterDataset("t10", "generated", d); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4} {
		req := Request{
			Dataset:      "t10",
			Algorithm:    repro.AlgoEclat,
			SupportCount: 4 + 2*workers, // distinct minsup → every run a cache miss
			Parallelism:  workers,
		}
		want, _ := mineBytes(t, mem, req)
		req.MemoryBudget = 4096 // far below the mapped bundle size
		got, v := mineBytes(t, st, req)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: budgeted store-backed result differs from in-memory", workers)
		}
		if v.MemoryBudget != 4096 {
			t.Fatalf("workers=%d: view budget %d, want 4096", workers, v.MemoryBudget)
		}
		if !v.OutOfCore {
			t.Fatalf("workers=%d: job under a %dB budget did not mine out-of-core", workers, v.MemoryBudget)
		}
	}

	// An unbudgeted job on the same service stays in-core.
	_, v := mineBytes(t, st, Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportCount: 3})
	if v.OutOfCore || v.MemoryBudget != 0 {
		t.Fatalf("unbudgeted job reported budget=%d outOfCore=%v", v.MemoryBudget, v.OutOfCore)
	}
}

// TestServiceResidencyBudgetDefault checks the daemon-level default: a
// service configured with ResidencyBudget applies it to jobs that set no
// budget of their own, and reports it in Stats.
func TestServiceResidencyBudgetDefault(t *testing.T) {
	st := newStoreService(t, t.TempDir(), Config{Workers: 1, QueueDepth: 4, ResidencyBudget: 4096})
	if _, err := st.RegisterDataset("t10", "generated", genDataset(t, 800)); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().ResidencyBudget; got != 4096 {
		t.Fatalf("Stats().ResidencyBudget = %d, want 4096", got)
	}
	_, v := mineBytes(t, st, Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportCount: 4})
	if !v.OutOfCore {
		t.Fatal("job did not inherit the service residency budget")
	}
	if v.MemoryBudget != 4096 {
		t.Fatalf("view budget %d, want the service default 4096", v.MemoryBudget)
	}
}

// TestServiceNegativeMemoryBudgetRejected pins submit-time validation.
func TestServiceNegativeMemoryBudgetRejected(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4}, 100)
	_, err := s.Submit(Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportCount: 2, MemoryBudget: -1})
	if !errors.Is(err, repro.ErrInvalidMemoryBudget) {
		t.Fatalf("negative budget submit: %v, want ErrInvalidMemoryBudget", err)
	}
}

// TestServiceMemoryBudgetSharesCacheEntry pins the cache-key decision: a
// budgeted mine is byte-identical to an in-core one, so both budgets
// share one entry (like parallelism).
func TestServiceMemoryBudgetSharesCacheEntry(t *testing.T) {
	st := newStoreService(t, t.TempDir(), Config{Workers: 1, QueueDepth: 4})
	if _, err := st.RegisterDataset("t10", "generated", genDataset(t, 400)); err != nil {
		t.Fatal(err)
	}
	req := Request{Dataset: "t10", Algorithm: repro.AlgoEclat, SupportCount: 4}
	mineBytes(t, st, req)
	hitsBefore := st.Cache().Stats().Hits
	req.MemoryBudget = 4096
	_, v := mineBytes(t, st, req)
	if st.Cache().Stats().Hits != hitsBefore+1 {
		t.Fatal("budgeted request missed the cache entry of the unbudgeted run")
	}
	// A cache hit never re-mines, so the view reports no out-of-core run.
	if v.OutOfCore {
		t.Fatal("cache hit claims an out-of-core run")
	}
}
