package store

import (
	"os"
	"sort"
	"sync"

	"repro/internal/obsv"
)

// Residency-layer metrics (see /metricsz on the daemon).
const (
	mnStoreEvictions = "store_residency_evictions_total"
	mnStoreSegsMap   = "store_segments_mapped"
	mnStoreMadvise   = "store_madvise_calls_total"
)

var (
	storeEvictions = obsv.Default.Counter(mnStoreEvictions, "bundle segments evicted from residency (budget pressure or class death)")
	storeSegsMap   = obsv.Default.Gauge(mnStoreSegsMap, "bundle segments currently resident under a residency budget")
	storeMadvise   = obsv.Default.Counter(mnStoreMadvise, "madvise hints issued by the residency layer")
)

// Residency tracks which bundle segments a budgeted, class-at-a-time
// mine needs resident, and advises the kernel as segments come alive and
// die. The mapping itself is never split or remapped: "resident" means
// the pages may be faulted in and kept, "evicted" means the pages were
// advised DONTNEED and will refault from the file if touched again, so
// every view over the mapping stays valid at all times — eviction is a
// paging hint, not an invalidation. One Residency serves one mining run;
// it is safe for concurrent Acquire/Release from worker goroutines.
//
// The protocol mirrors the class lifecycle of the engine:
//
//	Plan(classes)      once, before mining: per-class segment needs
//	Acquire(class)     before a class is mined: fault its segments in
//	                   (SEQUENTIAL on a segment's first touch), then
//	                   evict the oldest idle segments past the budget
//	Release(class)     after a class: segments no other pending class
//	                   needs are dead and evicted immediately
//	Done()             once, after mining (any outcome): evict the rest
type Residency struct {
	ds       *Dataset
	budget   int64
	segBytes int64
	pageSize int64
	itemSegs [][]int // per item: segments its record parts touch, sorted

	mu       sync.Mutex
	classes  [][]int // per class (set by Plan): segments needed, sorted
	refs     []int   // per segment: pending classes that still need it
	resident []bool  // per segment: currently counted against the budget
	touched  []bool  // per segment: SEQUENTIAL hint already issued
	order    []int   // resident segments, oldest acquisition first
	inUse    int64   // bytes of resident segments
	done     bool
}

// NewResidency returns a residency tracker enforcing the given byte
// budget over this dataset's mapping, or nil when budgeting is moot:
// budget <= 0, nothing mapped, or the whole mapping already fits the
// budget (the in-core path is strictly better then). For a v1 bundle the
// whole mapping is one segment, so eviction degenerates to
// everything-or-nothing but the accounting still holds.
func (ds *Dataset) NewResidency(budget int64) *Residency {
	mapped := int64(len(ds.data))
	if budget <= 0 || mapped == 0 || mapped <= budget {
		return nil
	}
	segBytes := ds.idx.SegmentBytes
	if segBytes <= 0 {
		segBytes = mapped
	}
	numSegs := int((mapped + segBytes - 1) / segBytes)
	r := &Residency{
		ds:       ds,
		budget:   budget,
		segBytes: segBytes,
		pageSize: int64(os.Getpagesize()),
		itemSegs: make([][]int, ds.idx.Meta.NumItems),
		refs:     make([]int, numSegs),
		resident: make([]bool, numSegs),
		touched:  make([]bool, numSegs),
	}
	for _, rec := range ds.idx.Records {
		segs := r.itemSegs[rec.Item]
		for _, p := range rec.parts() {
			lo := int(p.Offset / segBytes)
			hi := int((p.Offset + recordHeaderSize + paddedLen(p.Length) - 1) / segBytes)
			for s := lo; s <= hi && s < numSegs; s++ {
				segs = append(segs, s)
			}
		}
		r.itemSegs[rec.Item] = dedupSegs(segs)
	}
	return r
}

// dedupSegs sorts segs and drops duplicates in place.
func dedupSegs(segs []int) []int {
	sort.Ints(segs)
	out := segs[:0]
	for i, s := range segs {
		if i == 0 || s != segs[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// ItemSegment returns the first bundle segment holding any record of
// item, or -1 when the item has no stored record. This is the locality
// key the engine sorts class tasks by.
func (r *Residency) ItemSegment(item int) int {
	if item < 0 || item >= len(r.itemSegs) || len(r.itemSegs[item]) == 0 {
		return -1
	}
	return r.itemSegs[item][0]
}

// Plan registers the class → items map of the upcoming run and derives
// per-segment reference counts. Classes are addressed by index in later
// Acquire/Release calls. Plan resets any previous run's bookkeeping
// (resident segments are carried over — they are already paged in).
func (r *Residency) Plan(classes [][]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classes = make([][]int, len(classes))
	r.refs = make([]int, len(r.refs))
	r.done = false
	for ci, items := range classes {
		var segs []int
		for _, it := range items {
			if it >= 0 && it < len(r.itemSegs) {
				segs = append(segs, r.itemSegs[it]...)
			}
		}
		segs = dedupSegs(segs)
		r.classes[ci] = segs
		for _, s := range segs {
			r.refs[s]++
		}
	}
}

// Acquire makes the segments of class ci resident, issuing a SEQUENTIAL
// hint the first time a segment is touched, then evicts the oldest
// resident segments the class does not need until the budget holds
// again. A single class needing more than the budget is allowed to
// overshoot — correctness never depends on the budget, only paging
// behavior does.
func (r *Residency) Acquire(ci int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ci < 0 || ci >= len(r.classes) {
		return
	}
	need := r.classes[ci]
	for _, s := range need {
		if !r.resident[s] {
			r.resident[s] = true
			r.order = append(r.order, s)
			r.inUse += r.segLen(s)
			storeSegsMap.Add(1)
		}
		if !r.touched[s] {
			r.touched[s] = true
			if adviseSequential(r.segPages(s)) {
				storeMadvise.Inc()
			}
		}
	}
	needed := make(map[int]bool, len(need))
	for _, s := range need {
		needed[s] = true
	}
	for i := 0; i < len(r.order) && r.inUse > r.budget; {
		s := r.order[i]
		if needed[s] {
			i++
			continue
		}
		r.evictLocked(s)
	}
}

// Release drops class ci's claims; segments no pending class needs are
// evicted immediately (the DONTNEED-after-class rule).
func (r *Residency) Release(ci int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ci < 0 || ci >= len(r.classes) {
		return
	}
	for _, s := range r.classes[ci] {
		if r.refs[s] > 0 {
			r.refs[s]--
		}
		if r.refs[s] == 0 && r.resident[s] {
			r.evictLocked(s)
		}
	}
	r.classes[ci] = nil
}

// Done evicts everything still resident and retires the run's gauge
// contribution. Idempotent; runs on every exit path of a budgeted mine,
// including error and cancellation.
func (r *Residency) Done() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	r.done = true
	for _, s := range append([]int(nil), r.order...) {
		if r.resident[s] {
			r.evictLocked(s)
		}
	}
	r.classes = nil
}

// ResidentSegments returns how many segments are currently resident.
func (r *Residency) ResidentSegments() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ok := range r.resident {
		if ok {
			n++
		}
	}
	return n
}

// NumSegments returns how many segments the mapping divides into.
func (r *Residency) NumSegments() int { return len(r.resident) }

// SegmentBytes returns the residency granularity in bytes.
func (r *Residency) SegmentBytes() int64 { return r.segBytes }

// evictLocked drops segment s from residency and advises its pages away.
// Caller holds r.mu and has checked r.resident[s].
func (r *Residency) evictLocked(s int) {
	r.resident[s] = false
	r.touched[s] = false
	r.inUse -= r.segLen(s)
	for i, o := range r.order {
		if o == s {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	storeSegsMap.Add(-1)
	storeEvictions.Inc()
	if adviseDontNeed(r.segPages(s)) {
		storeMadvise.Inc()
	}
}

// segLen returns the byte length of segment s (the last segment may be
// short).
func (r *Residency) segLen(s int) int64 {
	lo := int64(s) * r.segBytes
	hi := lo + r.segBytes
	if m := int64(len(r.ds.data)); hi > m {
		hi = m
	}
	return hi - lo
}

// segPages returns the largest page-aligned sub-slice of the mapping
// inside segment s, the unit madvise accepts. The mapping base is
// page-aligned, so rounding the segment's byte offsets inward to page
// multiples yields page-aligned addresses without pointer arithmetic.
// Segments smaller than a page yield nil — no hint is possible without
// touching a neighbor's pages.
func (r *Residency) segPages(s int) []byte {
	lo := int64(s) * r.segBytes
	hi := lo + r.segBytes
	if m := int64(len(r.ds.data)); hi > m {
		hi = m
	}
	lo = (lo + r.pageSize - 1) / r.pageSize * r.pageSize
	hi = hi / r.pageSize * r.pageSize
	if hi <= lo {
		return nil
	}
	return r.ds.data[lo:hi]
}
