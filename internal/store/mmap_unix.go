//go:build unix && !store_nommap

package store

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned cleanup releases
// the mapping; data must not be accessed after calling it. On unix this
// is a real mmap — dataset opens cost page-table setup, not a read of
// the bundle — and the kernel keeps the pages valid even after the
// backing file is unlinked, which is what lets Remove delete a dataset's
// files while mapped views are still referenced.
func mapFile(f *os.File, size int64) (data []byte, cleanup func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
