//go:build unix && !store_nommap

package store

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned cleanup releases
// the mapping; data must not be accessed after calling it. On unix this
// is a real mmap — dataset opens cost page-table setup, not a read of
// the bundle — and the kernel keeps the pages valid even after the
// backing file is unlinked, which is what lets Remove delete a dataset's
// files while mapped views are still referenced.
func mapFile(f *os.File, size int64) (data []byte, cleanup func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}

// adviseSequential hints that b (a page-aligned sub-range of a mapping)
// is about to be read front to back, and reports whether a hint syscall
// was actually issued. Advice is best-effort: errors are dropped.
func adviseSequential(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	return syscall.Madvise(b, syscall.MADV_SEQUENTIAL) == nil
}

// adviseDontNeed tells the kernel the pages backing b (a page-aligned
// sub-range of a read-only MAP_SHARED file mapping) are dead: they may
// be dropped and will refault from the file if touched again. This is
// the eviction primitive of the residency budget — safe here because the
// mapping is read-only and file-backed, so no data is lost. Reports
// whether a hint syscall was actually issued.
func adviseDontNeed(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	return syscall.Madvise(b, syscall.MADV_DONTNEED) == nil
}
