package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tidlist"
)

// createSeg writes a dataset directory with an explicit segment size and
// opens it, failing the test on any error.
func createSeg(t *testing.T, numTx int, segBytes int64) (*Dataset, []tidlist.List) {
	t.Helper()
	d := testDB(t, numTx)
	lists := VerticalLists(d)
	path := filepath.Join(t.TempDir(), "seg"+datasetSuffix)
	if err := CreateDatasetSeg(path, DatasetMeta("seg", "test", d), d, lists, segBytes); err != nil {
		t.Fatalf("CreateDatasetSeg(%d): %v", segBytes, err)
	}
	ds, err := OpenDataset(path)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds, lists
}

// assertSegmented checks the v2 invariants of every record: parts never
// cross a segment boundary, per-record part lengths sum to Length, and
// multi-part records exist at all (the test would be vacuous otherwise).
func assertSegmented(t *testing.T, ds *Dataset, segBytes int64) {
	t.Helper()
	multi := 0
	for _, rec := range ds.idx.Records {
		var sum int64
		for _, p := range rec.parts() {
			if p.Offset%8 != 0 {
				t.Fatalf("item %d: part offset %d not 8-aligned", rec.Item, p.Offset)
			}
			end := p.Offset + recordHeaderSize + paddedLen(p.Length)
			if p.Offset/segBytes != (end-1)/segBytes {
				t.Fatalf("item %d: part [%d,%d) crosses a %d-byte segment boundary",
					rec.Item, p.Offset, end, segBytes)
			}
			sum += p.Length
		}
		if sum != rec.Length {
			t.Fatalf("item %d: part lengths sum to %d, record says %d", rec.Item, sum, rec.Length)
		}
		if len(rec.Parts) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-part records; segment size too large for this dataset to exercise v2")
	}
}

func TestV2MultiSegmentRoundTrip(t *testing.T) {
	const segBytes = 64
	ds, lists := createSeg(t, 300, segBytes)
	if ds.SegmentBytes() != segBytes {
		t.Fatalf("SegmentBytes() = %d, want %d", ds.SegmentBytes(), segBytes)
	}
	assertSegmented(t, ds, segBytes)
	// Partitioned payloads reassemble losslessly into the same tid-lists.
	assertListsEqual(t, ds.SparseLists(), lists)
}

func TestV1BackwardCompat(t *testing.T) {
	// segmentBytes == 0 writes the legacy unsegmented format: version-1
	// header, no parts anywhere, and it opens like any pre-v2 dataset.
	ds, lists := createSeg(t, 200, 0)
	if ds.SegmentBytes() != 0 {
		t.Fatalf("SegmentBytes() = %d, want 0", ds.SegmentBytes())
	}
	if v := ds.data[4]; v != bundleVersion {
		t.Fatalf("bundle header version %d, want %d", v, bundleVersion)
	}
	for _, rec := range ds.idx.Records {
		if len(rec.Parts) != 0 {
			t.Fatalf("item %d: v1 bundle has a partitioned record", rec.Item)
		}
	}
	assertListsEqual(t, ds.SparseLists(), lists)
}

func TestCreateDatasetSegRejectsBadSizes(t *testing.T) {
	d := testDB(t, 20)
	lists := VerticalLists(d)
	for _, bad := range []int64{-8, 4, 12, recordHeaderSize, recordHeaderSize + 4} {
		path := filepath.Join(t.TempDir(), "bad"+datasetSuffix)
		if err := CreateDatasetSeg(path, DatasetMeta("bad", "test", d), d, lists, bad); err == nil {
			t.Errorf("CreateDatasetSeg accepted segment size %d", bad)
		}
	}
}

func TestV2TornTailInsideSegment(t *testing.T) {
	// A crashed spill can leave a torn tail that starts mid-segment and
	// bleeds into the next one. Open must truncate it back to the
	// committed extent and every partitioned record must still verify.
	const segBytes = 64
	ds, lists := createSeg(t, 250, segBytes)
	dir := ds.dir
	ds.Close()

	bp := filepath.Join(dir, bundleName)
	fi, err := os.Stat(bp)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size()%segBytes == 0 {
		t.Skip("committed extent ends exactly on a segment boundary; torn tail would not be mid-segment")
	}
	f, err := os.OpenFile(bp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 3*segBytes/2) // spans the boundary into the next segment
	for i := range garbage {
		garbage[i] = 0xa5
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ds2, err := OpenDataset(dir)
	if err != nil {
		t.Fatalf("open with torn mid-segment tail: %v", err)
	}
	defer ds2.Close()
	assertListsEqual(t, ds2.SparseLists(), lists)
	fi, err = os.Stat(bp)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != ds2.idx.BundleBytes {
		t.Fatalf("torn tail not truncated: %d bytes on disk, %d committed", fi.Size(), ds2.idx.BundleBytes)
	}
}

func TestV2SegmentedSpillAppend(t *testing.T) {
	const segBytes = 64
	ds, lists := createSeg(t, 200, segBytes)

	bs := make([]*tidlist.Bitset, len(lists))
	for item, l := range lists {
		if len(l) == 0 {
			continue
		}
		bs[item] = new(tidlist.Bitset)
		bs[item].SetTIDs(l)
	}
	if err := ds.AppendBitsets(bs); err != nil {
		t.Fatalf("AppendBitsets: %v", err)
	}
	// The appended records obey the same segment discipline as the
	// original ones, so the whole grown bundle still partitions cleanly.
	assertSegmented(t, ds, segBytes)

	ds2, err := OpenDataset(ds.dir)
	if err != nil {
		t.Fatalf("reopen after segmented spill: %v", err)
	}
	defer ds2.Close()
	stored, ok := ds2.Bitsets()
	if !ok {
		t.Fatal("reopened dataset is missing spilled bitsets")
	}
	for item, want := range bs {
		if want == nil {
			continue
		}
		if got := stored[item]; got == nil || got.Support() != want.Support() {
			t.Fatalf("item %d: stored bitset support mismatch", item)
		}
	}
	assertListsEqual(t, ds2.SparseLists(), lists)
}

func TestBytesMappedGaugeReturnsToZero(t *testing.T) {
	baseline := storeBytesMapped.Value()
	root := t.TempDir()
	s, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, ds := registerOne(t, s, "gauge", 150)
	if g := storeBytesMapped.Value(); g <= baseline {
		t.Fatalf("gauge %d after register, want > baseline %d", g, baseline)
	}
	// Remove retires the mapping's gauge contribution even though the
	// orphaned views stay readable until the store closes.
	if err := s.Remove("gauge"); err != nil {
		t.Fatal(err)
	}
	if g := storeBytesMapped.Value(); g != baseline {
		t.Fatalf("gauge %d after Remove, want baseline %d", g, baseline)
	}
	// The eventual Close of the orphan must not double-decrement.
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if g := storeBytesMapped.Value(); g != baseline {
		t.Fatalf("gauge %d after orphan Close, want baseline %d (no double decrement)", g, baseline)
	}
}

func TestResidencyLifecycle(t *testing.T) {
	const segBytes = 64
	ds, _ := createSeg(t, 300, segBytes)

	// Budgeting is moot when the whole mapping fits (or no budget given).
	if r := ds.NewResidency(0); r != nil {
		t.Fatal("NewResidency(0) != nil")
	}
	if r := ds.NewResidency(ds.BytesMapped()); r != nil {
		t.Fatal("NewResidency(whole mapping) != nil")
	}

	r := ds.NewResidency(2 * segBytes)
	if r == nil {
		t.Fatal("NewResidency(2 segments) = nil")
	}
	if r.NumSegments() < 3 {
		t.Fatalf("only %d segments; dataset too small to exercise eviction", r.NumSegments())
	}
	if r.SegmentBytes() != segBytes {
		t.Fatalf("SegmentBytes() = %d, want %d", r.SegmentBytes(), segBytes)
	}

	// Two classes over disjoint-ish item sets.
	items := []int{}
	for it := range ds.sparse {
		if len(ds.sparse[it]) > 0 {
			items = append(items, it)
		}
	}
	if len(items) < 4 {
		t.Fatalf("only %d non-empty items", len(items))
	}
	if s := r.ItemSegment(items[0]); s < 0 {
		t.Fatalf("ItemSegment(%d) = %d for a stored item", items[0], s)
	}
	if s := r.ItemSegment(len(ds.sparse) + 7); s != -1 {
		t.Fatalf("ItemSegment(out of range) = %d, want -1", s)
	}

	evictionsBefore := storeEvictions.Value()
	half := len(items) / 2
	r.Plan([][]int{items[:half], items[half:]})
	r.Acquire(0)
	if n := r.ResidentSegments(); n == 0 {
		t.Fatal("no segments resident after Acquire")
	}
	r.Release(0)
	r.Acquire(1)
	r.Release(1)
	// Every class released its claims, so class-death eviction has
	// dropped everything.
	if n := r.ResidentSegments(); n != 0 {
		t.Fatalf("%d segments resident after releasing every class", n)
	}
	if storeEvictions.Value() == evictionsBefore {
		t.Fatal("eviction counter did not advance")
	}
	// Done is idempotent and leaves nothing resident on any path.
	r.Done()
	r.Done()
	if n := r.ResidentSegments(); n != 0 {
		t.Fatalf("%d segments resident after Done", n)
	}
}

func TestResidencyBudgetEvictsOldest(t *testing.T) {
	const segBytes = 64
	ds, _ := createSeg(t, 300, segBytes)
	r := ds.NewResidency(segBytes) // one-segment budget
	if r == nil {
		t.Fatal("NewResidency = nil")
	}
	// One single-item class per stored item: acquiring them one after
	// another (holding each, as the sequential driver does) must keep
	// residency near the budget by evicting the previous class's idle
	// segments.
	var classes [][]int
	for it := range ds.sparse {
		if len(ds.sparse[it]) > 0 {
			classes = append(classes, []int{it})
		}
	}
	r.Plan(classes)
	maxResident := 0
	for ci := range classes {
		r.Acquire(ci)
		if n := r.ResidentSegments(); n > maxResident {
			maxResident = n
		}
		r.Release(ci)
	}
	// A single class may legitimately overshoot the budget (its own
	// segments are never evicted under it), but residency must not grow
	// with the number of classes.
	limit := 0
	for _, c := range classes {
		if n := len(r.itemSegs[c[0]]); n > limit {
			limit = n
		}
	}
	if maxResident > limit {
		t.Fatalf("residency climbed to %d segments; largest single class needs %d", maxResident, limit)
	}
	r.Done()
	if _, err := os.Stat(filepath.Join(ds.dir, bundleName)); err != nil {
		t.Fatal(err)
	}
	// Eviction is a paging hint, not an invalidation: views read fine
	// after everything was advised away.
	if errors.Is(checkBundleHeader(ds.data), ErrCorruptBundle) {
		t.Fatal("mapping unreadable after eviction")
	}
}
