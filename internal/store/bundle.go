// Package store is the persistent vertical dataset store: pack-style
// append-only bundle files holding the tid-lists of every item in a
// dataset, a JSON index mapping item → bundle record, and mmap-backed
// reads that expose stored tid-lists directly as tidlist.Sets without
// copying. Registration is crash-safe — datasets are written under a
// temporary name, fsynced, and atomically renamed into place — and a
// torn tail from an interrupted spill append is truncated on open, while
// corruption inside the committed extent surfaces as ErrCorruptBundle.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Bundle file layout (all integers little-endian):
//
//	header   magic uint32 | version uint32 | reserved uint64     (16 B)
//	record   item uint32 | enc uint32 | support uint32 |
//	         payloadLen uint32 | crc uint32 | pad uint32         (24 B)
//	         payload (payloadLen bytes, zero-padded to 8 B)
//	record   ...
//
// Records are padded to 8-byte boundaries so every payload starts
// 8-aligned, which keeps bitset words 8-aligned and sparse tids
// 4-aligned inside the mapping — the precondition for the zero-copy
// decoders in internal/tidlist. The crc is crc32.IEEE over the first 16
// header bytes and the unpadded payload, so a torn or bit-flipped record
// is detected before its bytes are ever aliased as a Set.
//
// Version 2 adds partitioned records: the bundle is laid out in
// fixed-size segments (index.segmentBytes, a multiple of 8), no physical
// record crosses a segment boundary, and one logical tid-list may be
// split across several physical part records — each with its own header
// and crc over its own chunk — listed in the index entry's parts. The
// gap a part too small to be useful would leave before a boundary is
// zero-filled and belongs to no record. Segments are the unit of the
// residency budget: a segment can be advised in or out of memory without
// tearing any record that lives in another segment.
const (
	bundleMagic      = 0x5ec10db5
	bundleVersion    = 1
	bundleVersion2   = 2
	bundleHeaderSize = 16
	recordHeaderSize = 24
)

// Tid-list encodings stored in bundle records.
const (
	// EncSparse is the canonical encoding: sorted tids, 4 bytes each.
	EncSparse = 1
	// EncBitset is the spilled dense encoding: base+count header then
	// 64-bit words (see tidlist.AppendBitsetBytes).
	EncBitset = 2
	// EncRoaring is the spilled containerized encoding: count/container
	// header, per-container descriptors, then 8-byte-padded container
	// payloads (see tidlist.AppendRoaringBytes). Record payloads start
	// 8-aligned in the mapping, so decoded containers alias the mapped
	// bytes zero-copy.
	EncRoaring = 3
)

// ErrCorruptBundle reports a checksum, bound, or header mismatch inside
// the committed extent of a bundle. Callers detect it with errors.Is;
// Open treats it as "skip this dataset with a warning", never a crash.
var ErrCorruptBundle = errors.New("store: corrupt bundle")

// Record locates one tid-list inside the bundle, as serialized into the
// dataset index.
type Record struct {
	// Item is the item whose tid-list this record holds.
	Item int `json:"item"`
	// Enc is EncSparse, EncBitset or EncRoaring.
	Enc int `json:"enc"`
	// Support is the tid count, duplicated from the payload so support
	// queries never touch the bundle.
	Support int `json:"support"`
	// Offset is the file offset of the record header. For a partitioned
	// record (len(Parts) > 1) it is the offset of the first part.
	Offset int64 `json:"offset"`
	// Length is the unpadded payload length in bytes, summed over parts
	// for a partitioned record.
	Length int64 `json:"length"`
	// Parts lists the physical part records of a partitioned (v2)
	// tid-list, in payload order. Empty for a single-part record, whose
	// sole implicit part is described by Offset/Length — the v1 shape.
	Parts []Part `json:"parts,omitempty"`
}

// Part locates one physical part record of a partitioned tid-list. Each
// part carries the full 24-byte record header and its own crc over its
// own payload chunk, so parts verify independently.
type Part struct {
	// Offset is the file offset of the part's record header.
	Offset int64 `json:"offset"`
	// Length is the unpadded length of this part's payload chunk.
	Length int64 `json:"length"`
}

// parts returns the physical part records backing r: the explicit Parts
// of a partitioned record, or the one implicit part of a v1-shaped one.
func (r Record) parts() []Part {
	if len(r.Parts) > 0 {
		return r.Parts
	}
	return []Part{{Offset: r.Offset, Length: r.Length}}
}

// paddedLen rounds a payload length up to the 8-byte record alignment.
func paddedLen(n int64) int64 { return (n + 7) &^ 7 }

// end returns the file offset one past the record's last padded payload.
func (r Record) end() int64 {
	ps := r.parts()
	p := ps[len(ps)-1]
	return p.Offset + recordHeaderSize + paddedLen(p.Length)
}

// appendBundleHeader appends the 16-byte bundle file header.
func appendBundleHeader(dst []byte, version uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, bundleMagic)
	dst = binary.LittleEndian.AppendUint32(dst, version)
	return binary.LittleEndian.AppendUint64(dst, 0)
}

// checkBundleHeader validates the mapped file's magic and version.
func checkBundleHeader(b []byte) error {
	if len(b) < bundleHeaderSize {
		return fmt.Errorf("%w: %d-byte file is shorter than the header", ErrCorruptBundle, len(b))
	}
	if m := binary.LittleEndian.Uint32(b); m != bundleMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrCorruptBundle, m)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != bundleVersion && v != bundleVersion2 {
		return fmt.Errorf("%w: unsupported format version %d", ErrCorruptBundle, v)
	}
	return nil
}

// appendPartRecord appends one physical record (header, payload chunk,
// padding) to dst. It is the shared body of appendRecord and the
// segmented writer.
func appendPartRecord(dst []byte, item, enc int, support int, payload []byte) []byte {
	hdr := make([]byte, 0, recordHeaderSize)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(item))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(enc))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(support))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(payload)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc.Sum32())
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)
	dst = append(dst, hdr...)
	dst = append(dst, payload...)
	for i := int64(len(payload)); i < paddedLen(int64(len(payload))); i++ {
		dst = append(dst, 0)
	}
	return dst
}

// appendRecord appends a full record (header, payload, padding) for the
// given item/encoding at the current end of dst and returns the extended
// buffer plus the index entry describing it. offset is the file offset
// dst's end corresponds to.
func appendRecord(dst []byte, offset int64, item, enc int, support int, payload []byte) ([]byte, Record) {
	rec := Record{Item: item, Enc: enc, Support: support, Offset: offset, Length: int64(len(payload))}
	return appendPartRecord(dst, item, enc, support, payload), rec
}

// appendRecordSeg appends a record under the v2 segment discipline: no
// physical part record crosses a multiple-of-segBytes file boundary.
// When the payload does not fit the current segment it is split into
// per-segment part records, and a segment remainder too small to hold a
// useful part (header plus 8 payload bytes) is zero-filled. segBytes
// must be a positive multiple of 8; segBytes <= 0 falls back to the
// unsegmented v1 writer. offset is the file offset dst's end corresponds
// to, as for appendRecord.
func appendRecordSeg(dst []byte, offset int64, segBytes int64, item, enc int, support int, payload []byte) ([]byte, Record) {
	if segBytes <= 0 {
		return appendRecord(dst, offset, item, enc, support, payload)
	}
	base := offset - int64(len(dst))
	rec := Record{Item: item, Enc: enc, Support: support, Length: int64(len(payload))}
	remaining := payload
	for first := true; first || len(remaining) > 0; first = false {
		pos := base + int64(len(dst))
		room := segBytes - pos%segBytes
		if room < recordHeaderSize+8 {
			for i := int64(0); i < room; i++ {
				dst = append(dst, 0)
			}
			room = segBytes
		}
		// room-recordHeaderSize rounded down to 8 keeps the padded part
		// inside the segment and every later part header 8-aligned.
		chunkCap := (room - recordHeaderSize) &^ 7
		chunk := remaining
		if int64(len(chunk)) > chunkCap {
			chunk, remaining = chunk[:chunkCap], remaining[chunkCap:]
		} else {
			remaining = nil
		}
		partOff := base + int64(len(dst))
		dst = appendPartRecord(dst, item, enc, support, chunk)
		rec.Parts = append(rec.Parts, Part{Offset: partOff, Length: int64(len(chunk))})
	}
	// A record that fit one segment keeps the v1 single-part index shape
	// so it still decodes zero-copy.
	if len(rec.Parts) == 1 {
		rec.Offset, rec.Length, rec.Parts = rec.Parts[0].Offset, rec.Parts[0].Length, nil
	} else {
		rec.Offset = rec.Parts[0].Offset
	}
	return dst, rec
}

// partPayload bounds-checks and checksum-verifies one physical part
// record of r inside the mapped bundle b and returns its payload chunk
// as a view over b.
func partPayload(b []byte, r Record, p Part) ([]byte, error) {
	end := p.Offset + recordHeaderSize + paddedLen(p.Length)
	if p.Offset < bundleHeaderSize || p.Offset%8 != 0 || p.Length < 0 || end > int64(len(b)) {
		return nil, fmt.Errorf("%w: record for item %d at [%d,%d) outside committed extent %d",
			ErrCorruptBundle, r.Item, p.Offset, end, len(b))
	}
	hdr := b[p.Offset : p.Offset+recordHeaderSize]
	if int(binary.LittleEndian.Uint32(hdr)) != r.Item ||
		int(binary.LittleEndian.Uint32(hdr[4:])) != r.Enc ||
		int(binary.LittleEndian.Uint32(hdr[8:])) != r.Support ||
		int64(binary.LittleEndian.Uint32(hdr[12:])) != p.Length {
		return nil, fmt.Errorf("%w: record header for item %d disagrees with index", ErrCorruptBundle, r.Item)
	}
	payload := b[p.Offset+recordHeaderSize : p.Offset+recordHeaderSize+p.Length]
	crc := crc32.NewIEEE()
	crc.Write(hdr[:16])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(hdr[16:]) {
		return nil, fmt.Errorf("%w: checksum mismatch for item %d", ErrCorruptBundle, r.Item)
	}
	return payload, nil
}

// recordPayload bounds-checks and checksum-verifies the record r inside
// the mapped bundle b and returns its unpadded payload. Single-part
// records return a zero-copy view over b; partitioned records verify
// every part and concatenate the chunks into an owned 8-aligned buffer
// (Go allocations of >= 8 bytes satisfy the tidlist decoders' alignment
// precondition).
func recordPayload(b []byte, r Record) ([]byte, error) {
	if len(r.Parts) == 0 {
		return partPayload(b, r, Part{Offset: r.Offset, Length: r.Length})
	}
	var total int64
	for _, p := range r.Parts {
		if p.Length < 0 {
			return nil, fmt.Errorf("%w: negative part length for item %d", ErrCorruptBundle, r.Item)
		}
		total += p.Length
	}
	if total != r.Length {
		return nil, fmt.Errorf("%w: part lengths for item %d sum to %d, index says %d",
			ErrCorruptBundle, r.Item, total, r.Length)
	}
	out := make([]byte, 0, total)
	for _, p := range r.Parts {
		pl, err := partPayload(b, r, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pl...)
	}
	return out, nil
}
