// Package store is the persistent vertical dataset store: pack-style
// append-only bundle files holding the tid-lists of every item in a
// dataset, a JSON index mapping item → bundle record, and mmap-backed
// reads that expose stored tid-lists directly as tidlist.Sets without
// copying. Registration is crash-safe — datasets are written under a
// temporary name, fsynced, and atomically renamed into place — and a
// torn tail from an interrupted spill append is truncated on open, while
// corruption inside the committed extent surfaces as ErrCorruptBundle.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Bundle file layout (all integers little-endian):
//
//	header   magic uint32 | version uint32 | reserved uint64     (16 B)
//	record   item uint32 | enc uint32 | support uint32 |
//	         payloadLen uint32 | crc uint32 | pad uint32         (24 B)
//	         payload (payloadLen bytes, zero-padded to 8 B)
//	record   ...
//
// Records are padded to 8-byte boundaries so every payload starts
// 8-aligned, which keeps bitset words 8-aligned and sparse tids
// 4-aligned inside the mapping — the precondition for the zero-copy
// decoders in internal/tidlist. The crc is crc32.IEEE over the first 16
// header bytes and the unpadded payload, so a torn or bit-flipped record
// is detected before its bytes are ever aliased as a Set.
const (
	bundleMagic      = 0x5ec10db5
	bundleVersion    = 1
	bundleHeaderSize = 16
	recordHeaderSize = 24
)

// Tid-list encodings stored in bundle records.
const (
	// EncSparse is the canonical encoding: sorted tids, 4 bytes each.
	EncSparse = 1
	// EncBitset is the spilled dense encoding: base+count header then
	// 64-bit words (see tidlist.AppendBitsetBytes).
	EncBitset = 2
	// EncRoaring is the spilled containerized encoding: count/container
	// header, per-container descriptors, then 8-byte-padded container
	// payloads (see tidlist.AppendRoaringBytes). Record payloads start
	// 8-aligned in the mapping, so decoded containers alias the mapped
	// bytes zero-copy.
	EncRoaring = 3
)

// ErrCorruptBundle reports a checksum, bound, or header mismatch inside
// the committed extent of a bundle. Callers detect it with errors.Is;
// Open treats it as "skip this dataset with a warning", never a crash.
var ErrCorruptBundle = errors.New("store: corrupt bundle")

// Record locates one tid-list inside the bundle, as serialized into the
// dataset index.
type Record struct {
	// Item is the item whose tid-list this record holds.
	Item int `json:"item"`
	// Enc is EncSparse, EncBitset or EncRoaring.
	Enc int `json:"enc"`
	// Support is the tid count, duplicated from the payload so support
	// queries never touch the bundle.
	Support int `json:"support"`
	// Offset is the file offset of the record header.
	Offset int64 `json:"offset"`
	// Length is the unpadded payload length in bytes.
	Length int64 `json:"length"`
}

// paddedLen rounds a payload length up to the 8-byte record alignment.
func paddedLen(n int64) int64 { return (n + 7) &^ 7 }

// end returns the file offset one past the record's padded payload.
func (r Record) end() int64 { return r.Offset + recordHeaderSize + paddedLen(r.Length) }

// appendBundleHeader appends the 16-byte bundle file header.
func appendBundleHeader(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, bundleMagic)
	dst = binary.LittleEndian.AppendUint32(dst, bundleVersion)
	return binary.LittleEndian.AppendUint64(dst, 0)
}

// checkBundleHeader validates the mapped file's magic and version.
func checkBundleHeader(b []byte) error {
	if len(b) < bundleHeaderSize {
		return fmt.Errorf("%w: %d-byte file is shorter than the header", ErrCorruptBundle, len(b))
	}
	if m := binary.LittleEndian.Uint32(b); m != bundleMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrCorruptBundle, m)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != bundleVersion {
		return fmt.Errorf("%w: unsupported format version %d", ErrCorruptBundle, v)
	}
	return nil
}

// appendRecord appends a full record (header, payload, padding) for the
// given item/encoding at the current end of dst and returns the extended
// buffer plus the index entry describing it. offset is the file offset
// dst's end corresponds to.
func appendRecord(dst []byte, offset int64, item, enc int, support int, payload []byte) ([]byte, Record) {
	rec := Record{Item: item, Enc: enc, Support: support, Offset: offset, Length: int64(len(payload))}
	hdr := make([]byte, 0, recordHeaderSize)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(item))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(enc))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(support))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(payload)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc.Sum32())
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)
	dst = append(dst, hdr...)
	dst = append(dst, payload...)
	for i := int64(len(payload)); i < paddedLen(int64(len(payload))); i++ {
		dst = append(dst, 0)
	}
	return dst, rec
}

// recordPayload bounds-checks and checksum-verifies the record r inside
// the mapped bundle b and returns its unpadded payload as a view over b.
func recordPayload(b []byte, r Record) ([]byte, error) {
	if r.Offset < bundleHeaderSize || r.Offset%8 != 0 || r.Length < 0 || r.end() > int64(len(b)) {
		return nil, fmt.Errorf("%w: record for item %d at [%d,%d) outside committed extent %d",
			ErrCorruptBundle, r.Item, r.Offset, r.end(), len(b))
	}
	hdr := b[r.Offset : r.Offset+recordHeaderSize]
	if int(binary.LittleEndian.Uint32(hdr)) != r.Item ||
		int(binary.LittleEndian.Uint32(hdr[4:])) != r.Enc ||
		int(binary.LittleEndian.Uint32(hdr[8:])) != r.Support ||
		int64(binary.LittleEndian.Uint32(hdr[12:])) != r.Length {
		return nil, fmt.Errorf("%w: record header for item %d disagrees with index", ErrCorruptBundle, r.Item)
	}
	payload := b[r.Offset+recordHeaderSize : r.Offset+recordHeaderSize+r.Length]
	crc := crc32.NewIEEE()
	crc.Write(hdr[:16])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(hdr[16:]) {
		return nil, fmt.Errorf("%w: checksum mismatch for item %d", ErrCorruptBundle, r.Item)
	}
	return payload, nil
}
