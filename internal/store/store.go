package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/db"
	"repro/internal/tidlist"
)

// ErrDatasetExists is returned by Register when the store already holds
// a dataset with that name.
var ErrDatasetExists = errors.New("store: dataset already exists")

// ErrNotFound is returned by Get and Remove for names the store does not
// hold.
var ErrNotFound = errors.New("store: dataset not found")

// Store manages a root directory of dataset directories
// (<root>/<name>.ds). Open sweeps crash leftovers and maps every healthy
// dataset; corrupt ones are skipped with a warning instead of failing
// the whole store, so one bad dataset can never keep a daemon from
// starting.
type Store struct {
	root string
	logf func(format string, args ...any)

	mu sync.Mutex
	ds map[string]*Dataset
	// orphans are removed datasets whose mappings stay alive until Close:
	// views handed out before Remove must outlive the unlink (safe on
	// unix, where the kernel keeps unlinked mapped pages valid).
	orphans []*Dataset
}

// Open opens (creating if needed) the store rooted at root. logf
// receives warnings about skipped corrupt datasets; nil discards them.
func Open(root string, logf func(format string, args ...any)) (*Store, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	s := &Store{root: root, logf: logf, ds: make(map[string]*Dataset)}

	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(e.Name(), partialSuffix):
			// A crashed registration never published; sweep it.
			if err := os.RemoveAll(filepath.Join(root, e.Name())); err != nil {
				return nil, err
			}
		case strings.HasSuffix(e.Name(), datasetSuffix):
			name := strings.TrimSuffix(e.Name(), datasetSuffix)
			ds, err := OpenDataset(filepath.Join(root, e.Name()))
			if err != nil {
				if errors.Is(err, ErrCorruptBundle) || errors.Is(err, fs.ErrNotExist) {
					logf("store: skipping dataset %q: %v", name, err)
					continue
				}
				s.Close()
				return nil, fmt.Errorf("store: open dataset %q: %w", name, err)
			}
			if ds.Meta().Name != name {
				logf("store: skipping dataset %q: index names it %q", name, ds.Meta().Name)
				ds.Close()
				continue
			}
			s.ds[name] = ds
		}
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Names returns the stored dataset names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.ds))
	for n := range s.ds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the opened dataset for name, or ErrNotFound.
func (s *Store) Get(name string) (*Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.ds[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return ds, nil
}

// Register persists meta/d/lists as a new dataset directory (crash-safe:
// staged under a partial name, fsynced, atomically renamed) and returns
// it opened for reading. The returned dataset serves views over the
// freshly written bundle, so registration immediately switches callers
// to the same mapped path a restart would use.
func (s *Store) Register(meta Meta, d *db.Database, lists []tidlist.List) (*Dataset, error) {
	if err := validName(meta.Name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ds[meta.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDatasetExists, meta.Name)
	}
	path := filepath.Join(s.root, meta.Name+datasetSuffix)
	if err := CreateDataset(path, meta, d, lists); err != nil {
		return nil, err
	}
	ds, err := OpenDataset(path)
	if err != nil {
		return nil, err
	}
	s.ds[meta.Name] = ds
	return ds, nil
}

// Remove deletes name's dataset directory. The mapping is intentionally
// left alive until Close so views already handed out stay valid; on unix
// the unlinked files' pages remain readable through the mapping.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.ds[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err := os.RemoveAll(filepath.Join(s.root, name+datasetSuffix)); err != nil {
		return err
	}
	delete(s.ds, name)
	// The orphaned mapping stays alive until Close so outstanding views
	// keep working, but a removed dataset no longer counts as mapped
	// store footprint.
	ds.releaseMapped()
	s.orphans = append(s.orphans, ds)
	return syncDir(s.root)
}

// Close unmaps every dataset, including ones removed earlier. All views
// become invalid.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, ds := range s.ds {
		if err := ds.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, ds := range s.orphans {
		if err := ds.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.ds, s.orphans = map[string]*Dataset{}, nil
	return first
}

// validName rejects names that would escape the root or collide with the
// store's suffix conventions.
func validName(name string) error {
	if name == "" || name != filepath.Base(name) || strings.ContainsAny(name, "/\\") ||
		name == "." || name == ".." || strings.Contains(name, datasetSuffix) {
		return fmt.Errorf("store: invalid dataset name %q", name)
	}
	return nil
}
