package store

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/eclat"
	"repro/internal/testutil"
	"repro/internal/tidlist"
)

// benchDataset persists one generated dataset under dir and returns its
// path plus the source database.
func benchDataset(b *testing.B, dir string, numTx int) (string, *db.Database) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(numTx)))
	d := testutil.RandomDB(rng, numTx, 60, 10)
	path := filepath.Join(dir, fmt.Sprintf("bench%d.ds", numTx))
	meta := DatasetMeta(fmt.Sprintf("bench%d", numTx), "bench", d)
	if err := CreateDataset(path, meta, d, VerticalLists(d)); err != nil {
		b.Fatal(err)
	}
	return path, d
}

// BenchmarkStoreOpen compares the three ways a process comes to hold a
// dataset's vertical transform: a cold open of the stored bundle (index
// load, mmap, checksum verify of every record), an in-memory rebuild
// from horizontal data (what every daemon start paid before the store),
// and a warm view build over an already-open mapping.
func BenchmarkStoreOpen(b *testing.B) {
	for _, numTx := range []int{2000, 10000, 50000} {
		dir := b.TempDir()
		path, d := benchDataset(b, dir, numTx)

		b.Run(fmt.Sprintf("n=%d/mode=cold", numTx), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ds, err := OpenDataset(path)
				if err != nil {
					b.Fatal(err)
				}
				ds.Close()
			}
		})
		b.Run(fmt.Sprintf("n=%d/mode=rebuild", numTx), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if lists := VerticalLists(d); len(lists) == 0 {
					b.Fatal("empty transform")
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/mode=warm", numTx), func(b *testing.B) {
			ds, err := OpenDataset(path)
			if err != nil {
				b.Fatal(err)
			}
			defer ds.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sets := ds.Sets(tidlist.ReprSparse); len(sets) == 0 {
					b.Fatal("empty sets")
				}
			}
		})
	}
}

// BenchmarkStoreMine compares one full Eclat mine from the mmap store
// (vertical path, zero horizontal scans) against the same mine from
// heap-resident horizontal data (including its transformation phase).
func BenchmarkStoreMine(b *testing.B) {
	for _, numTx := range []int{2000, 10000, 50000} {
		dir := b.TempDir()
		path, d := benchDataset(b, dir, numTx)
		minsup := numTx / 50

		b.Run(fmt.Sprintf("n=%d/source=store", numTx), func(b *testing.B) {
			ds, err := OpenDataset(path)
			if err != nil {
				b.Fatal(err)
			}
			defer ds.Close()
			in := eclat.VerticalInput{NumTransactions: numTx, Items: ds.Sets(tidlist.ReprSparse)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _, err := eclat.MineVerticalLocal(context.Background(), in, minsup, eclat.Options{Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() == 0 {
					b.Fatal("no itemsets")
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/source=heap", numTx), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, _ := eclat.MineSequential(d, minsup)
				if res.Len() == 0 {
					b.Fatal("no itemsets")
				}
			}
		})
	}
}

// BenchmarkStoreMineOOC measures what a residency budget costs: the same
// store-backed mine as BenchmarkStoreMine, with the budget set to a
// fraction of the mapped bundle. At budget=100 the whole mapping fits,
// NewResidency declines, and the run is the unbudgeted in-core baseline
// through the identical harness; 25 and 50 mine out-of-core with
// per-class residency windows and locality-ordered classes.
func BenchmarkStoreMineOOC(b *testing.B) {
	for _, numTx := range []int{10000, 50000} {
		rng := rand.New(rand.NewSource(int64(numTx)))
		d := testutil.RandomDB(rng, numTx, 60, 10)
		minsup := numTx / 50
		// Persist with segments small enough that a fractional budget
		// spans many of them (the default 1 MiB segment would make these
		// bench-scale bundles a single segment).
		segPath := filepath.Join(b.TempDir(), fmt.Sprintf("seg%d.ds", numTx))
		meta := DatasetMeta(fmt.Sprintf("seg%d", numTx), "bench", d)
		if err := CreateDatasetSeg(segPath, meta, d, VerticalLists(d), 1<<14); err != nil {
			b.Fatal(err)
		}

		ds, err := OpenDataset(segPath)
		if err != nil {
			b.Fatal(err)
		}
		defer ds.Close()
		mapped := ds.BytesMapped()

		for _, pct := range []int64{25, 50, 100} {
			budget := mapped * pct / 100
			b.Run(fmt.Sprintf("n=%d/budget=%d", numTx, pct), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					in := eclat.VerticalInput{NumTransactions: numTx, Items: ds.Sets(tidlist.ReprSparse)}
					// Typed-nil guard: only a usable tracker goes into the
					// interface field; at 100% NewResidency declines and the
					// run is the in-core baseline.
					if r := ds.NewResidency(budget); r != nil {
						in.Residency = r
					}
					res, _, err := eclat.MineVerticalLocal(context.Background(), in, minsup, eclat.Options{Workers: 1})
					if err != nil {
						b.Fatal(err)
					}
					if res.Len() == 0 {
						b.Fatal("no itemsets")
					}
				}
			})
		}
	}
}
