//go:build !unix || store_nommap

package store

import (
	"io"
	"os"
)

// mapFile reads size bytes of f into memory on platforms without mmap
// support (or anywhere under -tags store_nommap, which is how CI
// exercises this path on linux). Views decoded from the buffer behave
// identically to mapped views (immutable, alive until cleanup), they
// just cost a full read at open instead of lazy page faults.
func mapFile(f *os.File, size int64) (data []byte, cleanup func() error, err error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, nil, err
	}
	return b, func() error { return nil }, nil
}

// adviseSequential is a no-op on the decode-copy path: the buffer is
// ordinary heap memory, so there is nothing to hint. The residency
// accounting above this layer behaves identically either way.
func adviseSequential([]byte) bool { return false }

// adviseDontNeed is a no-op on the decode-copy path; eviction is pure
// bookkeeping without a mapping to release.
func adviseDontNeed([]byte) bool { return false }
