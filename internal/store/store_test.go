package store

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/testutil"
	"repro/internal/tidlist"
)

func testDB(t *testing.T, numTx int) *db.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	return testutil.RandomDB(rng, numTx, 40, 8)
}

func registerOne(t *testing.T, s *Store, name string, numTx int) (*db.Database, *Dataset) {
	t.Helper()
	d := testDB(t, numTx)
	ds, err := s.Register(DatasetMeta(name, "test", d), d, VerticalLists(d))
	if err != nil {
		t.Fatalf("Register(%q): %v", name, err)
	}
	return d, ds
}

func assertListsEqual(t *testing.T, got []tidlist.List, want []tidlist.List) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d lists, want %d", len(got), len(want))
	}
	for item := range want {
		if len(got[item]) != len(want[item]) {
			t.Fatalf("item %d: got %v, want %v", item, got[item], want[item])
		}
		for i := range want[item] {
			if got[item][i] != want[item][i] {
				t.Fatalf("item %d: got %v, want %v", item, got[item], want[item])
			}
		}
	}
}

func TestStoreRegisterOpenRoundTrip(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	d, ds := registerOne(t, s, "rt", 200)
	lists := VerticalLists(d)
	assertListsEqual(t, ds.SparseLists(), lists)
	if _, ok := ds.Bitsets(); ok {
		t.Fatal("fresh dataset claims spilled bitsets")
	}
	if m := ds.Meta(); m.Transactions != d.Len() || m.NumItems != d.NumItems || m.Name != "rt" {
		t.Fatalf("meta %+v does not match database", m)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: same lists, horizontal database intact.
	s2, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ds2, err := s2.Get("rt")
	if err != nil {
		t.Fatal(err)
	}
	assertListsEqual(t, ds2.SparseLists(), lists)
	h, err := ds2.Horizontal()
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != d.Len() || h.NumItems != d.NumItems {
		t.Fatalf("horizontal round trip: %d/%d txs, %d/%d items",
			h.Len(), d.Len(), h.NumItems, d.NumItems)
	}
	for i := range d.Transactions {
		if h.Transactions[i].TID != d.Transactions[i].TID ||
			h.Transactions[i].Items.Key() != d.Transactions[i].Items.Key() {
			t.Fatalf("transaction %d differs after round trip", i)
		}
	}
}

func TestStoreSpillBitsets(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	d, ds := registerOne(t, s, "spill", 150)

	bs := make([]*tidlist.Bitset, d.NumItems)
	for item, l := range VerticalLists(d) {
		if len(l) == 0 {
			continue
		}
		bs[item] = new(tidlist.Bitset)
		bs[item].SetTIDs(l)
	}
	if err := ds.AppendBitsets(bs); err != nil {
		t.Fatalf("AppendBitsets: %v", err)
	}
	// Idempotent: a second spill of the same transform appends nothing.
	before := ds.idx.BundleBytes
	if err := ds.AppendBitsets(bs); err != nil {
		t.Fatal(err)
	}
	if ds.idx.BundleBytes != before {
		t.Fatal("second spill grew the bundle")
	}
	s.Close()

	s2, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ds2, err := s2.Get("spill")
	if err != nil {
		t.Fatal(err)
	}
	stored, ok := ds2.Bitsets()
	if !ok {
		t.Fatal("reopened dataset is missing spilled bitsets")
	}
	for item, want := range bs {
		if want == nil {
			continue
		}
		got := stored[item]
		if got == nil || got.Support() != want.Support() {
			t.Fatalf("item %d: stored bitset %v, want support %d", item, got, want.Support())
		}
		wt, gt := tidlist.TIDsOf(want), tidlist.TIDsOf(got)
		for i := range wt {
			if wt[i] != gt[i] {
				t.Fatalf("item %d: stored tids %v, want %v", item, gt, wt)
			}
		}
	}
	// Sparse lists are untouched by the spill.
	assertListsEqual(t, ds2.SparseLists(), VerticalLists(d))
}

func TestStoreTornTailTruncatedOnOpen(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := registerOne(t, s, "torn", 120)
	s.Close()

	// Simulate a crash mid-spill: bytes past the committed extent with no
	// index pointing at them.
	bp := filepath.Join(root, "torn"+datasetSuffix, bundleName)
	f, err := os.OpenFile(bp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn half-written record bytes")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(root, t.Logf)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	ds, err := s2.Get("torn")
	if err != nil {
		t.Fatal(err)
	}
	assertListsEqual(t, ds.SparseLists(), VerticalLists(d))
	fi, err := os.Stat(bp)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != ds.idx.BundleBytes {
		t.Fatalf("torn tail not truncated: %d bytes on disk, %d committed", fi.Size(), ds.idx.BundleBytes)
	}
}

func TestStoreCorruptChecksumSkippedNotFatal(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	registerOne(t, s, "bad", 120)
	registerOne(t, s, "good", 120)
	s.Close()

	// Flip a payload byte inside the committed extent of "bad".
	bp := filepath.Join(root, "bad"+datasetSuffix, bundleName)
	raw, err := os.ReadFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	raw[bundleHeaderSize+recordHeaderSize] ^= 0xff
	if err := os.WriteFile(bp, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// OpenDataset reports the typed error...
	if _, err := OpenDataset(filepath.Join(root, "bad"+datasetSuffix)); !errors.Is(err, ErrCorruptBundle) {
		t.Fatalf("OpenDataset on corrupt bundle: %v, want ErrCorruptBundle", err)
	}

	// ...and Store.Open logs a warning, skips it, and still serves the
	// healthy dataset.
	var warnings []string
	s2, err := Open(root, func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatalf("store open with one corrupt dataset: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get("bad"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt dataset still served: %v", err)
	}
	if _, err := s2.Get("good"); err != nil {
		t.Fatalf("healthy dataset lost: %v", err)
	}
	if len(warnings) == 0 || !strings.Contains(warnings[0], "bad") {
		t.Fatalf("no warning logged for skipped dataset: %v", warnings)
	}
}

func TestStorePartialSweptOnOpen(t *testing.T) {
	root := t.TempDir()
	leftover := filepath.Join(root, "half"+partialSuffix)
	if err := os.MkdirAll(leftover, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(leftover, bundleName), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(leftover); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("partial directory not swept: %v", err)
	}
	if names := s.Names(); len(names) != 0 {
		t.Fatalf("partial directory surfaced as dataset: %v", names)
	}
}

func TestStoreRemove(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d, ds := registerOne(t, s, "gone", 100)

	lists := ds.SparseLists()
	if err := s.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "gone"+datasetSuffix)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("dataset directory survives Remove: %v", err)
	}
	if _, err := s.Get("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("removed dataset still served: %v", err)
	}
	if err := s.Remove("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Remove: %v, want ErrNotFound", err)
	}
	// Views handed out before Remove stay readable until Close.
	assertListsEqual(t, lists, VerticalLists(d))
}

func TestStoreRegisterDuplicateAndBadNames(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	registerOne(t, s, "dup", 50)
	d := testDB(t, 50)
	if _, err := s.Register(DatasetMeta("dup", "test", d), d, VerticalLists(d)); !errors.Is(err, ErrDatasetExists) {
		t.Fatalf("duplicate Register: %v, want ErrDatasetExists", err)
	}
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, "x.ds"} {
		if _, err := s.Register(DatasetMeta(name, "test", d), d, VerticalLists(d)); err == nil {
			t.Errorf("Register(%q) accepted an unsafe name", name)
		}
	}
}

func TestStoreMissingBundleBytesIsCorrupt(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	registerOne(t, s, "short", 120)
	s.Close()

	// Truncate below the committed extent: index promises bytes the
	// bundle no longer has.
	bp := filepath.Join(root, "short"+datasetSuffix, bundleName)
	fi, err := os.Stat(bp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(bp, fi.Size()-8); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDataset(filepath.Join(root, "short"+datasetSuffix)); !errors.Is(err, ErrCorruptBundle) {
		t.Fatalf("short bundle: %v, want ErrCorruptBundle", err)
	}
}
