package store

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"

	"repro/internal/itemset"
	"repro/internal/tidlist"
)

// fuzzTIDs decodes raw fuzz bytes into a sorted duplicate-free tid-list
// over a universe picked by sel, so the fuzzer reaches both the sparse
// and dense record encodings with realistic and degenerate shapes alike.
func fuzzTIDs(raw []byte, sel uint8) tidlist.List {
	universe := uint32(64) << (sel % 11)
	seen := map[itemset.TID]bool{}
	for i := 0; i+1 < len(raw); i += 2 {
		v := uint32(binary.LittleEndian.Uint16(raw[i:]))
		seen[itemset.TID(v%universe)] = true
	}
	out := make(tidlist.List, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FuzzBundleRoundTrip proves the on-disk record format is lossless and
// deterministic for both encodings: encode → decode → re-encode is
// byte-identical, the decoded sets carry the same tids, and the checksum
// accepts exactly the bytes that were written.
func FuzzBundleRoundTrip(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3, 0}, uint8(0), uint16(7))
	f.Add([]byte{}, uint8(3), uint16(0))
	f.Add([]byte{255, 255, 0, 0, 9, 2}, uint8(10), uint16(12345))
	f.Fuzz(func(t *testing.T, raw []byte, sel uint8, item16 uint16) {
		l := fuzzTIDs(raw, sel)
		item := int(item16)

		// Sparse record round trip.
		sp := tidlist.AppendListBytes(nil, l)
		bundle := appendBundleHeader(nil, bundleVersion)
		bundle, rec := appendRecord(bundle, int64(len(bundle)), item, EncSparse, len(l), sp)
		payload, err := recordPayload(bundle, rec)
		if err != nil {
			t.Fatalf("sparse record rejected its own bytes: %v", err)
		}
		got, err := tidlist.ListFromBytes(payload)
		if err != nil {
			t.Fatalf("sparse decode: %v", err)
		}
		if len(got) != len(l) {
			t.Fatalf("sparse round trip: got %v, want %v", got, l)
		}
		for i := range l {
			if got[i] != l[i] {
				t.Fatalf("sparse round trip: got %v, want %v", got, l)
			}
		}
		if !bytes.Equal(tidlist.AppendListBytes(nil, got), sp) {
			t.Fatal("sparse re-encode differs")
		}

		// Dense record round trip, appended after the sparse record the
		// way a spill would.
		if len(l) > 0 {
			var bs tidlist.Bitset
			bs.SetTIDs(l)
			dp := tidlist.AppendBitsetBytes(nil, &bs)
			bundle, brec := appendRecord(bundle, int64(len(bundle)), item, EncBitset, bs.Support(), dp)
			payload, err := recordPayload(bundle, brec)
			if err != nil {
				t.Fatalf("dense record rejected its own bytes: %v", err)
			}
			gotBS, err := tidlist.BitsetFromBytes(payload)
			if err != nil {
				t.Fatalf("dense decode: %v", err)
			}
			if gotBS.Support() != len(l) {
				t.Fatalf("dense round trip support %d, want %d", gotBS.Support(), len(l))
			}
			gt := tidlist.TIDsOf(gotBS)
			for i := range l {
				if gt[i] != l[i] {
					t.Fatalf("dense round trip: got %v, want %v", gt, l)
				}
			}
			if !bytes.Equal(tidlist.AppendBitsetBytes(nil, gotBS), dp) {
				t.Fatal("dense re-encode differs")
			}
			// The first record is still intact behind the appended one.
			if _, err := recordPayload(bundle, rec); err != nil {
				t.Fatalf("sparse record damaged by append: %v", err)
			}
		}

		// Any single corrupted byte inside the committed record must be
		// caught by the checksum (or the header cross-check).
		if len(sp) > 0 {
			corrupt := append([]byte(nil), bundle...)
			corrupt[rec.Offset+recordHeaderSize] ^= 0x01
			if _, err := recordPayload(corrupt, rec); err == nil {
				t.Fatal("payload corruption not detected")
			}
		}

		// Segmented (v2) writer round trip of the same payload: the
		// reconstruction must match the unsegmented payload byte for
		// byte regardless of how many parts the segment size forces.
		seg := appendBundleHeader(nil, bundleVersion2)
		seg, srec := appendRecordSeg(seg, int64(len(seg)), 128, item, EncSparse, len(l), sp)
		spl, err := recordPayload(seg, srec)
		if err != nil {
			t.Fatalf("segmented record rejected its own bytes: %v", err)
		}
		if !bytes.Equal(spl, sp) {
			t.Fatal("segmented reconstruction differs from unsegmented payload")
		}
	})
}

// FuzzBundleRoundTripV2 drives the partitioned (v2) record writer across
// fuzzed payloads and segment sizes: no physical part may cross a
// segment boundary, reconstruction must be lossless, and a single
// corrupted byte in any part must be caught by that part's checksum.
func FuzzBundleRoundTripV2(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3, 0, 9, 1, 44, 3}, uint8(4), uint16(7), uint8(0))
	f.Add([]byte{}, uint8(3), uint16(0), uint8(2))
	f.Add([]byte{255, 255, 0, 0, 9, 2, 17, 17, 200, 0, 3, 9}, uint8(10), uint16(12345), uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, sel uint8, item16 uint16, segSel uint8) {
		l := fuzzTIDs(raw, sel)
		item := int(item16)
		segBytes := int64(40) << (segSel % 6) // 40B..1280B, all multiples of 8
		sp := tidlist.AppendListBytes(nil, l)

		bundle := appendBundleHeader(nil, bundleVersion2)
		bundle, rec := appendRecordSeg(bundle, int64(len(bundle)), segBytes, item, EncSparse, len(l), sp)
		for _, p := range rec.parts() {
			end := p.Offset + recordHeaderSize + paddedLen(p.Length)
			if p.Offset/segBytes != (end-1)/segBytes {
				t.Fatalf("part [%d,%d) crosses a %d-byte segment boundary", p.Offset, end, segBytes)
			}
		}
		payload, err := recordPayload(bundle, rec)
		if err != nil {
			t.Fatalf("v2 record rejected its own bytes: %v", err)
		}
		if !bytes.Equal(payload, sp) {
			t.Fatal("v2 reconstruction differs from source payload")
		}
		got, err := tidlist.ListFromBytes(payload)
		if err != nil {
			t.Fatalf("v2 decode: %v", err)
		}
		if len(got) != len(l) {
			t.Fatalf("v2 round trip: got %d tids, want %d", len(got), len(l))
		}
		for i := range l {
			if got[i] != l[i] {
				t.Fatalf("v2 round trip: got %v, want %v", got, l)
			}
		}

		// Corrupt one payload byte in each part in turn: every part's
		// own checksum must reject it.
		for _, p := range rec.parts() {
			if p.Length == 0 {
				continue
			}
			corrupt := append([]byte(nil), bundle...)
			corrupt[p.Offset+recordHeaderSize] ^= 0x01
			if _, err := recordPayload(corrupt, rec); err == nil {
				t.Fatalf("corruption in part at offset %d not detected", p.Offset)
			}
		}
	})
}
