package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/db"
	"repro/internal/obsv"
	"repro/internal/tidlist"
)

// Store-health metrics (see /metricsz on the daemon).
const (
	mnStoreBundles     = "store_bundles_total"
	mnStoreBytesMapped = "store_bytes_mapped"
	mnStoreOpenNS      = "store_open_ns"
	mnStoreSpills      = "store_spills_total"
)

var (
	storeBundles     = obsv.Default.Counter(mnStoreBundles, "bundle files created or opened")
	storeBytesMapped = obsv.Default.Gauge(mnStoreBytesMapped, "bytes of bundle data currently mapped (or loaded on non-mmap platforms)")
	storeOpenNS      = obsv.Default.Histogram(mnStoreOpenNS, "nanoseconds to open one stored dataset (index load, map, checksum verify)", nil)
	storeSpills      = obsv.Default.Counter(mnStoreSpills, "representation transforms appended to existing bundles")
)

// On-disk names inside a dataset directory.
const (
	datasetSuffix  = ".ds"
	partialSuffix  = ".ds.partial"
	indexName      = "index.json"
	bundleName     = "vertical.bundle"
	horizontalName = "horizontal.db"
)

// indexVersion versions index.json independently of the bundle format.
const indexVersion = 1

// DefaultSegmentBytes is the bundle segment size CreateDataset uses: the
// residency granularity for out-of-core mining. Large enough that sparse
// tid-lists rarely split, small enough that a budget of a few segments
// is a meaningful working set.
const DefaultSegmentBytes int64 = 1 << 20

// Meta is the dataset header carried in the index: identity plus the
// horizontal-shape figures the service reports without loading data.
type Meta struct {
	Name         string  `json:"name"`
	Source       string  `json:"source"`
	Transactions int     `json:"transactions"`
	NumItems     int     `json:"numItems"`
	AvgLen       float64 `json:"avgLen"`
	SizeBytes    int64   `json:"sizeBytes"`
}

// index is the index.json document. BundleBytes is the commit point: the
// bundle's committed extent. A crash mid-spill leaves bundle bytes past
// BundleBytes (truncated on open) or a fully-written bundle with the old
// index (the appended records are simply dropped); either way the
// dataset stays consistent because the index is only replaced — via
// write-to-temp, fsync, rename — after the bundle bytes it points at are
// durable.
type index struct {
	Version     int   `json:"version"`
	Meta        Meta  `json:"meta"`
	BundleBytes int64 `json:"bundleBytes"`
	// SegmentBytes is the v2 segment size the bundle was partitioned
	// with; 0 for an unsegmented v1 bundle.
	SegmentBytes int64    `json:"segmentBytes,omitempty"`
	Records      []Record `json:"records"`
}

// Dataset is one stored dataset opened for reading. The sparse tid-lists
// (and any spilled bitsets) are views over the mapped bundle: immutable,
// safe for concurrent use, and valid until Close. Per the tidlist
// aliasing contract they may be kernel operands but never scratch.
type Dataset struct {
	dir string
	idx index

	data    []byte
	cleanup func() error

	sparse   []tidlist.List     // index = item; nil where no record
	bitsets  []*tidlist.Bitset  // index = item; nil where not spilled
	roarings []*tidlist.Roaring // index = item; nil where not spilled

	horizOnce sync.Once
	horiz     *db.Database
	horizErr  error

	gaugeOnce sync.Once

	closeOnce sync.Once
	closeErr  error
}

// CreateDataset writes a complete dataset directory at path using the
// crash-safe protocol: everything lands in path+".partial" first, every
// file and the parent directory are fsynced, then one atomic rename
// publishes the dataset. A crash at any earlier point leaves only a
// partial directory, which Open sweeps away. lists is the per-item
// vertical transform of d (index = item, as built by one horizontal
// pass); items with empty lists get no record.
func CreateDataset(path string, meta Meta, d *db.Database, lists []tidlist.List) error {
	return CreateDatasetSeg(path, meta, d, lists, DefaultSegmentBytes)
}

// CreateDatasetSeg is CreateDataset with an explicit bundle segment
// size. segmentBytes > 0 (a multiple of 8, at least one record header
// plus 8 payload bytes) writes a v2 partitioned bundle whose physical
// records never cross a segment boundary; segmentBytes == 0 writes the
// legacy unsegmented v1 format.
func CreateDatasetSeg(path string, meta Meta, d *db.Database, lists []tidlist.List, segmentBytes int64) error {
	if len(lists) != meta.NumItems {
		return fmt.Errorf("store: %d lists for %d items", len(lists), meta.NumItems)
	}
	if segmentBytes != 0 && (segmentBytes%8 != 0 || segmentBytes < recordHeaderSize+8) {
		return fmt.Errorf("store: invalid segment size %d", segmentBytes)
	}
	tmp := partialPath(path)
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}

	version := uint32(bundleVersion)
	if segmentBytes > 0 {
		version = bundleVersion2
	}
	bundle := appendBundleHeader(nil, version)
	idx := index{Version: indexVersion, Meta: meta, SegmentBytes: segmentBytes}
	var payload []byte
	for item, l := range lists {
		if len(l) == 0 {
			continue
		}
		payload = tidlist.AppendListBytes(payload[:0], l)
		var rec Record
		bundle, rec = appendRecordSeg(bundle, int64(len(bundle)), segmentBytes, item, EncSparse, len(l), payload)
		idx.Records = append(idx.Records, rec)
	}
	idx.BundleBytes = int64(len(bundle))

	if err := writeFileSync(filepath.Join(tmp, bundleName), bundle); err != nil {
		return err
	}
	hf, err := os.Create(filepath.Join(tmp, horizontalName))
	if err != nil {
		return err
	}
	if err := d.Encode(hf); err != nil {
		hf.Close()
		return err
	}
	if err := hf.Sync(); err != nil {
		hf.Close()
		return err
	}
	if err := hf.Close(); err != nil {
		return err
	}
	ib, err := json.MarshalIndent(&idx, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(tmp, indexName), append(ib, '\n')); err != nil {
		return err
	}
	if err := syncDir(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	storeBundles.Inc()
	return syncDir(filepath.Dir(path))
}

// OpenDataset opens the dataset directory at path: loads the index, maps
// the bundle's committed extent (truncating any torn tail a crashed
// spill left behind), and checksum-verifies every record before its
// bytes can be aliased as tid-lists. Corruption inside the committed
// extent returns an error matching ErrCorruptBundle.
func OpenDataset(path string) (*Dataset, error) {
	start := time.Now()
	ds, err := openDataset(path)
	if err != nil {
		return nil, err
	}
	storeOpenNS.ObserveSince(start)
	storeBundles.Inc()
	return ds, nil
}

func openDataset(path string) (*Dataset, error) {
	ib, err := os.ReadFile(filepath.Join(path, indexName))
	if err != nil {
		return nil, err
	}
	ds := &Dataset{dir: path}
	if err := json.Unmarshal(ib, &ds.idx); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptBundle, indexName, err)
	}
	if ds.idx.Version != indexVersion {
		return nil, fmt.Errorf("%w: unsupported index version %d", ErrCorruptBundle, ds.idx.Version)
	}

	bp := filepath.Join(path, bundleName)
	f, err := os.OpenFile(bp, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	switch {
	case fi.Size() < ds.idx.BundleBytes:
		return nil, fmt.Errorf("%w: bundle is %d bytes, index commits %d",
			ErrCorruptBundle, fi.Size(), ds.idx.BundleBytes)
	case fi.Size() > ds.idx.BundleBytes:
		// Torn tail from a crashed spill append: the bytes past the
		// committed extent were never referenced by any index, so they
		// are dropped, not data loss.
		if err := f.Truncate(ds.idx.BundleBytes); err != nil {
			return nil, err
		}
		if err := f.Sync(); err != nil {
			return nil, err
		}
	}

	data, cleanup, err := mapFile(f, ds.idx.BundleBytes)
	if err != nil {
		return nil, err
	}
	ds.data, ds.cleanup = data, cleanup
	if err := ds.decode(); err != nil {
		cleanup()
		return nil, err
	}
	storeBytesMapped.Add(int64(len(ds.data)))
	return ds, nil
}

// decode verifies the header and every record, building the per-item
// view slices.
func (ds *Dataset) decode() error {
	if err := checkBundleHeader(ds.data); err != nil {
		return err
	}
	ds.sparse = make([]tidlist.List, ds.idx.Meta.NumItems)
	ds.bitsets = make([]*tidlist.Bitset, ds.idx.Meta.NumItems)
	ds.roarings = make([]*tidlist.Roaring, ds.idx.Meta.NumItems)
	for _, rec := range ds.idx.Records {
		if rec.Item < 0 || rec.Item >= ds.idx.Meta.NumItems {
			return fmt.Errorf("%w: record for out-of-range item %d", ErrCorruptBundle, rec.Item)
		}
		payload, err := recordPayload(ds.data, rec)
		if err != nil {
			return err
		}
		switch rec.Enc {
		case EncSparse:
			l, err := tidlist.ListFromBytes(payload)
			if err != nil {
				return fmt.Errorf("%w: item %d: %v", ErrCorruptBundle, rec.Item, err)
			}
			if len(l) != rec.Support {
				return fmt.Errorf("%w: item %d has %d tids, index says %d",
					ErrCorruptBundle, rec.Item, len(l), rec.Support)
			}
			ds.sparse[rec.Item] = l
		case EncBitset:
			b, err := tidlist.BitsetFromBytes(payload)
			if err != nil {
				return fmt.Errorf("%w: item %d: %v", ErrCorruptBundle, rec.Item, err)
			}
			if b.Support() != rec.Support {
				return fmt.Errorf("%w: item %d bitset has support %d, index says %d",
					ErrCorruptBundle, rec.Item, b.Support(), rec.Support)
			}
			ds.bitsets[rec.Item] = b
		case EncRoaring:
			r, err := tidlist.RoaringFromBytes(payload)
			if err != nil {
				return fmt.Errorf("%w: item %d: %v", ErrCorruptBundle, rec.Item, err)
			}
			if r.Support() != rec.Support {
				return fmt.Errorf("%w: item %d roaring has support %d, index says %d",
					ErrCorruptBundle, rec.Item, r.Support(), rec.Support)
			}
			ds.roarings[rec.Item] = r
		default:
			return fmt.Errorf("%w: item %d has unknown encoding %d", ErrCorruptBundle, rec.Item, rec.Enc)
		}
	}
	return nil
}

// Meta returns the dataset header.
func (ds *Dataset) Meta() Meta { return ds.idx.Meta }

// NumTransactions is |D|, read off the dataset header. Together with
// Horizontal and VerticalSets it makes *Dataset a repro.Source, so
// callers hand a stored dataset straight to repro.MineFrom.
func (ds *Dataset) NumTransactions() int { return ds.idx.Meta.Transactions }

// VerticalSets is Sets with the repro.Source ok contract: the store
// always serves the vertical transform without a horizontal scan, so ok
// is always true.
func (ds *Dataset) VerticalSets(r tidlist.Repr) ([]tidlist.Set, bool) {
	return ds.Sets(r), true
}

// SparseLists returns the per-item sparse tid-lists as views over the
// mapping (index = item; nil for items with no transactions). The slice
// and the lists are immutable.
func (ds *Dataset) SparseLists() []tidlist.List { return ds.sparse }

// Bitsets returns the spilled dense transform as views over the mapping,
// or ok=false when the stored bitsets do not cover every non-empty item
// (no spill has happened, or it predates new data).
func (ds *Dataset) Bitsets() ([]*tidlist.Bitset, bool) {
	for item, l := range ds.sparse {
		if len(l) > 0 && ds.bitsets[item] == nil {
			return nil, false
		}
	}
	return ds.bitsets, true
}

// Roarings returns the spilled containerized transform as views over the
// mapping, or ok=false when the stored roarings do not cover every
// non-empty item.
func (ds *Dataset) Roarings() ([]*tidlist.Roaring, bool) {
	for item, l := range ds.sparse {
		if len(l) > 0 && ds.roarings[item] == nil {
			return nil, false
		}
	}
	return ds.roarings, true
}

// Sets returns the vertical transform as []tidlist.Set under the given
// representation, served from the mapping wherever possible: sparse
// straight from the bundle, bitset from a previous spill (or encoded in
// memory when none exists — this read-only accessor never writes), auto
// picking the smaller encoding per item. The slices alias the mapping
// and are immutable.
func (ds *Dataset) Sets(r tidlist.Repr) []tidlist.Set {
	out := make([]tidlist.Set, ds.idx.Meta.NumItems)
	dense := func(item int) *tidlist.Bitset {
		if b := ds.bitsets[item]; b != nil {
			return b
		}
		return tidlist.NewBitset(ds.sparse[item])
	}
	roaring := func(item int) *tidlist.Roaring {
		if rr := ds.roarings[item]; rr != nil {
			return rr
		}
		return tidlist.NewRoaring(ds.sparse[item])
	}
	for item, l := range ds.sparse {
		if len(l) == 0 {
			continue
		}
		switch r {
		case tidlist.ReprBitset:
			out[item] = dense(item)
		case tidlist.ReprRoaring:
			out[item] = roaring(item)
		case tidlist.ReprSparse:
			out[item] = l
		default: // ReprAuto: cheapest of the three encodings per item
			switch _, enc := tidlist.EncodedSize(l, tidlist.ReprAuto); enc {
			case tidlist.ReprBitset:
				out[item] = dense(item)
			case tidlist.ReprRoaring:
				out[item] = roaring(item)
			default:
				out[item] = l
			}
		}
	}
	return out
}

// Horizontal lazily decodes the stored horizontal database. The vertical
// mining path never calls this; it exists for algorithms that still scan
// horizontally (apriori and friends) and costs one file read on first
// use.
func (ds *Dataset) Horizontal() (*db.Database, error) {
	ds.horizOnce.Do(func() {
		f, err := os.Open(filepath.Join(ds.dir, horizontalName))
		if err != nil {
			ds.horizErr = err
			return
		}
		defer f.Close()
		ds.horiz, ds.horizErr = db.Decode(f)
	})
	return ds.horiz, ds.horizErr
}

// AppendBitsets spills the dense transform to disk: bitset records for
// every non-empty item not already covered are appended past the
// committed extent, the bundle is fsynced, and only then is the index
// atomically replaced to commit them. The in-process views are
// unchanged — the spill pays off on the next open, which serves the
// bitsets from the mapping instead of re-encoding. bs is indexed by item
// (as returned by Dataset.VerticalBitsets); nil and empty entries are
// skipped.
func (ds *Dataset) AppendBitsets(bs []*tidlist.Bitset) error {
	return ds.appendSpill(EncBitset, len(bs), func(item int) (int, func([]byte) []byte) {
		b := bs[item]
		if b == nil || b.Support() == 0 {
			return 0, nil
		}
		return b.Support(), func(p []byte) []byte { return tidlist.AppendBitsetBytes(p, b) }
	})
}

// AppendRoarings spills the containerized transform to disk with the
// same crash-safe append protocol as AppendBitsets. rs is indexed by
// item; nil and empty entries are skipped.
func (ds *Dataset) AppendRoarings(rs []*tidlist.Roaring) error {
	return ds.appendSpill(EncRoaring, len(rs), func(item int) (int, func([]byte) []byte) {
		r := rs[item]
		if r == nil || r.Support() == 0 {
			return 0, nil
		}
		return r.Support(), func(p []byte) []byte { return tidlist.AppendRoaringBytes(p, r) }
	})
}

// appendSpill implements the shared spill-append protocol: records for
// every item in [0, n) with a payload (per the get callback) and no
// existing record under enc are appended past the committed extent, the
// bundle is fsynced, and only then is the index atomically replaced.
func (ds *Dataset) appendSpill(enc, n int, get func(item int) (support int, encode func([]byte) []byte)) error {
	covered := make(map[int]bool)
	for _, rec := range ds.idx.Records {
		if rec.Enc == enc {
			covered[rec.Item] = true
		}
	}
	var buf []byte
	idx := ds.idx
	idx.Records = append([]Record(nil), ds.idx.Records...)
	off := ds.idx.BundleBytes
	var payload []byte
	for item := 0; item < n; item++ {
		if item >= ds.idx.Meta.NumItems || covered[item] {
			continue
		}
		support, encode := get(item)
		if encode == nil {
			continue
		}
		payload = encode(payload[:0])
		var rec Record
		buf, rec = appendRecordSeg(buf, off+int64(len(buf)), ds.idx.SegmentBytes, item, enc, support, payload)
		idx.Records = append(idx.Records, rec)
	}
	if len(buf) == 0 {
		return nil
	}
	idx.BundleBytes = off + int64(len(buf))

	f, err := os.OpenFile(filepath.Join(ds.dir, bundleName), os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	ib, err := json.MarshalIndent(&idx, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(ds.dir, indexName+".tmp")
	if err := writeFileSync(tmp, append(ib, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(ds.dir, indexName)); err != nil {
		return err
	}
	if err := syncDir(ds.dir); err != nil {
		return err
	}
	ds.idx = idx
	storeSpills.Inc()
	return nil
}

// BytesMapped returns the size of the committed extent this dataset has
// mapped.
func (ds *Dataset) BytesMapped() int64 { return int64(len(ds.data)) }

// SegmentBytes returns the bundle's segment size, or 0 for an
// unsegmented v1 bundle.
func (ds *Dataset) SegmentBytes() int64 { return ds.idx.SegmentBytes }

// releaseMapped retires this dataset's contribution to the
// store_bytes_mapped gauge. Idempotent. Called from Close and from
// Store.Remove — a removed dataset's mapping may outlive removal while
// orphaned views drain, but it no longer counts as live store footprint.
func (ds *Dataset) releaseMapped() {
	ds.gaugeOnce.Do(func() {
		storeBytesMapped.Add(-int64(len(ds.data)))
	})
}

// Close releases the mapping. Every view handed out becomes invalid;
// callers must drop their Dataset references first.
func (ds *Dataset) Close() error {
	ds.closeOnce.Do(func() {
		if ds.cleanup != nil {
			ds.releaseMapped()
			ds.closeErr = ds.cleanup()
		}
		ds.data, ds.sparse, ds.bitsets, ds.roarings = nil, nil, nil, nil
	})
	return ds.closeErr
}

// DatasetMeta derives the stored header for d.
func DatasetMeta(name, source string, d *db.Database) Meta {
	return Meta{
		Name:         name,
		Source:       source,
		Transactions: d.Len(),
		NumItems:     d.NumItems,
		AvgLen:       d.AvgLen(),
		SizeBytes:    d.SizeBytes(),
	}
}

// VerticalLists builds the per-item vertical transform of d in one
// horizontal pass, the slice CreateDataset persists.
func VerticalLists(d *db.Database) []tidlist.List {
	lists := make([]tidlist.List, d.NumItems)
	for _, tx := range d.Transactions {
		for _, it := range tx.Items {
			lists[it] = append(lists[it], tx.TID)
		}
	}
	return lists
}

// partialPath is the temporary directory name CreateDataset stages into.
func partialPath(path string) string {
	if strings.HasSuffix(path, datasetSuffix) {
		return strings.TrimSuffix(path, datasetSuffix) + partialSuffix
	}
	return path + ".partial"
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable. Some filesystems reject directory fsync; that is loss of
// durability, not correctness, so unsupported errors are ignored.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}
