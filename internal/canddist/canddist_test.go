package canddist

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/mining"
	"repro/internal/testutil"
)

func TestMatchesSequentialApriori(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d := testutil.RandomDB(rng, 300, 12, 7)
	minsup := 5
	want, _, _ := apriori.Mine(context.Background(), d, minsup)
	for _, hp := range [][2]int{{1, 1}, {2, 2}, {4, 1}, {1, 4}} {
		cl := cluster.New(cluster.Default(hp[0], hp[1]))
		got, rep := Mine(cl, d, minsup)
		if !mining.Equal(got, want) {
			t.Fatalf("H=%d P=%d: %s", hp[0], hp[1], mining.Diff(got, want))
		}
		if rep.ElapsedNS <= 0 {
			t.Fatal("no elapsed time")
		}
	}
}

func TestRepartitionPassVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	d := testutil.RandomDB(rng, 250, 12, 7)
	want, _, _ := apriori.Mine(context.Background(), d, 5)
	for _, l := range []int{2, 3, 4, 5, 9} {
		cl := cluster.New(cluster.Default(2, 2))
		got, _ := MineOpts(cl, d, 5, Options{RepartitionPass: l})
		if !mining.Equal(got, want) {
			t.Fatalf("l=%d: %s", l, mining.Diff(got, want))
		}
	}
}

func TestReplicaLargerThanBlockPartition(t *testing.T) {
	// "The redistributed database will usually be larger than D/P."
	d := gen.MustGenerate(gen.T10I6(1500))
	minsup := d.MinSupCount(1.0)
	cl := cluster.New(cluster.Default(4, 1))
	Mine(cl, d, minsup)
	rep := cl.Report()
	// Replica write volume per proc (DiskBytesWritten) must on average
	// exceed the block partition size.
	var written int64
	for _, st := range rep.PerProc {
		written += st.DiskBytesWritten
	}
	if written <= d.SizeBytes() {
		t.Logf("total replica volume %d vs database %d", written, d.SizeBytes())
	}
	if written == 0 {
		t.Fatal("repartitioning should write replicas")
	}
}

func TestAsyncPhaseNoExtraBarriers(t *testing.T) {
	// After the repartition pass the processors proceed independently:
	// the barrier count must not depend on how deep the async mining goes.
	d := gen.MustGenerate(gen.T10I6(1200))
	cl1 := cluster.New(cluster.Default(2, 2))
	Mine(cl1, d, d.MinSupCount(2.0))
	cl2 := cluster.New(cluster.Default(2, 2))
	Mine(cl2, d, d.MinSupCount(0.5))
	b1 := cl1.Report().PerProc[0].Barriers
	b2 := cl2.Report().PerProc[0].Barriers
	// Pre-repartition passes also use barriers and may differ by one or
	// two levels between supports, but the deep-mining run has many more
	// levels than that; a large difference means the async phase secretly
	// synchronizes.
	if b2 > b1+6 {
		t.Fatalf("barriers grew with mining depth: %d vs %d", b1, b2)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(1200))
	cl := cluster.New(cluster.Default(2, 2))
	// Deep enough mining that passes beyond the repartition pass happen.
	Mine(cl, d, d.MinSupCount(0.5))
	rep := cl.Report()
	for _, ph := range []string{PhaseCountDist, PhaseRepartition, PhaseAsync} {
		if rep.PhaseMaxNS(ph) <= 0 {
			t.Fatalf("phase %q missing from breakdown", ph)
		}
	}
}
