// Package canddist implements the Candidate Distribution algorithm
// (Agrawal & Shafer), the third baseline of the paper (section 3.2): it
// runs like Count Distribution up to a chosen repartitioning pass l, then
// partitions the candidates by equivalence class, selectively replicates
// the database so that each processor can count its classes' candidates
// independently, and proceeds asynchronously — broadcasting local
// frequent sets for pruning without blocking on them.
//
// "Candidate Distribution pays the cost of redistributing the database,
// and it then scans the local database partition repeatedly. The
// redistributed database will usually be larger than D/P" — both effects
// are visible in the report: the one-time exchange volume, and a
// per-iteration scan of a replica larger than the block partition.
package canddist

import (
	"sort"

	"repro/internal/apriori"
	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/eqclass"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paircount"
)

// Phase names for the time break-up.
const (
	PhaseCountDist   = "countdist"   // passes before the repartitioning
	PhaseRepartition = "repartition" // class scheduling + database replication
	PhaseAsync       = "async"       // independent local passes
)

// Options configures the algorithm.
type Options struct {
	// RepartitionPass is the pass l at which candidates are partitioned
	// and the database replicated. The paper's experiments used l = 4;
	// values below 3 are clamped to 3 (L2 must exist to form classes).
	RepartitionPass int
}

// Mine runs Candidate Distribution with the paper's default l = 4.
func Mine(cl *cluster.Cluster, d *db.Database, minsup int) (*mining.Result, cluster.Report) {
	return MineOpts(cl, d, minsup, Options{RepartitionPass: 4})
}

// MineOpts runs Candidate Distribution with explicit options. The result
// is identical to sequential Apriori's.
func MineOpts(cl *cluster.Cluster, d *db.Database, minsup int, opts Options) (*mining.Result, cluster.Report) {
	if minsup < 1 {
		minsup = 1
	}
	l := opts.RepartitionPass
	if l < 3 {
		l = 3
	}
	t := cl.NumProcs()
	parts := d.Partition(t)
	fanout := d.NumItems
	if fanout < 64 {
		fanout = 64
	}

	locals := make([]*mining.Result, t)
	shared := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}

	cl.Run(func(p *cluster.Proc) {
		part := parts[p.ID()]
		local := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
		locals[p.ID()] = local

		// ---- Count-Distribution passes 1 .. l-1 -------------------------
		p.SetPhase(PhaseCountDist)
		p.ChargeScan(part.SizeBytes(), p.HostProcs())
		var itemOps int64
		for _, tx := range part.Transactions {
			itemOps += int64(len(tx.Items))
		}
		p.ChargeCPU(itemOps)
		gItems := cluster.SumReduceInt(p, apriori.CountItems(part))
		if p.ID() == 0 {
			for it, c := range gItems {
				if c >= minsup {
					shared.Add(itemset.Itemset{itemset.Item(it)}, c)
				}
			}
		}

		// Pass 2 through the triangular array (as in our Eclat and CCPD
		// implementations, so the pre-repartition passes are not the
		// differentiator between the algorithms).
		p.ChargeScan(part.SizeBytes(), p.HostProcs())
		pc := paircount.New(d.NumItems)
		p.ChargeOps(cluster.OpPairCount, pc.AddPartition(part))
		gPairs := paircount.FromCounts(d.NumItems, cluster.SumReduceInt32(p, pc.Counts()))
		p.ChargeCPU(int64(gPairs.NumCells()))
		var prev []itemset.Itemset
		for _, fp := range gPairs.Frequent(minsup) {
			set := fp.Pair.Itemset()
			if p.ID() == 0 {
				shared.Add(set, fp.Count)
			}
			prev = append(prev, set)
		}

		for k := 3; k < l && len(prev) > 1; k++ {
			var tree *hashtree.Tree
			if p.ID() == 0 {
				tree = apriori.GenerateCandidates(prev, hashtree.WithFanout(fanout))
			}
			tree = cluster.Broadcast(p, 0, tree, 0)
			p.ChargeOps(cluster.OpHashTree, int64(tree.Len())*int64(k))
			if tree.Len() == 0 {
				prev = nil
				break
			}
			p.ChargeScan(part.SizeBytes(), p.HostProcs())
			state := tree.NewCountState()
			ops := apriori.CountPartitionInto(tree, state, part)
			factor := p.PageFactor(int64(p.HostProcs()) * tree.SizeBytes())
			p.ChargeOps(cluster.OpHashTree, ops*factor)
			global := cluster.SumReduceInt32(p, state.Counts)
			prev = prev[:0]
			for i, c := range tree.Candidates() {
				if int(global[i]) >= minsup {
					if p.ID() == 0 {
						shared.Add(c.Set, int(global[i]))
					}
					prev = append(prev, c.Set)
				}
			}
		}

		// ---- Repartitioning pass ----------------------------------------
		// Partition L(l-1) into equivalence classes, schedule them, and
		// replicate the database so each processor holds every transaction
		// containing one of its class prefixes.
		p.SetPhase(PhaseRepartition)
		classes := eqclass.PruneSingletons(eqclass.Partition(prev))
		sched := eqclass.Schedule(classes, t)
		p.ChargeCPU(int64(len(classes)))

		myMembers := make([]itemset.Itemset, 0)
		prefixByProc := make([][]itemset.Itemset, t)
		for ci := range classes {
			owner := sched.Owner[ci]
			prefixByProc[owner] = append(prefixByProc[owner], classes[ci].Prefix)
			if owner == p.ID() {
				myMembers = append(myMembers, classes[ci].Members...)
			}
		}

		// Route each local transaction to every processor whose prefix set
		// it touches (the selective replication exchange).
		out := make([][]db.Transaction, t)
		var sentBytes int64
		for _, tx := range part.Transactions {
			for dst := 0; dst < t; dst++ {
				for _, pre := range prefixByProc[dst] {
					if pre.SubsetOf(tx.Items) {
						out[dst] = append(out[dst], tx)
						if dst != p.ID() {
							sentBytes += 8 + 4*int64(len(tx.Items))
						}
						break
					}
				}
			}
		}
		in := cluster.Exchange(p, out, sentBytes)
		replica := &db.Database{NumItems: d.NumItems}
		for src := 0; src < t; src++ {
			replica.Transactions = append(replica.Transactions, in[src]...)
		}
		p.ChargeDiskWrite(replica.SizeBytes(), p.HostProcs())

		// ---- Asynchronous passes k >= l ---------------------------------
		// Each processor now proceeds independently on its replica. Local
		// frequent sets are broadcast for pruning but nobody waits for
		// them; we prune against what is locally known (our own classes),
		// which is safe — unpruned candidates simply fail the count.
		p.SetPhase(PhaseAsync)
		mine := myMembers
		for k := l; len(mine) > 1; k++ {
			itemset.Sort(mine)
			tree := apriori.GenerateCandidatesNoPrune(mine, hashtree.WithFanout(fanout))
			p.ChargeOps(cluster.OpHashTree, int64(tree.Len())*int64(k))
			if tree.Len() == 0 {
				break
			}
			p.ChargeScan(replica.SizeBytes(), p.HostProcs())
			ops := apriori.CountPartition(tree, replica)
			factor := p.PageFactor(int64(p.HostProcs()) * (tree.SizeBytes() + replica.SizeBytes()))
			p.ChargeOps(cluster.OpHashTree, ops*factor)
			mine = mine[:0]
			var bcastBytes int64
			for _, c := range tree.Frequent(minsup) {
				local.Add(c.Set, c.Count)
				mine = append(mine, c.Set)
				bcastBytes += 4 * int64(k+1)
			}
			// Asynchronous pruning broadcast: pay the wire cost, no barrier.
			p.ChargeNet(t-1, bcastBytes*int64(t-1))
		}
	})

	// Final gather (the harness assembles what processor 0 would print).
	res := shared
	for _, local := range locals {
		res.Itemsets = append(res.Itemsets, local.Itemsets...)
	}
	// The pre-repartition levels l' with 3 <= l' < l were added by proc 0;
	// deduplicate nothing — class ownership makes deep itemsets disjoint.
	sort.Slice(res.Itemsets, func(i, j int) bool {
		return res.Itemsets[i].Set.Less(res.Itemsets[j].Set)
	})
	return res, cl.Report()
}
