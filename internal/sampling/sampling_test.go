package sampling

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/testutil"
)

func TestExactRegardlessOfSampleLuck(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	d := testutil.RandomDB(rng, 300, 12, 6)
	want := testutil.BruteForce(d, 6)
	// Across wildly different samples — tiny, huge, adversarial seeds —
	// the result must always be exact; only Stats may differ.
	for _, opts := range []Options{
		{},
		{SampleSize: 10, Seed: 1},
		{SampleSize: 10, Seed: 2, LowerBy: 1.0},
		{SampleSize: 250, Seed: 3},
		{SampleSize: 300, Seed: 4}, // the whole database
		{SampleSize: 30, Seed: 5, LowerBy: 0.5},
	} {
		got, st := Mine(d, 6, opts)
		if !mining.Equal(got, want) {
			t.Fatalf("opts %+v: inexact result:\n%s", opts, mining.Diff(got, want))
		}
		if st.FullScans < 1 {
			t.Fatalf("opts %+v: at least one full scan required", opts)
		}
	}
}

func TestTypicallyOneScan(t *testing.T) {
	// With a healthy sample and the default safety margin, the border
	// should hold and a single full scan suffice.
	d := gen.MustGenerate(gen.T10I6(4000))
	minsup := d.MinSupCount(1.0)
	// A generous safety margin (count borderline itemsets as sample-
	// frequent) is what buys the single-scan guarantee in practice.
	_, st := Mine(d, minsup, Options{SampleSize: 2000, Seed: 7, LowerBy: 0.6})
	if st.FullScans != 1 {
		t.Fatalf("expected the common 1-scan case, got %d scans (%d misses)", st.FullScans, st.Misses)
	}
	if st.BorderSize == 0 {
		t.Fatal("negative border should not be empty (infrequent singletons exist)")
	}
}

func TestMatchesApriori(t *testing.T) {
	d := gen.MustGenerate(gen.T10I6(2000))
	minsup := d.MinSupCount(1.5)
	want, _, _ := apriori.Mine(context.Background(), d, minsup)
	got, _ := Mine(d, minsup, Options{SampleSize: 500, Seed: 9})
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
}

func TestAdversarialTinySamplesQuick(t *testing.T) {
	// Tiny samples at no safety margin maximize misses; exactness must
	// survive the fixpoint loop.
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 15; trial++ {
		d := testutil.RandomDB(rng, 120, 10, 5)
		want := testutil.BruteForce(d, 4)
		got, _ := Mine(d, 4, Options{SampleSize: 5, Seed: int64(trial), LowerBy: 1.0})
		if !mining.Equal(got, want) {
			t.Fatalf("trial %d: inexact:\n%s", trial, mining.Diff(got, want))
		}
	}
}

func TestNegativeBorder(t *testing.T) {
	// F = {a, b, ab} over a 3-item universe. Border: {c} (singleton not in
	// F). No 2-itemsets: ac/bc need c in F; abc needs... ab in F but ac
	// not, so nothing deeper.
	a, b := itemset.New(0), itemset.New(1)
	ab := itemset.New(0, 1)
	inF := map[string]itemset.Itemset{a.Key(): a, b.Key(): b, ab.Key(): ab}
	border := negativeBorder(inF, 3)
	if len(border) != 1 || !border[0].Equal(itemset.New(2)) {
		t.Fatalf("border = %v, want [{2}]", border)
	}
	// Now F = {a,b,c,ab,ac,bc}: border = {abc}.
	c := itemset.New(2)
	ac, bc := itemset.New(0, 2), itemset.New(1, 2)
	inF[c.Key()], inF[ac.Key()], inF[bc.Key()] = c, ac, bc
	border = negativeBorder(inF, 3)
	if len(border) != 1 || !border[0].Equal(itemset.New(0, 1, 2)) {
		t.Fatalf("border = %v, want [{0 1 2}]", border)
	}
}

func TestEmptyDatabase(t *testing.T) {
	res, st := Mine(&db.Database{NumItems: 4}, 1, Options{})
	if res.Len() != 0 || st.FullScans != 0 {
		t.Fatalf("empty database: %d itemsets, %d scans", res.Len(), st.FullScans)
	}
}

func TestOptionClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := testutil.RandomDB(rng, 50, 8, 4)
	want := testutil.BruteForce(d, 3)
	got, st := Mine(d, 3, Options{SampleSize: 10_000, LowerBy: 5})
	if !mining.Equal(got, want) {
		t.Fatal(mining.Diff(got, want))
	}
	if st.SampleSize != 50 {
		t.Fatalf("sample should clamp to |D|: %d", st.SampleSize)
	}
}
