// Package sampling implements Toivonen's sampling algorithm (VLDB 1996),
// the related-work approach the paper cites for cutting I/O below even
// Partition's two scans: "Another way to minimize the I/O overhead is to
// work with only a small random sample of the database. An analysis of
// the effectiveness of sampling for association mining was presented in
// [17], and [15] presents an exact algorithm that finds all rules using
// sampling."
//
// The algorithm mines a random sample at a lowered support threshold,
// then makes one full pass that counts the sample-frequent itemsets plus
// their negative border (the minimal itemsets not found frequent in the
// sample). If nothing on the border turns out globally frequent the
// answer is provably complete in a single full scan; otherwise the border
// is extended and re-counted until a fixpoint — rare in practice, which
// is the algorithm's point.
package sampling

import (
	"math/rand"
	"sort"

	"repro/internal/db"
	"repro/internal/eclat"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// Options tunes the sampler.
type Options struct {
	// SampleSize is the number of transactions drawn (without
	// replacement). Default: 10% of the database, at least 1.
	SampleSize int
	// LowerBy scales the support rate used on the sample below the true
	// rate, reducing the probability of misses (Toivonen's safety
	// margin). Default 0.8; must be in (0, 1].
	LowerBy float64
	// Seed drives the sample draw.
	Seed int64
}

// Stats reports how the run went.
type Stats struct {
	SampleSize     int
	FullScans      int // full-database counting passes (1 when the border holds)
	BorderSize     int // negative-border itemsets counted in the first pass
	Misses         int // border itemsets that turned out globally frequent
	SampleItemsets int // itemsets frequent in the sample at the lowered threshold
}

// Mine runs the sampling algorithm. The result is exact — equal to
// Apriori's — regardless of sample luck; luck only affects how many full
// scans were needed.
func Mine(d *db.Database, minsup int, opts Options) (*mining.Result, Stats) {
	if minsup < 1 {
		minsup = 1
	}
	var st Stats
	res := &mining.Result{MinSup: minsup, NumTransactions: d.Len()}
	if d.Len() == 0 {
		return res, st
	}
	if opts.SampleSize <= 0 {
		opts.SampleSize = (d.Len() + 9) / 10
	}
	if opts.SampleSize > d.Len() {
		opts.SampleSize = d.Len()
	}
	if opts.LowerBy <= 0 || opts.LowerBy > 1 {
		opts.LowerBy = 0.8
	}
	st.SampleSize = opts.SampleSize

	// Draw the sample without replacement, preserving TID order.
	rng := rand.New(rand.NewSource(opts.Seed))
	idx := rng.Perm(d.Len())[:opts.SampleSize]
	sort.Ints(idx)
	sample := &db.Database{NumItems: d.NumItems}
	for _, i := range idx {
		sample.Transactions = append(sample.Transactions, d.Transactions[i])
	}

	// Mine the sample at the lowered rate.
	rate := float64(minsup) / float64(d.Len()) * opts.LowerBy
	sampleMin := int(rate * float64(sample.Len()))
	if sampleMin < 1 {
		sampleMin = 1
	}
	sampleRes, _ := eclat.MineSequential(sample, sampleMin)
	st.SampleItemsets = sampleRes.Len()

	// Candidate set: sample-frequent itemsets plus their negative border.
	inF := map[string]itemset.Itemset{}
	for _, f := range sampleRes.Itemsets {
		inF[f.Set.Key()] = f.Set
	}
	counted := map[string]int{} // exact global counts discovered so far

	for {
		border := negativeBorder(inF, d.NumItems)
		if st.FullScans == 0 {
			st.BorderSize = len(border)
		}

		// Count everything not yet counted in one full pass.
		var toCount []itemset.Itemset
		for _, s := range inF {
			if _, done := counted[s.Key()]; !done {
				toCount = append(toCount, s)
			}
		}
		for _, s := range border {
			if _, done := counted[s.Key()]; !done {
				toCount = append(toCount, s)
			}
		}
		if len(toCount) > 0 {
			st.FullScans++
			countExact(d, toCount, counted)
		}

		// Did any border itemset come out globally frequent? If so the
		// sample missed part of the lattice: promote them into F and
		// iterate with the extended border.
		missed := false
		for _, s := range border {
			if counted[s.Key()] >= minsup {
				if _, ok := inF[s.Key()]; !ok {
					inF[s.Key()] = s
					st.Misses++
					missed = true
				}
			}
		}
		if !missed {
			break
		}
	}

	for key, s := range inF {
		if c := counted[key]; c >= minsup {
			res.Add(s, c)
		}
	}
	res.Sort()
	return res, st
}

// negativeBorder returns the minimal itemsets not in F: the 1-itemsets
// outside F, and for each deeper level the Apriori joins of F's previous
// level whose subsets are all in F but which are not themselves in F.
func negativeBorder(inF map[string]itemset.Itemset, numItems int) []itemset.Itemset {
	byK := map[int][]itemset.Itemset{}
	maxK := 0
	for _, s := range inF {
		byK[s.K()] = append(byK[s.K()], s)
		if s.K() > maxK {
			maxK = s.K()
		}
	}
	var border []itemset.Itemset
	for it := 0; it < numItems; it++ {
		s := itemset.Itemset{itemset.Item(it)}
		if _, ok := inF[s.Key()]; !ok {
			border = append(border, s)
		}
	}
	for k := 2; k <= maxK+1; k++ {
		prev := byK[k-1]
		if len(prev) < 2 {
			continue
		}
		itemset.Sort(prev)
		for lo := 0; lo < len(prev); {
			hi := lo + 1
			for hi < len(prev) && prev[hi].SharesPrefix(prev[lo]) {
				hi++
			}
			for i := lo; i < hi; i++ {
				for j := i + 1; j < hi; j++ {
					cand := prev[i].Join(prev[j])
					if _, ok := inF[cand.Key()]; ok {
						continue
					}
					if allSubsetsInF(cand, inF) {
						border = append(border, cand)
					}
				}
			}
			lo = hi
		}
	}
	return border
}

func allSubsetsInF(cand itemset.Itemset, inF map[string]itemset.Itemset) bool {
	for i := range cand {
		if _, ok := inF[cand.Without(i).Key()]; !ok {
			return false
		}
	}
	return true
}

// countExact counts the given itemsets exactly in one pass, adding the
// results to counts.
func countExact(d *db.Database, sets []itemset.Itemset, counts map[string]int) {
	itemCounts := make([]int, d.NumItems)
	byK := map[int]*hashtree.Tree{}
	needItems := false
	for _, s := range sets {
		if s.K() == 1 {
			needItems = true
			continue
		}
		if byK[s.K()] == nil {
			fanout := d.NumItems
			if fanout < 64 {
				fanout = 64
			}
			byK[s.K()] = hashtree.New(s.K(), hashtree.WithFanout(fanout))
		}
		byK[s.K()].Insert(s)
	}
	for _, tx := range d.Transactions {
		if needItems {
			for _, it := range tx.Items {
				itemCounts[it]++
			}
		}
		for _, tree := range byK {
			tree.CountTransaction(tx.TID, tx.Items)
		}
	}
	for _, s := range sets {
		if s.K() == 1 {
			counts[s.Key()] = itemCounts[s[0]]
		}
	}
	for _, tree := range byK {
		for _, c := range tree.Candidates() {
			counts[c.Set.Key()] = c.Count
		}
	}
}
