package analyzers

import (
	"go/ast"
)

// simulatedTimePkgs are the packages whose accounting is virtual by
// design (DESIGN.md: the DEC Memory Channel cluster model advances a
// deterministic virtual clock; wall-clock reads there would leak host
// timing into paper-calibrated reports).
var simulatedTimePkgs = map[string]bool{
	"repro/internal/cluster":    true,
	"repro/internal/memchannel": true,
	"repro/internal/disk":       true,
	"repro/internal/stats":      true,
}

// wallClockFuncs are the package-level time functions that read or wait
// on the host clock. Pure types and constants (time.Duration,
// time.Nanosecond) remain usable for expressing virtual durations.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// VirtualTime forbids wall-clock access inside the simulated-time
// packages: all timing there must go through the virtual clock so that
// simulation reports stay deterministic and host-independent.
var VirtualTime = &Analyzer{
	Name: "virtualtime",
	Doc: "the simulated cluster packages account virtual time only: no time.Now, " +
		"time.Since, time.Sleep or other wall-clock reads; use the virtual clock",
	Run: runVirtualTime,
}

func runVirtualTime(pass *Pass) {
	if !simulatedTimePkgs[pass.Pkg.ImportPath] {
		return
	}
	for _, f := range pass.files() {
		timeName, ok := f.ImportName("time")
		if !ok {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != timeName || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock time.%s in simulated-time package %s; advance the virtual clock instead",
				sel.Sel.Name, pass.Pkg.ImportPath)
			return true
		})
	}
}
