package analyzers

// All returns the reprolint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ArenaDiscipline,
		AtomicOnly,
		CtxFirst,
		GoroutineJoin,
		LockOrder,
		MetricName,
		MmapAlias,
		ScratchOnly,
		SentErr,
		VirtualTime,
	}
}

// ByName resolves a comma-separated -checks selection against the
// suite; unknown names report ok=false along with the offending name.
func ByName(selection string, suite []*Analyzer) (picked []*Analyzer, unknown string, ok bool) {
	if selection == "" {
		return suite, "", true
	}
	byName := map[string]*Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	seen := map[string]bool{}
	for _, name := range splitComma(selection) {
		a := byName[name]
		if a == nil {
			return nil, name, false
		}
		if !seen[name] {
			picked = append(picked, a)
			seen[name] = true
		}
	}
	return picked, "", true
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// Run applies the analyzers to every package of the module, resolves
// //reprolint:ignore suppressions, and returns the surviving
// diagnostics sorted by position.
func Run(m *Module, suite []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	known := map[string]bool{}
	for _, a := range suite {
		known[a.Name] = true
	}
	for _, pkg := range m.Packages {
		for _, a := range suite {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Module: m, diags: &diags})
		}
	}
	diags = applySuppressions(m, known, diags)
	sortDiagnostics(diags)
	return diags
}

// RunPatterns loads the packages matched by go-style patterns and runs
// the suite over them — the programmatic equivalent of
// `reprolint <patterns>` that the exit-code tests drive directly.
func RunPatterns(patterns []string, suite []*Analyzer) ([]Diagnostic, error) {
	m, err := LoadPatterns(patterns)
	if err != nil {
		return nil, err
	}
	return Run(m, suite), nil
}
