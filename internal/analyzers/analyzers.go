// Package analyzers is reprolint: a suite of repo-specific static
// analyzers that mechanically enforce the reproduction's cross-cutting
// contracts — context-first mining signatures, virtual-time-only
// accounting inside the simulated cluster, the scratch-only discipline
// of aborted short-circuit kernels, obsv metric naming, and errors.Is
// sentinel comparisons.
//
// The package is a deliberately small, dependency-free mirror of
// golang.org/x/tools/go/analysis: the build environment pins the module
// graph to the standard library, so the framework (Analyzer, Pass,
// Diagnostic, an analysistest-style golden runner, and the go vet
// -vettool unit protocol) is implemented here on go/ast alone. Every
// analyzer is purely syntactic — import-table resolution instead of
// go/types — which keeps the suite fast enough to run on every CI push
// and trivially portable to the real go/analysis API if the dependency
// pin is ever lifted.
//
// Run it standalone:
//
//	go run ./cmd/reprolint ./...
//
// or through the vet driver:
//
//	go vet -vettool=$(go env GOPATH)/bin/reprolint ./...
//
// Diagnostics are suppressed one line at a time with
//
//	//reprolint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it; the reason
// is mandatory and malformed directives are themselves diagnostics.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// An Analyzer describes one reprolint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //reprolint:ignore directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// IgnoreTests skips _test.go files (used by checks that only
	// constrain production code, e.g. metric registration).
	IgnoreTests bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass connects one Analyzer run to one Package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Module gives cross-package context (package-level string
	// constants, sibling packages) for checks that need it.
	Module *Module
	diags  *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// files yields the package files this analyzer looks at, honouring
// IgnoreTests.
func (p *Pass) files() []*File {
	if !p.Analyzer.IgnoreTests {
		return p.Pkg.Files
	}
	var out []*File
	for _, f := range p.Pkg.Files {
		if !f.Test {
			out = append(out, f)
		}
	}
	return out
}

// A Diagnostic is one reported contract violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic the way go vet does, with the analyzer
// name appended for greppability.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// A File is one parsed source file of a package.
type File struct {
	Name string // filename as given to the parser
	AST  *ast.File
	Test bool // strings.HasSuffix(Name, "_test.go")
}

// ImportName reports how this file refers to the package at path: the
// explicit local name of a renamed import, the default base name
// otherwise, and ok=false when the file does not import path at all.
// Blank and dot imports report ok=false — neither yields a usable
// qualifier.
func (f *File) ImportName(path string) (name string, ok bool) {
	for _, imp := range f.AST.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// importPathOf inverts ImportName: given a qualifier identifier used in
// this file, it reports the import path it refers to. A file-scope
// resolution only — shadowing by local variables is not modeled, which
// is fine for the lint's house-style targets.
func (f *File) importPathOf(name string) (path string, ok bool) {
	for _, imp := range f.AST.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
			if local == "_" || local == "." {
				continue
			}
		} else {
			local = p
			if i := strings.LastIndex(local, "/"); i >= 0 {
				local = local[i+1:]
			}
		}
		if local == name {
			return p, true
		}
	}
	return "", false
}

// A Package is one parsed (not type-checked) package: all files sharing
// a package clause within one directory. External test packages
// (package foo_test) form their own Package with the same ImportPath.
type Package struct {
	Name       string // package clause name
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*File
}

// A Module is a set of packages analyzed together plus the module-wide
// tables shared by analyzers.
type Module struct {
	Path     string // module path from go.mod ("" when unknown)
	Packages []*Package

	constsOnce bool
	consts     map[string]string // "import/path.ConstName" -> value
}

// StringConst resolves a package-level string constant declared as
//
//	const Name = "literal"
//
// anywhere in the module, keyed by qualified name. Only single-literal
// specs are indexed; anything fancier reports ok=false.
func (m *Module) StringConst(pkgPath, name string) (string, bool) {
	if !m.constsOnce {
		m.consts = map[string]string{}
		for _, pkg := range m.Packages {
			for _, f := range pkg.Files {
				indexStringConsts(m.consts, pkg.ImportPath, f.AST)
			}
		}
		m.constsOnce = true
	}
	v, ok := m.consts[pkgPath+"."+name]
	return v, ok
}

// indexStringConsts records every `const Name = "lit"` spec of one file.
func indexStringConsts(dst map[string]string, pkgPath string, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Names) != len(vs.Values) {
				continue
			}
			for i, n := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				if v, err := strconv.Unquote(lit.Value); err == nil {
					dst[pkgPath+"."+n.Name] = v
				}
			}
		}
	}
}

// resolveQualified interprets expr as a reference to an identifier in
// another package (qualifier.Name) using the file's import table and
// reports (importPath, name). ok=false for anything else, including
// method chains whose root is not an imported package qualifier.
func resolveQualified(f *File, expr ast.Expr) (path, name string, ok bool) {
	sel, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	p, found := f.importPathOf(id.Name)
	if !found {
		return "", "", false
	}
	return p, sel.Sel.Name, true
}

// rootIdent returns the leftmost identifier of a selector chain
// (obsv.Default.Counter -> obsv), or nil.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch x := expr.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.CallExpr:
			expr = x.Fun
		default:
			return nil
		}
	}
}

// isContextContext reports whether the type expression denotes
// context.Context under the file's import table.
func isContextContext(f *File, typ ast.Expr) bool {
	path, name, ok := resolveQualified(f, typ)
	return ok && path == "context" && name == "Context"
}

// walkWithStack visits every node of root, handing the visitor the
// stack of ancestors (outermost first, not including n itself).
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
