package analyzers

import (
	"go/ast"
)

const storePath = "repro/internal/store"

// datasetViewMethods are the store.Dataset methods that hand out
// mmap-backed (or decode-copy) tid-set views.
var datasetViewMethods = map[string]bool{
	"Sets":         true,
	"SparseLists":  true,
	"Bitsets":      true,
	"Roarings":     true,
	"VerticalSets": true,
}

// MmapAlias enforces the aliasing contract of the persistent store
// (DESIGN.md §9): tid-sets handed out by store.Dataset are views over a
// shared, possibly memory-mapped buffer. They may be kernel operands —
// IntersectSets*/DiffSets read their a/b arguments, IntersectKSetsSC
// reads its whole slice — but never the scratch/destination parameter,
// and never the target of copy or append, because writing through a
// view corrupts the mapping for every other reader (and faults outright
// on a read-only mapping).
//
// The tracking is a per-function forward scan: identifiers assigned
// from store.OpenDataset (or declared as *store.Dataset parameters) are
// dataset roots; view-method results, their aliases, elements, and
// range values are tainted; tainted values in scratch position of a
// tidlist kernel call, or as the destination of copy/append, are
// findings. Cloning out of the store (Arena.CloneSetInto(view)) reads
// the view and is legal.
var MmapAlias = &Analyzer{
	Name: "mmapalias",
	Doc: "mmap-backed store.Dataset views are read-only kernel operands: never pass one " +
		"as kernel scratch, copy into it, or append to it",
	Run: runMmapAlias,
}

func runMmapAlias(pass *Pass) {
	for _, f := range pass.files() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMmapAliasFunc(pass, f, fn)
		}
	}
}

// isStoreDatasetType reports whether the type expression denotes
// store.Dataset or *store.Dataset under the file's import table (or
// unqualified Dataset inside the store package itself).
func isStoreDatasetType(pass *Pass, f *File, typ ast.Expr) bool {
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return pass.Pkg.ImportPath == storePath && id.Name == "Dataset"
	}
	path, name, ok := resolveQualified(f, typ)
	return ok && path == storePath && name == "Dataset"
}

// isOpenDatasetCall reports whether call is store.OpenDataset(...)
// (qualified, or unqualified inside the store package).
func isOpenDatasetCall(pass *Pass, f *File, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		path, name, ok := resolveQualified(f, fun)
		return ok && path == storePath && name == "OpenDataset"
	case *ast.Ident:
		return pass.Pkg.ImportPath == storePath && fun.Name == "OpenDataset"
	}
	return false
}

// checkMmapAliasFunc scans one top-level function (closures included —
// captured views stay tainted).
func checkMmapAliasFunc(pass *Pass, f *File, fn *ast.FuncDecl) {
	datasets := make(map[string]bool) // identifiers holding a *store.Dataset
	views := make(map[string]bool)    // identifiers holding a store view

	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if !isStoreDatasetType(pass, f, field.Type) {
				continue
			}
			for _, name := range field.Names {
				datasets[name.Name] = true
			}
		}
	}

	// isViewExpr reports whether expr is (an alias of, an element of, or
	// a direct method call producing) a store view, given the taint sets
	// accumulated so far.
	var isViewExpr func(expr ast.Expr) bool
	isViewExpr = func(expr ast.Expr) bool {
		switch x := expr.(type) {
		case *ast.Ident:
			return views[x.Name]
		case *ast.IndexExpr:
			return isViewExpr(x.X)
		case *ast.ParenExpr:
			return isViewExpr(x.X)
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || !datasetViewMethods[sel.Sel.Name] {
				return false
			}
			if root, ok := sel.X.(*ast.Ident); ok {
				return datasets[root.Name]
			}
			return false
		}
		return false
	}

	// Forward walk: taint propagation and violation checks in one pass.
	// ast.Inspect visits in source order, which is how the assignments
	// execute, so a single pass converges for straight-line taint.
	walkWithStack(fn.Body, func(n ast.Node, stack []ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				lhs, ok := x.Lhs[i].(*ast.Ident)
				if !ok || lhs.Name == "_" {
					continue
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isOpenDatasetCall(pass, f, call) {
					datasets[lhs.Name] = true
					continue
				}
				if isViewExpr(rhs) {
					views[lhs.Name] = true
				}
			}
			// ds, err := store.OpenDataset(...) — multi-value form.
			if len(x.Rhs) == 1 && len(x.Lhs) >= 1 {
				if call, ok := x.Rhs[0].(*ast.CallExpr); ok {
					if isOpenDatasetCall(pass, f, call) {
						if id, ok := x.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							datasets[id.Name] = true
						}
					} else if isViewExpr(call) {
						if id, ok := x.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							views[id.Name] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			if isViewExpr(x.X) && x.Value != nil {
				if id, ok := x.Value.(*ast.Ident); ok && id.Name != "_" {
					views[id.Name] = true
				}
			}
		case *ast.CallExpr:
			checkMmapCall(pass, f, x, isViewExpr)
		}
	})
}

// checkMmapCall flags a store view in a write position of one call.
func checkMmapCall(pass *Pass, f *File, call *ast.CallExpr, isViewExpr func(ast.Expr) bool) {
	// Kernel scratch position: arg 0 of the scratch-first kernels.
	for name := range kernelFuncs {
		if !isTidlistCallFile(f, call, name) {
			continue
		}
		if len(call.Args) > 0 && isViewExpr(call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(),
				"mmap-backed store view used as the scratch argument of tidlist.%s; store views are read-only operands — pass them as a/b only", name)
		}
		return
	}
	// Builtin write positions.
	if fun, ok := call.Fun.(*ast.Ident); ok {
		switch fun.Name {
		case "copy":
			if len(call.Args) == 2 && isViewExpr(call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"copy into an mmap-backed store view writes the shared mapping; clone the set out of the store first")
			}
		case "append":
			if len(call.Args) >= 1 && isViewExpr(call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"append to an mmap-backed store view may write the shared mapping; clone the set out of the store first")
			}
		}
	}
}

// isTidlistCallFile is isTidlistCall without a Pass: qualified calls
// only, which is the shape every package outside tidlist uses. (The
// tidlist package itself never holds store views — store depends on
// tidlist, not the reverse — so the unqualified form cannot occur.)
func isTidlistCallFile(f *File, call *ast.CallExpr, name string) bool {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	path, sel, ok := resolveQualified(f, fun)
	return ok && path == tidlistPath && sel == name
}
