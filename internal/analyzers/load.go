package analyzers

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadPatterns parses the packages selected by go-style patterns —
// either a directory ("./internal/eclat", ".") or a recursive prefix
// ("./...", "./internal/...") — into one Module. Patterns are resolved
// relative to the current working directory; the enclosing module root
// (nearest go.mod upward from the first pattern) anchors import paths.
//
// Parsing is syntax-only: files are not type-checked, build tags are not
// evaluated, and testdata/vendor/hidden directories are skipped, so the
// loader happily analyzes trees that do not compile — the multichecker
// exit-code fixtures rely on that.
func LoadPatterns(patterns []string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	type target struct {
		dir       string
		recursive bool
	}
	var targets []target
	for _, pat := range patterns {
		rec := false
		dir := pat
		switch {
		case pat == "...":
			rec, dir = true, "."
		case strings.HasSuffix(pat, "/..."):
			rec, dir = true, strings.TrimSuffix(pat, "/...")
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, fmt.Errorf("reprolint: bad pattern %q: %w", pat, err)
		}
		if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("reprolint: pattern %q does not name a directory", pat)
		}
		targets = append(targets, target{dir: abs, recursive: rec})
	}

	modRoot, modPath, err := findModule(targets[0].dir)
	if err != nil {
		return nil, err
	}

	dirs := map[string]bool{}
	for _, t := range targets {
		if !t.recursive {
			dirs[t.dir] = true
			continue
		}
		err := filepath.WalkDir(t.dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != t.dir && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("reprolint: walking %s: %w", t.dir, err)
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	m := &Module{Path: modPath}
	fset := token.NewFileSet()
	for _, dir := range sorted {
		pkgs, err := loadDir(fset, dir, importPathFor(modRoot, modPath, dir))
		if err != nil {
			return nil, err
		}
		m.Packages = append(m.Packages, pkgs...)
	}
	return m, nil
}

// LoadDir parses a single directory as packages rooted at the given
// import path — the entry point the analysistest-style golden runner
// uses to load fixtures under arbitrary import paths.
func LoadDir(dir, importPath string) (*Module, error) {
	fset := token.NewFileSet()
	pkgs, err := loadDir(fset, dir, importPath)
	if err != nil {
		return nil, err
	}
	return &Module{Packages: pkgs}, nil
}

// skipDir reports directories the recursive walk never descends into.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "node_modules" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// findModule locates the nearest go.mod at or above dir and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return d, "", fmt.Errorf("reprolint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("reprolint: no go.mod found at or above %s", dir)
		}
		d = parent
	}
}

// importPathFor maps a directory under the module root to its import
// path.
func importPathFor(modRoot, modPath, dir string) string {
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// loadDir parses every .go file of one directory, grouping files into
// one Package per package clause (so "eclat" and "eclat_test" are
// separate entries sharing the directory and import path).
func loadDir(fset *token.FileSet, dir, importPath string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reprolint: reading %s: %w", dir, err)
	}
	byName := map[string]*Package{}
	var order []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		filename := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("reprolint: %w", err)
		}
		name := f.Name.Name
		pkg := byName[name]
		if pkg == nil {
			pkg = &Package{Name: name, ImportPath: importPath, Dir: dir, Fset: fset}
			byName[name] = pkg
			order = append(order, name)
		}
		pkg.Files = append(pkg.Files, &File{
			Name: filename,
			AST:  f,
			Test: strings.HasSuffix(e.Name(), "_test.go"),
		})
	}
	sort.Strings(order)
	pkgs := make([]*Package, 0, len(order))
	for _, n := range order {
		pkgs = append(pkgs, byName[n])
	}
	return pkgs, nil
}
