package analyzers

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig is the subset of the go vet unit protocol's JSON config
// (cmd/go writes one per package when invoked with -vettool) that the
// syntactic suite needs.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// RunVetCfg implements one unit of the go vet -vettool protocol: load
// the package described by the .cfg file, run the suite, print findings
// to w, and return the process exit code (0 clean, 1 findings, 2
// protocol/load errors). The facts output file is always written (empty
// — the suite exports no facts) so the vet driver's dependency chain
// stays satisfied.
func RunVetCfg(cfgPath string, suite []*Analyzer, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "reprolint: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "reprolint: parsing vet config %s: %v\n", cfgPath, err)
		return 2
	}
	writeFacts := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		writeFacts()
		return 0
	}

	// The test variant of a package is reported as "path [path.test]";
	// the path-keyed rules want the plain import path.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}

	fset := token.NewFileSet()
	pkg := &Package{ImportPath: importPath, Dir: cfg.Dir, Fset: fset}
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(w, "reprolint: %v\n", err)
			return 2
		}
		pkg.Name = f.Name.Name
		pkg.Files = append(pkg.Files, &File{Name: name, AST: f, Test: strings.HasSuffix(name, "_test.go")})
	}

	modPath := "repro"
	if _, p, err := findModule(cfg.Dir); err == nil {
		modPath = p
	}
	m := &Module{Path: modPath, Packages: []*Package{pkg}}
	diags := Run(m, suite)
	if len(diags) == 0 {
		writeFacts()
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	return 1
}
