package cluster

import wall "time"

// A renamed import must not dodge the check.
func later() <-chan wall.Time {
	return wall.After(wall.Second) // want `wall-clock time\.After in simulated-time package`
}
