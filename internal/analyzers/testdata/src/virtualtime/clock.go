package cluster

import "time"

// grain is a pure duration constant: types and constants from the time
// package stay legal, only wall-clock reads are banned.
const grain = 10 * time.Microsecond

func tick() time.Duration {
	start := time.Now()          // want `wall-clock time\.Now in simulated-time package repro/internal/cluster`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in simulated-time package`
	return time.Since(start)     // want `wall-clock time\.Since in simulated-time package`
}
