package service

import "errors"

var ErrBoom = errors.New("boom")

func wildcard(err error) bool {
	//reprolint:ignore all fixture exercises the wildcard
	return err == ErrBoom
}
