package service

import (
	"context"
	"sync"
)

type manager struct {
	wg    sync.WaitGroup
	queue chan int
}

func (m *manager) worker() {}

// start mirrors the production worker pool of manager.go: Add in the
// spawning function, Done in the workers, Wait in Shutdown. Clean.
func (m *manager) start(n int) {
	m.wg.Add(n)
	for i := 0; i < n; i++ {
		go m.worker()
	}
}

// drain mirrors Shutdown's bounded wait: the goroutine closes a channel
// the function receives from. Clean.
func (m *manager) drain() {
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	<-done
}

// watch selects on the context's Done channel: the goroutine exits with
// the caller. Clean.
func watch(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		}
	}()
}

// fireAndForget has no join evidence at all.
func (m *manager) fireAndForget() {
	go func() { // want `goroutine is never joined`
		m.queue <- 1
	}()
}

// spawnWorker starts a method goroutine without touching a WaitGroup.
func (m *manager) spawnWorker() {
	go m.worker() // want `goroutine is never joined`
}

// produce signals a channel, but nothing in this function receives from
// it — the join happens (or doesn't) in some caller the analyzer cannot
// see.
func produce(n int) chan int {
	out := make(chan int)
	go func() { // want `goroutine is never joined`
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
	return out
}

// suppressed: a documented fire-and-forget, with a reason.
func (m *manager) flusher() {
	//reprolint:ignore goroutinejoin fixture exercises a documented fire-and-forget
	go m.worker()
}
