package tidlist

type Set interface{ Support() int }

type KernelStats struct{}

func IntersectSetsSC(dst, a, b Set, minsup int, ks *KernelStats) (Set, int, bool) {
	return dst, 0, false
}

func IntersectSets(dst, a, b Set, ks *KernelStats) (Set, int) { return dst, 0 }

func consume(Set) {}

func notAssigned(a, b Set, ks *KernelStats) {
	IntersectSetsSC(nil, a, b, 10, ks) // want `results of tidlist\.IntersectSetsSC must be assigned`
}

func discardedFlagEscape(a, b Set, ks *KernelStats) {
	s, _, _ := IntersectSetsSC(nil, a, b, 10, ks)
	consume(s) // want `IntersectSetsSC result "s" escapes but the short-circuit flag was discarded`
}

func discardedFlagObserved(a, b Set, ks *KernelStats) int {
	s, _, _ := IntersectSetsSC(nil, a, b, 10, ks)
	return s.Support() // want `IntersectSetsSC result "s" escapes but the short-circuit flag was discarded`
}

func escapeBeforeCheck(a, b Set, ks *KernelStats) Set {
	s, _, ok := IntersectSetsSC(nil, a, b, 10, ks)
	consume(s) // want `IntersectSetsSC result "s" may escape before the short-circuit flag "ok" is checked`
	if !ok {
		return nil
	}
	return s
}

// guarded is the canonical production pattern: the flag gates every use.
func guarded(a, b Set, ks *KernelStats) Set {
	s, _, ok := IntersectSetsSC(nil, a, b, 10, ks)
	if !ok {
		return nil
	}
	return s
}

// scratchLoop discards the flag but keeps the result strictly in kernel
// scratch position, which the contract explicitly allows.
func scratchLoop(pairs [][2]Set, ks *KernelStats) {
	var scratch Set
	for _, p := range pairs {
		scratch, _, _ = IntersectSetsSC(scratch, p[0], p[1], 10, ks)
	}
}
