package eclat

import "context"

// The class-task engine refactor deleted the non-Options entry points;
// re-declaring any of them inside the eclat package is a diagnostic.

func Mine(cl, d any, minsup int) error { return nil } // want `declaration of retired repro/internal/eclat\.Mine; the name was deleted in favor of eclat\.MineOpts and must not return`

func MineHybrid(cl, d any, minsup int) error { return nil } // want `declaration of retired repro/internal/eclat\.MineHybrid; the name was deleted in favor of eclat\.MineHybridOpts and must not return`

func MineMaximal(ctx context.Context, d any, minsup int) error { return ctx.Err() } // want `declaration of retired repro/internal/eclat\.MineMaximal; the name was deleted in favor of eclat\.MineMaximalOpts and must not return`

func MineClosed(ctx context.Context, d any, minsup int) error { return ctx.Err() } // want `declaration of retired repro/internal/eclat\.MineClosed; the name was deleted in favor of eclat\.MineClosedOpts and must not return`

func MineSequentialDiffsets(ctx context.Context, d any, minsup int) error { return ctx.Err() } // want `declaration of retired repro/internal/eclat\.MineSequentialDiffsets; the name was deleted in favor of eclat\.MineSequentialDiffsetsOpts and must not return`

func MineClosedCHARM(ctx context.Context, d any, minsup int) error { return ctx.Err() } // want `declaration of retired repro/internal/eclat\.MineClosedCHARM; the name was deleted in favor of eclat\.MineClosedCHARMOpts and must not return`

// The kept names remain declarable: MineSequential (the historical
// sequential spelling) and MineMaximalParallel stay in the public set.
func MineSequential(d any, minsup int) error { return nil }

func MineMaximalParallel(cl, d any, minsup int) error { return nil }
