package eclat

import "repro/internal/tidlist"

func use(tidlist.Set) {}

// The check follows qualified calls through the import table.
func prune(a, b tidlist.Set, ks *tidlist.KernelStats) tidlist.Set {
	s, _, ok := tidlist.IntersectSetsSC(nil, a, b, 10, ks)
	use(s) // want `IntersectSetsSC result "s" may escape before the short-circuit flag "ok" is checked`
	if !ok {
		return nil
	}
	return s
}

// reuse keeps the flag-discarded result scratch-only across qualified
// kernel calls: no diagnostic.
func reuse(a, b tidlist.Set, ks *tidlist.KernelStats) {
	var scratch tidlist.Set
	scratch, _, _ = tidlist.IntersectSetsSC(scratch, a, b, 10, ks)
	scratch, _, _ = tidlist.IntersectSetsSC(scratch, b, a, 10, ks)
}
