package repro

import (
	"context"

	"repro/internal/eclat"
)

// MineGood is context-first: no diagnostic.
func MineGood(ctx context.Context, minsup int) error { return ctx.Err() }

func MineNoCtx(minsup int) error { return nil } // want `exported mining entry point MineNoCtx must take context\.Context as its first parameter`

func helper(n int, ctx context.Context) error { return ctx.Err() } // want `function helper has context\.Context as parameter 2`

var _ = func(name string, ctx context.Context) {} // want `function literal has context\.Context as parameter 2`

// unexported, context-first closures and plain functions stay silent.
func quiet(ctx context.Context) { _ = func(ctx context.Context) {} }

func callers(ctx context.Context, minsup int) {
	MineContext(ctx, minsup)             // want `call to deprecated repro\.MineContext; use the context-first repro\.Mine`
	eclat.MineSequentialCtx(ctx, minsup) // want `call to deprecated repro/internal/eclat\.MineSequentialCtx; use the context-first eclat\.MineSequentialOpts`
}

// Reintroducing a retired wrapper name is flagged at the declaration,
// even though the signature is context-first.
func MineContext(ctx context.Context, minsup int) error { return ctx.Err() } // want `declaration of retired repro\.MineContext; the name was deleted in favor of repro\.Mine and must not return`

// MineVertical was folded into MineFrom; its name may not come back.
func MineVertical(ctx context.Context, minsup int) error { return ctx.Err() } // want `declaration of retired repro\.MineVertical; the name was deleted in favor of repro\.MineFrom and must not return`
