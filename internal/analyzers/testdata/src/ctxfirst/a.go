package repro

import (
	"context"

	"repro/internal/eclat"
)

// MineGood is context-first: no diagnostic.
func MineGood(ctx context.Context, minsup int) error { return ctx.Err() }

func MineNoCtx(minsup int) error { return nil } // want `exported mining entry point MineNoCtx must take context\.Context as its first parameter`

func helper(n int, ctx context.Context) error { return ctx.Err() } // want `function helper has context\.Context as parameter 2`

var _ = func(name string, ctx context.Context) {} // want `function literal has context\.Context as parameter 2`

// unexported, context-first closures and plain functions stay silent.
func quiet(ctx context.Context) { _ = func(ctx context.Context) {} }

func callers(ctx context.Context, minsup int) {
	MineContext(ctx, minsup)             // want `call to deprecated repro\.MineContext; use the context-first repro\.Mine`
	eclat.MineSequentialCtx(ctx, minsup) // want `call to deprecated repro/internal/eclat\.MineSequentialCtx; use the context-first eclat\.MineSequentialOpts`

	// The non-Options eclat spellings were retired by the class-task
	// engine refactor; every call must go through the *Opts entry points.
	eclat.Mine(nil, nil, minsup)                         // want `call to deprecated repro/internal/eclat\.Mine; use the context-first eclat\.MineOpts`
	eclat.MineHybrid(nil, nil, minsup)                   // want `call to deprecated repro/internal/eclat\.MineHybrid; use the context-first eclat\.MineHybridOpts`
	eclat.MineMaximal(ctx, nil, minsup)                  // want `call to deprecated repro/internal/eclat\.MineMaximal; use the context-first eclat\.MineMaximalOpts`
	eclat.MineClosed(ctx, nil, minsup)                   // want `call to deprecated repro/internal/eclat\.MineClosed; use the context-first eclat\.MineClosedOpts`
	eclat.MineSequentialDiffsets(ctx, nil, minsup)       // want `call to deprecated repro/internal/eclat\.MineSequentialDiffsets; use the context-first eclat\.MineSequentialDiffsetsOpts`
	eclat.MineClosedCHARM(ctx, nil, minsup)              // want `call to deprecated repro/internal/eclat\.MineClosedCHARM; use the context-first eclat\.MineClosedCHARMOpts`
	eclat.MineSequentialOpts(ctx, nil, minsup, nil)      // kept: Options entry point, no diagnostic
	eclat.MineMaximalParallelOpts(nil, nil, minsup, nil) // kept: Options entry point, no diagnostic
}

// Reintroducing a retired wrapper name is flagged at the declaration,
// even though the signature is context-first.
func MineContext(ctx context.Context, minsup int) error { return ctx.Err() } // want `declaration of retired repro\.MineContext; the name was deleted in favor of repro\.Mine and must not return`

// MineVertical was folded into MineFrom; its name may not come back.
func MineVertical(ctx context.Context, minsup int) error { return ctx.Err() } // want `declaration of retired repro\.MineVertical; the name was deleted in favor of repro\.MineFrom and must not return`
