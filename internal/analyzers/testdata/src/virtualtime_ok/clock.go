package eclat

import "time"

// Outside the simulated-time packages wall-clock reads are fine; this
// fixture is loaded under repro/internal/eclat and must stay silent.
func stamp() time.Time { return time.Now() }
