package service

import (
	"errors"
	"sync"
)

var ErrBoom = errors.New("boom")

func check(err error) bool {
	//reprolint:ignore senterr fixture exercises the directive on the preceding line
	if err == ErrBoom {
		return true
	}
	if err == ErrBoom { //reprolint:ignore senterr fixture exercises the same-line directive
		return true
	}
	return err == ErrBoom // want `sentinel error ErrBoom compared with ==; use errors\.Is`
}

func multi(err error) bool {
	//reprolint:ignore senterr,virtualtime fixture exercises a multi-analyzer directive
	return err != ErrBoom
}

type pool struct {
	mu sync.Mutex
}

func (p *pool) worker() {}

// multiV2 exercises one directive naming two of the flow-sensitive
// analyzers: the relock (lockorder) and the unjoined goroutine
// (goroutinejoin) on the lines below are both silenced.
func (p *pool) multiV2() {
	p.mu.Lock()
	//reprolint:ignore lockorder,goroutinejoin fixture exercises a multi-analyzer directive over the v2 checks
	p.mu.Lock()
	//reprolint:ignore goroutinejoin,lockorder fixture exercises the reversed spelling too
	go p.worker()
	p.mu.Unlock()
	p.mu.Unlock()
}
