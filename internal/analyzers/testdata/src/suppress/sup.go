package service

import "errors"

var ErrBoom = errors.New("boom")

func check(err error) bool {
	//reprolint:ignore senterr fixture exercises the directive on the preceding line
	if err == ErrBoom {
		return true
	}
	if err == ErrBoom { //reprolint:ignore senterr fixture exercises the same-line directive
		return true
	}
	return err == ErrBoom // want `sentinel error ErrBoom compared with ==; use errors\.Is`
}

func multi(err error) bool {
	//reprolint:ignore senterr,virtualtime fixture exercises a multi-analyzer directive
	return err != ErrBoom
}
