package service

import (
	"repro/internal/store"
	"repro/internal/tidlist"
)

// mineFromStore holds the legal shapes: store views flow into kernel
// operand positions (a/b of the scratch-first kernels, the whole slice
// of IntersectKSetsSC) and out through arena clones, never into a
// write position. Clean.
func mineFromStore(dir string, ks *tidlist.KernelStats, ar *tidlist.Arena) {
	ds, err := store.OpenDataset(dir)
	if err != nil {
		return
	}
	sets := ds.Sets(nil)
	var scratch tidlist.Set
	scratch, _ = tidlist.IntersectSets(scratch, sets[0], sets[1], ks)
	tidlist.IntersectKSetsSC(sets, 2, ks)
	owned := ar.CloneSetInto(sets[0])
	_, _ = scratch, owned
}

// viewAsScratch passes a view in the destination slot: the kernel
// writes its result through the mapping.
func viewAsScratch(dir string, ks *tidlist.KernelStats) {
	ds, err := store.OpenDataset(dir)
	if err != nil {
		return
	}
	sets := ds.Sets(nil)
	tidlist.IntersectSets(sets[0], sets[1], sets[2], ks) // want `mmap-backed store view used as the scratch argument of tidlist\.IntersectSets;`
}

// aliasAsScratch: taint follows aliases and elements into DiffSets.
func aliasAsScratch(ds *store.Dataset, ks *tidlist.KernelStats) {
	vs := ds.VerticalSets(nil)
	alias := vs
	tidlist.DiffSets(alias[2], vs[0], vs[1], ks) // want `mmap-backed store view used as the scratch argument of tidlist\.DiffSets;`
}

// copyIntoView writes the shared mapping through a decoded view.
func copyIntoView(ds *store.Dataset) {
	lists := ds.SparseLists()
	copy(lists[0], lists[1]) // want `copy into an mmap-backed store view writes the shared mapping`
}

// appendToView: append may write in place when capacity allows.
func appendToView(ds *store.Dataset) {
	for _, s := range ds.Roarings() {
		_ = append(s, 0) // want `append to an mmap-backed store view may write the shared mapping`
	}
}

// suppressed: a deliberate in-place scratch reuse, with a reason.
func scratchSuppressed(ds *store.Dataset, ks *tidlist.KernelStats) {
	sets := ds.Sets(nil)
	//reprolint:ignore mmapalias fixture exercises suppression of the scratch rule
	tidlist.DiffSets(sets[0], sets[1], sets[2], ks)
}
