package service

import "errors"

var ErrBoom = errors.New("boom")

func bad(err error) bool {
	//reprolint:ignore senterr
	if err == ErrBoom {
		return true
	}
	//reprolint:ignore nosuch because it does not exist
	return err == ErrBoom
}
