package eclat

import (
	"sync"
	"sync/atomic"
)

// supportHeap mirrors the production top-k heap of engine.go: the
// effective threshold is read lock-free on the hot path, so every
// access must go through sync/atomic.
type supportHeap struct {
	mu     sync.Mutex
	k      int
	h      []int
	eff    atomic.Int64
	raises atomic.Int64
}

// offer is the canonical production shape: Load on the fast path,
// Store/Add under the mutex. Clean.
func (sh *supportHeap) offer(sup int) {
	if eff := sh.eff.Load(); eff > 0 && int64(sup) <= eff {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.h) == sh.k {
		sh.eff.Store(int64(sh.h[0]))
		sh.raises.Add(1)
	}
}

// current reads the threshold plainly — the seeded violation the
// analyzer exists for: it races every concurrent Store.
func (sh *supportHeap) current() int64 {
	return int64(sh.eff) // want `plain access to atomic field sh\.eff \(supportHeap\.eff\)`
}

// reset writes an atomic field plainly.
func (sh *supportHeap) reset() {
	sh.eff = atomic.Int64{} // want `plain access to atomic field sh\.eff \(supportHeap\.eff\)`
	sh.raises.Store(0)
}

// snapshot copies an atomic field by value.
func (sh *supportHeap) snapshot() any {
	return sh.raises // want `plain access to atomic field sh\.raises \(supportHeap\.raises\)`
}

// countSteals mirrors the old-style counter of runParallel: once the
// variable is updated with atomic.AddInt64, a plain read races the
// workers.
func countSteals(workers int) int64 {
	var steals int64
	for w := 0; w < workers; w++ {
		go func() {
			atomic.AddInt64(&steals, 1)
		}()
	}
	return steals // want `plain access to "steals", which is elsewhere accessed via sync/atomic`
}

// countStealsAtomic is the fixed shape: every access is atomic. Clean.
func countStealsAtomic(workers int) int64 {
	var steals int64
	for w := 0; w < workers; w++ {
		go func() {
			atomic.AddInt64(&steals, 1)
		}()
	}
	return atomic.LoadInt64(&steals)
}

// localHeap: composite-literal typed locals are tracked too.
func localHeap() {
	sh := &supportHeap{k: 8}
	sh.eff.Store(1)
	x := sh.eff // want `plain access to atomic field sh\.eff \(supportHeap\.eff\)`
	_ = x
}

// suppressed: a deliberately racy stats probe, with a reason.
func (sh *supportHeap) racyProbe() any {
	//reprolint:ignore atomiconly fixture exercises suppression for a debug-only racy read
	return sh.eff
}
