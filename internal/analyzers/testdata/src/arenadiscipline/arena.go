package eclat

// arena and arenaMark mirror the production scratch arena of arena.go:
// mark/release bracket each level of the class recursion, and Release
// truncates the arena back to the mark.
type arenaMark struct {
	chunk, off int
}

type arena struct {
	chunk, off int
}

func (a *arena) mark() arenaMark     { return arenaMark{a.chunk, a.off} }
func (a *arena) release(m arenaMark) { a.chunk, a.off = m.chunk, m.off }

type member struct {
	sup int
}

func emit(member)    {}
func keep(arenaMark) {}

// computeFrequent mirrors the production recursion of eclat.go: each
// loop iteration brackets its sub-class state with mark/release, the
// release post-dominating the mark. Clean.
func computeFrequent(ar *arena, members []member) {
	for i := range members {
		m := ar.mark()
		emit(members[i])
		ar.release(m)
	}
}

// diffTransition mirrors the deferred form of eclat.go. Clean.
func diffTransition(ar *arena, members []member) {
	m := ar.mark()
	defer ar.release(m)
	for _, mem := range members {
		emit(mem)
	}
}

// markBoth mirrors arena.mark itself, which wraps the underlying marks
// in a composite literal: consumption by a wrapper is not tracked. Clean.
type twoMark struct {
	sets    arenaMark
	members arenaMark
}

func (a *arena) markBoth(b *arena) twoMark {
	return twoMark{sets: a.mark(), members: b.mark()}
}

// leakMark never releases: the arena grows for the rest of the run.
func leakMark(ar *arena, members []member) {
	m := ar.mark() // want `arena mark "m" from ar\.Mark\(\) is never released in this function`
	_ = m
	for _, mem := range members {
		emit(mem)
	}
}

// earlyReturn releases on the fall-through path but not the early exit.
func earlyReturn(ar *arena, members []member) {
	m := ar.mark() // want `arena mark "m" is not released on every path to the function exit`
	if len(members) == 0 {
		return
	}
	emit(members[0])
	ar.release(m)
}

// outOfOrder releases the outer mark first: Release truncates back to
// the outer mark, resurrecting everything the inner mark still covers.
func outOfOrder(ar *arena, members []member) {
	outer := ar.mark()
	inner := ar.mark()
	emit(members[0])
	ar.release(outer) // want `arena marks released out of LIFO order: "inner" must be released before "outer"`
	ar.release(inner)
}

// discard drops the mark on the floor — it can never be released.
func discard(ar *arena) {
	ar.mark() // want `arena mark from ar\.Mark\(\) is discarded`
}

// suppressed: a wrapper-owned mark handed to a helper, with a reason.
func handOff(ar *arena) {
	//reprolint:ignore arenadiscipline fixture exercises suppression for a helper-owned mark
	m := ar.mark()
	keep(m)
}
