package service

import "repro/internal/obsv"

const (
	mnGood       = "jobs_done_total"
	mnQueue      = "queue_len"
	mnBadCase    = "Bad-Name"
	mnNoTotal    = "jobs_done"
	mnGaugeTotal = "queue_len_total"
	mnPrefix     = "phase_"
	mnSuffix     = "_ns"
)

var (
	_ = obsv.Default.Counter(mnGood, "constant snake_case counter: fine")
	_ = obsv.Default.Gauge(mnQueue, "constant snake_case gauge: fine")
	_ = obsv.Default.Counter("inline_total", "bad") // want `obsv\.Counter name must be a package-level constant, not an inline string literal`
	_ = obsv.Default.Counter(mnBadCase, "bad")      // want `metric name "Bad-Name" is not snake_case`
	_ = obsv.Default.Counter(mnNoTotal, "bad")      // want `counter name "jobs_done" must end in _total`
	_ = obsv.Default.Gauge(mnGaugeTotal, "bad")     // want `gauge name "queue_len_total" must not end in _total`
	_ = obsv.Default.Counter(mnUndefined, "bad")    // want `obsv\.Counter name must resolve to a package-level string constant`

	_ = obsv.Default.Histogram(mnPrefix+obsv.SanitizeName("x")+mnSuffix, "constant-prefixed dynamic name: fine", nil)
	_ = obsv.Default.Histogram(mnPrefix+"lit"+mnSuffix, "bad", nil)         // want `dynamic obsv\.Histogram name segment must be a package-level constant, not an inline string literal`
	_ = obsv.Default.Histogram(obsv.SanitizeName("x")+mnSuffix, "bad", nil) // want `dynamic obsv\.Histogram name must start with a constant prefix segment`
)
