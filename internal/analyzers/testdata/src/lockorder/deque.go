package eclat

import "sync"

type classTask struct {
	ci     int
	weight int64
}

// wsDeque mirrors the production work-stealing deque of local.go.
type wsDeque struct {
	mu     sync.Mutex
	tasks  []classTask
	weight int64
}

// popFront is the canonical single-lock shape: clean.
func (q *wsDeque) popFront() (classTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return classTask{}, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t, true
}

// stealInto mirrors the production transfer: the index comparison
// establishes the acquisition order before both locks are taken. Clean.
func (q *wsDeque) stealInto(dst *wsDeque, qi, dsti int) int {
	first, second := q, dst
	if dsti < qi {
		first, second = dst, q
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()

	n := (len(q.tasks) + 1) / 2
	dst.tasks = append(dst.tasks, q.tasks[len(q.tasks)-n:]...)
	q.tasks = q.tasks[:len(q.tasks)-n]
	return n
}

// stealIntoUnordered is the seeded violation: the same transfer as
// stealInto with the ordering comparison removed — two symmetric
// thieves deadlock.
func (q *wsDeque) stealIntoUnordered(dst *wsDeque) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	dst.mu.Lock() // want `dst\.mu\.Lock\(\) while q\.mu is held: same-typed mutexes must be acquired in index order`
	defer dst.mu.Unlock()

	n := (len(q.tasks) + 1) / 2
	dst.tasks = append(dst.tasks, q.tasks[len(q.tasks)-n:]...)
	q.tasks = q.tasks[:len(q.tasks)-n]
	return n
}

// deferredRelock: the deferred Unlock only runs at exit, so the second
// Lock still deadlocks.
func (q *wsDeque) deferredRelock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.mu.Lock() // want `second q\.mu\.Lock\(\) reachable while the first is still held`
	defer q.mu.Unlock()
}

// lockInLoop: the back edge reaches the Lock again with no Unlock on
// the path.
func (q *wsDeque) lockInLoop(n int) {
	for i := 0; i < n; i++ {
		q.mu.Lock() // want `q\.mu\.Lock\(\) is reachable again before q\.mu\.Unlock\(\): possible self-deadlock`
		q.weight++
	}
}

// relockAfterUnlock: a plain Unlock between the two Locks breaks every
// path. Clean.
func (q *wsDeque) relockAfterUnlock() {
	q.mu.Lock()
	q.weight = 0
	q.mu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
}

// suppressed: the unordered pair is acknowledged with a reason.
func (q *wsDeque) stealIntoSuppressed(dst *wsDeque) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//reprolint:ignore lockorder fixture exercises suppression of the ordering rule
	dst.mu.Lock()
	defer dst.mu.Unlock()
}
