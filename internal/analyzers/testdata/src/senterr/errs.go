package service

import (
	"context"
	"errors"
)

var ErrQueueFull = errors.New("queue full")

func classify(err error) string {
	if err == ErrQueueFull { // want `sentinel error ErrQueueFull compared with ==; use errors\.Is`
		return "full"
	}
	if err != context.Canceled { // want `sentinel error context\.Canceled compared with !=; use errors\.Is`
		return "other"
	}
	switch err {
	case context.DeadlineExceeded: // want `sentinel error context\.DeadlineExceeded used as a switch case`
		return "deadline"
	case ErrQueueFull: // want `sentinel error ErrQueueFull used as a switch case`
		return "full"
	}
	if errors.Is(err, ErrQueueFull) { // the sanctioned comparison: fine
		return "full"
	}
	if err == nil { // nil comparison is not a sentinel comparison: fine
		return "nil"
	}
	return ""
}
