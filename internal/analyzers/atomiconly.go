package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// AtomicOnly enforces the all-or-nothing rule of sync/atomic (DESIGN.md
// §8): once a struct field or local variable is touched through atomic
// operations anywhere in the package, every access must be atomic. A
// single plain read ("it's just a stat") is still a data race — the
// top-k threshold eff and the steal counters are exactly the fields the
// race detector only catches under contention.
//
// Two access styles are tracked:
//
//   - typed fields: a struct field declared as atomic.Int64 (or any of
//     the atomic.* value types) must only be used as the receiver of
//     Load/Store/Add/Swap/CompareAndSwap, or behind & inside a
//     sync/atomic call.
//
//   - old-style variables: a local passed as &x to atomic.AddInt64 and
//     friends must not be read or reassigned plainly afterwards
//     (declaration and := initialization are allowed — the variable is
//     unpublished until the first atomic use).
//
// The field analysis is receiver-scoped and package-wide: fields are
// collected from every struct declaration and every atomic.*(&recv.f)
// call in the package, then every method body (and composite-literal
// typed local) is checked. Purely syntactic — no go/types — so access
// through interfaces or across packages is out of scope.
var AtomicOnly = &Analyzer{
	Name: "atomiconly",
	Doc: "struct fields and locals accessed through sync/atomic must never be read or " +
		"written plainly; mixing atomic and plain access is a data race",
	Run: runAtomicOnly,
}

// atomicScalarTypes are the atomic.* value types whose fields the
// analyzer tracks. Slices/arrays of atomics are deliberately not
// tracked: len/range over them is legitimate plain access.
var atomicScalarTypes = map[string]bool{
	"Bool":    true,
	"Int32":   true,
	"Int64":   true,
	"Uint32":  true,
	"Uint64":  true,
	"Uintptr": true,
	"Pointer": true,
	"Value":   true,
}

// atomicValueMethods are the methods of the atomic.* value types.
var atomicValueMethods = map[string]bool{
	"Load":           true,
	"Store":          true,
	"Add":            true,
	"Swap":           true,
	"CompareAndSwap": true,
}

// isAtomicPkgFunc reports whether call invokes a function of the
// sync/atomic package (AddInt64, LoadUint32, StorePointer, ...).
func isAtomicPkgFunc(f *File, call *ast.CallExpr) bool {
	path, name, ok := resolveQualified(f, call.Fun)
	if !ok || path != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// isAtomicValueType reports whether the type expression denotes one of
// the atomic.* value types (including the generic atomic.Pointer[T]).
func isAtomicValueType(f *File, typ ast.Expr) bool {
	if ix, ok := typ.(*ast.IndexExpr); ok {
		typ = ix.X
	}
	path, name, ok := resolveQualified(f, typ)
	return ok && path == "sync/atomic" && atomicScalarTypes[name]
}

func runAtomicOnly(pass *Pass) {
	fields := collectAtomicFields(pass)
	for _, f := range pass.files() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkAtomicFunc(pass, f, fn, fields)
		}
	}
}

// collectAtomicFields builds the package-wide map of struct type name
// -> atomic field names, from both declared atomic.* field types and
// old-style atomic.*(&recv.field) calls inside methods.
func collectAtomicFields(pass *Pass) map[string]map[string]bool {
	fields := make(map[string]map[string]bool)
	add := func(typeName, fieldName string) {
		if fields[typeName] == nil {
			fields[typeName] = make(map[string]bool)
		}
		fields[typeName][fieldName] = true
	}
	for _, f := range pass.files() {
		for _, decl := range f.AST.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !isAtomicValueType(f, field.Type) {
							continue
						}
						for _, name := range field.Names {
							add(ts.Name.Name, name.Name)
						}
					}
				}
			case *ast.FuncDecl:
				recvName, recvType := receiverIdent(d)
				if recvName == "" || d.Body == nil {
					continue
				}
				ast.Inspect(d.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isAtomicPkgFunc(f, call) || len(call.Args) == 0 {
						return true
					}
					un, ok := call.Args[0].(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						return true
					}
					sel, ok := un.X.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if root, ok := sel.X.(*ast.Ident); ok && root.Name == recvName {
						add(recvType, sel.Sel.Name)
					}
					return true
				})
			}
		}
	}
	return fields
}

// receiverIdent returns the receiver variable name and the bare
// receiver type name of a method declaration ("" for plain functions
// and anonymous receivers).
func receiverIdent(fn *ast.FuncDecl) (name, typeName string) {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return "", ""
	}
	typ := fn.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if ix, ok := typ.(*ast.IndexExpr); ok { // generic receiver T[P]
		typ = ix.X
	}
	id, ok := typ.(*ast.Ident)
	if !ok {
		return "", ""
	}
	return fn.Recv.List[0].Names[0].Name, id.Name
}

// checkAtomicFunc checks one top-level function body, including its
// nested literals: closures share the enclosing variables, so the whole
// declaration is one scope for old-style locals.
func checkAtomicFunc(pass *Pass, f *File, fn *ast.FuncDecl, fields map[string]map[string]bool) {
	// varTypes maps identifier name -> struct type name for roots whose
	// atomic fields we can check: the receiver, plus locals assigned
	// from a composite literal of a tracked type.
	varTypes := make(map[string]string)
	if recvName, recvType := receiverIdent(fn); recvName != "" && len(fields[recvType]) > 0 {
		varTypes[recvName] = recvType
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		lhs, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		rhs := assign.Rhs[0]
		if un, ok := rhs.(*ast.UnaryExpr); ok && un.Op == token.AND {
			rhs = un.X
		}
		cl, ok := rhs.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if id, ok := cl.Type.(*ast.Ident); ok && len(fields[id.Name]) > 0 {
			varTypes[lhs.Name] = id.Name
		}
		return true
	})

	// Old-style locals: names passed as &x to a sync/atomic function
	// anywhere in this declaration.
	atomicLocals := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicPkgFunc(f, call) || len(call.Args) == 0 {
			return true
		}
		if un, ok := call.Args[0].(*ast.UnaryExpr); ok && un.Op == token.AND {
			if id, ok := un.X.(*ast.Ident); ok {
				atomicLocals[id.Name] = true
			}
		}
		return true
	})

	if len(varTypes) == 0 && len(atomicLocals) == 0 {
		return
	}

	walkWithStack(fn.Body, func(n ast.Node, stack []ast.Node) {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			root, ok := x.X.(*ast.Ident)
			if !ok {
				return
			}
			typeName, tracked := varTypes[root.Name]
			if !tracked || !fields[typeName][x.Sel.Name] {
				return
			}
			if atomicFieldUseOK(f, x, stack) {
				return
			}
			pass.Reportf(x.Pos(), "plain access to atomic field %s.%s (%s.%s); use Load/Store/Add — mixing atomic and plain access is a data race",
				root.Name, x.Sel.Name, typeName, x.Sel.Name)
		case *ast.Ident:
			if !atomicLocals[x.Name] {
				return
			}
			if atomicLocalUseOK(f, x, stack) {
				return
			}
			pass.Reportf(x.Pos(), "plain access to %q, which is elsewhere accessed via sync/atomic; use atomic ops for every access (or make it an atomic.Int64)",
				x.Name)
		}
	})
}

// atomicFieldUseOK reports whether this occurrence of recv.field is a
// legal atomic access: the receiver of an atomic value method call, or
// behind & as an argument of a sync/atomic package function.
func atomicFieldUseOK(f *File, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// sel.field.Load() — parent is the method selector, grandparent
		// must be the call applying it.
		if p.X == ast.Expr(sel) && atomicValueMethods[p.Sel.Name] && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
				return true
			}
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND && p.X == ast.Expr(sel) && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && isAtomicPkgFunc(f, call) {
				return true
			}
		}
	}
	return false
}

// atomicLocalUseOK reports whether this occurrence of an old-style
// atomic local is legal: its declaration, a := initialization, a field
// name that merely shares the spelling, or the &x argument of a
// sync/atomic call.
func atomicLocalUseOK(f *File, id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return true
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// x.steals (field of something else) or steals.X (receiver —
		// not possible for scalars, but be permissive for the root of
		// someone else's chain only when id is the Sel).
		if p.Sel == id {
			return true
		}
	case *ast.ValueSpec:
		for _, n := range p.Names {
			if n == id {
				return true
			}
		}
	case *ast.AssignStmt:
		if p.Tok == token.DEFINE {
			for _, lhs := range p.Lhs {
				if lhs == ast.Expr(id) {
					return true
				}
			}
		}
	case *ast.Field:
		return true // parameter or result declaration
	case *ast.UnaryExpr:
		if p.Op == token.AND && p.X == ast.Expr(id) && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && isAtomicPkgFunc(f, call) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		if p.Key == ast.Expr(id) {
			return true // struct literal key sharing the spelling
		}
	}
	return false
}
