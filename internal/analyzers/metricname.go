package analyzers

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

const obsvPath = "repro/internal/obsv"

// metricRegFuncs maps obsv registration method names to their expected
// argument count (name, help[, extra]); the name is always argument 0.
var metricRegFuncs = map[string]int{
	"Counter":   2,
	"Gauge":     2,
	"GaugeFunc": 3,
	"Histogram": 3,
}

// metricNameRE is the exposition-safe naming convention: snake_case,
// starting with a letter. A trailing underscore is allowed so that
// dynamic-name prefixes ("mine_phase_") can be validated too.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// MetricName enforces the obsv naming conventions: metric names are
// package-level string constants (never inline literals, so the name
// set is greppable in one place per package), snake_case, counters end
// in _total, and nothing but counters ends in _total. Dynamic names
// must be concatenations whose constant segments are package-level
// constants (e.g. mnMinePhasePrefix + obsv.SanitizeName(x) + mnNSSuffix).
var MetricName = &Analyzer{
	Name:        "metricname",
	IgnoreTests: true,
	Doc: "obsv metric names must be snake_case package-level constants; counters end in " +
		"_total and only counters do; dynamic names concatenate constant segments",
	Run: runMetricName,
}

func runMetricName(pass *Pass) {
	for _, f := range pass.files() {
		if _, importsObsv := f.ImportName(obsvPath); !importsObsv && pass.Pkg.ImportPath != obsvPath {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			want, isReg := metricRegFuncs[sel.Sel.Name]
			if !isReg || len(call.Args) != want {
				return true
			}
			// Only treat this as a metric registration when the receiver
			// chain plausibly reaches the obsv registry (obsv.Default.…,
			// a local *obsv.Registry, …). Requiring the file to import
			// obsv already filtered most of the world; additionally skip
			// receivers that are themselves package qualifiers of other
			// packages (e.g. otherpkg.Counter(...)).
			if path, _, isQualified := resolveQualified(f, sel); isQualified && path != obsvPath {
				return true
			}
			checkMetricNameArg(pass, f, sel.Sel.Name, call.Args[0])
			return true
		})
	}
}

// checkMetricNameArg validates the name argument of one registration.
func checkMetricNameArg(pass *Pass, f *File, regFunc string, arg ast.Expr) {
	switch x := arg.(type) {
	case *ast.BasicLit:
		if x.Kind == token.STRING {
			pass.Reportf(x.Pos(), "obsv.%s name must be a package-level constant, not an inline string literal", regFunc)
		}
	case *ast.Ident, *ast.SelectorExpr:
		value, ok := resolveConstRef(pass, f, arg)
		if !ok {
			pass.Reportf(arg.Pos(), "obsv.%s name must resolve to a package-level string constant", regFunc)
			return
		}
		validateMetricName(pass, arg, regFunc, value, true)
	case *ast.BinaryExpr:
		checkDynamicMetricName(pass, f, regFunc, x)
	default:
		pass.Reportf(arg.Pos(), "obsv.%s name must be a package-level constant or a concatenation of constants and sanitized segments", regFunc)
	}
}

// checkDynamicMetricName validates a concatenated name expression: its
// leaves must be constant references or call expressions (the dynamic
// segment, e.g. obsv.SanitizeName(...)), never inline literals, and the
// first leaf must be a resolvable constant so every metric family has a
// greppable constant prefix.
func checkDynamicMetricName(pass *Pass, f *File, regFunc string, expr *ast.BinaryExpr) {
	leaves := flattenConcat(expr)
	if leaves == nil {
		pass.Reportf(expr.Pos(), "obsv.%s name expression must be a pure + concatenation", regFunc)
		return
	}
	for i, leaf := range leaves {
		switch l := leaf.(type) {
		case *ast.BasicLit:
			pass.Reportf(l.Pos(), "dynamic obsv.%s name segment must be a package-level constant, not an inline string literal", regFunc)
		case *ast.Ident, *ast.SelectorExpr:
			value, ok := resolveConstRef(pass, f, leaf)
			if !ok {
				pass.Reportf(leaf.Pos(), "dynamic obsv.%s name segment must resolve to a package-level string constant", regFunc)
				continue
			}
			// Segment charset check only; _total placement is checked on
			// fully-constant names, which a concatenation is not.
			if !metricNameRE.MatchString(value) && i == 0 {
				pass.Reportf(leaf.Pos(), "metric name prefix %q is not snake_case ([a-z][a-z0-9_]*)", value)
			}
		case *ast.CallExpr:
			// The dynamic segment; assumed sanitized by the callee.
		default:
			pass.Reportf(leaf.Pos(), "unsupported dynamic obsv.%s name segment", regFunc)
		}
	}
	if len(leaves) > 0 {
		if _, ok := leaves[0].(*ast.CallExpr); ok {
			pass.Reportf(leaves[0].Pos(), "dynamic obsv.%s name must start with a constant prefix segment", regFunc)
		}
	}
}

// flattenConcat unfolds a left-assoc + tree into its leaves, or nil if
// any operator is not +.
func flattenConcat(expr ast.Expr) []ast.Expr {
	switch x := expr.(type) {
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return nil
		}
		left := flattenConcat(x.X)
		right := flattenConcat(x.Y)
		if left == nil || right == nil {
			return nil
		}
		return append(left, right...)
	case *ast.ParenExpr:
		return flattenConcat(x.X)
	default:
		return []ast.Expr{expr}
	}
}

// resolveConstRef resolves an identifier or pkg-qualified selector to a
// module-level string constant value.
func resolveConstRef(pass *Pass, f *File, expr ast.Expr) (string, bool) {
	switch x := expr.(type) {
	case *ast.Ident:
		return pass.Module.StringConst(pass.Pkg.ImportPath, x.Name)
	case *ast.SelectorExpr:
		path, name, ok := resolveQualified(f, x)
		if !ok {
			return "", false
		}
		return pass.Module.StringConst(path, name)
	}
	return "", false
}

// validateMetricName checks a fully-known name against the conventions.
func validateMetricName(pass *Pass, at ast.Expr, regFunc, name string, complete bool) {
	if !metricNameRE.MatchString(name) {
		pass.Reportf(at.Pos(), "metric name %q is not snake_case ([a-z][a-z0-9_]*)", name)
		return
	}
	if !complete {
		return
	}
	isTotal := strings.HasSuffix(name, "_total")
	if regFunc == "Counter" && !isTotal {
		pass.Reportf(at.Pos(), "counter name %q must end in _total", name)
	}
	if regFunc != "Counter" && isTotal {
		pass.Reportf(at.Pos(), "%s name %q must not end in _total (that suffix is reserved for counters)", strings.ToLower(regFunc), name)
	}
}
