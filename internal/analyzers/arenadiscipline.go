package analyzers

import (
	"go/ast"
)

// ArenaDiscipline enforces the stack discipline of the scratch arenas
// (DESIGN.md §8): every Arena.Mark() must be paired with a Release on
// every path from the mark to the function exit — either deferred or
// post-dominating the mark — and nested marks must be released in LIFO
// order, because Release truncates the arena back to the mark and a
// later out-of-order Release would resurrect freed sets.
//
// Tracked shape: a mark assigned to a single plain identifier
// (`m := ar.Mark()`; both the exported tidlist.Arena spelling and the
// unexported eclat wrapper `mark()`/`release()` count), matched against
// `ar.Release(m)` calls on the same receiver chain with that identifier
// as the argument. Marks consumed in any other position (composite
// literals, call arguments, returns) are a wrapper's business and are
// not tracked — except a mark discarded as a bare statement, which can
// never be released and is always a finding.
//
// The LIFO check only looks at non-deferred Release statements: defers
// execute in reverse registration order, which the statement CFG cannot
// see, so defer-based release order is left to the runtime.
var ArenaDiscipline = &Analyzer{
	Name: "arenadiscipline",
	Doc: "every arena Mark needs a matching Release on all exit paths of the enclosing " +
		"function (deferred or post-dominating), and nested marks must release in LIFO order",
	Run: runArenaDiscipline,
}

// markCall destructures expr as <chain>.Mark() / <chain>.mark() with no
// arguments.
func markCall(expr ast.Expr) (chain string, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Mark" && sel.Sel.Name != "mark") {
		return "", false
	}
	chain = selectorChain(sel.X)
	if chain == "" {
		return "", false
	}
	return chain, true
}

// releaseCall destructures expr as <chain>.Release(ident) /
// <chain>.release(ident).
func releaseCall(expr ast.Expr) (chain, arg string, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall || len(call.Args) != 1 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Release" && sel.Sel.Name != "release") {
		return "", "", false
	}
	id, isIdent := call.Args[0].(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	chain = selectorChain(sel.X)
	if chain == "" {
		return "", "", false
	}
	return chain, id.Name, true
}

// arenaMarkSite is one tracked `m := ar.Mark()` statement.
type arenaMarkSite struct {
	node  *cfgNode
	stmt  ast.Stmt
	chain string // arena receiver, e.g. "ar"
	name  string // mark variable
	pos   ast.Node
}

// arenaReleaseSite is one `ar.Release(m)` statement.
type arenaReleaseSite struct {
	node     *cfgNode
	stmt     ast.Stmt
	chain    string
	arg      string
	deferred bool
}

func runArenaDiscipline(pass *Pass) {
	for _, f := range pass.files() {
		eachFuncBody(f, func(name string, recv *ast.FieldList, body *ast.BlockStmt) {
			checkArenaFunc(pass, body)
		})
	}
}

func checkArenaFunc(pass *Pass, body *ast.BlockStmt) {
	var marks []arenaMarkSite
	var releases []arenaReleaseSite
	funcStmts(body, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			if chain, ok := markCall(s.Rhs[0]); ok {
				marks = append(marks, arenaMarkSite{stmt: s, chain: chain, name: id.Name, pos: s.Rhs[0]})
			}
		case *ast.ExprStmt:
			if chain, ok := markCall(s.X); ok {
				pass.Reportf(s.X.Pos(), "arena mark from %s is discarded; assign it and release it (a dropped mark can never be released)", chain+".Mark()")
				return
			}
			if chain, arg, ok := releaseCall(s.X); ok {
				releases = append(releases, arenaReleaseSite{stmt: s, chain: chain, arg: arg})
			}
		case *ast.DeferStmt:
			if chain, arg, ok := releaseCall(s.Call); ok {
				releases = append(releases, arenaReleaseSite{stmt: s, chain: chain, arg: arg, deferred: true})
			}
		}
	})
	if len(marks) == 0 {
		return
	}

	g := buildCFG(body)
	for i := range marks {
		marks[i].node = g.node(marks[i].stmt)
	}
	for i := range releases {
		releases[i].node = g.node(releases[i].stmt)
	}

	releasesOf := func(m arenaMarkSite) map[*cfgNode]bool {
		out := make(map[*cfgNode]bool)
		for _, r := range releases {
			if r.chain == m.chain && r.arg == m.name && r.node != nil {
				out[r.node] = true
			}
		}
		return out
	}

	for _, m := range marks {
		if m.node == nil {
			continue
		}
		kills := releasesOf(m)
		if len(kills) == 0 {
			pass.Reportf(m.pos.Pos(), "arena mark %q from %s.Mark() is never released in this function; every mark needs a matching Release", m.name, m.chain)
			continue
		}
		kill := func(n *cfgNode) bool { return kills[n] }
		if g.escapesExit(m.node, kill) {
			pass.Reportf(m.pos.Pos(), "arena mark %q is not released on every path to the function exit; release it on all paths or defer the release", m.name)
		}
	}

	// LIFO: for an inner mark taken while an outer one is active, a
	// non-deferred release of the outer mark must not be reachable
	// before the inner mark's release.
	for _, outer := range marks {
		if outer.node == nil {
			continue
		}
		outerKills := releasesOf(outer)
		outerKill := func(n *cfgNode) bool { return outerKills[n] }
		for _, inner := range marks {
			if inner.node == nil || inner.name == outer.name {
				continue
			}
			// inner nested inside outer: reachable with outer unreleased.
			if !g.canReach(outer.node, func(n *cfgNode) bool { return n == inner.node }, outerKill) {
				continue
			}
			innerKills := releasesOf(inner)
			innerKill := func(n *cfgNode) bool { return innerKills[n] }
			for _, r := range releases {
				if r.deferred || r.node == nil || !outerKills[r.node] {
					continue
				}
				if g.canReach(inner.node, func(n *cfgNode) bool { return n == r.node }, innerKill) {
					pass.Reportf(r.node.stmt.Pos(), "arena marks released out of LIFO order: %q must be released before %q (Release truncates the arena back to the mark)", inner.name, outer.name)
				}
			}
		}
	}
}
