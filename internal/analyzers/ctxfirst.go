package analyzers

import (
	"go/ast"
	"strings"
)

// deprecatedMiners maps qualified function names to their context-first
// replacement. Both calling and re-declaring any of them is a ctxfirst
// diagnostic: the public *Context wrappers were deleted outright when
// repro.Source/MineFrom landed, and the internal *Ctx spellings were
// folded into the canonical entry points — none of the names may come
// back.
var deprecatedMiners = map[string]string{
	"repro.MineContext":                      "repro.Mine",
	"repro.MineMaximalContext":               "repro.MineMaximal",
	"repro.MineClosedContext":                "repro.MineClosed",
	"repro.MineVertical":                     "repro.MineFrom",
	"repro/internal/eclat.MineSequentialCtx": "eclat.MineSequentialOpts",
	"repro/internal/apriori.MineCtx":         "apriori.Mine",
	// The non-Options eclat entry points were retired when the class-task
	// engine unified the eight variants: every caller threads Options (and
	// with it TopK/MustContain/Workers) through the *Opts spellings.
	"repro/internal/eclat.Mine":                   "eclat.MineOpts",
	"repro/internal/eclat.MineHybrid":             "eclat.MineHybridOpts",
	"repro/internal/eclat.MineClosed":             "eclat.MineClosedOpts",
	"repro/internal/eclat.MineMaximal":            "eclat.MineMaximalOpts",
	"repro/internal/eclat.MineSequentialDiffsets": "eclat.MineSequentialDiffsetsOpts",
	"repro/internal/eclat.MineClosedCHARM":        "eclat.MineClosedCHARMOpts",
}

// CtxFirst enforces the context-first API contract introduced by the
// observability PR: a context.Context parameter must come first in any
// function signature, the exported Mine* entry points of the public
// repro package must take a context, and the retired *Context/*Ctx
// wrapper names must neither gain callers nor be declared again.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context parameters must be first; exported repro.Mine* entry points " +
		"must take a context; the retired *Context/*Ctx mining wrappers may not be called or redeclared",
	Run: runCtxFirst,
}

func runCtxFirst(pass *Pass) {
	for _, f := range pass.files() {
		checkCtxPosition(pass, f)
		if pass.Pkg.ImportPath == pass.Module.Path && pass.Pkg.Name == "repro" && !f.Test {
			checkPublicMiners(pass, f)
		}
		checkDeprecatedCalls(pass, f)
		checkDeprecatedDecls(pass, f)
	}
}

// checkDeprecatedDecls flags any top-level function declaration that
// reintroduces a retired wrapper name in its original package — the
// deletion is permanent, not a renaming opportunity.
func checkDeprecatedDecls(pass *Pass, f *File) {
	for _, decl := range f.AST.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv != nil {
			continue
		}
		qualified := pass.Pkg.ImportPath + "." + fn.Name.Name
		if repl, banned := deprecatedMiners[qualified]; banned {
			pass.Reportf(fn.Name.Pos(), "declaration of retired %s; the name was deleted in favor of %s and must not return", qualified, repl)
		}
	}
}

// checkCtxPosition flags any function declaration or literal whose
// parameter list contains context.Context anywhere but first.
func checkCtxPosition(pass *Pass, f *File) {
	check := func(ft *ast.FuncType, what string) {
		if ft.Params == nil {
			return
		}
		argIndex := 0
		for _, field := range ft.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if isContextContext(f, field.Type) && argIndex != 0 {
				pass.Reportf(field.Pos(), "%s has context.Context as parameter %d; context must be the first parameter", what, argIndex+1)
			}
			argIndex += n
		}
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			check(fn.Type, "function "+fn.Name.Name)
		case *ast.FuncLit:
			check(fn.Type, "function literal")
		}
		return true
	})
}

// checkPublicMiners enforces the entry-point contract on the public
// package: every exported func repro.Mine* takes context.Context first.
// The deprecated compatibility wrappers already satisfy it — they are
// context-first too, just banned at call sites.
func checkPublicMiners(pass *Pass, f *File) {
	for _, decl := range f.AST.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv != nil || !fn.Name.IsExported() || !strings.HasPrefix(fn.Name.Name, "Mine") {
			continue
		}
		params := fn.Type.Params
		if params == nil || len(params.List) == 0 || !isContextContext(f, params.List[0].Type) {
			pass.Reportf(fn.Name.Pos(), "exported mining entry point %s must take context.Context as its first parameter", fn.Name.Name)
		}
	}
}

// checkDeprecatedCalls flags call expressions that resolve to a
// denylisted wrapper, both qualified (pkg.MineContext) and unqualified
// within the declaring package.
func checkDeprecatedCalls(pass *Pass, f *File) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var qualified string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			path, name, ok := resolveQualified(f, fun)
			if !ok {
				return true
			}
			qualified = path + "." + name
		case *ast.Ident:
			qualified = pass.Pkg.ImportPath + "." + fun.Name
		default:
			return true
		}
		if repl, banned := deprecatedMiners[qualified]; banned {
			pass.Reportf(call.Pos(), "call to deprecated %s; use the context-first %s", qualified, repl)
		}
		return true
	})
}
