package analyzers

import (
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //reprolint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string // names, or ["all"]
	reason    string
	used      bool
}

// suppresses reports whether the directive silences the given analyzer.
func (d *ignoreDirective) suppresses(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// applySuppressions drops diagnostics covered by //reprolint:ignore
// directives and appends framework diagnostics for malformed or unknown
// directives. A directive covers its own source line and, so that it can
// stand alone above a long statement, the line directly below it.
//
// Grammar:
//
//	//reprolint:ignore <analyzer>[,<analyzer>...] <reason...>
//
// The reason is mandatory: an ignore that does not say why is itself a
// diagnostic, which keeps suppressions reviewable.
func applySuppressions(m *Module, known map[string]bool, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	index := map[key][]*ignoreDirective{}
	var malformed []Diagnostic

	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//reprolint:ignore")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) == 0 {
						malformed = append(malformed, Diagnostic{
							Analyzer: "reprolint",
							Pos:      pos,
							Message:  "malformed //reprolint:ignore: want \"//reprolint:ignore <analyzer> <reason>\"",
						})
						continue
					}
					names := strings.Split(fields[0], ",")
					bad := false
					for _, n := range names {
						if n != "all" && !known[n] {
							malformed = append(malformed, Diagnostic{
								Analyzer: "reprolint",
								Pos:      pos,
								Message:  "//reprolint:ignore names unknown analyzer \"" + n + "\"",
							})
							bad = true
						}
					}
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Analyzer: "reprolint",
							Pos:      pos,
							Message:  "//reprolint:ignore must give a reason after the analyzer name",
						})
						bad = true
					}
					if bad {
						continue
					}
					d := &ignoreDirective{pos: pos, analyzers: names, reason: strings.Join(fields[1:], " ")}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := key{file: pos.Filename, line: line}
						index[k] = append(index[k], d)
					}
				}
			}
		}
	}

	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range index[key{file: d.Pos.Filename, line: d.Pos.Line}] {
			if dir.suppresses(d.Analyzer) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return append(kept, malformed...)
}
