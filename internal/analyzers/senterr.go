package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
	"unicode/utf8"
)

// SentErr forbids identity comparison of sentinel errors. The mining API
// wraps its sentinels (ErrCanceled wraps the context error, validation
// errors arrive through fmt.Errorf("%w")), so == / != against
// ErrInvalidSupport, ErrUnknownAlgorithm, ErrCanceled — or any Err*
// sentinel, or the context package's sentinels — silently stops matching
// one fmt.Errorf away; errors.Is is the only stable comparison.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc: "sentinel errors (ErrInvalidSupport, ErrUnknownAlgorithm, ErrCanceled, any Err*, " +
		"context.Canceled/DeadlineExceeded) must be compared with errors.Is, never == or !=",
	Run: runSentErr,
}

func runSentErr(pass *Pass) {
	for _, f := range pass.files() {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{x.X, x.Y} {
					if name, ok := sentinelRef(f, side); ok {
						pass.Reportf(x.Pos(), "sentinel error %s compared with %s; use errors.Is", name, x.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				// switch err { case ErrFoo: } is the same identity
				// comparison in disguise.
				if x.Tag == nil {
					return true
				}
				if x.Body == nil {
					return true
				}
				for _, stmt := range x.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if name, ok := sentinelRef(f, v); ok {
							pass.Reportf(v.Pos(), "sentinel error %s used as a switch case; use a switch with errors.Is conditions", name)
						}
					}
				}
			}
			return true
		})
	}
}

// sentinelRef reports whether expr names a sentinel error: an
// identifier or package-qualified name matching Err[A-Z]*, or the
// context package's Canceled/DeadlineExceeded.
func sentinelRef(f *File, expr ast.Expr) (string, bool) {
	switch x := expr.(type) {
	case *ast.Ident:
		if isErrSentinelName(x.Name) {
			return x.Name, true
		}
	case *ast.SelectorExpr:
		path, name, ok := resolveQualified(f, x)
		if !ok {
			return "", false
		}
		if path == "context" && (name == "Canceled" || name == "DeadlineExceeded") {
			return "context." + name, true
		}
		if isErrSentinelName(name) {
			if i := strings.LastIndex(path, "/"); i >= 0 {
				path = path[i+1:]
			}
			return path + "." + name, true
		}
	}
	return "", false
}

// isErrSentinelName matches the sentinel naming convention ErrX... (an
// exported Err-prefixed identifier).
func isErrSentinelName(name string) bool {
	rest, ok := strings.CutPrefix(name, "Err")
	if !ok || rest == "" {
		return false
	}
	r, _ := utf8.DecodeRuneInString(rest)
	return unicode.IsUpper(r)
}
