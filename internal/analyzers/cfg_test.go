package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestCFGReachability(t *testing.T) {
	src := `
	a() // A
	if cond {
		b() // B
		return
	}
	c() // C
`
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	g := buildCFG(body)

	byMarker := func(marker string) *cfgNode {
		var found *cfgNode
		funcStmts(body, func(s ast.Stmt) {
			if found != nil {
				return
			}
			n := g.node(s)
			if n == nil {
				return
			}
			end := fset.Position(s.End())
			lineText := strings.Split(file, "\n")[end.Line-1]
			if strings.Contains(lineText, marker) {
				found = n
			}
		})
		if found == nil {
			t.Fatalf("no node for marker %s", marker)
		}
		return found
	}

	nodeA, nodeB, nodeC := byMarker("// A"), byMarker("// B"), byMarker("// C")

	is := func(want *cfgNode) func(*cfgNode) bool {
		return func(n *cfgNode) bool { return n == want }
	}
	never := func(*cfgNode) bool { return false }

	if !g.canReach(nodeA, is(nodeB), never) {
		t.Error("B should be reachable from A")
	}
	if !g.canReach(nodeA, is(nodeC), never) {
		t.Error("C should be reachable from A (else branch)")
	}
	if g.canReach(nodeB, is(nodeC), never) {
		t.Error("C must not be reachable from B: the branch returns")
	}
	// Killing at C still leaves the return path to exit from A.
	if !g.escapesExit(nodeA, is(nodeC)) {
		t.Error("exit should be reachable from A without passing C (via return)")
	}
	// Killing at both B and C blocks every path from A... except the
	// if-condition itself falls through to C only; B kills the then
	// path, C the else path.
	kill := func(n *cfgNode) bool { return n == nodeB || n == nodeC }
	if g.escapesExit(nodeA, kill) {
		t.Error("exit must not be reachable from A when both branch statements kill")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	src := "package p\nfunc f(n int) {\n\tfor i := 0; i < n; i++ {\n\t\twork() // W\n\t}\n\ttail() // T\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	g := buildCFG(body)

	var work, tail *cfgNode
	funcStmts(body, func(s ast.Stmt) {
		n := g.node(s)
		if n == nil {
			return
		}
		line := strings.Split(src, "\n")[fset.Position(s.End()).Line-1]
		if strings.Contains(line, "// W") {
			work = n
		}
		if strings.Contains(line, "// T") {
			tail = n
		}
	})
	if work == nil || tail == nil {
		t.Fatal("markers not found")
	}
	never := func(*cfgNode) bool { return false }
	// The back edge makes the loop body reachable from itself.
	if !g.canReach(work, func(n *cfgNode) bool { return n == work }, never) {
		t.Error("loop body should reach itself via the back edge")
	}
	if !g.canReach(work, func(n *cfgNode) bool { return n == tail }, never) {
		t.Error("loop exit should reach the tail")
	}
	// An infinite loop has no exit edge from the head.
	src2 := "package p\nfunc f() {\n\tfor {\n\t\twork()\n\t}\n\ttail()\n}\n"
	f2, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", src2, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body2 := f2.Decls[0].(*ast.FuncDecl).Body
	g2 := buildCFG(body2)
	if g2.escapesExit(g2.entry, never) {
		t.Error("exit must be unreachable past an infinite loop with no break")
	}
}

func TestSelectorChain(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{"q.mu", "q.mu"},
		{"deques[victim].mu", "deques[victim].mu"},
		{"deques[0].mu", "deques[0].mu"},
		{"(*p).mu", "p.mu"},
		{"f().mu", ""},
		{"m[k()].mu", ""},
	}
	for _, c := range cases {
		expr, err := parser.ParseExpr(c.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", c.expr, err)
		}
		if got := selectorChain(expr); got != c.want {
			t.Errorf("selectorChain(%q) = %q, want %q", c.expr, got, c.want)
		}
	}
	if got := chainLastComponent("q.mu"); got != "mu" {
		t.Errorf("chainLastComponent(q.mu) = %q", got)
	}
	if got := chainLastComponent("wg"); got != "wg" {
		t.Errorf("chainLastComponent(wg) = %q", got)
	}
}
