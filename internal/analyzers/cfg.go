package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
)

// This file implements the small intra-function control-flow layer
// shared by the flow-sensitive analyzers (lockorder, arenadiscipline,
// goroutinejoin). It is deliberately statement-grained: each statement
// of a function body becomes one node, nested blocks are inlined, and
// function literals are opaque (their bodies are separate CFGs built by
// whoever cares). That is precise enough to answer the two questions
// the analyzers ask — "is B reachable from A without passing through a
// kill set?" and "does some path from A reach the function exit without
// passing through a kill set?" — without dragging in SSA.

// A cfgNode is one statement (or the synthetic entry/exit) of a
// function-body CFG.
type cfgNode struct {
	stmt  ast.Stmt // nil for the synthetic entry and exit nodes
	succs []*cfgNode
}

// A funcCFG is the statement-level control-flow graph of one function
// body.
type funcCFG struct {
	entry *cfgNode
	exit  *cfgNode
	nodes map[ast.Stmt]*cfgNode
}

// node returns the CFG node for stmt, or nil when the statement was
// not part of the body the graph was built from (e.g. it lives inside
// a nested function literal).
func (g *funcCFG) node(stmt ast.Stmt) *cfgNode {
	return g.nodes[stmt]
}

// canReach walks forward from the successors of `from` and reports
// whether any node satisfying target is reachable without first passing
// through a node satisfying kill. Kill is tested before target, so a
// node matching both stops the walk. `from` itself is re-examined only
// if a cycle leads back to it.
func (g *funcCFG) canReach(from *cfgNode, target, kill func(*cfgNode) bool) bool {
	seen := make(map[*cfgNode]bool)
	stack := append([]*cfgNode(nil), from.succs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if kill != nil && kill(n) {
			continue
		}
		if target(n) {
			return true
		}
		stack = append(stack, n.succs...)
	}
	return false
}

// escapesExit reports whether the function exit is reachable from
// `from` without passing through a kill node — i.e. the kill set does
// NOT post-dominate `from`.
func (g *funcCFG) escapesExit(from *cfgNode, kill func(*cfgNode) bool) bool {
	return g.canReach(from, func(n *cfgNode) bool { return n == g.exit }, kill)
}

// labelTarget records where a labeled break/continue lands.
type labelTarget struct {
	brk, cont *cfgNode
}

// cfgBuilder carries the shared state of one buildCFG run.
type cfgBuilder struct {
	g *funcCFG
	// fallthroughTo is the entry of the next case clause while building
	// a switch body (cases are wired back to front).
	fallthroughTo *cfgNode
}

// buildCFG constructs the CFG of one function body. Control enters at
// entry and every return/fall-off-the-end path leads to exit. Branch
// statements honour labels; goto is modeled conservatively as a jump to
// exit (the repo style never uses it, and over-approximating its target
// would manufacture paths that hide real findings).
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{
		entry: &cfgNode{},
		exit:  &cfgNode{},
		nodes: make(map[ast.Stmt]*cfgNode),
	}
	b := &cfgBuilder{g: g}
	first := b.stmtList(body.List, g.exit, nil, nil, nil)
	g.entry.succs = append(g.entry.succs, first)
	return g
}

// newNode allocates and registers the node for stmt.
func (b *cfgBuilder) newNode(stmt ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: stmt}
	b.g.nodes[stmt] = n
	return n
}

// stmtList wires stmts in sequence; control that falls off the end
// continues to succ. Returns the entry node of the list (succ when the
// list is empty).
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, succ, brk, cont *cfgNode, labels map[string]labelTarget) *cfgNode {
	entry := succ
	for i := len(stmts) - 1; i >= 0; i-- {
		entry = b.stmt(stmts[i], entry, brk, cont, labels, "")
	}
	return entry
}

// stmt wires one statement and returns its entry node. succ is where
// control goes when the statement completes normally; brk/cont are the
// targets of an unlabeled break/continue; label is the pending label
// when the statement is the body of a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, succ, brk, cont *cfgNode, labels map[string]labelTarget, label string) *cfgNode {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, succ, brk, cont, labels, s.Label.Name)

	case *ast.BlockStmt:
		return b.stmtList(s.List, succ, brk, cont, labels)

	case *ast.IfStmt:
		n := b.newNode(s) // init + cond evaluate here
		then := b.stmtList(s.Body.List, succ, brk, cont, labels)
		els := succ
		if s.Else != nil {
			els = b.stmt(s.Else, succ, brk, cont, labels, "")
		}
		n.succs = append(n.succs, then, els)
		return n

	case *ast.ForStmt:
		n := b.newNode(s) // init/cond/post collapse into the loop head
		labels = withLabel(labels, label, succ, n)
		bodyEntry := b.stmtList(s.Body.List, n, succ, n, labels)
		n.succs = append(n.succs, bodyEntry)
		if s.Cond != nil {
			n.succs = append(n.succs, succ)
		}
		return n

	case *ast.RangeStmt:
		n := b.newNode(s)
		labels = withLabel(labels, label, succ, n)
		bodyEntry := b.stmtList(s.Body.List, n, succ, n, labels)
		n.succs = append(n.succs, bodyEntry, succ)
		return n

	case *ast.SwitchStmt:
		return b.switchStmt(s, s.Body, succ, cont, labels, label)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(s, s.Body, succ, cont, labels, label)

	case *ast.SelectStmt:
		n := b.newNode(s)
		labels = withLabel(labels, label, succ, nil)
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			n.succs = append(n.succs, b.stmtList(cc.Body, succ, succ, cont, labels))
		}
		// select{} blocks forever: no successors at all.
		return n

	case *ast.ReturnStmt:
		n := b.newNode(s)
		n.succs = append(n.succs, b.g.exit)
		return n

	case *ast.BranchStmt:
		n := b.newNode(s)
		switch s.Tok {
		case token.BREAK:
			t := brk
			if s.Label != nil {
				if lt, ok := labels[s.Label.Name]; ok {
					t = lt.brk
				}
			}
			if t == nil {
				t = b.g.exit
			}
			n.succs = append(n.succs, t)
		case token.CONTINUE:
			t := cont
			if s.Label != nil {
				if lt, ok := labels[s.Label.Name]; ok && lt.cont != nil {
					t = lt.cont
				}
			}
			if t == nil {
				t = b.g.exit
			}
			n.succs = append(n.succs, t)
		case token.FALLTHROUGH:
			t := b.fallthroughTo
			if t == nil {
				t = succ
			}
			n.succs = append(n.succs, t)
		default: // goto: conservative jump to exit
			n.succs = append(n.succs, b.g.exit)
		}
		return n

	default:
		// Straight-line statements: expressions, assignments,
		// declarations, defer, go, send, inc/dec, empty.
		n := b.newNode(s)
		n.succs = append(n.succs, succ)
		return n
	}
}

// switchStmt wires an (expression or type) switch. Cases are built back
// to front so each body knows the next case's entry as its fallthrough
// target.
func (b *cfgBuilder) switchStmt(s ast.Stmt, body *ast.BlockStmt, succ, cont *cfgNode, labels map[string]labelTarget, label string) *cfgNode {
	n := b.newNode(s)
	labels = withLabel(labels, label, succ, nil)
	hasDefault := false
	savedFallthrough := b.fallthroughTo
	next := (*cfgNode)(nil)
	entries := make([]*cfgNode, 0, len(body.List))
	for i := len(body.List) - 1; i >= 0; i-- {
		cc, ok := body.List[i].(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.fallthroughTo = next
		entry := b.stmtList(cc.Body, succ, succ, cont, labels)
		entries = append(entries, entry)
		next = entry
	}
	b.fallthroughTo = savedFallthrough
	n.succs = append(n.succs, entries...)
	if !hasDefault {
		n.succs = append(n.succs, succ)
	}
	return n
}

// withLabel extends the label table with a pending label, copying on
// write so sibling statements do not see each other's labels.
func withLabel(labels map[string]labelTarget, label string, brk, cont *cfgNode) map[string]labelTarget {
	if label == "" {
		return labels
	}
	out := make(map[string]labelTarget, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	out[label] = labelTarget{brk: brk, cont: cont}
	return out
}

// funcStmts visits every statement of body in source order without
// descending into nested function literals — the statement set that
// buildCFG assigns nodes to.
func funcStmts(body *ast.BlockStmt, visit func(ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && n != ast.Node(body) {
			visit(s)
		}
		return true
	})
}

// eachFuncBody visits every function body of the file — declarations
// and literals, nested literals included — handing each one its
// receiver declaration (nil for literals and plain functions) and a
// printable name for diagnostics. Each body is one visit; per-body
// walks should use funcStmts, which stops at nested literals, so no
// statement is analyzed under two bodies.
func eachFuncBody(f *File, visit func(name string, recv *ast.FieldList, body *ast.BlockStmt)) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Name.Name, fn.Recv, fn.Body)
			}
		case *ast.FuncLit:
			visit("func literal", nil, fn.Body)
		}
		return true
	})
}

// selectorChain renders the receiver chain of an expression the flow
// analyzers model: identifiers, field selections, and index expressions
// with identifier or literal indices ("q.mu", "deques[victim].mu").
// Anything else — calls, type assertions, arbitrary index expressions —
// returns "" and the caller skips the site.
func selectorChain(expr ast.Expr) string {
	switch x := expr.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := selectorChain(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base := selectorChain(x.X)
		if base == "" {
			return ""
		}
		switch idx := x.Index.(type) {
		case *ast.Ident:
			return fmt.Sprintf("%s[%s]", base, idx.Name)
		case *ast.BasicLit:
			return fmt.Sprintf("%s[%s]", base, idx.Value)
		}
		return ""
	case *ast.ParenExpr:
		return selectorChain(x.X)
	case *ast.StarExpr:
		return selectorChain(x.X)
	}
	return ""
}

// chainLastComponent returns the final field of a selector chain
// ("q.mu" -> "mu", "wg" -> "wg").
func chainLastComponent(chain string) string {
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i] == '.' {
			return chain[i+1:]
		}
	}
	return chain
}
