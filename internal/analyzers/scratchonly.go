package analyzers

import (
	"go/ast"
)

const tidlistPath = "repro/internal/tidlist"

// kernelFuncs are the tid-set kernels whose first parameter is the
// reusable scratch slot.
var kernelFuncs = map[string]bool{
	"IntersectSets":   true,
	"IntersectSetsSC": true,
	"DiffSets":        true,
}

// ScratchOnly enforces the partial-prefix contract of the short-circuit
// kernel (DESIGN.md §5): when IntersectSetsSC aborts on the support
// bound, the returned set holds an unspecified partial prefix and is
// valid only as the scratch argument of a later kernel call. Concretely,
// at every call site the three results must be assigned; the returned
// set must not escape (be cloned, stored, returned, or passed anywhere
// but a kernel scratch slot) before the ok flag is consulted; and the
// flag may be discarded only when the result is used exclusively as
// scratch.
//
// The check is a same-block syntactic scan, not a dataflow analysis: it
// follows statements from the call to the first one that mentions the
// flag, which is exactly the shape of the mining recursions' inner
// loops.
var ScratchOnly = &Analyzer{
	Name: "scratchonly",
	Doc: "the aborted result of tidlist.IntersectSetsSC is scratch-only: check the ok flag " +
		"before the set escapes, or keep the set strictly in kernel scratch position",
	Run: runScratchOnly,
}

func runScratchOnly(pass *Pass) {
	for _, f := range pass.files() {
		walkWithStack(f.AST, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isTidlistCall(pass, f, call, "IntersectSetsSC") {
				return
			}
			checkSCCallSite(pass, f, call, stack)
		})
	}
}

// isTidlistCall reports whether call invokes tidlist.<name>, either
// qualified through an import of the tidlist package or unqualified
// inside it.
func isTidlistCall(pass *Pass, f *File, call *ast.CallExpr, name string) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		path, sel, ok := resolveQualified(f, fun)
		return ok && path == tidlistPath && sel == name
	case *ast.Ident:
		return pass.Pkg.ImportPath == tidlistPath && fun.Name == name
	}
	return false
}

// checkSCCallSite validates one IntersectSetsSC call against the
// scratch-only contract.
func checkSCCallSite(pass *Pass, f *File, call *ast.CallExpr, stack []ast.Node) {
	setVar, okVar, assign, ok := destructureSC(call, stack)
	if !ok {
		pass.Reportf(call.Pos(), "results of tidlist.IntersectSetsSC must be assigned to (set, ops, ok) variables")
		return
	}
	if setVar == nil {
		// Set result discarded outright: nothing can escape.
		return
	}

	fnBody := enclosingFuncBody(stack)
	if okVar == nil {
		// Flag discarded: legal only if the set never leaves scratch
		// position anywhere in the function.
		if fnBody == nil {
			return
		}
		if esc := firstEscapingUse(pass, f, fnBody, setVar.Name, nil); esc != nil {
			pass.Reportf(esc.Pos(), "IntersectSetsSC result %q escapes but the short-circuit flag was discarded; "+
				"assign and check the flag, or keep the result scratch-only", setVar.Name)
		}
		return
	}

	// Flag assigned: scan forward in the innermost block from the call
	// statement to the first statement consulting the flag; in between,
	// the set may only be reused as scratch.
	block := innermostBlock(stack)
	if block == nil {
		return
	}
	started := false
	for _, stmt := range block.List {
		if !started {
			if stmt == assign || containsNode(stmt, assign) {
				started = true
			}
			continue
		}
		if mentionsIdent(stmt, okVar.Name) {
			return // guarded from here on
		}
		if esc := firstEscapingUse(pass, f, stmt, setVar.Name, nil); esc != nil {
			pass.Reportf(esc.Pos(), "IntersectSetsSC result %q may escape before the short-circuit flag %q is checked; "+
				"an aborted result is scratch-only", setVar.Name, okVar.Name)
			return
		}
	}
}

// destructureSC finds the (set, ok) destination identifiers of the call.
// It accepts `a, b, c := call` / `=` assignments and
// `var a, b, c = call` declarations; blank destinations come back nil.
// ok=false means the call's results are not assigned at all.
func destructureSC(call *ast.CallExpr, stack []ast.Node) (setVar, okVar *ast.Ident, assignStmt ast.Node, ok bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.AssignStmt:
			if len(parent.Rhs) != 1 || parent.Rhs[0] != ast.Expr(call) || len(parent.Lhs) != 3 {
				return nil, nil, nil, false
			}
			set, setOK := parent.Lhs[0].(*ast.Ident)
			flag, flagOK := parent.Lhs[2].(*ast.Ident)
			if !setOK || !flagOK {
				// Storing a result straight into a field or element
				// escapes before any check is possible.
				return nil, nil, nil, false
			}
			return nonBlank(set), nonBlank(flag), parent, true
		case *ast.ValueSpec:
			if len(parent.Values) != 1 || parent.Values[0] != ast.Expr(call) || len(parent.Names) != 3 {
				return nil, nil, nil, false
			}
			return nonBlank(parent.Names[0]), nonBlank(parent.Names[2]), parent, true
		case *ast.ParenExpr:
			continue
		default:
			return nil, nil, nil, false
		}
	}
	return nil, nil, nil, false
}

func nonBlank(id *ast.Ident) *ast.Ident {
	if id == nil || id.Name == "_" {
		return nil
	}
	return id
}

// enclosingFuncBody returns the body of the innermost enclosing
// function declaration or literal.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// innermostBlock returns the deepest enclosing block statement.
func innermostBlock(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// containsNode reports whether target occurs in the subtree rooted at
// root.
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// mentionsIdent reports whether the subtree references an identifier
// with the given name.
func mentionsIdent(root ast.Node, name string) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// firstEscapingUse finds a use of name inside root that is neither a
// kernel scratch argument, a plain re-assignment target, nor the whole
// right-hand side of a simple `ident = name` aliasing assignment.
// skip, when non-nil, is a subtree to exclude (the defining statement).
func firstEscapingUse(pass *Pass, f *File, root ast.Node, name string, skip ast.Node) ast.Node {
	var escape ast.Node
	walkWithStack(root, func(n ast.Node, stack []ast.Node) {
		if escape != nil {
			return
		}
		if skip != nil && (n == skip || nodeInStack(stack, skip)) {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return
		}
		if len(stack) == 0 {
			return
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.CallExpr:
			// Scratch position of a kernel call is the one legal way to
			// consume a possibly-aborted set.
			if isTidlistCall(pass, f, parent, "IntersectSets") ||
				isTidlistCall(pass, f, parent, "IntersectSetsSC") ||
				isTidlistCall(pass, f, parent, "DiffSets") {
				if len(parent.Args) > 0 && parent.Args[0] == ast.Expr(id) {
					return
				}
			}
			escape = id
		case *ast.AssignStmt:
			// Being overwritten is fine; being the entire RHS of a
			// simple aliasing assignment (scratch = tids) is fine.
			for _, lhs := range parent.Lhs {
				if lhs == ast.Expr(id) {
					return
				}
			}
			if len(parent.Rhs) == 1 && parent.Rhs[0] == ast.Expr(id) && len(parent.Lhs) == 1 {
				if _, isIdent := parent.Lhs[0].(*ast.Ident); isIdent {
					return
				}
			}
			escape = id
		case *ast.ValueSpec:
			// Appearing as a declared name (var scratch Set) is not a
			// use; appearing alone as the initializer of a single-name
			// declaration is the aliasing form of scratch reuse.
			for _, n := range parent.Names {
				if n == id {
					return
				}
			}
			if len(parent.Names) == 1 && len(parent.Values) == 1 && parent.Values[0] == ast.Expr(id) {
				return
			}
			escape = id
		case *ast.SelectorExpr:
			// Method call or field read on the set (tids.Support())
			// observes the aborted prefix.
			if parent.X == ast.Expr(id) {
				escape = id
			}
		default:
			escape = id
		}
	})
	return escape
}

// nodeInStack reports whether target is one of the ancestors.
func nodeInStack(stack []ast.Node, target ast.Node) bool {
	for _, n := range stack {
		if n == target {
			return true
		}
	}
	return false
}
