package analyzers

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden runner mirrors golang.org/x/tools/go/analysis/analysistest:
// fixture files under testdata/src/<fixture> carry expectations as
//
//	expr // want "regexp"
//	expr // want "first" "second"
//
// comments (double-quoted or backquoted), each matching one diagnostic
// reported on that line. Unexpected diagnostics and unmatched
// expectations both fail the test.

// wantMarkerRE extracts the expectation list from a comment.
var wantMarkerRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantPatternRE tokenizes the list into quoted regexp literals.
var wantPatternRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	source  string
	matched bool
}

// loadFixture parses testdata/src/<fixture> under the given import path
// and module path.
func loadFixture(t *testing.T, fixture, importPath, modPath string) *Module {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	m, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(m.Packages) == 0 {
		t.Fatalf("fixture %s contains no packages", fixture)
	}
	m.Path = modPath
	return m
}

// collectWants parses every `// want` expectation in the module.
func collectWants(t *testing.T, m *Module) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					match := wantMarkerRE.FindStringSubmatch(c.Text)
					if match == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					patterns := wantPatternRE.FindAllString(match[1], -1)
					if len(patterns) == 0 {
						t.Fatalf("%s:%d: want comment has no quoted patterns", pos.Filename, pos.Line)
					}
					for _, p := range patterns {
						text := p
						if strings.HasPrefix(p, "`") {
							text = strings.Trim(p, "`")
						} else if unq, err := strconv.Unquote(p); err == nil {
							text = unq
						}
						re, err := regexp.Compile(text)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, p, err)
						}
						wants = append(wants, &expectation{
							file:   pos.Filename,
							line:   pos.Line,
							re:     re,
							source: text,
						})
					}
				}
			}
		}
	}
	return wants
}

// checkGolden runs the suite over the fixture module and compares the
// diagnostics against the want expectations.
func checkGolden(t *testing.T, m *Module, suite []*Analyzer) {
	t.Helper()
	diags := Run(m, suite)
	wants := collectWants(t, m)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.source)
		}
	}
}

// testAnalyzer is the per-analyzer golden entry point.
func testAnalyzer(t *testing.T, a *Analyzer, fixture, importPath, modPath string) {
	t.Helper()
	m := loadFixture(t, fixture, importPath, modPath)
	checkGolden(t, m, []*Analyzer{a})
}

func TestCtxFirstGolden(t *testing.T) {
	testAnalyzer(t, CtxFirst, "ctxfirst", "repro", "repro")
}

// TestCtxFirstRetiredEclatGolden checks the declaration ban inside the
// eclat package itself: the six entry points retired by the class-task
// engine may not be re-declared, while the kept spellings stay silent.
func TestCtxFirstRetiredEclatGolden(t *testing.T) {
	testAnalyzer(t, CtxFirst, "ctxfirst_eclat", "repro/internal/eclat", "repro")
}

func TestVirtualTimeGolden(t *testing.T) {
	testAnalyzer(t, VirtualTime, "virtualtime", "repro/internal/cluster", "repro")
}

// TestVirtualTimeElsewhere checks the analyzer stays quiet outside the
// simulated-time packages: the same source, loaded under an unlisted
// import path, must produce zero diagnostics.
func TestVirtualTimeElsewhere(t *testing.T) {
	m := loadFixture(t, "virtualtime_ok", "repro/internal/eclat", "repro")
	if diags := Run(m, []*Analyzer{VirtualTime}); len(diags) != 0 {
		t.Errorf("virtualtime fired outside the simulated packages: %v", diags)
	}
}

func TestScratchOnlyGolden(t *testing.T) {
	testAnalyzer(t, ScratchOnly, "scratchonly", "repro/internal/tidlist", "repro")
}

func TestScratchOnlyQualifiedGolden(t *testing.T) {
	testAnalyzer(t, ScratchOnly, "scratchonly_import", "repro/internal/eclat", "repro")
}

func TestMetricNameGolden(t *testing.T) {
	testAnalyzer(t, MetricName, "metricname", "repro/internal/service", "repro")
}

func TestSentErrGolden(t *testing.T) {
	testAnalyzer(t, SentErr, "senterr", "repro/internal/service", "repro")
}

func TestLockOrderGolden(t *testing.T) {
	testAnalyzer(t, LockOrder, "lockorder", "repro/internal/eclat", "repro")
}

func TestAtomicOnlyGolden(t *testing.T) {
	testAnalyzer(t, AtomicOnly, "atomiconly", "repro/internal/eclat", "repro")
}

func TestArenaDisciplineGolden(t *testing.T) {
	testAnalyzer(t, ArenaDiscipline, "arenadiscipline", "repro/internal/eclat", "repro")
}

func TestMmapAliasGolden(t *testing.T) {
	testAnalyzer(t, MmapAlias, "mmapalias", "repro/internal/service", "repro")
}

func TestGoroutineJoinGolden(t *testing.T) {
	testAnalyzer(t, GoroutineJoin, "goroutinejoin", "repro/internal/service", "repro")
}

// TestGoroutineJoinElsewhere checks the join rule stays scoped to the
// three hot packages: the same fixture under an unlisted import path
// must produce zero diagnostics.
func TestGoroutineJoinElsewhere(t *testing.T) {
	m := loadFixture(t, "goroutinejoin", "repro/internal/rules", "repro")
	if diags := Run(m, []*Analyzer{GoroutineJoin}); len(diags) != 0 {
		t.Errorf("goroutinejoin fired outside its packages: %v", diags)
	}
}

// TestSuppressGolden exercises the //reprolint:ignore path end to end:
// valid directives silence their line (or the line below), everything
// else still reports.
func TestSuppressGolden(t *testing.T) {
	m := loadFixture(t, "suppress", "repro/internal/service", "repro")
	checkGolden(t, m, All())
}

// TestSuppressMalformed checks that broken directives are themselves
// diagnostics from the "reprolint" pseudo-analyzer. The expectations are
// asserted directly because a want comment cannot share a line with a
// line-comment directive.
func TestSuppressMalformed(t *testing.T) {
	m := loadFixture(t, "suppressbad", "repro/internal/service", "repro")
	diags := Run(m, All())
	var got []string
	for _, d := range diags {
		if d.Analyzer != "reprolint" {
			continue
		}
		got = append(got, fmt.Sprintf("%d: %s", d.Pos.Line, d.Message))
	}
	wants := []string{
		`must give a reason`,
		`unknown analyzer "nosuch"`,
	}
	for _, w := range wants {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no reprolint diagnostic containing %q; got %v", w, got)
		}
	}
	// The directives are malformed, so the violations they sit next to
	// must still be reported.
	senterr := 0
	for _, d := range diags {
		if d.Analyzer == "senterr" {
			senterr++
		}
	}
	if senterr == 0 {
		t.Errorf("malformed directives must not suppress; diagnostics: %v", diags)
	}
}

// TestSuppressAllKeyword checks the "all" analyzer wildcard.
func TestSuppressAllKeyword(t *testing.T) {
	m := loadFixture(t, "suppressall", "repro/internal/service", "repro")
	if diags := Run(m, All()); len(diags) != 0 {
		t.Errorf("//reprolint:ignore all left diagnostics: %v", diags)
	}
}
